//! Durable-store archive gates: the fixed-seed acceptance criteria of the
//! dtf-store subsystem, pinned against golden fingerprints.
//!
//! Three properties are gated here:
//!
//! 1. Turning persistence on must not perturb the simulation — a
//!    fixed-seed persistent run's export bundle must match the *same*
//!    golden (`export_fnv64.txt`) the non-durable pipeline is pinned to.
//! 2. A fresh-process archive reopen ([`RunData::open_archive`]) must
//!    reconstruct the event stream byte-identically: export bundles of
//!    the live and the archived run are compared file-for-file.
//! 3. After a fixed tail corruption of the metadata WAL, reopen recovers
//!    exactly the committed prefix: the recovery oracle passes and the
//!    recovered stream's fingerprint is pinned (`store_recovery_fnv64.txt`).
//!
//! Regenerate goldens (only deliberately) with:
//!
//! ```text
//! DTF_UPDATE_GOLDEN=1 cargo test --release --test store_archive
//! ```

use std::path::{Path, PathBuf};

use dtf::chaos::{copy_store, recovery_oracle, CrashFault, CrashKind, CrashTarget};
use dtf::core::ids::RunId;
use dtf::core::rngx::RunRng;
use dtf::mofka::MofkaService;
use dtf::perfrecup::archive::ArchivedRun;
use dtf::perfrecup::export::export_run;
use dtf::wms::sim::{SimCluster, SimConfig};
use dtf::wms::RunData;
use dtf::workflows::Workload;

/// FNV-1a 64-bit (same change-detector as tests/wire_format.rs).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn update_golden() -> bool {
    std::env::var_os("DTF_UPDATE_GOLDEN").is_some()
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if update_golden() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("updated golden {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden {} missing ({e}); see module docs", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from the golden fingerprint (regenerate deliberately \
         with DTF_UPDATE_GOLDEN=1)"
    );
}

fn scratch(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dtf-store-archive-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The same fixed-seed run `tests/wire_format.rs` pins its goldens to —
/// campaign seed 13, run 0, ImageProcessing, online Darshan — but with
/// persistence pointed at `store`.
fn persistent_fixed_seed_run(store: &Path) -> RunData {
    let workload = Workload::ImageProcessing;
    let mut cfg = SimConfig {
        campaign_seed: 13,
        run: RunId(0),
        online_darshan: true,
        persist_dir: Some(store.to_string_lossy().into_owned()),
        ..Default::default()
    };
    workload.adjust(&mut cfg);
    let rr = RunRng::new(13, RunId(0));
    SimCluster::new(cfg).unwrap().run(workload.generate(&rr)).unwrap()
}

/// Export `data` into a fresh dir and fingerprint every file, in the same
/// `{name} {fnv:016x} {len}` shape as the wire-format golden.
fn export_fingerprint(data: &RunData, dir: &Path) -> String {
    let _ = std::fs::remove_dir_all(dir);
    export_run(data, dir).unwrap();
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    let mut fingerprint = String::new();
    for name in &names {
        let bytes = std::fs::read(dir.join(name)).unwrap();
        fingerprint.push_str(&format!("{name} {:016x} {}\n", fnv64(&bytes), bytes.len()));
    }
    let _ = std::fs::remove_dir_all(dir);
    fingerprint
}

/// Canonical text rendering of everything a reopened service exposes:
/// topics sorted, partitions in order, one line per stored event.
fn stream_text(svc: &MofkaService) -> String {
    let mut out = String::new();
    for name in svc.topic_names() {
        let topic = svc.topic(&name).unwrap();
        for p in 0..topic.num_partitions() {
            for (i, e) in topic.read(p, 0, usize::MAX >> 1).unwrap().iter().enumerate() {
                out.push_str(&format!(
                    "{name}/{p}/{i} {} {} {}\n",
                    e.id,
                    e.event.data.len(),
                    e.event.metadata.to_value()
                ));
            }
        }
    }
    out
}

/// Gate 1: persistence is a pure tap on the event path. The export bundle
/// of a persistent fixed-seed run must match the golden captured from the
/// non-durable pipeline — byte for byte, same golden file.
#[test]
fn persistent_run_export_matches_the_non_durable_golden() {
    let store = scratch("perturb");
    let data = persistent_fixed_seed_run(&store);
    let fingerprint = export_fingerprint(&data, &scratch("perturb-export"));
    std::fs::remove_dir_all(&store).unwrap();
    check_golden("export_fnv64.txt", &fingerprint);
}

/// Gate 2: a fresh-process reopen of the store directory reconstructs the
/// run — same export bundle as the live `RunData`, no repair needed, and
/// the perfrecup views build from it.
#[test]
fn archive_reopen_reconstructs_the_export_byte_identically() {
    let store = scratch("reopen");
    let live = persistent_fixed_seed_run(&store);
    let live_print = export_fingerprint(&live, &scratch("reopen-live"));

    let archived = ArchivedRun::open(&store).unwrap();
    assert!(!archived.was_repaired(), "clean shutdown needs no repair");
    assert!(archived.recovery.restored_events > 0, "the archive holds the event stream");
    let arch_print = export_fingerprint(&archived.data, &scratch("reopen-arch"));
    assert_eq!(live_print, arch_print, "archived export must be byte-identical to live");

    let views = archived.views();
    assert!(views.tasks().n_rows() > 0, "views build from the archived run");

    // reopening is read-only: a second open sees the identical stream
    let again = ArchivedRun::open(&store).unwrap();
    assert_eq!(again.recovery.restored_events, archived.recovery.restored_events);
    std::fs::remove_dir_all(&store).unwrap();
}

/// Gate 3: a fixed tail corruption of the metadata WAL recovers exactly
/// the committed prefix — the oracle passes, the loss is visible in the
/// recovery report, and the recovered stream is pinned by fingerprint.
#[test]
fn corrupted_tail_recovers_committed_prefix_to_golden() {
    let store = scratch("corrupt");
    let _live = persistent_fixed_seed_run(&store);
    let (pristine, clean) = MofkaService::reopen(&store).unwrap();
    assert!(!clean.yokan.torn && !clean.warabi.torn);

    // Fixed fault, not seed-generated: the gate must always hit the
    // metadata WAL's tail, whatever CrashFault::generate(seed) would pick.
    let fault =
        CrashFault { target: CrashTarget::YokanWal, kind: CrashKind::TruncateTail, seed: 0xD7F5 };
    let victim = scratch("corrupt-victim");
    copy_store(&store, &victim).unwrap();
    let (_file, at) = fault.apply(&victim).unwrap();
    assert!(at > 0);

    let (recovered, recovery) = MofkaService::reopen(&victim).unwrap();
    assert!(recovery.yokan.torn, "the tear must be detected and reported");
    assert!(
        recovery.restored_events <= clean.restored_events,
        "recovery can only lose events past the cut, never invent them"
    );
    let violations = recovery_oracle(&pristine, &recovered);
    assert!(violations.is_empty(), "recovery oracle violations: {violations:?}");

    // The recovered stream is a deterministic function of (seed 13, fault
    // 0xD7F5): pin it. The full text is fingerprinted, not stored.
    let text = stream_text(&recovered);
    let fingerprint = format!(
        "{:016x} {} events {} bytes\n",
        fnv64(text.as_bytes()),
        recovery.restored_events,
        text.len()
    );
    std::fs::remove_dir_all(&victim).unwrap();
    std::fs::remove_dir_all(&store).unwrap();
    check_golden("store_recovery_fnv64.txt", &fingerprint);
}
