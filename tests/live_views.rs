//! Equivalence properties of the online incremental view engine
//! (`dtf::perfrecup::live`): however a run's event stream is chunked into
//! the engine — and whatever faults perturbed the run — the finalized live
//! snapshot must be *value-identical* to the post-hoc kernels over the
//! same drained record, and subscribers who joined mid-run must converge
//! to that same snapshot.

use std::collections::HashSet;
use std::time::Duration;

use proptest::prelude::*;

use dtf::chaos::{run_schedule_data, ChaosConfig};
use dtf::core::ids::{FileId, GraphId, RunId, TaskKey};
use dtf::core::time::Dur;
use dtf::mofka::bedrock::BedrockConfig;
use dtf::perfrecup::category::per_category;
use dtf::perfrecup::live::{
    phase_sample, query_rundata, republish, LiveConfig, LiveViews, RunFinal, ViewQuery,
};
use dtf::perfrecup::utilization::per_worker;
use dtf::wms::rundata::RunData;
use dtf::wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};
use dtf::wms::{GraphBuilder, IoCall, SimAction};

/// A seed-derived layered workflow run to completion under virtual time.
fn sim_run(seed: u64, layers: usize, width: usize) -> RunData {
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    let mut prev: Vec<TaskKey> = Vec::new();
    for layer in 0..layers {
        let mut cur = Vec::new();
        for i in 0..width {
            let mut action = SimAction::compute_only(
                Dur::from_millis_f64(8.0 + ((seed >> (i % 8)) % 40) as f64),
                1 << 14,
            );
            let deps = if prev.is_empty() {
                action.io.push(IoCall::read(FileId(0), i as u64 * 8192, 8192));
                Vec::new()
            } else {
                vec![prev[i % prev.len()].clone()]
            };
            cur.push(b.add_sim(&format!("layer{layer}"), tok, i as u32, deps, action));
        }
        prev = cur;
    }
    let wf = SimWorkflow {
        name: format!("live-prop-{seed}"),
        graphs: vec![b.build(&HashSet::new()).expect("layered DAG is valid")],
        submit: SubmitPolicy::AllAtOnce,
        startup: Dur::from_secs_f64(0.5),
        inter_graph: Dur::ZERO,
        shutdown: Dur::ZERO,
        dataset: vec![("/props.dat".into(), 1 << 20, 1)],
    };
    SimCluster::new(SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() })
        .expect("cluster")
        .run(wf)
        .expect("run")
}

/// Drain `svc` exactly as the post-hoc analysis would (fresh group),
/// reusing the non-Mofka half of `orig`.
fn drain_again(svc: &dtf::mofka::MofkaService, orig: &RunData) -> RunData {
    RunData::drain_from_mofka(
        svc,
        RunId(7777),
        orig.workflow.clone(),
        orig.chart.clone(),
        orig.darshan.clone(),
        orig.wall_time,
        orig.start_order.clone(),
        orig.steals,
    )
    .expect("post-hoc drain")
}

/// The oracle: republish `data` into a fresh service, pump a live engine
/// through it in the given chunk pattern (subscribing mid-run), finalize,
/// and require value-identity with the post-hoc kernels over a drain of
/// the same service.
fn check_live_equivalence(data: &RunData, chunks: &[usize], bins: usize) {
    let svc = BedrockConfig::wms_default().bootstrap().expect("service");
    republish(data, &svc).expect("republish");
    let cfg = LiveConfig { group: "live-prop".into(), bins, threads_per_worker: 1 };
    let mut live = LiveViews::attach(&svc, cfg).expect("attach");
    let mut chunk_iter = chunks.iter().cycle();
    let mut mid_sub = None;
    loop {
        let chunk = (*chunk_iter.next().unwrap()).max(1);
        if live.pump(chunk).expect("pump") == 0 {
            break;
        }
        live.publish();
        // the first publish is where a dashboard would join mid-run
        if mid_sub.is_none() {
            let sub = live.subscribe();
            let seen = sub.latest().version;
            assert!(seen >= 1, "subscriber joined after a publish");
            mid_sub = Some((sub, seen));
        }
    }
    let snap = live
        .finalize(RunFinal { darshan: data.darshan.clone(), wall_time: data.wall_time })
        .expect("finalize");

    let oracle = drain_again(&svc, data);
    assert_eq!(snap.categories, per_category(&oracle), "categories value-identical");
    assert_eq!(snap.utilization, per_worker(&oracle, bins, 1), "utilization value-identical");
    assert_eq!(snap.phases, phase_sample(&oracle), "phases value-identical");
    assert_eq!(snap.progress.task_done, oracle.task_done.len() as u64);

    // hot/cold unification: the same queries answer identically from the
    // finalized live state and from the drained record
    for q in [
        ViewQuery::Categories,
        ViewQuery::Utilization { bins, threads_per_worker: 1 },
        ViewQuery::Phases,
    ] {
        assert_eq!(live.query(&q), query_rundata(&oracle, &q), "{q:?}");
    }

    // the mid-run subscriber converges to the finalized snapshot
    let (sub, seen) = mid_sub.expect("at least one batch was published");
    let last = sub.wait_newer(seen, Duration::from_secs(10));
    assert_eq!(last.version, snap.version, "subscriber saw the finalize publish");
    assert!(last.finalized);
    assert_eq!(last.categories, snap.categories);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary layered workflows, pumped in arbitrary chunkings: the
    /// finalized live views equal the post-hoc kernels bit for bit.
    #[test]
    fn live_views_match_post_hoc_for_arbitrary_interleavings(
        seed in 0u64..10_000,
        layers in 1usize..4,
        width in 1usize..5,
        chunks in proptest::collection::vec(1usize..257, 1..8),
        bins in 4usize..24,
    ) {
        let data = sim_run(seed, layers, width);
        check_live_equivalence(&data, &chunks, bins);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seeded chaos fault schedules: runs perturbed by worker deaths,
    /// fetch faults, Mofka stalls, and PFS bursts still replay through the
    /// live engine value-identical to the post-hoc kernels.
    #[test]
    fn live_views_match_post_hoc_under_chaos_schedules(
        campaign_seed in 0u64..1_000,
        index in 0u64..8,
        chunk in 1usize..129,
    ) {
        let data = run_schedule_data(campaign_seed, index, &ChaosConfig::default())
            .expect("chaos run completes");
        check_live_equivalence(&data, &[chunk], 16);
    }
}
