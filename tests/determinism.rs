//! Reproducibility of the framework itself: identical `(seed, run)` pairs
//! produce bit-identical characterization data; different runs vary.

use dtf::core::ids::RunId;
use dtf::core::rngx::RunRng;
use dtf::wms::sim::{SimCluster, SimConfig};
use dtf::wms::RunData;
use dtf::workflows::Workload;

fn run(workload: Workload, seed: u64, run: u32) -> RunData {
    let rr = RunRng::new(seed, RunId(run));
    let workflow = workload.generate(&rr);
    let mut cfg = SimConfig { campaign_seed: seed, run: RunId(run), ..Default::default() };
    workload.adjust(&mut cfg);
    SimCluster::new(cfg).unwrap().run(workflow).unwrap()
}

#[test]
fn identical_seed_and_run_reproduce_exactly() {
    let a = run(Workload::ImageProcessing, 13, 2);
    let b = run(Workload::ImageProcessing, 13, 2);
    assert_eq!(a.wall_time, b.wall_time);
    assert_eq!(a.task_done, b.task_done);
    assert_eq!(a.comms, b.comms);
    assert_eq!(a.warnings, b.warnings);
    assert_eq!(a.start_order, b.start_order);
    assert_eq!(a.io_ops(), b.io_ops());
    assert_eq!(a.steals, b.steals);
}

#[test]
fn different_runs_of_same_campaign_vary() {
    let a = run(Workload::ImageProcessing, 13, 0);
    let b = run(Workload::ImageProcessing, 13, 1);
    assert_ne!(a.wall_time, b.wall_time);
    // structural counts stay fixed; timings move
    assert_eq!(a.distinct_tasks(), b.distinct_tasks());
    assert_eq!(a.task_graphs(), b.task_graphs());
}

#[test]
fn different_campaign_seeds_vary() {
    let a = run(Workload::ImageProcessing, 1, 0);
    let b = run(Workload::ImageProcessing, 2, 0);
    assert_ne!(a.wall_time, b.wall_time);
}

#[test]
fn campaign_summaries_are_reproducible() {
    use dtf::workflows::Campaign;
    let mut c1 = Campaign::paper(Workload::ImageProcessing, 21);
    c1.runs = 2;
    let mut c2 = Campaign::paper(Workload::ImageProcessing, 21);
    c2.runs = 2;
    let r1 = c1.execute().unwrap();
    let r2 = c2.execute().unwrap();
    for (a, b) in r1.summaries.iter().zip(&r2.summaries) {
        assert_eq!(a.wall_s, b.wall_s);
        assert_eq!(a.io_ops, b.io_ops);
        assert_eq!(a.comms, b.comms);
        assert_eq!(a.warnings, b.warnings);
    }
}
