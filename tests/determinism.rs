//! Reproducibility of the framework itself: identical `(seed, run)` pairs
//! produce bit-identical characterization data; different runs vary.

use dtf::core::ids::RunId;
use dtf::core::rngx::RunRng;
use dtf::wms::sim::{SimCluster, SimConfig};
use dtf::wms::RunData;
use dtf::workflows::Workload;

fn run(workload: Workload, seed: u64, run: u32) -> RunData {
    let rr = RunRng::new(seed, RunId(run));
    let workflow = workload.generate(&rr);
    let mut cfg = SimConfig { campaign_seed: seed, run: RunId(run), ..Default::default() };
    workload.adjust(&mut cfg);
    SimCluster::new(cfg).unwrap().run(workflow).unwrap()
}

#[test]
fn identical_seed_and_run_reproduce_exactly() {
    let a = run(Workload::ImageProcessing, 13, 2);
    let b = run(Workload::ImageProcessing, 13, 2);
    assert_eq!(a.wall_time, b.wall_time);
    assert_eq!(a.task_done, b.task_done);
    assert_eq!(a.comms, b.comms);
    assert_eq!(a.warnings, b.warnings);
    assert_eq!(a.start_order, b.start_order);
    assert_eq!(a.io_ops(), b.io_ops());
    assert_eq!(a.steals, b.steals);
}

#[test]
fn different_runs_of_same_campaign_vary() {
    let a = run(Workload::ImageProcessing, 13, 0);
    let b = run(Workload::ImageProcessing, 13, 1);
    assert_ne!(a.wall_time, b.wall_time);
    // structural counts stay fixed; timings move
    assert_eq!(a.distinct_tasks(), b.distinct_tasks());
    assert_eq!(a.task_graphs(), b.task_graphs());
}

#[test]
fn different_campaign_seeds_vary() {
    let a = run(Workload::ImageProcessing, 1, 0);
    let b = run(Workload::ImageProcessing, 2, 0);
    assert_ne!(a.wall_time, b.wall_time);
}

/// The parallel-campaign determinism gate: a 3-run campaign must produce
/// byte-identical summaries and canonical transition logs whether the
/// worker pool has 1 thread or 4. (The pool size is pinned through
/// `Campaign::jobs` — the programmatic form of the `DTF_JOBS` variable,
/// which cannot be set per-test in a multithreaded test binary; the env
/// path itself is covered by `dtf_jobs_env_parsing` below and exercised
/// end-to-end by the CI perf smoke job.)
#[test]
fn parallel_campaign_output_is_byte_identical_to_sequential() {
    use dtf::chaos::transition_log;
    use dtf::workflows::Campaign;

    let sequential = Campaign::small(Workload::ImageProcessing, 3).with_jobs(1);
    let parallel = Campaign::small(Workload::ImageProcessing, 3).with_jobs(4);
    assert_eq!(sequential.resolved_jobs(), 1);
    assert_eq!(parallel.resolved_jobs(), 3, "pool never exceeds the run count");

    let a = sequential.execute().unwrap();
    let b = parallel.execute().unwrap();

    // summaries byte-identical, in run-index order
    let aj = serde_json::to_string(&a.summaries).unwrap();
    let bj = serde_json::to_string(&b.summaries).unwrap();
    assert_eq!(aj, bj, "summaries must not depend on the pool size");
    for (i, s) in a.summaries.iter().enumerate() {
        assert_eq!(s.run, dtf::core::ids::RunId(i as u32), "run-index order");
    }

    // the kept first run replays to the same canonical transition log
    // (the chaos harness's double-run determinism gate, reused)
    let first_a = a.first.expect("keep_first");
    let first_b = b.first.expect("keep_first");
    assert_eq!(
        transition_log(&first_a),
        transition_log(&first_b),
        "canonical transition logs must be byte-identical"
    );
}

#[test]
fn dtf_jobs_env_parsing() {
    use dtf::workflows::Campaign;
    // `jobs` pin beats the environment; bogus explicit values are rejected
    // at resolution (min 1, capped by run count)
    let c = Campaign::small(Workload::ImageProcessing, 8).with_jobs(2);
    assert_eq!(c.resolved_jobs(), 2);
    let c = Campaign::small(Workload::ImageProcessing, 2).with_jobs(64);
    assert_eq!(c.resolved_jobs(), 2);
    // without a pin, resolution falls back to DTF_JOBS / autodetection and
    // is always at least 1
    let c = Campaign::small(Workload::ImageProcessing, 4);
    assert!(c.resolved_jobs() >= 1);
}

#[test]
fn campaign_summaries_are_reproducible() {
    use dtf::workflows::Campaign;
    let mut c1 = Campaign::paper(Workload::ImageProcessing, 21);
    c1.runs = 2;
    let mut c2 = Campaign::paper(Workload::ImageProcessing, 21);
    c2.runs = 2;
    let r1 = c1.execute().unwrap();
    let r2 = c2.execute().unwrap();
    for (a, b) in r1.summaries.iter().zip(&r2.summaries) {
        assert_eq!(a.wall_s, b.wall_s);
        assert_eq!(a.io_ops, b.io_ops);
        assert_eq!(a.comms, b.comms);
        assert_eq!(a.warnings, b.warnings);
    }
}

/// Satellite gate for the concurrent data plane: with the sharded
/// real-time service compiled in — and actually *running*, busy on
/// worker threads in this very process — a simulated (virtual-time)
/// campaign still exports byte-for-byte what the golden fingerprint
/// pins. Virtual-time runs never touch the plane (`dtf_wms::sim` pins
/// `ServiceMode::VirtualTime`), so wall-clock nondeterminism cannot leak
/// into characterization data.
#[test]
fn virtual_time_export_is_byte_identical_with_concurrent_plane_running() {
    use dtf::mofka::{Event, MofkaService, ProducerConfig, TopicConfig};
    use dtf::perfrecup::export::export_run;

    fn fnv64(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    // a real-time service churning in the background for the whole test
    let noisy = MofkaService::real_time(2);
    noisy.create_topic("noise", TopicConfig { partitions: 2 }).unwrap();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let fingerprint = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut producer = noisy
                .producer("noise", ProducerConfig { batch_size: 32, ..Default::default() })
                .unwrap();
            let mut s = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                producer.push(Event::meta_only(serde_json::json!({ "s": s }))).unwrap();
                s += 1;
            }
            producer.sync().unwrap();
        });

        // the same fixed-seed virtual-time run `wire_format.rs` pins
        let workload = Workload::ImageProcessing;
        let mut cfg = SimConfig {
            campaign_seed: 13,
            run: RunId(0),
            online_darshan: true,
            ..Default::default()
        };
        workload.adjust(&mut cfg);
        let rr = RunRng::new(13, RunId(0));
        let data = SimCluster::new(cfg).unwrap().run(workload.generate(&rr)).unwrap();

        let dir =
            std::env::temp_dir().join(format!("dtf-determinism-concurrent-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        export_run(&data, &dir).unwrap();
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        let mut fingerprint = String::new();
        for name in &names {
            let bytes = std::fs::read(dir.join(name)).unwrap();
            fingerprint.push_str(&format!("{name} {:016x} {}\n", fnv64(&bytes), bytes.len()));
        }
        std::fs::remove_dir_all(&dir).unwrap();
        stop.store(true, std::sync::atomic::Ordering::Release);
        fingerprint
    });

    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/export_fnv64.txt");
    let expected = std::fs::read_to_string(&golden).unwrap();
    assert_eq!(
        fingerprint, expected,
        "virtual-time export drifted while the concurrent plane was running"
    );
}

/// The same event sequence lands identically whether it flows through
/// the synchronous virtual-time path or the sharded real-time plane:
/// per-partition logs hold the same events at the same offsets once the
/// plane is drained.
#[test]
fn virtual_and_real_time_services_store_identical_streams() {
    use dtf::mofka::{ConsumerConfig, Event, MofkaService, ProducerConfig, TopicConfig};

    fn run(svc: &MofkaService) -> Vec<(u32, u64, u64)> {
        svc.create_topic("t", TopicConfig { partitions: 3 }).unwrap();
        let mut producer =
            svc.producer("t", ProducerConfig { batch_size: 16, ..Default::default() }).unwrap();
        for s in 0..500u64 {
            producer.push(Event::meta_only(serde_json::json!({ "s": s }))).unwrap();
        }
        producer.sync().unwrap();
        let mut consumer =
            svc.consumer("t", ConsumerConfig { group: "g".into(), prefetch: 64 }).unwrap();
        let mut rows: Vec<(u32, u64, u64)> = consumer
            .drain_all()
            .unwrap()
            .iter()
            .map(|se| (se.id.partition, se.id.offset, se.event.metadata["s"].as_u64().unwrap()))
            .collect();
        rows.sort_unstable();
        rows
    }

    let virtual_rows = run(&MofkaService::new());
    let real_rows = run(&MofkaService::real_time(2));
    assert_eq!(virtual_rows, real_rows, "the two data planes stored different streams");
}
