//! Wire-format gates for the typed provenance pipeline.
//!
//! Provenance records flow typed from the WMS plugins through Mofka into
//! `RunData`; JSON is rendered only at the export/replay boundaries. These
//! tests pin those boundaries byte-for-byte against golden fingerprints
//! captured from the eager-JSON pipeline, so any refactor of the event
//! path that changes an exported artifact — or the replay behavior of an
//! archived chaos schedule — fails loudly.
//!
//! Regenerate the goldens (only when an output change is intended and
//! documented) with:
//!
//! ```text
//! DTF_UPDATE_GOLDEN=1 cargo test --release --test wire_format
//! ```

use std::path::{Path, PathBuf};

use dtf::chaos::runner::chaos_workflow;
use dtf::chaos::{schedule_seed, transition_log, ChaosConfig};
use dtf::core::fault::FaultSchedule;
use dtf::core::ids::RunId;
use dtf::core::rngx::RunRng;
use dtf::perfrecup::export::export_run;
use dtf::wms::sim::{SimCluster, SimConfig};
use dtf::wms::RunData;
use dtf::workflows::Workload;

/// FNV-1a 64-bit: a stable, dependency-free content fingerprint. This is
/// a change detector, not a cryptographic commitment.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn update_golden() -> bool {
    std::env::var_os("DTF_UPDATE_GOLDEN").is_some()
}

/// Compare `actual` against the golden file, or rewrite it in update mode.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if update_golden() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("updated golden {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden {} missing ({e}); see module docs", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from the golden fingerprint: an export/replay boundary \
         changed its bytes (regenerate deliberately with DTF_UPDATE_GOLDEN=1)"
    );
}

/// The fixed-seed run every export fingerprint derives from. Online
/// Darshan is enabled so the streamed io-records leg of the pipeline is
/// inside the gate too.
fn fixed_seed_run() -> RunData {
    let workload = Workload::ImageProcessing;
    let mut cfg =
        SimConfig { campaign_seed: 13, run: RunId(0), online_darshan: true, ..Default::default() };
    workload.adjust(&mut cfg);
    let rr = RunRng::new(13, RunId(0));
    SimCluster::new(cfg).unwrap().run(workload.generate(&rr)).unwrap()
}

/// Every file of a fixed-seed perfrecup export bundle — CSV views, the
/// provenance chart, the manifest, the binary Darshan logs — must be
/// byte-identical to the bundle the pre-typed (eager JSON) pipeline wrote.
#[test]
fn export_bundle_is_byte_identical_to_golden() {
    let data = fixed_seed_run();
    let dir = std::env::temp_dir().join(format!("dtf-wire-format-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = export_run(&data, &dir).unwrap();
    assert!(n >= 18, "export bundle unexpectedly small: {n} files");

    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    let mut fingerprint = String::new();
    for name in &names {
        let bytes = std::fs::read(dir.join(name)).unwrap();
        fingerprint.push_str(&format!("{name} {:016x} {}\n", fnv64(&bytes), bytes.len()));
    }
    std::fs::remove_dir_all(&dir).unwrap();
    check_golden("export_fnv64.txt", &fingerprint);
}

/// An archived (pre-change) chaos schedule must still parse and replay to
/// the same canonical transition log, deterministically.
#[test]
fn archived_chaos_schedule_replays_identically() {
    let schedule_path = golden_dir().join("chaos_schedule.json");
    let seed = schedule_seed(42, 7);
    if update_golden() {
        let faults = ChaosConfig::default().generate(seed);
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&schedule_path, faults.to_json()).unwrap();
        eprintln!("updated golden {}", schedule_path.display());
    }
    let archived = std::fs::read_to_string(&schedule_path)
        .unwrap_or_else(|e| panic!("golden {} missing ({e})", schedule_path.display()));
    let faults = FaultSchedule::from_json(&archived).expect("archived schedule parses");
    assert_eq!(faults.seed, seed, "archive carries its generating seed");

    let run_once = || {
        let cfg = SimConfig {
            campaign_seed: seed,
            run: RunId(7),
            faults: faults.clone(),
            invariant_checks: true,
            ..Default::default()
        };
        SimCluster::new(cfg).unwrap().run(chaos_workflow(seed)).unwrap()
    };
    let first = run_once();
    let second = run_once();
    let log = transition_log(&first);
    assert_eq!(log, transition_log(&second), "replay must be deterministic");
    let fingerprint = format!("{:016x} {}\n", fnv64(log.as_bytes()), log.len());
    check_golden("chaos_transition_fnv64.txt", &fingerprint);
}
