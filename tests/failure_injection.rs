//! Failure injection across the stack: worker death with recompute, PFS
//! interference, and DXT buffer exhaustion.

use std::collections::HashSet;

use dtf::core::ids::{GraphId, RunId, WorkerId};
use dtf::core::time::{Dur, Time};
use dtf::darshan::DxtConfig;
use dtf::wms::graph::{GraphBuilder, IoCall, SimAction};
use dtf::wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};

fn long_workflow(tasks: u32, task_secs: f64, with_io: bool) -> SimWorkflow {
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    let mut roots = Vec::new();
    for i in 0..tasks {
        let action = SimAction {
            compute: Dur::from_secs_f64(task_secs),
            io: if with_io {
                vec![IoCall::read(dtf::core::ids::FileId(0), (i as u64 % 16) * 4096, 4096)]
            } else {
                vec![]
            },
            output_nbytes: 1 << 16,
            stall_rate: 0.0,
        };
        roots.push(b.add_sim("work", tok, i, vec![], action));
    }
    // a reduction so lost outputs matter
    for (i, r) in roots.iter().enumerate() {
        b.add_sim(
            "consume",
            tok + 1,
            i as u32,
            vec![r.clone()],
            SimAction::compute_only(Dur::from_secs_f64(task_secs / 2.0), 128),
        );
    }
    SimWorkflow {
        name: "failure-test".into(),
        graphs: vec![b.build(&HashSet::new()).unwrap()],
        submit: SubmitPolicy::AllAtOnce,
        startup: Dur::from_secs_f64(1.0),
        inter_graph: Dur::ZERO,
        shutdown: Dur::ZERO,
        dataset: vec![("/data".into(), 1 << 20, 1)],
    }
}

#[test]
fn worker_death_recovers_and_completes() {
    let cfg = SimConfig {
        campaign_seed: 3,
        run: RunId(0),
        worker_death: Some((2, Time::from_secs_f64(3.0))),
        ..Default::default()
    };
    let data = SimCluster::new(cfg).unwrap().run(long_workflow(96, 3.0, false)).unwrap();
    assert_eq!(data.distinct_tasks(), 192, "all tasks eventually complete");
    // fault detection logged the loss
    assert!(data.logs.iter().any(|l| l.message.contains("lost")));
    // some tasks were re-run: total completions exceed distinct tasks OR
    // the run simply rescheduled in-flight ones; either way, the dead
    // worker has no completions after the death + detection window
    let dead_node = data.chart.job.allocated_nodes[1];
    let dead_worker = WorkerId::new(dead_node, 2);
    let detection_deadline = Time::from_secs_f64(3.0 + 4.0);
    assert!(
        data.task_done
            .iter()
            .filter(|d| d.worker == dead_worker)
            .all(|d| d.stop <= detection_deadline),
        "no completions on the dead worker after detection"
    );
}

#[test]
fn worker_death_transitions_carry_worker_lost_stimulus() {
    let cfg = SimConfig {
        campaign_seed: 4,
        run: RunId(0),
        worker_death: Some((0, Time::from_secs_f64(2.0))),
        ..Default::default()
    };
    let data = SimCluster::new(cfg).unwrap().run(long_workflow(96, 3.0, false)).unwrap();
    let lost = data
        .transitions
        .iter()
        .filter(|t| t.stimulus == dtf::core::events::Stimulus::WorkerLost)
        .count();
    assert!(lost > 0, "WorkerLost transitions recorded");
}

#[test]
fn interference_increases_io_time_variability() {
    // Seeded 8-run campaigns per arm: interference must raise not just the
    // mean I/O time but its run-to-run coefficient of variation — the
    // paper's variability signature — and every run of a pair must be
    // deterministic given (seed, run, arm).
    // The workload must give the interference model something to bite on:
    // 8 MiB reads are bandwidth-bound (the windowed load factor scales the
    // bandwidth term, not the fixed latency), and 320 two-second tasks
    // stretch each run across several 5 s interference windows so bursts
    // can land. Compute jitter is off so the quiet arm isolates the I/O
    // path's own run-to-run noise.
    let io_workflow = || {
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        for i in 0..320u32 {
            let action = SimAction {
                compute: Dur::from_secs_f64(2.0),
                io: vec![IoCall::read(
                    dtf::core::ids::FileId(0),
                    (i as u64 % 16) * (8 << 20),
                    8 << 20,
                )],
                output_nbytes: 1 << 16,
                stall_rate: 0.0,
            };
            b.add_sim("work", tok, i, vec![], action);
        }
        SimWorkflow {
            name: "interference-test".into(),
            graphs: vec![b.build(&HashSet::new()).unwrap()],
            submit: SubmitPolicy::AllAtOnce,
            startup: Dur::from_secs_f64(1.0),
            inter_graph: Dur::ZERO,
            shutdown: Dur::ZERO,
            dataset: vec![("/data".into(), 1 << 30, 4)],
        }
    };
    let io_times = |interference: bool| -> Vec<f64> {
        (0..12)
            .map(|run| {
                let cfg = SimConfig {
                    campaign_seed: 5,
                    run: RunId(run),
                    interference,
                    compute_jitter_sigma: 0.0,
                    ..Default::default()
                };
                let data = SimCluster::new(cfg).unwrap().run(io_workflow()).unwrap();
                data.io_time().as_secs_f64()
            })
            .collect()
    };
    let quiet = dtf::core::stats::Summary::of(&io_times(false));
    let noisy = dtf::core::stats::Summary::of(&io_times(true));
    assert!(
        noisy.mean > quiet.mean,
        "background interference should increase mean I/O time ({} vs {})",
        noisy.mean,
        quiet.mean
    );
    assert!(
        noisy.cv() > quiet.cv(),
        "background interference should increase run-to-run I/O variability \
         (CV {} vs {})",
        noisy.cv(),
        quiet.cv()
    );
    // the burst regime dominates the quiet arm's residual noise
    assert!(
        noisy.cv() > 1.5 * quiet.cv(),
        "interference CV should clearly dominate the quiet arm ({} vs {})",
        noisy.cv(),
        quiet.cv()
    );
}

#[test]
fn dxt_exhaustion_truncates_but_counters_stay_complete() {
    let cfg = SimConfig {
        campaign_seed: 6,
        run: RunId(0),
        dxt: DxtConfig::with_buffer(4),
        ..Default::default()
    };
    let data = SimCluster::new(cfg).unwrap().run(long_workflow(64, 0.05, true)).unwrap();
    assert!(data.darshan.any_truncated());
    assert!(data.io_ops() < data.io_ops_complete());
    assert_eq!(data.io_ops_complete(), 64, "counters module sees every read");
    // the truncation is flagged per process in the log header
    assert!(data.darshan.logs.iter().any(|l| l.header.dxt_dropped > 0));
}

#[test]
fn death_of_every_worker_but_one_still_completes() {
    // harsher scenario: kill 3 workers in sequence; the cluster keeps going
    let base = SimConfig { campaign_seed: 7, run: RunId(0), ..Default::default() };
    // note: SimConfig supports one injected death; chain by killing the
    // same ordinal repeatedly is not possible, so this test uses one death
    // with a single-node cluster of 4 workers to maximize impact
    let mut cfg = base;
    cfg.worker_nodes = 1;
    cfg.worker_death = Some((1, Time::from_secs_f64(2.0)));
    let data = SimCluster::new(cfg).unwrap().run(long_workflow(48, 2.0, false)).unwrap();
    assert_eq!(data.distinct_tasks(), 96);
}
