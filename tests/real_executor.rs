//! Integration tests of the real multi-threaded executor: genuine
//! closures, real data flow, instrumentation identical to the simulator's.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dtf::core::ids::{GraphId, TaskKey};
use dtf::wms::exec::{ExecConfig, LocalCluster};
use dtf::wms::graph::{GraphBuilder, Payload, TaskValue};
use dtf::wms::plugins::PluginSet;
use dtf::wms::scheduler::SchedulerConfig;
use dtf::wms::{CollectorPlugin, Delayed};

fn collector_cluster(workers: u32, threads: u32) -> (LocalCluster, CollectorPlugin) {
    let collector = CollectorPlugin::new();
    let mut plugins = PluginSet::new();
    plugins.register(Box::new(collector.clone()));
    let cluster = LocalCluster::start(
        ExecConfig { workers, threads_per_worker: threads, scheduler: SchedulerConfig::default() },
        plugins,
    );
    (cluster, collector)
}

#[test]
fn two_level_reduction_computes_correctly() {
    let (cluster, collector) = collector_cluster(3, 2);
    let mut client = Delayed::new(&cluster);
    // 60 leaves -> 6 partial sums -> 1 total
    let leaves: Vec<TaskKey> =
        (0..60i64).map(|i| client.delayed("leaf", vec![], move |_| TaskValue::new(i, 8))).collect();
    let partials: Vec<TaskKey> = leaves
        .chunks(10)
        .map(|chunk| {
            client.delayed("partial", chunk.to_vec(), |deps| {
                let s: i64 = deps.iter().map(|d| *d.downcast_ref::<i64>().unwrap()).sum();
                TaskValue::new(s, 8)
            })
        })
        .collect();
    let total = client.delayed("total", partials, |deps| {
        let s: i64 = deps.iter().map(|d| *d.downcast_ref::<i64>().unwrap()).sum();
        TaskValue::new(s, 8)
    });
    let v = client.gather(&total).unwrap();
    assert_eq!(*v.downcast_ref::<i64>().unwrap(), (0..60).sum::<i64>());
    cluster.wait_all();
    cluster.shutdown();

    let events = collector.take();
    assert_eq!(events.task_done.len(), 67);
    assert_eq!(events.meta.len(), 67);
    // dependencies recorded in metadata
    let total_meta = events.meta.iter().find(|m| m.key.prefix == "total").unwrap();
    assert_eq!(total_meta.deps.len(), 6);
    // real monotone timestamps
    for d in &events.task_done {
        assert!(d.stop >= d.start);
    }
}

#[test]
fn dependencies_execute_before_dependents() {
    let (cluster, collector) = collector_cluster(2, 2);
    let mut client = Delayed::new(&cluster);
    let order = Arc::new(AtomicUsize::new(0));
    let o1 = order.clone();
    let a = client.delayed("first", vec![], move |_| {
        let seq = o1.fetch_add(1, Ordering::SeqCst);
        TaskValue::new(seq, 8)
    });
    let o2 = order.clone();
    let b = client.delayed("second", vec![a], move |deps| {
        let first_seq = *deps[0].downcast_ref::<usize>().unwrap();
        let seq = o2.fetch_add(1, Ordering::SeqCst);
        assert!(seq > first_seq, "dependent ran before dependency");
        TaskValue::new(seq, 8)
    });
    client.gather(&b).unwrap();
    cluster.wait_all();
    cluster.shutdown();
    let events = collector.take();
    let first = events.task_done.iter().find(|d| d.key.prefix == "first").unwrap();
    let second = events.task_done.iter().find(|d| d.key.prefix == "second").unwrap();
    assert!(second.start >= first.stop);
}

#[test]
fn stealing_disabled_cluster_still_completes() {
    let collector = CollectorPlugin::new();
    let mut plugins = PluginSet::new();
    plugins.register(Box::new(collector.clone()));
    let cluster = LocalCluster::start(
        ExecConfig {
            workers: 2,
            threads_per_worker: 1,
            scheduler: SchedulerConfig { work_stealing: false, ..Default::default() },
        },
        plugins,
    );
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    for i in 0..30 {
        b.add(
            TaskKey::new("t", tok, i),
            vec![],
            Payload::Real(Arc::new(|_: &[Arc<TaskValue>]| TaskValue::new(1u8, 1))),
        );
    }
    cluster.submit(b.build(&Default::default()).unwrap()).unwrap();
    cluster.wait_all();
    cluster.shutdown();
    assert_eq!(collector.take().task_done.len(), 30);
}

#[test]
fn many_small_graphs_chain_like_xgboost() {
    let (cluster, collector) = collector_cluster(2, 2);
    let mut client = Delayed::new(&cluster);
    let mut prev: Option<TaskKey> = None;
    for step in 0..20u64 {
        let deps: Vec<TaskKey> = prev.iter().cloned().collect();
        let key = client.delayed("step", deps, move |inputs| {
            let base = inputs.first().map(|d| *d.downcast_ref::<u64>().unwrap()).unwrap_or(0);
            TaskValue::new(base + step, 8)
        });
        client.compute().unwrap(); // one graph per step, like xgboost's 74
        prev = Some(key);
    }
    let v = cluster.gather(prev.as_ref().unwrap()).unwrap();
    assert_eq!(*v.downcast_ref::<u64>().unwrap(), (0..20).sum::<u64>());
    cluster.wait_all();
    cluster.shutdown();
    let events = collector.take();
    let graphs: std::collections::HashSet<u32> =
        events.task_done.iter().map(|d| d.graph.0).collect();
    assert_eq!(graphs.len(), 20, "each compute() submitted its own graph");
}

#[test]
fn values_larger_than_threshold_still_pass_between_workers() {
    let (cluster, _collector) = collector_cluster(2, 1);
    let mut client = Delayed::new(&cluster);
    let big = client.delayed("big", vec![], |_| TaskValue::new(vec![7u8; 1 << 20], 1 << 20));
    let len = client.delayed("len", vec![big], |deps| {
        let v = deps[0].downcast_ref::<Vec<u8>>().unwrap();
        TaskValue::new(v.len() as u64, 8)
    });
    let v = client.gather(&len).unwrap();
    assert_eq!(*v.downcast_ref::<u64>().unwrap(), 1 << 20);
    cluster.shutdown();
}
