//! Property-based neutrality and lineage-pairing gates for the
//! out-of-band proxy plane.
//!
//! The plane is a pure accounting/provenance overlay over an unchanged
//! schedule, so for *any* layered workflow the analysis export bundle —
//! the same files `tests/golden/export_fnv64.txt` pins for the fixed-seed
//! run — must be byte-identical with the plane off and on. And the proxy
//! lifecycle stream the plane adds must be internally coherent: every
//! `Resolved` manifest was `Published` first, and every published manifest
//! names a task in the drained lineage.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use dtf::core::events::ProxyAction;
use dtf::core::ids::{GraphId, RunId, TaskKey};
use dtf::core::time::Dur;
use dtf::perfrecup::export::export_run;
use dtf::proxystore::ProxyConfig;
use dtf::wms::graph::{GraphBuilder, SimAction, TaskGraph};
use dtf::wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};
use dtf::wms::RunData;

/// Random layered DAG with mixed output sizes: roughly half the tasks
/// emit 4 MiB outputs (above the 256 KiB test threshold, so they publish)
/// and the rest emit 64 KiB (below it, so they stay in-band).
fn random_layered(layers: usize, width: usize, bytes: Vec<u8>) -> TaskGraph {
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    let mut prev: Vec<TaskKey> = Vec::new();
    let mut byte_iter = bytes.into_iter().cycle();
    for layer in 0..layers {
        let mut current = Vec::new();
        for i in 0..width {
            let deps: Vec<TaskKey> = prev
                .iter()
                .filter(|_| byte_iter.next().unwrap_or(0).is_multiple_of(3))
                .cloned()
                .collect();
            let ms = 40.0 + 4.0 * (byte_iter.next().unwrap_or(0) % 100) as f64;
            let nbytes =
                if byte_iter.next().unwrap_or(0).is_multiple_of(2) { 4 << 20 } else { 64 << 10 };
            current.push(b.add_sim(
                "node",
                tok,
                (layer * width + i) as u32,
                deps,
                SimAction::compute_only(Dur::from_millis_f64(ms), nbytes),
            ));
        }
        prev = current;
    }
    b.build(&HashSet::new()).expect("layered DAG is acyclic")
}

fn workflow_of(graph: TaskGraph) -> SimWorkflow {
    SimWorkflow {
        name: "prop".into(),
        graphs: vec![graph],
        submit: SubmitPolicy::AllAtOnce,
        startup: Dur::from_secs_f64(1.0),
        inter_graph: Dur::ZERO,
        shutdown: Dur::ZERO,
        dataset: vec![],
    }
}

fn proxy_on() -> ProxyConfig {
    ProxyConfig { enabled: true, threshold: 256 << 10, resolver_cache_bytes: 64 << 20 }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Export the run and fingerprint the bundle file-by-file — the same
/// `name hash len` lines the committed golden pins.
fn export_fingerprint(data: &RunData) -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dtf-proxy-props-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    export_run(data, &dir).expect("export");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("read export dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    let mut fingerprint = String::new();
    for name in &names {
        let bytes = std::fs::read(dir.join(name)).unwrap();
        fingerprint.push_str(&format!("{name} {:016x} {}\n", fnv64(&bytes), bytes.len()));
    }
    std::fs::remove_dir_all(&dir).unwrap();
    fingerprint
}

/// Lineage-pairing checks over the drained proxy stream.
fn assert_publish_resolve_pairing(data: &RunData) {
    let done: HashSet<&TaskKey> = data.task_done.iter().map(|d| &d.key).collect();
    for p in &data.proxies {
        assert!(
            done.contains(&p.key),
            "proxy event for {} names a task outside the drained lineage",
            p.key
        );
        if p.action == ProxyAction::Resolved {
            assert!(
                data.proxies.iter().any(|q| {
                    q.key == p.key && q.time <= p.time && q.action == ProxyAction::Published
                }),
                "resolve of {} has no earlier publish",
                p.key
            );
        }
    }
}

proptest! {
    // each case simulates twice and exports twice, so keep the count modest
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary layered workflows, proxy-on and proxy-off runs export
    /// byte-identical analysis bundles, and the plane-on lifecycle stream
    /// pairs every resolve with a publish inside the drained lineage.
    #[test]
    fn proxy_plane_never_perturbs_the_export_bundle(
        layers in 2usize..4,
        width in 2usize..6,
        bytes in proptest::collection::vec(any::<u8>(), 4..48),
        seed in 0u64..500,
    ) {
        let graph = random_layered(layers, width, bytes);
        let wf = workflow_of(graph);
        let off_cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
        let mut on_cfg = off_cfg.clone();
        on_cfg.proxy = proxy_on();
        let off = SimCluster::new(off_cfg).unwrap().run(wf.clone()).unwrap();
        let on = SimCluster::new(on_cfg).unwrap().run(wf).unwrap();

        prop_assert_eq!(
            export_fingerprint(&off),
            export_fingerprint(&on),
            "proxy plane must not move a byte of the analysis export"
        );
        prop_assert!(off.proxies.is_empty(), "disabled plane must stay silent");
        assert_publish_resolve_pairing(&on);
        let violations = dtf::chaos::check_run(&on);
        prop_assert!(violations.is_empty(), "oracle violations: {violations:?}");
    }
}

/// Companion keeping the property non-vacuous: a wide fan-in workflow with
/// every output above the threshold actually publishes and resolves.
#[test]
fn proxy_plane_engages_on_data_heavy_load() {
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    let roots: Vec<TaskKey> = (0..8)
        .map(|i| {
            b.add_sim(
                "load",
                tok,
                i,
                vec![],
                SimAction::compute_only(Dur::from_secs_f64(0.5), 8 << 20),
            )
        })
        .collect();
    for i in 0..8u32 {
        b.add_sim(
            "join",
            tok + 1,
            i,
            roots.clone(),
            SimAction::compute_only(Dur::from_secs_f64(0.5), 1 << 10),
        );
    }
    let graph = b.build(&HashSet::new()).unwrap();
    let mut cfg = SimConfig { campaign_seed: 3, run: RunId(0), ..Default::default() };
    cfg.proxy = proxy_on();
    let data = SimCluster::new(cfg).unwrap().run(workflow_of(graph)).unwrap();
    let published = data.proxies.iter().filter(|p| p.action == ProxyAction::Published).count();
    let resolved = data.proxies.iter().filter(|p| p.action == ProxyAction::Resolved).count();
    assert_eq!(published, 8, "every 8 MiB load output publishes");
    assert!(resolved > 0, "fan-in dependents must resolve across workers");
    assert!(dtf::chaos::check_proxy_plane(&data).is_empty());
}
