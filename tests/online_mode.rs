//! The paper's §VI future-work directions, implemented and verified:
//! fully-online Darshan→Mofka streaming and adaptive data capture.

use dtf::core::events::IoOp;
use dtf::core::ids::RunId;
use dtf::core::rngx::RunRng;
use dtf::darshan::dxt::OverflowPolicy;
use dtf::darshan::DxtConfig;
use dtf::wms::sim::{SimCluster, SimConfig};
use dtf::workflows::Workload;

fn resnet_run(dxt: DxtConfig, online: bool) -> dtf::wms::RunData {
    let seed = 17;
    let rr = RunRng::new(seed, RunId(0));
    let workflow = Workload::ResNet152.generate(&rr);
    let cfg = SimConfig {
        campaign_seed: seed,
        run: RunId(0),
        dxt,
        online_darshan: online,
        ..Default::default()
    };
    SimCluster::new(cfg).unwrap().run(workflow).unwrap()
}

#[test]
fn online_streaming_bypasses_dxt_truncation() {
    // the exact footnote-9 configuration, but with records also streamed
    // to Mofka at capture time
    let data = resnet_run(dtf::workflows::resnet::dxt_config(), true);
    assert!(data.darshan.any_truncated(), "DXT logs are still truncated");
    let online_data_ops =
        data.online_io.iter().filter(|r| matches!(r.op, IoOp::Read | IoOp::Write)).count() as u64;
    // the online stream saw *every* operation the counters saw
    assert_eq!(online_data_ops, data.io_ops_complete());
    assert!(online_data_ops > data.io_ops(), "more than the truncated trace");
    // and the records carry the join identifiers
    assert!(data.online_io.iter().all(|r| r.thread.0 != 0));
}

#[test]
fn online_mode_off_keeps_topic_empty() {
    let data = resnet_run(dtf::workflows::resnet::dxt_config(), false);
    assert!(data.online_io.is_empty());
}

#[test]
fn adaptive_capture_keeps_run_tail_under_pressure() {
    // same buffer budget, truncating vs adaptive overflow
    let budget = 630;
    let truncate = resnet_run(DxtConfig::with_buffer(budget), false);
    let adaptive = resnet_run(
        DxtConfig { max_records: budget, overflow: OverflowPolicy::Adaptive, ..Default::default() },
        false,
    );
    assert!(truncate.darshan.any_truncated());
    assert!(adaptive.darshan.any_truncated(), "drops still accounted");

    // truncation loses the tail of the run: the last traced operation is
    // far before the last actual one; adaptive sampling covers the tail
    let last = |d: &dtf::wms::RunData| {
        d.darshan.all_records().map(|r| r.stop).max().expect("records exist").as_secs_f64()
    };
    let complete_end = truncate.task_done.iter().map(|t| t.stop.as_secs_f64()).fold(0.0, f64::max);
    let t_last = last(&truncate);
    let a_last = last(&adaptive);
    assert!(a_last > t_last, "adaptive trace extends later ({a_last:.1} vs {t_last:.1})");
    assert!(
        a_last > 0.8 * complete_end.min(last(&adaptive) + 60.0),
        "adaptive trace reaches near the end of I/O activity"
    );

    // both respect the memory budget per process
    for log in &adaptive.darshan.logs {
        assert!(log.dxt.len() <= budget, "adaptive stays within budget");
    }
}
