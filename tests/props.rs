//! Property-based tests over the core invariants, driven by proptest.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use dtf::core::events::{Stimulus, TaskState};
use dtf::core::fault::{
    FaultSchedule, FetchFault, HeartbeatDrop, InterferenceBurst, MofkaStall, WorkerDeath,
};
use dtf::core::ids::{GraphId, RunId, TaskKey};
use dtf::core::stats::kendall_tau;
use dtf::core::time::{Dur, Time};
use dtf::mofka::bedrock::BedrockConfig;
use dtf::mofka::producer::{PartitionStrategy, ProducerConfig};
use dtf::mofka::{ConsumerConfig, Event, TopicConfig};
use dtf::perfrecup::frame::{Agg, DataFrame};
use dtf::wms::graph::{GraphBuilder, SimAction, TaskGraph};
use dtf::wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};

/// Build a random layered DAG: `layers` layers of up to `width` tasks,
/// each task depending on a random subset of the previous layer.
fn random_dag(layers: usize, width: usize, edges: Vec<u8>) -> TaskGraph {
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    let mut prev: Vec<TaskKey> = Vec::new();
    let mut edge_iter = edges.into_iter().cycle();
    for layer in 0..layers {
        let mut current = Vec::new();
        for i in 0..width {
            let deps: Vec<TaskKey> = prev
                .iter()
                .filter(|_| edge_iter.next().unwrap_or(0).is_multiple_of(3))
                .cloned()
                .collect();
            current.push(b.add_sim(
                "node",
                tok,
                (layer * width + i) as u32,
                deps,
                SimAction::compute_only(Dur::from_millis_f64(5.0), 1024),
            ));
        }
        prev = current;
    }
    b.build(&HashSet::new()).expect("layered DAG is acyclic")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any layered DAG executes to completion, never violating dependency
    /// order, with every task reaching Memory exactly once.
    #[test]
    fn random_dags_schedule_correctly(
        layers in 1usize..5,
        width in 1usize..10,
        edges in proptest::collection::vec(any::<u8>(), 1..64),
        seed in 0u64..1000,
    ) {
        let graph = random_dag(layers, width, edges);
        let n_tasks = graph.len();
        let deps: HashMap<TaskKey, Vec<TaskKey>> =
            graph.tasks.iter().map(|t| (t.key.clone(), t.deps.clone())).collect();
        let wf = SimWorkflow {
            name: "prop".into(),
            graphs: vec![graph],
            submit: SubmitPolicy::AllAtOnce,
            startup: Dur::from_secs_f64(0.5),
            inter_graph: Dur::ZERO,
            shutdown: Dur::ZERO,
            dataset: vec![],
        };
        let cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
        let data = SimCluster::new(cfg).unwrap().run(wf).unwrap();

        // every task completed exactly once
        prop_assert_eq!(data.task_done.len(), n_tasks);
        let mut finish = HashMap::new();
        for d in &data.task_done {
            prop_assert!(finish.insert(d.key.clone(), d.stop).is_none(), "double completion");
        }
        // dependencies finished before dependents started
        for d in &data.task_done {
            for dep in &deps[&d.key] {
                prop_assert!(finish[dep] <= d.start, "dependency violation");
            }
        }
        // every transition legal; every task ends in Memory
        for t in &data.transitions {
            prop_assert!(t.from.can_transition_to(t.to) || t.from == t.to);
        }
        for key in finish.keys() {
            let last = data.transitions.iter().rfind(|t| &t.key == key).unwrap();
            prop_assert_eq!(last.to, TaskState::Memory);
        }
    }

    /// Mofka delivers every produced event exactly once per consumer
    /// group, in per-partition order, for any batch size / partition count.
    #[test]
    fn mofka_exactly_once_any_configuration(
        partitions in 1u32..6,
        batch in 1usize..50,
        n_events in 1usize..300,
        prefetch in 1usize..64,
    ) {
        let svc = dtf::mofka::MofkaService::new();
        svc.create_topic("t", TopicConfig { partitions }).unwrap();
        let mut producer = svc
            .producer("t", ProducerConfig { batch_size: batch, strategy: PartitionStrategy::RoundRobin })
            .unwrap();
        for i in 0..n_events {
            producer.push(Event::meta_only(serde_json::json!({ "i": i }))).unwrap();
        }
        producer.flush().unwrap();
        let mut consumer = svc
            .consumer("t", ConsumerConfig { group: "g".into(), prefetch })
            .unwrap();
        let got = consumer.drain_all().unwrap();
        prop_assert_eq!(got.len(), n_events);
        let ids: HashSet<u64> =
            got.iter().map(|e| e.event.metadata["i"].as_u64().unwrap()).collect();
        prop_assert_eq!(ids.len(), n_events);
        // per-partition order preserved
        let mut last_offset: HashMap<u32, u64> = HashMap::new();
        for e in &got {
            if let Some(prev) = last_offset.insert(e.id.partition, e.id.offset) {
                prop_assert!(e.id.offset > prev);
            }
        }
    }

    /// DataFrame group-by sums match a naive computation, and joins never
    /// invent rows.
    #[test]
    fn dataframe_groupby_and_join_invariants(
        rows in proptest::collection::vec((0u8..5, -100i64..100), 0..60),
    ) {
        use dtf::core::table::Value;
        let mut df = DataFrame::new(vec!["k".into(), "v".into()]);
        let mut naive: HashMap<u8, (f64, usize)> = HashMap::new();
        for (k, v) in &rows {
            df.push_row(vec![Value::U64(*k as u64), Value::I64(*v)]).unwrap();
            let e = naive.entry(*k).or_insert((0.0, 0));
            e.0 += *v as f64;
            e.1 += 1;
        }
        let grouped = df.group_by("k", "v", Agg::Sum).unwrap();
        prop_assert_eq!(grouped.n_rows(), naive.len());
        let keys = grouped.col("k").unwrap().to_vec();
        let sums = grouped.col_f64("v_sum").unwrap();
        for (key, sum) in keys.iter().zip(sums) {
            let k: u8 = key.as_u64().unwrap() as u8;
            prop_assert!((naive[&k].0 - sum).abs() < 1e-9);
        }
        // self-join on key multiplies group sizes
        let joined = df.inner_join(&df, "k", "k").unwrap();
        let expect: usize = naive.values().map(|(_, n)| n * n).sum();
        prop_assert_eq!(joined.n_rows(), expect);
    }

    /// Kendall tau is symmetric, bounded, and 1 on identical sequences.
    #[test]
    fn kendall_tau_properties(xs in proptest::collection::vec(-1000f64..1000.0, 2..40)) {
        let ranks: Vec<f64> = (0..xs.len()).map(|i| i as f64).collect();
        let tau = kendall_tau(&ranks, &xs);
        let tau_rev = kendall_tau(&xs, &ranks);
        prop_assert!((-1.0..=1.0).contains(&tau));
        prop_assert!((tau - tau_rev).abs() < 1e-12, "symmetric");
        prop_assert!((kendall_tau(&xs, &xs) - 1.0).abs() < 1e-12 || xs.windows(2).all(|w| w[0] == w[1]));
    }

    /// The common tabular format: every event row matches its schema width
    /// for arbitrary simulated content.
    #[test]
    fn tabular_rows_always_match_schema(seed in 0u64..50) {
        let graph = random_dag(2, 4, vec![seed as u8, 1, 2]);
        let wf = SimWorkflow {
            name: "prop".into(),
            graphs: vec![graph],
            submit: SubmitPolicy::AllAtOnce,
            startup: Dur::from_secs_f64(0.2),
            inter_graph: Dur::ZERO,
            shutdown: Dur::ZERO,
            dataset: vec![],
        };
        let cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
        let data = SimCluster::new(cfg).unwrap().run(wf).unwrap();
        use dtf::core::table::Tabular;
        use dtf::core::events::{TaskDoneEvent, TransitionEvent};
        for d in &data.task_done {
            prop_assert_eq!(d.row().len(), TaskDoneEvent::schema().len());
        }
        for t in &data.transitions {
            prop_assert_eq!(t.row().len(), TransitionEvent::schema().len());
        }
    }
}

/// Like [`random_dag`], but with task durations (60–500 ms) and dependency
/// edges both drawn from the byte stream, and 1 MiB outputs so dependency
/// transfers actually cross workers. Faults land mid-run instead of after
/// the whole graph has drained.
fn random_dag_heavy(layers: usize, width: usize, bytes: Vec<u8>) -> TaskGraph {
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    let mut prev: Vec<TaskKey> = Vec::new();
    let mut byte_iter = bytes.into_iter().cycle();
    for layer in 0..layers {
        let mut current = Vec::new();
        for i in 0..width {
            let deps: Vec<TaskKey> = prev
                .iter()
                .filter(|_| byte_iter.next().unwrap_or(0).is_multiple_of(3))
                .cloned()
                .collect();
            let ms = 60.0 + 4.0 * (byte_iter.next().unwrap_or(0) % 110) as f64;
            current.push(b.add_sim(
                "node",
                tok,
                (layer * width + i) as u32,
                deps,
                SimAction::compute_only(Dur::from_millis_f64(ms), 1 << 20),
            ));
        }
        prev = current;
    }
    b.build(&HashSet::new()).expect("layered DAG is acyclic")
}

fn workflow_of(graph: TaskGraph) -> SimWorkflow {
    SimWorkflow {
        name: "prop".into(),
        graphs: vec![graph],
        submit: SubmitPolicy::AllAtOnce,
        startup: Dur::from_secs_f64(1.0),
        inter_graph: Dur::ZERO,
        shutdown: Dur::ZERO,
        dataset: vec![],
    }
}

/// Strategy over arbitrary [`FaultSchedule`] values for the default
/// 8-worker cluster: up to two deaths and heartbeat-suppression windows
/// (never ordinal 0 — someone must survive), up to six perturbed
/// transfers, plus Mofka partition stalls and forced PFS bursts. Fault
/// times are fractions of `horizon_s`, which should roughly match the
/// run length so the perturbations land mid-run.
fn fault_schedule_strategy(horizon_s: f64) -> impl Strategy<Value = FaultSchedule> {
    let deaths = proptest::collection::vec((1u32..8, 0.1f64..0.9), 0..3).prop_map(move |ds| {
        let mut out: Vec<WorkerDeath> = Vec::new();
        for (worker, frac) in ds {
            if out.iter().all(|d| d.worker != worker) {
                out.push(WorkerDeath { worker, time: Time::from_secs_f64(horizon_s * frac) });
            }
        }
        out
    });
    let fetches =
        proptest::collection::vec((0u64..48, 0.0f64..6.0, any::<bool>()), 0..7).prop_map(|fs| {
            let mut out: Vec<FetchFault> = Vec::new();
            for (index, delay, duplicate) in fs {
                if out.iter().all(|f| f.index != index) {
                    out.push(FetchFault {
                        index,
                        extra_delay: Dur::from_secs_f64(delay),
                        duplicate,
                    });
                }
            }
            out
        });
    let drops =
        proptest::collection::vec((1u32..8, 0.0f64..0.8, 0.5f64..6.0), 0..3).prop_map(move |ds| {
            ds.into_iter()
                .map(|(worker, frac, len)| HeartbeatDrop {
                    worker,
                    start: Time::from_secs_f64(horizon_s * frac),
                    stop: Time::from_secs_f64(horizon_s * frac + len),
                })
                .collect::<Vec<_>>()
        });
    let stalls = proptest::collection::vec((0usize..6, 0u32..4, 0.0f64..0.9, 1.0f64..15.0), 0..3)
        .prop_map(move |ss| {
            ss.into_iter()
                .map(|(topic, partition, frac, len)| MofkaStall {
                    topic: dtf::chaos::STALLABLE_TOPICS[topic].into(),
                    partition,
                    start: Time::from_secs_f64(horizon_s * frac),
                    stop: Time::from_secs_f64(horizon_s * frac + len),
                })
                .collect::<Vec<_>>()
        });
    let bursts = proptest::collection::vec((0.0f64..0.9, 1.0f64..5.0, 1.5f64..8.0), 0..3).prop_map(
        move |bs| {
            bs.into_iter()
                .map(|(frac, len, factor)| InterferenceBurst {
                    start: Time::from_secs_f64(horizon_s * frac),
                    stop: Time::from_secs_f64(horizon_s * frac + len),
                    factor,
                })
                .collect::<Vec<_>>()
        },
    );
    (deaths, fetches, drops, stalls, bursts).prop_map(
        |(deaths, fetch_faults, heartbeat_drops, mofka_stalls, pfs_bursts)| FaultSchedule {
            seed: 0,
            deaths,
            fetch_faults,
            heartbeat_drops,
            mofka_stalls,
            pfs_bursts,
            ..Default::default()
        },
    )
}

proptest! {
    // the chaos cases run each schedule twice (replay gate), so keep the
    // case count modest
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Chaos soundness: any fault schedule over any layered DAG completes
    /// every task, passes the live scheduler invariants and every post-run
    /// oracle, and replays byte-identically.
    #[test]
    fn arbitrary_fault_schedules_uphold_all_oracles(
        layers in 2usize..4,
        width in 2usize..6,
        bytes in proptest::collection::vec(any::<u8>(), 4..48),
        faults in fault_schedule_strategy(4.0),
        seed in 0u64..500,
    ) {
        let graph = random_dag_heavy(layers, width, bytes);
        let n_tasks = graph.len();
        let wf = workflow_of(graph);
        let cfg = SimConfig {
            campaign_seed: seed,
            run: RunId(0),
            faults,
            invariant_checks: true,
            compute_jitter_sigma: 0.0,
            ..Default::default()
        };
        // invariant_checks makes the run itself fail on the first live
        // structural violation, so the unwrap is part of the property
        let data = SimCluster::new(cfg.clone()).unwrap().run(wf.clone()).unwrap();
        prop_assert_eq!(data.distinct_tasks(), n_tasks, "every task completes");
        let violations = dtf::chaos::check_run(&data);
        prop_assert!(violations.is_empty(), "oracle violations: {violations:?}");
        // replay gate: the same seed + schedule is byte-identical
        let again = SimCluster::new(cfg).unwrap().run(wf).unwrap();
        prop_assert_eq!(
            dtf::chaos::transition_log(&data),
            dtf::chaos::transition_log(&again),
            "fault schedule must replay deterministically"
        );
    }

    /// Work stealing never violates dependency order, and the accounting
    /// agrees everywhere: `RunData::steals` equals the number of
    /// WorkStolen transitions, and is zero when stealing is disabled.
    #[test]
    fn work_stealing_safe_and_accounted(
        layers in 1usize..4,
        width in 2usize..10,
        bytes in proptest::collection::vec(any::<u8>(), 4..48),
        seed in 0u64..500,
        stealing in any::<bool>(),
    ) {
        let graph = random_dag_heavy(layers, width, bytes);
        let n_tasks = graph.len();
        let deps: HashMap<TaskKey, Vec<TaskKey>> =
            graph.tasks.iter().map(|t| (t.key.clone(), t.deps.clone())).collect();
        let mut cfg = SimConfig {
            campaign_seed: seed,
            run: RunId(0),
            invariant_checks: true,
            ..Default::default()
        };
        cfg.scheduler.work_stealing = stealing;
        let data = SimCluster::new(cfg).unwrap().run(workflow_of(graph)).unwrap();
        prop_assert_eq!(data.task_done.len(), n_tasks);
        let finish: HashMap<TaskKey, Time> =
            data.task_done.iter().map(|d| (d.key.clone(), d.stop)).collect();
        for d in &data.task_done {
            for dep in &deps[&d.key] {
                prop_assert!(
                    finish[dep] <= d.start,
                    "stolen or not, a task never starts before its deps are in memory"
                );
            }
        }
        let stolen =
            data.transitions.iter().filter(|t| t.stimulus == Stimulus::WorkStolen).count() as u64;
        prop_assert_eq!(data.steals, stolen, "steal counter matches WorkStolen transitions");
        if !stealing {
            prop_assert_eq!(data.steals, 0, "stealing off means no steals");
        }
    }
}

/// Companion to [`work_stealing_safe_and_accounted`]: on a deliberately
/// skewed workload stealing actually engages, so the property above is not
/// vacuously true.
#[test]
fn stealing_engages_on_skewed_load() {
    use dtf::wms::sim::SimCluster;
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    for root_idx in 0..4u32 {
        let root = b.add_sim(
            "shard",
            tok,
            root_idx,
            vec![],
            SimAction::compute_only(Dur::from_secs_f64(1.0), 8 << 30),
        );
        // skewed fan-out: shard k has 10k children, pinned by an 8 GB dep
        for c in 0..(10 * root_idx) {
            b.add_sim(
                "analyze",
                tok + 1 + root_idx,
                c,
                vec![root.clone()],
                SimAction::compute_only(Dur::from_secs_f64(2.0), 1 << 20),
            );
        }
    }
    let graph = b.build(&HashSet::new()).unwrap();
    let run = |stealing: bool| {
        let mut cfg = SimConfig { campaign_seed: 7, run: RunId(0), ..Default::default() };
        cfg.scheduler.work_stealing = stealing;
        SimCluster::new(cfg).unwrap().run(workflow_of(graph.clone())).unwrap()
    };
    let on = run(true);
    let off = run(false);
    assert!(on.steals > 0, "skewed load must trigger stealing");
    assert_eq!(
        on.steals,
        on.transitions.iter().filter(|t| t.stimulus == Stimulus::WorkStolen).count() as u64
    );
    assert_eq!(off.steals, 0);
    assert_eq!(on.distinct_tasks(), off.distinct_tasks());
}

#[test]
fn bedrock_default_supports_every_plugin_topic() {
    // not property-based but belongs with the invariants: the default
    // deployment must cover every topic the plugin writes
    let svc = BedrockConfig::wms_default().bootstrap().unwrap();
    for topic in dtf::wms::MofkaPlugin::TOPICS {
        assert!(svc.topic(topic).is_ok(), "missing topic {topic}");
    }
}
