//! Property-based tests over the core invariants, driven by proptest.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use dtf::core::events::TaskState;
use dtf::core::ids::{GraphId, RunId, TaskKey};
use dtf::core::stats::kendall_tau;
use dtf::core::time::Dur;
use dtf::mofka::bedrock::BedrockConfig;
use dtf::mofka::producer::{PartitionStrategy, ProducerConfig};
use dtf::mofka::{ConsumerConfig, Event, TopicConfig};
use dtf::perfrecup::frame::{Agg, DataFrame};
use dtf::wms::graph::{GraphBuilder, SimAction, TaskGraph};
use dtf::wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};

/// Build a random layered DAG: `layers` layers of up to `width` tasks,
/// each task depending on a random subset of the previous layer.
fn random_dag(layers: usize, width: usize, edges: Vec<u8>) -> TaskGraph {
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    let mut prev: Vec<TaskKey> = Vec::new();
    let mut edge_iter = edges.into_iter().cycle();
    for layer in 0..layers {
        let mut current = Vec::new();
        for i in 0..width {
            let deps: Vec<TaskKey> = prev
                .iter()
                .filter(|_| edge_iter.next().unwrap_or(0).is_multiple_of(3))
                .cloned()
                .collect();
            current.push(b.add_sim(
                "node",
                tok,
                (layer * width + i) as u32,
                deps,
                SimAction::compute_only(Dur::from_millis_f64(5.0), 1024),
            ));
        }
        prev = current;
    }
    b.build(&HashSet::new()).expect("layered DAG is acyclic")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any layered DAG executes to completion, never violating dependency
    /// order, with every task reaching Memory exactly once.
    #[test]
    fn random_dags_schedule_correctly(
        layers in 1usize..5,
        width in 1usize..10,
        edges in proptest::collection::vec(any::<u8>(), 1..64),
        seed in 0u64..1000,
    ) {
        let graph = random_dag(layers, width, edges);
        let n_tasks = graph.len();
        let deps: HashMap<TaskKey, Vec<TaskKey>> =
            graph.tasks.iter().map(|t| (t.key.clone(), t.deps.clone())).collect();
        let wf = SimWorkflow {
            name: "prop".into(),
            graphs: vec![graph],
            submit: SubmitPolicy::AllAtOnce,
            startup: Dur::from_secs_f64(0.5),
            inter_graph: Dur::ZERO,
            shutdown: Dur::ZERO,
            dataset: vec![],
        };
        let cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
        let data = SimCluster::new(cfg).unwrap().run(wf).unwrap();

        // every task completed exactly once
        prop_assert_eq!(data.task_done.len(), n_tasks);
        let mut finish = HashMap::new();
        for d in &data.task_done {
            prop_assert!(finish.insert(d.key.clone(), d.stop).is_none(), "double completion");
        }
        // dependencies finished before dependents started
        for d in &data.task_done {
            for dep in &deps[&d.key] {
                prop_assert!(finish[dep] <= d.start, "dependency violation");
            }
        }
        // every transition legal; every task ends in Memory
        for t in &data.transitions {
            prop_assert!(t.from.can_transition_to(t.to) || t.from == t.to);
        }
        for key in finish.keys() {
            let last = data.transitions.iter().rfind(|t| &t.key == key).unwrap();
            prop_assert_eq!(last.to, TaskState::Memory);
        }
    }

    /// Mofka delivers every produced event exactly once per consumer
    /// group, in per-partition order, for any batch size / partition count.
    #[test]
    fn mofka_exactly_once_any_configuration(
        partitions in 1u32..6,
        batch in 1usize..50,
        n_events in 1usize..300,
        prefetch in 1usize..64,
    ) {
        let svc = dtf::mofka::MofkaService::new();
        svc.create_topic("t", TopicConfig { partitions }).unwrap();
        let mut producer = svc
            .producer("t", ProducerConfig { batch_size: batch, strategy: PartitionStrategy::RoundRobin })
            .unwrap();
        for i in 0..n_events {
            producer.push(Event::meta_only(serde_json::json!({ "i": i }))).unwrap();
        }
        producer.flush().unwrap();
        let mut consumer = svc
            .consumer("t", ConsumerConfig { group: "g".into(), prefetch })
            .unwrap();
        let got = consumer.drain_all().unwrap();
        prop_assert_eq!(got.len(), n_events);
        let ids: HashSet<u64> =
            got.iter().map(|e| e.event.metadata["i"].as_u64().unwrap()).collect();
        prop_assert_eq!(ids.len(), n_events);
        // per-partition order preserved
        let mut last_offset: HashMap<u32, u64> = HashMap::new();
        for e in &got {
            if let Some(prev) = last_offset.insert(e.id.partition, e.id.offset) {
                prop_assert!(e.id.offset > prev);
            }
        }
    }

    /// DataFrame group-by sums match a naive computation, and joins never
    /// invent rows.
    #[test]
    fn dataframe_groupby_and_join_invariants(
        rows in proptest::collection::vec((0u8..5, -100i64..100), 0..60),
    ) {
        use dtf::core::table::Value;
        let mut df = DataFrame::new(vec!["k".into(), "v".into()]);
        let mut naive: HashMap<u8, (f64, usize)> = HashMap::new();
        for (k, v) in &rows {
            df.push_row(vec![Value::U64(*k as u64), Value::I64(*v)]).unwrap();
            let e = naive.entry(*k).or_insert((0.0, 0));
            e.0 += *v as f64;
            e.1 += 1;
        }
        let grouped = df.group_by("k", "v", Agg::Sum).unwrap();
        prop_assert_eq!(grouped.n_rows(), naive.len());
        let keys = grouped.col("k").unwrap().to_vec();
        let sums = grouped.col_f64("v_sum").unwrap();
        for (key, sum) in keys.iter().zip(sums) {
            let k: u8 = key.as_u64().unwrap() as u8;
            prop_assert!((naive[&k].0 - sum).abs() < 1e-9);
        }
        // self-join on key multiplies group sizes
        let joined = df.inner_join(&df, "k", "k").unwrap();
        let expect: usize = naive.values().map(|(_, n)| n * n).sum();
        prop_assert_eq!(joined.n_rows(), expect);
    }

    /// Kendall tau is symmetric, bounded, and 1 on identical sequences.
    #[test]
    fn kendall_tau_properties(xs in proptest::collection::vec(-1000f64..1000.0, 2..40)) {
        let ranks: Vec<f64> = (0..xs.len()).map(|i| i as f64).collect();
        let tau = kendall_tau(&ranks, &xs);
        let tau_rev = kendall_tau(&xs, &ranks);
        prop_assert!((-1.0..=1.0).contains(&tau));
        prop_assert!((tau - tau_rev).abs() < 1e-12, "symmetric");
        prop_assert!((kendall_tau(&xs, &xs) - 1.0).abs() < 1e-12 || xs.windows(2).all(|w| w[0] == w[1]));
    }

    /// The common tabular format: every event row matches its schema width
    /// for arbitrary simulated content.
    #[test]
    fn tabular_rows_always_match_schema(seed in 0u64..50) {
        let graph = random_dag(2, 4, vec![seed as u8, 1, 2]);
        let wf = SimWorkflow {
            name: "prop".into(),
            graphs: vec![graph],
            submit: SubmitPolicy::AllAtOnce,
            startup: Dur::from_secs_f64(0.2),
            inter_graph: Dur::ZERO,
            shutdown: Dur::ZERO,
            dataset: vec![],
        };
        let cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
        let data = SimCluster::new(cfg).unwrap().run(wf).unwrap();
        use dtf::core::table::Tabular;
        use dtf::core::events::{TaskDoneEvent, TransitionEvent};
        for d in &data.task_done {
            prop_assert_eq!(d.row().len(), TaskDoneEvent::schema().len());
        }
        for t in &data.transitions {
            prop_assert_eq!(t.row().len(), TransitionEvent::schema().len());
        }
    }
}

#[test]
fn bedrock_default_supports_every_plugin_topic() {
    // not property-based but belongs with the invariants: the default
    // deployment must cover every topic the plugin writes
    let svc = BedrockConfig::wms_default().bootstrap().unwrap();
    for topic in dtf::wms::MofkaPlugin::TOPICS {
        assert!(svc.topic(topic).is_ok(), "missing topic {topic}");
    }
}
