//! End-to-end integration: each paper workload simulated once, with the
//! full data path (plugins -> Mofka -> drain; instrumented I/O -> Darshan
//! logs; platform -> provenance chart) and the analysis layer on top.

use dtf::core::ids::RunId;
use dtf::core::rngx::RunRng;
use dtf::perfrecup::{io_timeline, lineage, parallel_coords, warnings_dist, RunViews};
use dtf::wms::sim::{SimCluster, SimConfig};
use dtf::wms::RunData;
use dtf::workflows::Workload;

fn run_once(workload: Workload, seed: u64) -> RunData {
    let rr = RunRng::new(seed, RunId(0));
    let workflow = workload.generate(&rr);
    let mut cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
    workload.adjust(&mut cfg);
    SimCluster::new(cfg).expect("cluster").run(workflow).expect("run completes")
}

#[test]
fn imageprocessing_full_pipeline() {
    let data = run_once(Workload::ImageProcessing, 5);
    // Table I structure
    assert_eq!(data.task_graphs(), 3);
    assert_eq!(data.distinct_tasks(), 5440);
    assert_eq!(data.distinct_files(), 154); // 151 images + 3 stores
    assert!((5283..=5310).contains(&data.io_ops()), "io ops {}", data.io_ops());
    assert!(!data.darshan.any_truncated());

    // every event source populated
    assert_eq!(data.meta.len(), 5440);
    assert_eq!(data.task_done.len(), 5440);
    assert!(data.transitions.len() >= 3 * 5440);
    assert!(!data.comms.is_empty());
    assert!(!data.logs.is_empty());

    // Fig. 4 signature: three read phases, each with a write burst
    let sig = io_timeline::signature(&data, 2.0);
    assert_eq!(sig.phases.len(), 3);
    assert_eq!(sig.read_phases, 3);
    assert_eq!(sig.phases_with_writes, 3);

    // full I/O attribution through the pthread-id join
    let views = RunViews::new(&data);
    assert!((views.io_attribution_rate() - 1.0).abs() < 1e-9);
}

#[test]
fn resnet_full_pipeline_with_truncation() {
    let data = run_once(Workload::ResNet152, 5);
    assert_eq!(data.task_graphs(), 1);
    assert_eq!(data.distinct_tasks(), 8645);
    assert_eq!(data.distinct_files(), 3929);

    // footnote 9: DXT truncated, counters complete
    assert!(data.darshan.any_truncated());
    assert!(data.io_ops() < data.io_ops_complete());
    assert!(
        (1900..=2600).contains(&data.io_ops()),
        "traced ops {} outside expected truncation window",
        data.io_ops()
    );

    // a predict task's lineage has its 4-5 transform dependencies
    let key = data
        .meta
        .iter()
        .find(|m| m.key.prefix == "predict")
        .map(|m| m.key.clone())
        .expect("predicts exist");
    let l = lineage::build(&data, &key).unwrap();
    assert!(l.dependencies.len() >= 4);
    assert!(l.is_consistent());
}

#[test]
fn xgboost_full_pipeline() {
    let data = run_once(Workload::Xgboost, 5);
    assert_eq!(data.task_graphs(), 74);
    assert_eq!(data.distinct_tasks(), 10348);
    assert_eq!(data.distinct_files(), 61);
    assert!((854..=1700).contains(&data.io_ops()), "io ops {}", data.io_ops());

    // Fig. 6: the longest category is the fused read; outputs exceed 128MB
    let s = parallel_coords::summary(&data);
    assert_eq!(s.longest_category, "read_parquet-fused-assign");
    assert!(s.oversized_tasks >= 61);
    assert_eq!(s.oversized_categories[0].0, "repartition");

    // Fig. 7: warnings exist, concentrated early, and overlap long tasks
    let rep = warnings_dist::report(&data, 12, 500.0, 60.0);
    assert!(rep.unresponsive > 100, "unresponsive warnings {}", rep.unresponsive);
    assert!(
        rep.unresponsive_early as f64 >= 0.7 * rep.unresponsive as f64,
        "warnings should concentrate in the first 500s"
    );
    assert!(rep.long_task_overlap > 0.9);
    assert_eq!(rep.dominant_category.as_deref(), Some("read_parquet-fused-assign"));

    // Fig. 8: the paper's example key class exists and builds a lineage
    let key = data
        .meta
        .iter()
        .find(|m| m.key.prefix == "getitem__get_categories" && m.key.index == 63)
        .map(|m| m.key.clone())
        .expect("getitem__get_categories tasks exist");
    let l = lineage::build(&data, &key).unwrap();
    assert!(l.is_consistent());
    assert!(!l.dependencies.is_empty());
    assert!(!l.dependents.is_empty());
    assert!(l.output_nbytes.unwrap() > 0);
}

#[test]
fn transitions_are_legal_and_time_ordered_for_all_workloads() {
    for workload in [Workload::ImageProcessing, Workload::ResNet152] {
        let data = run_once(workload, 9);
        for w in data.transitions.windows(2) {
            assert!(w[0].time <= w[1].time, "transition stream must be time-sorted");
        }
        for t in &data.transitions {
            assert!(
                t.from.can_transition_to(t.to) || t.from == t.to,
                "illegal transition {} -> {} in {}",
                t.from.as_str(),
                t.to.as_str(),
                workload.name()
            );
        }
        // every completed task's final state is memory
        for d in &data.task_done {
            let last = data
                .transitions
                .iter()
                .rfind(|t| t.key == d.key)
                .expect("completed task has transitions");
            assert_eq!(last.to, dtf::core::events::TaskState::Memory);
        }
    }
}
