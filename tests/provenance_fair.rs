//! FAIR-interoperability integration tests (paper §V): every pair of data
//! sources shares at least one identifier, and the cross-source joins that
//! depend on those identifiers actually work — or demonstrably break when
//! the identifier is removed (vanilla DXT).

use std::collections::HashSet;

use dtf::core::ids::{GraphId, RunId};
use dtf::core::time::Dur;
use dtf::darshan::log::DarshanLog;
use dtf::darshan::DxtConfig;
use dtf::perfrecup::RunViews;
use dtf::wms::graph::{GraphBuilder, IoCall, SimAction};
use dtf::wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};
use dtf::wms::RunData;

fn io_workflow() -> SimWorkflow {
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    for i in 0..24u32 {
        b.add_sim(
            "load",
            tok,
            i,
            vec![],
            SimAction {
                compute: Dur::from_millis_f64(25.0),
                io: vec![IoCall::read(dtf::core::ids::FileId((i % 3) as u64), 0, 64 * 1024)],
                output_nbytes: 4096,
                stall_rate: 0.0,
            },
        );
    }
    SimWorkflow {
        name: "fair-test".into(),
        graphs: vec![b.build(&HashSet::new()).unwrap()],
        submit: SubmitPolicy::AllAtOnce,
        startup: Dur::from_secs_f64(1.0),
        inter_graph: Dur::ZERO,
        shutdown: Dur::ZERO,
        dataset: vec![
            ("/a".into(), 1 << 20, 1),
            ("/b".into(), 1 << 20, 1),
            ("/c".into(), 1 << 20, 1),
        ],
    }
}

fn run(dxt: DxtConfig) -> RunData {
    let cfg = SimConfig { campaign_seed: 2, run: RunId(0), dxt, ..Default::default() };
    SimCluster::new(cfg).unwrap().run(io_workflow()).unwrap()
}

#[test]
fn shared_identifiers_exist_between_every_source_pair() {
    let data = run(DxtConfig::default());

    // tasks <-> transitions: task key
    let done_keys: HashSet<_> = data.task_done.iter().map(|d| d.key.clone()).collect();
    let transition_keys: HashSet<_> = data.transitions.iter().map(|t| t.key.clone()).collect();
    assert!(done_keys.is_subset(&transition_keys));

    // tasks <-> meta: task key
    let meta_keys: HashSet<_> = data.meta.iter().map(|m| m.key.clone()).collect();
    assert_eq!(done_keys, meta_keys);

    // tasks <-> I/O: pthread id and host
    let task_threads: HashSet<_> = data.task_done.iter().map(|d| d.thread).collect();
    for rec in data.darshan.all_records() {
        assert!(task_threads.contains(&rec.thread), "I/O thread unknown to task records");
    }
    let task_hosts: HashSet<_> = data.task_done.iter().map(|d| d.worker.node).collect();
    for rec in data.darshan.all_records() {
        assert!(task_hosts.contains(&rec.host));
    }

    // comms <-> workers: worker addresses
    let worker_set: HashSet<_> = data.task_done.iter().map(|d| d.worker).collect();
    for c in &data.comms {
        assert!(worker_set.contains(&c.from) || worker_set.contains(&c.to));
    }

    // job <-> everything: allocated nodes cover every observed host
    let allocated: HashSet<_> = data.chart.job.allocated_nodes.iter().copied().collect();
    for d in &data.task_done {
        assert!(allocated.contains(&d.worker.node));
    }
}

#[test]
fn io_joins_work_with_extension_and_break_without() {
    let with = run(DxtConfig::default());
    let without = run(DxtConfig::vanilla());
    assert!((RunViews::new(&with).io_attribution_rate() - 1.0).abs() < 1e-9);
    assert_eq!(RunViews::new(&without).io_attribution_rate(), 0.0);
}

#[test]
fn darshan_logs_roundtrip_through_binary_format() {
    let data = run(DxtConfig::default());
    for log in &data.darshan.logs {
        let bytes = log.to_bytes();
        let back = DarshanLog::from_bytes(&bytes).unwrap();
        assert_eq!(*log, back);
    }
}

#[test]
fn rundata_serializes_for_archival() {
    // the "common tabular format" must be storable: the whole run record
    // serializes to JSON and back
    let data = run(DxtConfig::default());
    let json = serde_json::to_string(&data).unwrap();
    let back: RunData = serde_json::from_str(&json).unwrap();
    assert_eq!(back.task_done.len(), data.task_done.len());
    assert_eq!(back.chart, data.chart);
    assert_eq!(back.wall_time, data.wall_time);
}

#[test]
fn provenance_chart_captures_all_layers() {
    let data = run(DxtConfig::default());
    let chart = &data.chart;
    // hardware layer
    assert!(chart.hardware.node_count > 0);
    assert!(!chart.hardware.pfs.is_empty());
    // system software layer
    assert!(!chart.system.packages.is_empty());
    // job configuration layer
    assert!(!chart.job.script.is_empty());
    assert_eq!(chart.job.allocated_nodes.len(), chart.job.nodes_requested as usize);
    // WMS configuration (the distributed.yaml analog)
    assert_eq!(chart.wms_config.workers_per_node, 4);
    assert_eq!(chart.wms_config.threads_per_worker, 8);
    assert_eq!(chart.workflow_name, "fair-test");
}
