//! Explicit fault schedules pinning the fetch-lifecycle fixes (PR 1) and
//! the Mofka stall semantics under the chaos harness.
//!
//! Each test runs a fixed-seed schedule under virtual time with the
//! scheduler's live invariant checks enabled, judges the run with every
//! post-run oracle, and (where the scenario is about replay) runs the
//! schedule twice and diffs the canonical transition logs byte-for-byte.
//! Where a scenario needs to kill "the worker that ran task X", an
//! unfaulted probe run with the same seed discovers the placement first —
//! placement is a pure function of the seed, so the probe is exact.

use std::collections::{HashMap, HashSet};

use dtf::chaos::{check_run, transition_log};
use dtf::core::fault::{FaultSchedule, FetchFault, MofkaStall, WorkerDeath};
use dtf::core::ids::{GraphId, RunId, TaskKey, WorkerId};
use dtf::core::time::{Dur, Time};
use dtf::wms::graph::{GraphBuilder, SimAction};
use dtf::wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};
use dtf::wms::RunData;

/// `n_prod` one-second producers feeding `n_cons` consumers that each
/// depend on every producer — every consumer placed off a producer's
/// worker must fetch, so the run exercises the full fetch lifecycle.
fn fan_workflow(n_prod: u32, n_cons: u32) -> SimWorkflow {
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    let mut prods = Vec::new();
    for i in 0..n_prod {
        prods.push(b.add_sim(
            "prod",
            tok,
            i,
            vec![],
            SimAction::compute_only(Dur::from_secs_f64(1.0), 4 << 20),
        ));
    }
    for i in 0..n_cons {
        b.add_sim(
            "cons",
            tok + 1,
            i,
            prods.clone(),
            SimAction::compute_only(Dur::from_secs_f64(0.5), 1 << 10),
        );
    }
    SimWorkflow {
        name: "chaos-regression".into(),
        graphs: vec![b.build(&HashSet::new()).unwrap()],
        submit: SubmitPolicy::AllAtOnce,
        startup: Dur::from_secs_f64(1.0),
        inter_graph: Dur::ZERO,
        shutdown: Dur::ZERO,
        dataset: vec![],
    }
}

/// Deterministic base config: no jitter, no interference, oracle on.
fn base_cfg(seed: u64) -> SimConfig {
    SimConfig {
        campaign_seed: seed,
        run: RunId(0),
        interference: false,
        compute_jitter_sigma: 0.0,
        invariant_checks: true,
        ..Default::default()
    }
}

fn run(cfg: SimConfig, wf: SimWorkflow) -> RunData {
    SimCluster::new(cfg).unwrap().run(wf).unwrap()
}

/// Ordinal of `worker` in the simulator's worker list (the index fault
/// schedules address workers by).
fn ordinal(data: &RunData, worker: WorkerId) -> u32 {
    let per_node = data.chart.wms_config.workers_per_node;
    let node_pos = data
        .chart
        .job
        .allocated_nodes
        .iter()
        .position(|n| *n == worker.node)
        .expect("worker node allocated") as u32;
    // node 0 hosts scheduler+client; workers start on allocated_nodes[1]
    (node_pos - 1) * per_node + worker.slot
}

fn completions(data: &RunData) -> HashMap<&TaskKey, usize> {
    let mut m = HashMap::new();
    for d in &data.task_done {
        *m.entry(&d.key).or_insert(0) += 1;
    }
    m
}

fn assert_clean(data: &RunData) {
    let v = check_run(data);
    assert!(v.is_empty(), "oracle violations: {v:?}");
}

/// PR 1 regression: a duplicated `FetchDone` (network-level replay of a
/// transfer completion) must be idempotent — the consumer still runs
/// exactly once and the run replays byte-identically.
#[test]
fn duplicated_fetch_done_is_idempotent() {
    const SEED: u64 = 0xFE7C_0001;
    let faults = FaultSchedule {
        seed: SEED,
        fetch_faults: (0..32)
            .map(|index| FetchFault { index, extra_delay: Dur::ZERO, duplicate: true })
            .collect(),
        ..Default::default()
    };
    let cfg = SimConfig { faults, ..base_cfg(SEED) };
    let first = run(cfg.clone(), fan_workflow(8, 3));
    let second = run(cfg, fan_workflow(8, 3));
    let clean = run(base_cfg(SEED), fan_workflow(8, 3));
    assert!(!clean.comms.is_empty(), "scenario must involve transfers");
    assert!(
        first.comms.len() > clean.comms.len(),
        "duplicated FetchDone events must surface as extra comm records \
         ({} vs {})",
        first.comms.len(),
        clean.comms.len()
    );
    assert_eq!(first.distinct_tasks(), 11);
    for (key, n) in completions(&first) {
        assert_eq!(n, 1, "{key} completed {n} times under duplicated FetchDone");
    }
    assert_clean(&first);
    assert_eq!(transition_log(&first), transition_log(&second), "replay must be byte-identical");
}

/// One 4 MiB "small" producer shared by every consumer, plus one 512 MiB
/// "big" producer *per* consumer. The placement cost model pins each
/// consumer to its own big dep's worker (fetching 4 MiB beats fetching
/// 512 MiB), so every consumer must pull `small` over the network from
/// wherever it ran — the transfers the death scenarios perturb.
fn anchored_workflow(consumers: u32) -> SimWorkflow {
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    let small = b.add_sim(
        "small",
        tok,
        0,
        vec![],
        SimAction::compute_only(Dur::from_secs_f64(1.0), 4 << 20),
    );
    for i in 0..consumers {
        let big = b.add_sim(
            "big",
            tok,
            i,
            vec![],
            SimAction::compute_only(Dur::from_secs_f64(1.0), 512 << 20),
        );
        b.add_sim(
            "cons",
            tok + 1,
            i,
            vec![big, small.clone()],
            SimAction::compute_only(Dur::from_secs_f64(0.5), 1 << 10),
        );
    }
    SimWorkflow {
        name: "chaos-anchored".into(),
        graphs: vec![b.build(&HashSet::new()).unwrap()],
        submit: SubmitPolicy::AllAtOnce,
        startup: Dur::from_secs_f64(1.0),
        inter_graph: Dur::ZERO,
        shutdown: Dur::ZERO,
        dataset: vec![],
    }
}

fn worker_of(data: &RunData, prefix: &str, index: u32) -> WorkerId {
    data.task_done
        .iter()
        .find(|d| d.key.prefix == prefix && d.key.index == index)
        .expect("task completed")
        .worker
}

/// PR 1 regression: a transfer in flight from a worker that dies is
/// re-issued from a surviving replica when one exists — no recompute, and
/// the delayed consumer completes promptly instead of waiting out the
/// stalled transfer.
#[test]
fn dead_source_reissues_from_surviving_replica() {
    const SEED: u64 = 0xFE7C_0002;
    // Probe (same seed, no faults): placement is a pure function of the
    // seed and nothing perturbs the run before dispatch, so the faulted
    // run places identically.
    let probe = run(base_cfg(SEED), anchored_workflow(2));
    let p = worker_of(&probe, "small", 0);
    let c0 = worker_of(&probe, "cons", 0);
    let c1 = worker_of(&probe, "cons", 1);
    assert!(p != c0 && p != c1, "both consumers must fetch from small's worker");
    assert_ne!(c0, c1, "consumers must fetch to two different workers");
    // Both fetches of `small` issue together when the producers complete
    // (~2 s). Delay the second 10 s; the first lands promptly and becomes
    // the surviving replica. Kill small's worker at 3 s, mid-flight.
    let victim = ordinal(&probe, p);
    let faults = FaultSchedule {
        seed: SEED,
        deaths: vec![WorkerDeath { worker: victim, time: Time::from_secs_f64(3.0) }],
        fetch_faults: vec![FetchFault {
            index: 1,
            extra_delay: Dur::from_secs_f64(10.0),
            duplicate: false,
        }],
        ..Default::default()
    };
    let data = run(SimConfig { faults, ..base_cfg(SEED) }, anchored_workflow(2));
    assert_eq!(data.distinct_tasks(), 5, "all tasks complete despite the death");
    // no WorkerLost *transition* is expected — the dead worker was idle,
    // only a transfer was in flight from it — but the loss is logged and
    // the re-issued transfer's comm record points at the replica holder
    assert!(
        data.logs.iter().any(|l| l.message.contains("lost") || l.message.contains("terminated")),
        "the death was observed"
    );
    let to_c1 = data
        .comms
        .iter()
        .find(|c| c.key.prefix == "small" && c.to == c1)
        .expect("the delayed consumer still fetched `small`");
    assert_eq!(
        to_c1.from, c0,
        "the re-issued transfer must come from the surviving replica, not {p:?}"
    );
    // the distinguishing pair of assertions vs. the no-replica scenario:
    // the producer never re-ran, and the consumer did not wait out the
    // 10 s stall — its data came from the replica right after the death
    for (key, n) in completions(&data) {
        assert_eq!(n, 1, "{key} completed {n} times; replica should prevent recompute");
    }
    assert!(
        data.wall_time.as_secs_f64() < 8.0,
        "re-issue from the replica should beat the 10 s delayed transfer \
         (wall time {})",
        data.wall_time.as_secs_f64()
    );
    assert_clean(&data);
}

/// PR 1 regression: when the dead worker held the *only* replica of a dep
/// whose transfer was in flight, the waiter goes back to waiting and the
/// dep is recomputed — the run still completes, with 2 completions for the
/// recomputed producer.
#[test]
fn dead_source_without_replica_triggers_recompute() {
    const SEED: u64 = 0xFE7C_0003;
    // ONE consumer: no second copy of `small` ever exists. Delay its only
    // fetch 10 s and kill the source mid-flight.
    let probe = run(base_cfg(SEED), anchored_workflow(1));
    let p = worker_of(&probe, "small", 0);
    assert_ne!(p, worker_of(&probe, "cons", 0), "the consumer must fetch remotely");
    let victim = ordinal(&probe, p);
    let faults = FaultSchedule {
        seed: SEED,
        deaths: vec![WorkerDeath { worker: victim, time: Time::from_secs_f64(3.0) }],
        fetch_faults: vec![FetchFault {
            index: 0,
            extra_delay: Dur::from_secs_f64(10.0),
            duplicate: false,
        }],
        ..Default::default()
    };
    let data = run(SimConfig { faults, ..base_cfg(SEED) }, anchored_workflow(1));
    assert_eq!(data.distinct_tasks(), 3, "all tasks complete despite the death");
    let counts = completions(&data);
    let small_runs = counts.iter().find(|(k, _)| k.prefix == "small").map(|(_, n)| *n).unwrap_or(0);
    assert_eq!(small_runs, 2, "the producer's only replica died mid-transfer; it must run again");
    assert_clean(&data);
}

/// A Mofka partition stalled across the whole run releases its staged
/// events at finalize — the post-run drain still sees exactly-once
/// delivery (the delivery oracle would flag any loss or duplication).
#[test]
fn mofka_stall_over_run_end_loses_nothing() {
    const SEED: u64 = 0xFE7C_0004;
    let faults = FaultSchedule {
        seed: SEED,
        mofka_stalls: vec![MofkaStall {
            topic: "task-transitions".into(),
            partition: 0,
            start: Time::from_secs_f64(0.5),
            stop: Time::from_secs_f64(10_000.0), // beyond the run's end
        }],
        ..Default::default()
    };
    let cfg = SimConfig { faults, ..base_cfg(SEED) };
    let stalled = run(cfg, fan_workflow(8, 3));
    let clean = run(base_cfg(SEED), fan_workflow(8, 3));
    assert_clean(&stalled);
    assert_eq!(
        stalled.transitions.len(),
        clean.transitions.len(),
        "stall must not lose or duplicate transition records"
    );
}

/// dtf-store crash faults, every kind against every target, fixed seeds:
/// a payload-carrying persisted service is damaged on a scratch copy and
/// reopened. Recovery must always surface a committed prefix (the oracle)
/// and must be deterministic — the same fault on a fresh copy recovers
/// the identical stream.
#[test]
fn crash_faults_recover_committed_prefixes_deterministically() {
    use dtf::chaos::{copy_store, recovery_oracle, CrashFault, CrashKind, CrashTarget};
    use dtf::mofka::producer::ProducerConfig;
    use dtf::mofka::{Event, MofkaService, ServiceConfig, TopicConfig};

    let base = std::env::temp_dir().join(format!("dtf-chaos-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let golden = base.join("golden");
    {
        let svc = MofkaService::with_config(&ServiceConfig {
            persist: Some(golden.clone()),
            ..Default::default()
        })
        .unwrap();
        svc.create_topic("t", TopicConfig { partitions: 2 }).unwrap();
        let mut p = svc.producer("t", ProducerConfig::default()).unwrap();
        for i in 0..300u64 {
            p.push(Event::new(
                serde_json::json!({ "i": i }),
                bytes::Bytes::from(vec![(i % 251) as u8; 32]),
            ))
            .unwrap();
        }
        p.flush().unwrap();
        svc.sync().unwrap();
    }
    let (pristine, _) = MofkaService::reopen(&golden).unwrap();

    let faults = [
        (CrashTarget::YokanWal, CrashKind::TruncateTail, 0xC0A1u64),
        (CrashTarget::YokanWal, CrashKind::ZeroTail, 0xC0A2),
        (CrashTarget::YokanWal, CrashKind::BitFlip, 0xC0A3),
        (CrashTarget::WarabiLog, CrashKind::TruncateTail, 0xC0A4),
        (CrashTarget::WarabiLog, CrashKind::ZeroTail, 0xC0A5),
        (CrashTarget::WarabiLog, CrashKind::BitFlip, 0xC0A6),
    ];
    for (target, kind, seed) in faults {
        let fault = CrashFault { target, kind, seed };
        // archives serve blob payloads lazily through the segment index,
        // so each victim directory must outlive its oracle reads
        let recover = |label: &str| {
            let victim = base.join(format!("victim-{seed:x}-{label}"));
            copy_store(&golden, &victim).unwrap();
            fault.apply(&victim).unwrap();
            let (svc, recovery) = MofkaService::reopen(&victim).unwrap();
            (svc, recovery.restored_events, victim)
        };
        let (first, n1, victim_a) = recover("a");
        let violations = recovery_oracle(&pristine, &first);
        assert!(violations.is_empty(), "{fault:?} violated recovery: {violations:?}");
        let (second, n2, victim_b) = recover("b");
        assert_eq!(n1, n2, "{fault:?}: recovery must be deterministic from the seed");
        assert!(
            recovery_oracle(&first, &second).is_empty()
                && recovery_oracle(&second, &first).is_empty(),
            "{fault:?}: both recoveries must expose the identical stream"
        );
        drop(first);
        drop(second);
        std::fs::remove_dir_all(&victim_a).unwrap();
        std::fs::remove_dir_all(&victim_b).unwrap();
    }
    std::fs::remove_dir_all(&base).unwrap();
}

/// Service-level exactly-once under a stall: events produced into a
/// stalled partition become visible only after unstall, in order, exactly
/// once across incremental drains of one consumer group.
#[test]
fn mofka_stall_preserves_exactly_once_in_order() {
    use dtf::mofka::producer::{PartitionStrategy, ProducerConfig};
    use dtf::mofka::{ConsumerConfig, Event, MofkaService, TopicConfig};

    let svc = MofkaService::new();
    svc.create_topic("t", TopicConfig { partitions: 1 }).unwrap();
    let mut producer = svc
        .producer("t", ProducerConfig { batch_size: 1, strategy: PartitionStrategy::RoundRobin })
        .unwrap();
    for i in 0..50u64 {
        producer.push(Event::meta_only(serde_json::json!({ "i": i }))).unwrap();
    }
    producer.flush().unwrap();
    svc.stall_partition("t", 0).unwrap();
    for i in 50..100u64 {
        producer.push(Event::meta_only(serde_json::json!({ "i": i }))).unwrap();
    }
    producer.flush().unwrap();

    let mut consumer =
        svc.consumer("t", ConsumerConfig { group: "g".into(), prefetch: 16 }).unwrap();
    let before: Vec<u64> = consumer
        .drain_all()
        .unwrap()
        .iter()
        .map(|e| e.event.metadata["i"].as_u64().unwrap())
        .collect();
    assert_eq!(before, (0..50).collect::<Vec<u64>>(), "stalled events must not be visible");

    svc.unstall_partition("t", 0).unwrap();
    let after: Vec<u64> = consumer
        .drain_all()
        .unwrap()
        .iter()
        .map(|e| e.event.metadata["i"].as_u64().unwrap())
        .collect();
    assert_eq!(after, (50..100).collect::<Vec<u64>>(), "exactly the staged events, in order");
}
