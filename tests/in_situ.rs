//! In-situ analysis (paper §III-B): the event-streaming model lets a
//! consumer process telemetry *while the workflow runs*, with the same
//! API later used for post-hoc replay. This test runs real tasks on the
//! local cluster with the Mofka plugin attached and tails the stream from
//! a concurrent analysis thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dtf::mofka::bedrock::BedrockConfig;
use dtf::mofka::producer::ProducerConfig;
use dtf::mofka::ConsumerConfig;
use dtf::wms::exec::{ExecConfig, LocalCluster};
use dtf::wms::graph::TaskValue;
use dtf::wms::plugins::PluginSet;
use dtf::wms::{Delayed, MofkaPlugin};

#[test]
fn live_consumer_sees_events_during_the_run() {
    let svc = Arc::new(BedrockConfig::wms_default().bootstrap().unwrap());
    let mut plugins = PluginSet::new();
    plugins.register(Box::new(
        // small batches so events become visible promptly (in-situ mode)
        MofkaPlugin::new(&svc, ProducerConfig { batch_size: 1, ..Default::default() }).unwrap(),
    ));
    let cluster = LocalCluster::start(
        ExecConfig { workers: 2, threads_per_worker: 2, ..Default::default() },
        plugins,
    );

    // concurrent in-situ analyst: tails task-done while the workflow runs
    let stop = Arc::new(AtomicBool::new(false));
    let analyst = {
        let svc = svc.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut consumer = svc
                .consumer("task-done", ConsumerConfig { group: "live".into(), prefetch: 16 })
                .unwrap();
            let mut seen = 0usize;
            let mut seen_before_stop = 0usize;
            while !stop.load(Ordering::SeqCst) {
                let batch = consumer.pull(32).unwrap();
                seen += batch.len();
                seen_before_stop = seen;
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
            // drain the tail after the workflow finished (post-hoc mode,
            // same API)
            seen += consumer.drain_all().unwrap().len();
            (seen_before_stop, seen)
        })
    };

    // the workflow: 40 tasks with real work
    let mut client = Delayed::new(&cluster);
    let mut keys = Vec::new();
    for _ in 0..40 {
        keys.push(client.delayed("work", vec![], |_| {
            let mut acc = 1u64;
            for i in 1..150_000u64 {
                acc = acc.wrapping_mul(i | 1);
            }
            TaskValue::new(acc, 8)
        }));
    }
    client.compute().unwrap();
    cluster.wait_all();
    // give the analyst a moment to observe completions while still "live"
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::SeqCst);
    let (live_seen, total_seen) = analyst.join().unwrap();
    cluster.shutdown();

    assert_eq!(total_seen, 40, "in-situ + post-hoc consumption covers every event");
    assert!(live_seen > 0, "the analyst observed completions while the workflow was still live");

    // a second, fresh consumer group replays everything post-hoc
    let mut replay = svc
        .consumer("task-done", ConsumerConfig { group: "posthoc".into(), prefetch: 64 })
        .unwrap();
    assert_eq!(replay.drain_all().unwrap().len(), 40, "persistent stream replays from zero");
}
