//! Run a workload with durable persistence, then analyze it *post hoc*:
//! reopen the on-disk store as a fresh process would, rebuild the run
//! record from the recovered event stream, and run the same analyses —
//! plus the FAIR tabular export — from the archive alone.
//!
//! ```sh
//! cargo run --release --example archive_and_analyze [output-dir]
//! ```
//!
//! `output-dir` holds two things afterwards: `store/` (the dtf-store
//! segment files Yokan/Warabi wrote during the run) and `export/` (the
//! CSV/JSON bundle exported from the *reopened* archive, not the live
//! run).

use dtf::core::ids::RunId;
use dtf::core::rngx::RunRng;
use dtf::core::time::Time;
use dtf::perfrecup::archive::ArchivedRun;
use dtf::perfrecup::{category, export, utilization, zoom};
use dtf::wms::sim::{SimCluster, SimConfig};
use dtf::workflows::Workload;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "dtf-archive".to_string());
    let out = std::path::PathBuf::from(&out_dir);
    let store = out.join("store");
    let _ = std::fs::remove_dir_all(&store);
    let workload = Workload::ImageProcessing;
    let seed = 21;

    // 1. simulate with persistence on: every Mofka topic writes through
    //    Yokan (metadata WAL) and Warabi (blob log) into `store/`.
    let rr = RunRng::new(seed, RunId(0));
    let workflow = workload.generate(&rr);
    let mut cfg = SimConfig {
        campaign_seed: seed,
        run: RunId(0),
        persist_dir: Some(store.to_string_lossy().into_owned()),
        ..Default::default()
    };
    workload.adjust(&mut cfg);
    println!("simulating {} (persisting to {}) ...", workload.name(), store.display());
    let live = SimCluster::new(cfg).expect("cluster").run(workflow).expect("run");
    let live_tasks = live.distinct_tasks();
    drop(live); // from here on, the store directory is the only source

    // 2. reopen as a fresh process image would: replay the WALs, trim to
    //    the committed prefix, rebuild the RunData from the event stream.
    let archived = ArchivedRun::open(&store).expect("archive opens");
    println!(
        "reopened archive: {} events restored across {} yokan + {} warabi segments{}",
        archived.recovery.restored_events,
        archived.recovery.yokan.segments,
        archived.recovery.warabi.segments,
        if archived.was_repaired() { " (repaired a torn tail)" } else { "" }
    );
    let data = &archived.data;
    assert_eq!(data.distinct_tasks(), live_tasks, "archive reconstructs every task");

    // 3. FAIR tabular export — from the archive, not the live run
    let export_dir = out.join("export");
    let n = export::export_run(data, &export_dir).expect("export");
    println!("archived {n} files to {}/", export_dir.display());

    // 4. per-category statistics (which task types dominate?)
    println!("\ntop task categories by mean duration:");
    for stat in category::per_category(data).into_iter().take(5) {
        println!(
            "  {:<22} {:>5} tasks  mean {:>7.3}s  io {:>5} ops / {:>8.1} MB",
            stat.category,
            stat.tasks,
            stat.duration.mean,
            stat.io_ops,
            stat.io_bytes as f64 / (1 << 20) as f64
        );
    }

    // 5. zoom into the middle of the run
    let t0 = Time::from_secs_f64(data.wall_time.as_secs_f64() * 0.4);
    let t1 = Time::from_secs_f64(data.wall_time.as_secs_f64() * 0.6);
    let w = zoom::stats(data, t0, t1);
    println!(
        "\nzoom [{:.0}s..{:.0}s]: {} tasks active ({} started, {} finished), \
         {} comms, {} I/O ops, {} warnings",
        w.t0.as_secs_f64(),
        w.t1.as_secs_f64(),
        w.tasks_active,
        w.tasks_started,
        w.tasks_finished,
        w.comms_active,
        w.io_ops,
        w.warnings
    );

    // 6. utilization: was the cluster balanced?
    let threads = data.chart.wms_config.threads_per_worker;
    let utils = utilization::per_worker(data, 12, threads);
    let imbalance = utilization::imbalance(&utils);
    println!("\nper-window mean utilization / imbalance:");
    for (i, im) in imbalance.iter().enumerate() {
        let mean: f64 = utils.iter().map(|u| u.busy[i]).sum::<f64>() / utils.len() as f64;
        println!("  window {i:>2}: {:>4.0}% busy, {:>4.0}% imbalance", mean * 100.0, im * 100.0);
    }

    println!("\nreload check: the archived CSVs and manifests are plain files —");
    let manifest = std::fs::read_to_string(export_dir.join("manifest.json")).expect("manifest");
    let parsed: serde_json::Value = serde_json::from_str(&manifest).expect("valid json");
    println!(
        "  manifest says {} tasks over {} graphs, wall {:.1}s",
        parsed["distinct_tasks"], parsed["task_graphs"], parsed["wall_time_s"]
    );
}
