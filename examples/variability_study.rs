//! Run-to-run variability study: a small XGBoost campaign, ranking metrics
//! by coefficient of variation and comparing scheduling orders — the
//! paper's central reproducibility question, scaled to a quick demo.
//!
//! ```sh
//! cargo run --release --example variability_study
//! ```

use dtf::perfrecup::schedule_order;
use dtf::perfrecup::variability::{rank_by_cv, Variability};
use dtf::workflows::{Campaign, Workload};

fn main() {
    let mut campaign = Campaign::paper(Workload::Xgboost, 11);
    campaign.runs = 8; // scaled down from the paper's 50 for a demo
    campaign.keep_order = true;
    println!("running {} x{} ...", campaign.workload.name(), campaign.runs);
    let result = campaign.execute().expect("campaign executes");

    // which quantities vary the most across identical-configuration runs?
    let take = |f: fn(&dtf::workflows::RunSummary) -> f64| -> Vec<f64> {
        result.summaries.iter().map(f).collect()
    };
    let metrics = vec![
        Variability::of("wall time (s)", &take(|s| s.wall_s)),
        Variability::of("I/O time (s)", &take(|s| s.io_s)),
        Variability::of("comm time (s)", &take(|s| s.comm_s)),
        Variability::of("compute time (s)", &take(|s| s.compute_s)),
        Variability::of("I/O operations", &take(|s| s.io_ops as f64)),
        Variability::of("communications", &take(|s| s.comms as f64)),
        Variability::of("warnings", &take(|s| s.warnings as f64)),
    ];
    println!("\nmetrics ranked by coefficient of variation (most variable first):");
    for v in rank_by_cv(metrics) {
        println!(
            "  {:<18} mean {:>12.2}  cv {:>6.3}  range [{:.2}, {:.2}]",
            v.metric, v.summary.mean, v.cv, v.summary.min, v.summary.max
        );
    }

    // were tasks scheduled in the same order run to run? (§IV-D)
    let orders: Vec<_> = result.summaries.iter().filter_map(|s| s.start_order.clone()).collect();
    let m = schedule_order::pairwise(&orders, 300);
    println!("\nscheduling-order similarity (pairwise Kendall tau over {} runs):", m.runs);
    println!("  mean {:.3}  min {:.3}  max {:.3}", m.summary.mean, m.summary.min, m.summary.max);
    assert!(m.summary.mean > 0.5, "submission priority keeps orders similar");
    println!("\n  -> same code, same configuration, never the same schedule: the");
    println!("     dynamicity the paper identifies as a source of irreproducibility.");
}
