//! ImageProcessing at paper scale: simulate one run of the four-step
//! pipeline on the Polaris-like platform and reproduce the Fig. 4
//! per-thread I/O analysis.
//!
//! ```sh
//! cargo run --release --example image_pipeline
//! ```

use dtf::core::ids::RunId;
use dtf::core::rngx::RunRng;
use dtf::perfrecup::{io_timeline, RunViews};
use dtf::wms::sim::{SimCluster, SimConfig};
use dtf::workflows::Workload;

fn main() {
    let seed = 7;
    let workload = Workload::ImageProcessing;

    // build the workflow for run 0 and a simulator config for it
    let rr = RunRng::new(seed, RunId(0));
    let workflow = workload.generate(&rr);
    let mut cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
    workload.adjust(&mut cfg);

    println!(
        "simulating {} ({} graphs, {} tasks, {} dataset files)...",
        workload.name(),
        workflow.graphs.len(),
        workflow.graphs.iter().map(|g| g.len()).sum::<usize>(),
        workflow.dataset.len()
    );
    let data =
        SimCluster::new(cfg).expect("cluster allocates").run(workflow).expect("run completes");

    println!(
        "wall time {:.1}s, {} I/O ops, {} comms, {} warnings",
        data.wall_time.as_secs_f64(),
        data.io_ops(),
        data.comm_count(),
        data.warnings.len()
    );

    // Fig. 4: burst-phase detection over the fused Darshan trace
    let sig = io_timeline::signature(&data, 2.0);
    println!("\nI/O activity phases (the Fig. 4 pattern):");
    for (i, p) in sig.phases.iter().enumerate() {
        println!(
            "  phase {}: {:.1}..{:.1}s  {} reads ({:.1} MB avg), {} writes ({:.1} KB avg)",
            i + 1,
            p.start_s,
            p.end_s,
            p.read_ops,
            p.read_bytes as f64 / p.read_ops.max(1) as f64 / (1u64 << 20) as f64,
            p.write_ops,
            p.write_bytes as f64 / p.write_ops.max(1) as f64 / 1024.0,
        );
    }
    assert_eq!(sig.phases.len(), 3, "sequential graphs produce three I/O bursts");

    // the pthread-id join: every traced operation attributed to its task
    let views = RunViews::new(&data);
    println!("\nI/O-to-task attribution rate: {:.1}%", views.io_attribution_rate() * 100.0);
    let fused = views.task_io();
    println!("fused task<->I/O view: {} rows, columns {:?}", fused.n_rows(), fused.names());

    // which task categories did the reading?
    let per_prefix = fused
        .filter("op", |v| v.as_str() == Some("read"))
        .and_then(|df| df.group_by("prefix", "size", dtf::perfrecup::frame::Agg::Count))
        .expect("group by prefix");
    println!("\nreads per task category:\n{per_prefix}");
}
