//! Quickstart: run a real task graph on the local cluster with full
//! instrumentation, then inspect the collected provenance.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This is the "downstream user" path: your own Rust closures execute on
//! real worker threads under the same scheduler (placement heuristic,
//! queuing, work stealing) the paper studies, and every task transition,
//! completion, and transfer is captured by plugins without touching your
//! workload code.

use std::sync::Arc;

use dtf::wms::exec::{ExecConfig, LocalCluster};
use dtf::wms::graph::TaskValue;
use dtf::wms::plugins::PluginSet;
use dtf::wms::{CollectorPlugin, Delayed};

fn main() {
    // 1. start a local "cluster": 2 emulated workers x 2 threads,
    //    instrumented with an in-memory collector plugin
    let collector = CollectorPlugin::new();
    let mut plugins = PluginSet::new();
    plugins.register(Box::new(collector.clone()));
    let cluster = LocalCluster::start(
        ExecConfig { workers: 2, threads_per_worker: 2, ..Default::default() },
        plugins,
    );

    // 2. build a little map-reduce with the dask.delayed-style client
    let mut client = Delayed::new(&cluster);
    let parts: Vec<_> = (0..8u64)
        .map(|i| {
            client.delayed("square", vec![], move |_| {
                let v = i * i;
                TaskValue::new(v, 8)
            })
        })
        .collect();
    let total = client.delayed("sum", parts, |deps| {
        let s: u64 = deps.iter().map(|d| *d.downcast_ref::<u64>().unwrap()).sum();
        TaskValue::new(s, 8)
    });

    // 3. compute and gather
    let result = client.gather(&total).expect("graph executes");
    println!("sum of squares 0..8 = {}", result.downcast_ref::<u64>().unwrap());
    assert_eq!(*result.downcast_ref::<u64>().unwrap(), 140);

    cluster.wait_all();
    cluster.shutdown();

    // 4. inspect what the instrumentation saw
    let events = collector.take();
    println!("\ncollected provenance:");
    println!("  task metadata records : {}", events.meta.len());
    println!("  state transitions     : {}", events.transitions.len());
    println!("  task completions      : {}", events.task_done.len());
    println!("  inter-worker transfers: {}", events.comms.len());
    for done in events.task_done.iter().take(4) {
        println!(
            "  {} ran on {} thread {:#x} in {:.3} ms",
            done.key,
            done.worker,
            done.thread.0,
            done.duration().as_millis_f64()
        );
    }
    let workers: std::collections::HashSet<_> = events.task_done.iter().map(|d| d.worker).collect();
    println!("  distinct workers used : {}", workers.len());
    let _ = Arc::strong_count(&result);
}
