//! Provenance lineage explorer: run ResNet152 once, pick tasks, and print
//! their full multi-source lineage (Fig. 8) — dependencies, state
//! transitions, locations, data movements, and the I/O they performed,
//! all reconstructed by joining Mofka-streamed WMS events with
//! Darshan-traced I/O on shared identifiers.
//!
//! ```sh
//! cargo run --release --example provenance_explorer [task-prefix]
//! ```

use dtf::core::ids::RunId;
use dtf::core::rngx::RunRng;
use dtf::perfrecup::lineage;
use dtf::wms::sim::{SimCluster, SimConfig};
use dtf::workflows::Workload;

fn main() {
    let prefix = std::env::args().nth(1).unwrap_or_else(|| "predict".to_string());
    let workload = Workload::ResNet152;
    let seed = 3;

    let rr = RunRng::new(seed, RunId(0));
    let workflow = workload.generate(&rr);
    let mut cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
    workload.adjust(&mut cfg);
    println!("simulating {} ...", workload.name());
    let data = SimCluster::new(cfg).expect("cluster").run(workflow).expect("run");

    // find a few tasks of the requested category
    let keys: Vec<_> = data
        .meta
        .iter()
        .filter(|m| m.key.prefix == prefix)
        .map(|m| m.key.clone())
        .take(2)
        .collect();
    if keys.is_empty() {
        let mut prefixes: Vec<&str> = data.meta.iter().map(|m| m.key.prefix.as_str()).collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        println!("no tasks with prefix '{prefix}'; available: {prefixes:?}");
        return;
    }

    for key in keys {
        let l = lineage::build(&data, &key).expect("lineage builds");
        assert!(l.is_consistent(), "lineage state chain is ordered and linked");
        println!("\n=== provenance of {key} ===");
        println!("  graph {} submitted at {}", l.graph.unwrap(), l.submitted.unwrap());
        println!("  {} dependencies, {} dependents", l.dependencies.len(), l.dependents.len());
        println!("  state transitions:");
        for s in &l.states {
            println!(
                "    {:>10} -> {:<10} ({:?}) at {}",
                s.from.as_str(),
                s.to.as_str(),
                s.stimulus,
                s.time
            );
        }
        println!("  locations in distributed memory:");
        for loc in &l.locations {
            match loc.thread {
                Some(t) => {
                    println!("    {} (computed on thread {t}) since {}", loc.worker, loc.since)
                }
                None => println!("    {} (replica via transfer) since {}", loc.worker, loc.since),
            }
        }
        println!("  data movements: {}", l.movements.len());
        println!("  I/O operations during execution: {}", l.io.len());
        if let (Some(start), Some(stop)) = (l.start, l.stop) {
            println!("  executed {start} .. {stop} ({})", stop - start);
        }
        if let Some(n) = l.output_nbytes {
            println!("  output size: {:.1} KB", n as f64 / 1024.0);
        }
    }

    println!("\nfull-JSON form of one lineage (what Fig. 8 renders):");
    let any = data.meta.iter().find(|m| m.key.prefix == prefix).unwrap();
    let l = lineage::build(&data, &any.key).unwrap();
    let json = l.to_pretty_json();
    // print just the head to keep the demo readable
    for line in json.lines().take(25) {
        println!("  {line}");
    }
    println!("  ...");
}
