//! Property-based tests of the platform cost models.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use dtf_core::ids::NodeId;
use dtf_core::time::Time;
use dtf_platform::job::{AllocPolicy, JobRequest, JobScheduler};
use dtf_platform::{ClusterTopology, LoadProcess, NetworkConfig, NetworkModel, Pfs, PfsConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interference factors are deterministic, >= 1, and bounded by the
    /// configured burst maximum for any seed and any query time.
    #[test]
    fn load_process_bounded_and_deterministic(seed in any::<u64>(), times in proptest::collection::vec(0.0f64..10_000.0, 1..50)) {
        let p = LoadProcess::pfs_default(seed);
        for &t in &times {
            let a = p.factor(Time::from_secs_f64(t));
            let b = p.factor(Time::from_secs_f64(t));
            prop_assert_eq!(a, b);
            prop_assert!((1.0..=8.0 + 1e-9).contains(&a));
        }
    }

    /// PFS read cost grows monotonically (on average) with size, and every
    /// cost is positive and finite.
    #[test]
    fn pfs_costs_positive_and_size_sensitive(seed in any::<u64>(), small in 1u64..65536, factor in 64u64..1024) {
        let cfg = PfsConfig { jitter_sigma: 0.0, ..Default::default() };
        let mut pfs = Pfs::new(cfg, LoadProcess::none(seed));
        let id = pfs.create("/f", u64::MAX / 2, 4);
        let mut rng = SmallRng::seed_from_u64(seed);
        let large = small.saturating_mul(factor);
        let c_small = pfs.read(id, 0, small, Time::ZERO, &mut rng).unwrap();
        let c_large = pfs.read(id, 0, large, Time::ZERO, &mut rng).unwrap();
        prop_assert!(c_small.0 > 0);
        prop_assert!(c_large >= c_small, "cost must not shrink with size");
    }

    /// Network transfer time is positive, and after warm-up the same
    /// transfer has deterministic cost when jitter is disabled.
    #[test]
    fn network_costs_stable_without_jitter(seed in any::<u64>(), bytes in 1u64..(1 << 30)) {
        let topo = ClusterTopology::uniform(32, 16);
        let cfg = NetworkConfig { jitter_sigma: 0.0, ..Default::default() };
        let mut net = NetworkModel::new(cfg, LoadProcess::none(seed));
        let mut rng = SmallRng::seed_from_u64(seed);
        // warm up the pair
        net.transfer_time(&topo, 1, NodeId(0), 2, NodeId(1), 1, Time::ZERO, &mut rng);
        let (a, first_a) = net.transfer_time(&topo, 1, NodeId(0), 2, NodeId(1), bytes, Time::ZERO, &mut rng);
        let (b, first_b) = net.transfer_time(&topo, 1, NodeId(0), 2, NodeId(1), bytes, Time::ZERO, &mut rng);
        prop_assert!(!first_a && !first_b);
        prop_assert_eq!(a, b);
        prop_assert!(a.0 > 0);
    }

    /// Job allocations always return the requested number of distinct,
    /// in-range nodes, for any cluster shape that can satisfy them.
    #[test]
    fn allocations_always_valid(
        nodes_pow in 3u32..9,
        per_switch in 1u32..32,
        request in 1u32..8,
        seed in any::<u64>(),
    ) {
        let node_count = 1u32 << nodes_pow; // 8..256
        prop_assume!(request <= node_count);
        let topo = ClusterTopology::uniform(node_count, per_switch.min(node_count));
        let mut js = JobScheduler::new(AllocPolicy::default());
        let mut rng = SmallRng::seed_from_u64(seed);
        let req = JobRequest { nodes: request, walltime_limit_s: 60, queue: "q".into() };
        let job = js.allocate(&topo, &req, Time::ZERO, &mut rng).unwrap();
        prop_assert_eq!(job.allocated_nodes.len(), request as usize);
        let mut uniq = job.allocated_nodes.clone();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), request as usize);
        prop_assert!(job.allocated_nodes.iter().all(|n| n.0 < node_count));
    }

    /// Topology distances are symmetric and same-node iff equal ids.
    #[test]
    fn distances_symmetric(a in 0u32..64, b in 0u32..64) {
        let topo = ClusterTopology::uniform(64, 8);
        let d_ab = topo.distance(NodeId(a), NodeId(b));
        let d_ba = topo.distance(NodeId(b), NodeId(a));
        prop_assert_eq!(d_ab, d_ba);
        prop_assert_eq!(a == b, d_ab == dtf_platform::Distance::SameNode);
    }
}
