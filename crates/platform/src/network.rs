//! Network cost model.
//!
//! Transfer time between two workers is:
//!
//! ```text
//!   t = connect (first contact between the pair only)
//!     + latency(distance) * nic_factors * jitter
//!     + bytes / bandwidth(distance) * congestion(t) * jitter
//! ```
//!
//! The one-time connection-establishment cost is what reproduces the
//! paper's Fig. 5 observation that several *small* communications near the
//! beginning of the workflow take disproportionately long, both inter- and
//! intra-node: Dask opens TCP connections lazily on first use.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

use dtf_core::dist::Jitter;
use dtf_core::ids::NodeId;
use dtf_core::time::{Dur, Time};

use crate::interference::LoadProcess;
use crate::topology::{ClusterTopology, Distance};

/// Tunable constants of the network model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// One-way software latency for intra-node (loopback) messages, seconds.
    pub latency_same_node: f64,
    /// One-way latency under one switch, seconds (TCP/Dask software stack
    /// dominates the wire time).
    pub latency_same_switch: f64,
    /// Additional latency per extra hop, seconds.
    pub latency_per_hop: f64,
    /// Effective bandwidth for intra-node transfers, bytes/second.
    pub bw_same_node: f64,
    /// Effective bandwidth for inter-node transfers, bytes/second.
    pub bw_inter_node: f64,
    /// Mean TCP connection-establishment cost on first contact, seconds.
    pub connect_cost: f64,
    /// Log-scale sigma of the multiplicative jitter on every transfer.
    pub jitter_sigma: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            latency_same_node: 30e-6,
            latency_same_switch: 120e-6,
            latency_per_hop: 40e-6,
            bw_same_node: 4.0e9,
            bw_inter_node: 1.5e9,
            connect_cost: 0.050,
            jitter_sigma: 0.25,
        }
    }
}

/// Stateful network model: tracks which endpoint pairs have already
/// connected and the background congestion process.
#[derive(Debug)]
pub struct NetworkModel {
    cfg: NetworkConfig,
    congestion: LoadProcess,
    jitter: Jitter,
    /// Pairs (ordered canonical) that have established a connection.
    connected: HashSet<(u64, u64)>,
}

impl NetworkModel {
    pub fn new(cfg: NetworkConfig, congestion: LoadProcess) -> Self {
        let jitter = if cfg.jitter_sigma > 0.0 {
            Jitter::new(cfg.jitter_sigma, 4.0)
        } else {
            Jitter::none()
        };
        Self { cfg, congestion, jitter, connected: HashSet::new() }
    }

    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Cost of transferring `bytes` between endpoints `a` and `b` (opaque
    /// endpoint ids — worker address hashes) living on nodes `na`/`nb`,
    /// starting at time `now`. Also returns whether this call paid the
    /// connection-establishment cost.
    #[allow(clippy::too_many_arguments)] // mirrors the (src, dst, payload, time) shape of a transfer
    pub fn transfer_time<R: Rng + ?Sized>(
        &mut self,
        topo: &ClusterTopology,
        a: u64,
        na: NodeId,
        b: u64,
        nb: NodeId,
        bytes: u64,
        now: Time,
        rng: &mut R,
    ) -> (Dur, bool) {
        let dist = topo.distance(na, nb);
        let nic = topo.profile(na).nic_factor * topo.profile(nb).nic_factor;
        let latency = match dist {
            Distance::SameNode => self.cfg.latency_same_node,
            Distance::SameSwitch => self.cfg.latency_same_switch,
            Distance::CrossSwitch { hops } => {
                self.cfg.latency_same_switch + self.cfg.latency_per_hop * hops as f64
            }
        };
        let bw = match dist {
            Distance::SameNode => self.cfg.bw_same_node,
            _ => self.cfg.bw_inter_node,
        };
        let congestion = match dist {
            Distance::SameNode => 1.0,
            _ => self.congestion.factor(now),
        };
        let pair = if a <= b { (a, b) } else { (b, a) };
        let first_contact = self.connected.insert(pair);
        let connect = if first_contact {
            // connection setup is itself noisy (DNS, handshake, listener
            // backlog); jitter it independently
            self.jitter.apply(self.cfg.connect_cost, rng)
        } else {
            0.0
        };
        let base = latency * nic + bytes as f64 / bw * congestion;
        let secs = connect + self.jitter.apply(base, rng);
        (Dur::from_secs_f64(secs), first_contact)
    }

    /// Forget all established connections (used between simulated runs).
    pub fn reset_connections(&mut self) {
        self.connected.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (ClusterTopology, NetworkModel, SmallRng) {
        let topo = ClusterTopology::uniform(32, 16);
        let net = NetworkModel::new(NetworkConfig::default(), LoadProcess::none(1));
        (topo, net, SmallRng::seed_from_u64(3))
    }

    #[test]
    fn first_contact_pays_connect_cost() {
        let (topo, mut net, mut rng) = setup();
        let (d1, first1) =
            net.transfer_time(&topo, 1, NodeId(0), 2, NodeId(1), 1024, Time::ZERO, &mut rng);
        let (d2, first2) =
            net.transfer_time(&topo, 1, NodeId(0), 2, NodeId(1), 1024, Time::ZERO, &mut rng);
        assert!(first1);
        assert!(!first2);
        assert!(d1 > d2, "first contact {d1} should exceed subsequent {d2}");
        // connect cost dominates small messages: at least 10x
        assert!(d1.as_secs_f64() > 10.0 * d2.as_secs_f64());
    }

    #[test]
    fn connection_pairs_are_symmetric() {
        let (topo, mut net, mut rng) = setup();
        let (_, first1) =
            net.transfer_time(&topo, 1, NodeId(0), 2, NodeId(1), 10, Time::ZERO, &mut rng);
        let (_, first2) =
            net.transfer_time(&topo, 2, NodeId(1), 1, NodeId(0), 10, Time::ZERO, &mut rng);
        assert!(first1);
        assert!(!first2, "reverse direction should reuse the connection");
    }

    #[test]
    fn same_node_is_faster_than_inter_node() {
        let (topo, mut net, mut rng) = setup();
        // warm up connections
        net.transfer_time(&topo, 1, NodeId(0), 2, NodeId(0), 1, Time::ZERO, &mut rng);
        net.transfer_time(&topo, 3, NodeId(0), 4, NodeId(1), 1, Time::ZERO, &mut rng);
        let mb = 64 * 1024 * 1024;
        let mut intra = 0.0;
        let mut inter = 0.0;
        for _ in 0..50 {
            intra += net
                .transfer_time(&topo, 1, NodeId(0), 2, NodeId(0), mb, Time::ZERO, &mut rng)
                .0
                .as_secs_f64();
            inter += net
                .transfer_time(&topo, 3, NodeId(0), 4, NodeId(1), mb, Time::ZERO, &mut rng)
                .0
                .as_secs_f64();
        }
        assert!(intra < inter, "intra {intra} should beat inter {inter}");
    }

    #[test]
    fn larger_transfers_take_longer_on_average() {
        let (topo, mut net, mut rng) = setup();
        net.transfer_time(&topo, 1, NodeId(0), 2, NodeId(1), 1, Time::ZERO, &mut rng);
        let avg = |net: &mut NetworkModel, rng: &mut SmallRng, bytes| {
            (0..100)
                .map(|_| {
                    net.transfer_time(&topo, 1, NodeId(0), 2, NodeId(1), bytes, Time::ZERO, rng)
                        .0
                        .as_secs_f64()
                })
                .sum::<f64>()
                / 100.0
        };
        let small = avg(&mut net, &mut rng, 1024);
        let large = avg(&mut net, &mut rng, 256 * 1024 * 1024);
        assert!(large > 5.0 * small, "large {large} vs small {small}");
    }

    #[test]
    fn congestion_slows_inter_node_transfers() {
        let topo = ClusterTopology::uniform(32, 16);
        let mk = |process: LoadProcess| {
            // isolate the congestion effect
            let cfg = NetworkConfig { jitter_sigma: 0.0, ..Default::default() };
            let mut net = NetworkModel::new(cfg, process);
            let mut rng = SmallRng::seed_from_u64(5);
            // warm-up
            net.transfer_time(&topo, 1, NodeId(0), 2, NodeId(1), 1, Time::ZERO, &mut rng);
            let bytes = 512 * 1024 * 1024;
            // sample many windows and take the mean
            (0..200)
                .map(|i| {
                    net.transfer_time(
                        &topo,
                        1,
                        NodeId(0),
                        2,
                        NodeId(1),
                        bytes,
                        Time::from_secs_f64(i as f64 * 2.0),
                        &mut rng,
                    )
                    .0
                    .as_secs_f64()
                })
                .sum::<f64>()
                / 200.0
        };
        let quiet = mk(LoadProcess::none(1));
        let congested = mk(LoadProcess::network_default(1));
        assert!(congested > quiet, "congested mean {congested} vs quiet {quiet}");
    }

    #[test]
    fn reset_connections_restores_first_contact() {
        let (topo, mut net, mut rng) = setup();
        net.transfer_time(&topo, 1, NodeId(0), 2, NodeId(1), 10, Time::ZERO, &mut rng);
        net.reset_connections();
        let (_, first) =
            net.transfer_time(&topo, 1, NodeId(0), 2, NodeId(1), 10, Time::ZERO, &mut rng);
        assert!(first);
    }
}
