//! Lustre-like parallel filesystem model.
//!
//! Files are striped across object storage targets (OSTs). The cost of an
//! I/O operation is:
//!
//! ```text
//!   t = metadata_latency (open/close)
//!     | op_latency * jitter + bytes / (stripe_bw * min(stripes, osts)) * interference(t) * jitter
//! ```
//!
//! Interference comes from a [`LoadProcess`] shared by all clients — the
//! bursty slowdowns that make I/O "a prominent source of performance
//! variability at scale" (paper §III-C). The namespace is a flat
//! path → file map with sizes, so workloads can create datasets, read them
//! back in chunks, and write outputs, and the Darshan-analog layer can
//! attribute every operation to a real file.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use dtf_core::dist::Jitter;
use dtf_core::error::{DtfError, Result};
use dtf_core::ids::FileId;
use dtf_core::time::{Dur, Time};

use crate::interference::LoadProcess;

/// Tunable constants of the PFS model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PfsConfig {
    /// Metadata operation latency (open/stat/close), seconds.
    pub metadata_latency: f64,
    /// Fixed per-operation latency for reads/writes, seconds.
    pub op_latency: f64,
    /// Per-OST streaming bandwidth available to one client, bytes/second.
    pub ost_bandwidth: f64,
    /// Number of OSTs in the filesystem.
    pub ost_count: u32,
    /// Write bandwidth penalty (writes are slower than reads).
    pub write_penalty: f64,
    /// Log-scale sigma of multiplicative jitter on every operation.
    pub jitter_sigma: f64,
}

impl Default for PfsConfig {
    fn default() -> Self {
        Self {
            metadata_latency: 1.0e-3,
            op_latency: 0.4e-3,
            ost_bandwidth: 1.2e9,
            ost_count: 64,
            write_penalty: 1.6,
            jitter_sigma: 0.30,
        }
    }
}

/// Metadata of one file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PfsFile {
    pub id: FileId,
    pub path: String,
    pub size: u64,
    pub stripe_count: u32,
}

/// Aggregate operation counters (exposed for tests and sanity checks; the
/// authoritative per-operation trace lives in the Darshan-analog layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PfsCounters {
    pub opens: u64,
    pub closes: u64,
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

/// The filesystem: namespace + cost model + counters.
#[derive(Debug)]
pub struct Pfs {
    cfg: PfsConfig,
    interference: LoadProcess,
    jitter: Jitter,
    by_path: HashMap<String, FileId>,
    files: Vec<PfsFile>,
    counters: PfsCounters,
}

impl Pfs {
    pub fn new(cfg: PfsConfig, interference: LoadProcess) -> Self {
        let jitter = if cfg.jitter_sigma > 0.0 {
            Jitter::new(cfg.jitter_sigma, 5.0)
        } else {
            Jitter::none()
        };
        Self {
            cfg,
            interference,
            jitter,
            by_path: HashMap::new(),
            files: Vec::new(),
            counters: PfsCounters::default(),
        }
    }

    pub fn config(&self) -> &PfsConfig {
        &self.cfg
    }

    pub fn counters(&self) -> PfsCounters {
        self.counters
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Create a file (or truncate an existing one to `size`). Returns its id.
    pub fn create(&mut self, path: impl Into<String>, size: u64, stripe_count: u32) -> FileId {
        let path = path.into();
        assert!(stripe_count >= 1, "stripe_count must be >= 1");
        if let Some(&id) = self.by_path.get(&path) {
            let f = &mut self.files[id.0 as usize];
            f.size = size;
            f.stripe_count = stripe_count;
            return id;
        }
        let id = FileId(self.files.len() as u64);
        self.files.push(PfsFile { id, path: path.clone(), size, stripe_count });
        self.by_path.insert(path, id);
        id
    }

    pub fn lookup(&self, path: &str) -> Option<FileId> {
        self.by_path.get(path).copied()
    }

    pub fn meta(&self, id: FileId) -> Result<&PfsFile> {
        self.files.get(id.0 as usize).ok_or_else(|| DtfError::NotFound(format!("file {id}")))
    }

    /// Cost of an `open` (metadata RPC to the MDS).
    pub fn open<R: Rng + ?Sized>(&mut self, id: FileId, rng: &mut R) -> Result<Dur> {
        self.meta(id)?;
        self.counters.opens += 1;
        Ok(Dur::from_secs_f64(self.jitter.apply(self.cfg.metadata_latency, rng)))
    }

    /// Cost of a `close`.
    pub fn close<R: Rng + ?Sized>(&mut self, id: FileId, rng: &mut R) -> Result<Dur> {
        self.meta(id)?;
        self.counters.closes += 1;
        Ok(Dur::from_secs_f64(self.jitter.apply(self.cfg.metadata_latency * 0.5, rng)))
    }

    fn effective_bandwidth(&self, stripe_count: u32) -> f64 {
        self.cfg.ost_bandwidth * stripe_count.min(self.cfg.ost_count) as f64
    }

    /// Cost of reading `len` bytes at `offset`. Fails if the range exceeds
    /// the file size.
    pub fn read<R: Rng + ?Sized>(
        &mut self,
        id: FileId,
        offset: u64,
        len: u64,
        now: Time,
        rng: &mut R,
    ) -> Result<Dur> {
        let f = self.meta(id)?;
        if offset.saturating_add(len) > f.size {
            return Err(DtfError::Io(format!(
                "read past EOF: {}..{} of {} ({})",
                offset,
                offset.saturating_add(len),
                f.size,
                f.path
            )));
        }
        let bw = self.effective_bandwidth(f.stripe_count);
        let base = self.cfg.op_latency + len as f64 / bw * self.interference.factor(now);
        self.counters.reads += 1;
        self.counters.bytes_read += len;
        Ok(Dur::from_secs_f64(self.jitter.apply(base, rng)))
    }

    /// Cost of writing `len` bytes at `offset`; extends the file if needed.
    pub fn write<R: Rng + ?Sized>(
        &mut self,
        id: FileId,
        offset: u64,
        len: u64,
        now: Time,
        rng: &mut R,
    ) -> Result<Dur> {
        let stripe_count = self.meta(id)?.stripe_count;
        let bw = self.effective_bandwidth(stripe_count) / self.cfg.write_penalty;
        let base = self.cfg.op_latency + len as f64 / bw * self.interference.factor(now);
        let f = &mut self.files[id.0 as usize];
        f.size = f.size.max(offset.saturating_add(len));
        self.counters.writes += 1;
        self.counters.bytes_written += len;
        Ok(Dur::from_secs_f64(self.jitter.apply(base, rng)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn quiet_pfs() -> Pfs {
        let cfg = PfsConfig { jitter_sigma: 0.0, ..Default::default() };
        Pfs::new(cfg, LoadProcess::none(1))
    }

    #[test]
    fn create_lookup_and_meta() {
        let mut pfs = quiet_pfs();
        let id = pfs.create("/data/img_000.tif", 80 << 20, 4);
        assert_eq!(pfs.lookup("/data/img_000.tif"), Some(id));
        assert_eq!(pfs.lookup("/nope"), None);
        let m = pfs.meta(id).unwrap();
        assert_eq!(m.size, 80 << 20);
        assert_eq!(m.stripe_count, 4);
        assert_eq!(pfs.file_count(), 1);
    }

    #[test]
    fn create_same_path_truncates_not_duplicates() {
        let mut pfs = quiet_pfs();
        let a = pfs.create("/f", 100, 1);
        let b = pfs.create("/f", 50, 2);
        assert_eq!(a, b);
        assert_eq!(pfs.file_count(), 1);
        assert_eq!(pfs.meta(a).unwrap().size, 50);
    }

    #[test]
    fn read_past_eof_is_error() {
        let mut pfs = quiet_pfs();
        let id = pfs.create("/f", 100, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(pfs.read(id, 0, 100, Time::ZERO, &mut rng).is_ok());
        assert!(pfs.read(id, 50, 51, Time::ZERO, &mut rng).is_err());
        assert!(pfs.read(id, u64::MAX, 1, Time::ZERO, &mut rng).is_err());
    }

    #[test]
    fn write_extends_file() {
        let mut pfs = quiet_pfs();
        let id = pfs.create("/f", 0, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        pfs.write(id, 0, 1000, Time::ZERO, &mut rng).unwrap();
        assert_eq!(pfs.meta(id).unwrap().size, 1000);
        pfs.write(id, 500, 100, Time::ZERO, &mut rng).unwrap();
        assert_eq!(pfs.meta(id).unwrap().size, 1000, "interior write must not shrink");
    }

    #[test]
    fn larger_reads_cost_more_and_striping_helps() {
        let mut pfs = quiet_pfs();
        let one = pfs.create("/one", 1 << 30, 1);
        let eight = pfs.create("/eight", 1 << 30, 8);
        let mut rng = SmallRng::seed_from_u64(1);
        let small = pfs.read(one, 0, 4096, Time::ZERO, &mut rng).unwrap();
        let big = pfs.read(one, 0, 256 << 20, Time::ZERO, &mut rng).unwrap();
        assert!(big > small);
        let striped = pfs.read(eight, 0, 256 << 20, Time::ZERO, &mut rng).unwrap();
        assert!(striped < big, "8-way stripe {striped} should beat 1-way {big}");
    }

    #[test]
    fn writes_slower_than_reads() {
        let mut pfs = quiet_pfs();
        let id = pfs.create("/f", 1 << 30, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let r = pfs.read(id, 0, 128 << 20, Time::ZERO, &mut rng).unwrap();
        let w = pfs.write(id, 0, 128 << 20, Time::ZERO, &mut rng).unwrap();
        assert!(w > r, "write {w} should exceed read {r}");
    }

    #[test]
    fn counters_accumulate() {
        let mut pfs = quiet_pfs();
        let id = pfs.create("/f", 1 << 20, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        pfs.open(id, &mut rng).unwrap();
        pfs.read(id, 0, 1024, Time::ZERO, &mut rng).unwrap();
        pfs.read(id, 1024, 1024, Time::ZERO, &mut rng).unwrap();
        pfs.write(id, 0, 512, Time::ZERO, &mut rng).unwrap();
        pfs.close(id, &mut rng).unwrap();
        let c = pfs.counters();
        assert_eq!((c.opens, c.closes, c.reads, c.writes), (1, 1, 2, 1));
        assert_eq!(c.bytes_read, 2048);
        assert_eq!(c.bytes_written, 512);
    }

    #[test]
    fn interference_bursts_slow_reads() {
        let cfg = PfsConfig { jitter_sigma: 0.0, ..Default::default() };
        let mut quiet = Pfs::new(cfg.clone(), LoadProcess::none(1));
        let mut noisy = Pfs::new(cfg, LoadProcess::pfs_default(1));
        let qid = quiet.create("/f", 1 << 30, 1);
        let nid = noisy.create("/f", 1 << 30, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let mean = |pfs: &mut Pfs, id, rng: &mut SmallRng| {
            (0..400)
                .map(|i| {
                    pfs.read(id, 0, 64 << 20, Time::from_secs_f64(i as f64 * 5.0), rng)
                        .unwrap()
                        .as_secs_f64()
                })
                .sum::<f64>()
                / 400.0
        };
        let q = mean(&mut quiet, qid, &mut rng);
        let n = mean(&mut noisy, nid, &mut rng);
        assert!(n > q, "interference mean {n} should exceed quiet {q}");
    }

    #[test]
    fn unknown_file_is_not_found() {
        let mut pfs = quiet_pfs();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(matches!(pfs.open(FileId(99), &mut rng), Err(DtfError::NotFound(_))));
    }
}
