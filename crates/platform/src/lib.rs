//! # dtf-platform
//!
//! Simulated HPC platform substrate: cluster topology (nodes, switches),
//! a network cost model, a Lustre-like parallel filesystem with stochastic
//! interference, per-node performance heterogeneity, and a PBS-like job
//! scheduler that allocates nodes with placement variability.
//!
//! This crate substitutes for ALCF Polaris + Lustre in the paper's
//! evaluation. The substitution preserves the paper's *variability sources*
//! (§V): node placement relative to switches, scheduler↔worker distance,
//! PFS interference from co-running applications, and per-node performance
//! differences — each modelled as a seeded stochastic process so that
//! repeated runs of the same workflow vary the way real runs do, while any
//! single `(seed, run)` pair stays exactly reproducible.

pub mod interference;
pub mod job;
pub mod network;
pub mod pfs;
pub mod sysprov;
pub mod topology;

pub use interference::LoadProcess;
pub use job::{JobRequest, JobScheduler};
pub use network::{NetworkConfig, NetworkModel};
pub use pfs::{Pfs, PfsConfig, PfsFile};
pub use topology::{ClusterTopology, Distance, NodeProfile};
