//! Cluster topology: nodes grouped under switches, with per-node
//! performance profiles.
//!
//! The paper (§III-E1, §V) names two placement-related variability sources:
//! the allocated nodes may sit under different switches (extra hops between
//! scheduler and workers), and nominally identical nodes differ slightly in
//! effective performance. Both are first-class here.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dtf_core::dist::{Normal, Sample};
use dtf_core::ids::NodeId;

/// Network distance classes between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Distance {
    /// Same node: loopback / shared memory.
    SameNode,
    /// Different nodes under the same switch.
    SameSwitch,
    /// Different switch groups: one or more extra hops.
    CrossSwitch { hops: u32 },
}

/// Per-node effective performance profile, drawn once per run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeProfile {
    /// Multiplier on compute durations (1.0 = nominal; >1 = slower node).
    pub compute_factor: f64,
    /// Multiplier on this node's NIC effective latency.
    pub nic_factor: f64,
}

impl Default for NodeProfile {
    fn default() -> Self {
        Self { compute_factor: 1.0, nic_factor: 1.0 }
    }
}

/// A cluster of `node_count` nodes, `nodes_per_switch` under each switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterTopology {
    pub node_count: u32,
    pub nodes_per_switch: u32,
    profiles: Vec<NodeProfile>,
}

impl ClusterTopology {
    /// Build a topology with nominal (factor = 1) node profiles.
    pub fn uniform(node_count: u32, nodes_per_switch: u32) -> Self {
        assert!(node_count > 0 && nodes_per_switch > 0);
        Self {
            node_count,
            nodes_per_switch,
            profiles: vec![NodeProfile::default(); node_count as usize],
        }
    }

    /// Build a topology with heterogeneous node profiles: compute and NIC
    /// factors drawn from `N(1, sigma)` clamped to `[0.9, 1.25]`.
    pub fn heterogeneous<R: Rng + ?Sized>(
        node_count: u32,
        nodes_per_switch: u32,
        sigma: f64,
        rng: &mut R,
    ) -> Self {
        let dist = Normal::new(1.0, sigma);
        let profiles = (0..node_count)
            .map(|_| NodeProfile {
                compute_factor: dist.sample(rng).clamp(0.9, 1.25),
                nic_factor: dist.sample(rng).clamp(0.9, 1.25),
            })
            .collect();
        Self { node_count, nodes_per_switch, profiles }
    }

    /// Polaris-like topology (§IV-A): 560 nodes; Slingshot dragonfly groups
    /// approximated as switches of 16 nodes.
    pub fn polaris_like<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::heterogeneous(560, 16, 0.02, rng)
    }

    pub fn switch_of(&self, n: NodeId) -> u32 {
        assert!(n.0 < self.node_count, "node {n} outside cluster");
        n.0 / self.nodes_per_switch
    }

    /// Distance class between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Distance {
        if a == b {
            return Distance::SameNode;
        }
        let (sa, sb) = (self.switch_of(a), self.switch_of(b));
        if sa == sb {
            Distance::SameSwitch
        } else {
            // Dragonfly-ish: group distance grows slowly; model 1 extra hop
            // per 8 switch groups of separation, at least 1.
            let hops = 1 + sa.abs_diff(sb) / 8;
            Distance::CrossSwitch { hops }
        }
    }

    pub fn profile(&self, n: NodeId) -> NodeProfile {
        self.profiles[n.0 as usize]
    }

    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn distance_classes() {
        let t = ClusterTopology::uniform(64, 16);
        assert_eq!(t.distance(NodeId(3), NodeId(3)), Distance::SameNode);
        assert_eq!(t.distance(NodeId(0), NodeId(15)), Distance::SameSwitch);
        assert!(matches!(t.distance(NodeId(0), NodeId(16)), Distance::CrossSwitch { hops: 1 }));
    }

    #[test]
    fn distance_is_symmetric() {
        let t = ClusterTopology::uniform(128, 16);
        for a in [0u32, 5, 17, 100] {
            for b in [0u32, 5, 17, 100] {
                assert_eq!(t.distance(NodeId(a), NodeId(b)), t.distance(NodeId(b), NodeId(a)));
            }
        }
    }

    #[test]
    fn cross_switch_hops_grow_with_separation() {
        let t = ClusterTopology::uniform(560, 16);
        let near = t.distance(NodeId(0), NodeId(16));
        let far = t.distance(NodeId(0), NodeId(559));
        let (Distance::CrossSwitch { hops: hn }, Distance::CrossSwitch { hops: hf }) = (near, far)
        else {
            panic!("expected cross-switch distances");
        };
        assert!(hf > hn, "far hops {hf} should exceed near hops {hn}");
    }

    #[test]
    fn heterogeneous_profiles_vary_but_stay_bounded() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = ClusterTopology::heterogeneous(100, 16, 0.05, &mut rng);
        let factors: Vec<f64> = t.nodes().map(|n| t.profile(n).compute_factor).collect();
        assert!(factors.iter().any(|&f| (f - 1.0).abs() > 1e-6), "profiles should vary");
        assert!(factors.iter().all(|&f| (0.9..=1.25).contains(&f)));
    }

    #[test]
    fn uniform_profiles_are_nominal() {
        let t = ClusterTopology::uniform(4, 2);
        for n in t.nodes() {
            assert_eq!(t.profile(n).compute_factor, 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "outside cluster")]
    fn switch_of_out_of_range_panics() {
        let t = ClusterTopology::uniform(4, 2);
        t.switch_of(NodeId(4));
    }
}
