//! Assembly of the static provenance chart (layers 1–2 of the paper's
//! Fig. 1) for a concrete platform instance + job allocation.

use dtf_core::provenance::{HardwareInfo, JobInfo, ProvenanceChart, SystemInfo, WmsConfig};

use crate::topology::ClusterTopology;

/// Capture the hardware / system-software / job provenance for one run.
///
/// `client_code_hash` identifies the workflow program (the paper collects
/// the client code itself; we collect a stable hash of the workload spec).
pub fn capture_chart(
    topo: &ClusterTopology,
    job: JobInfo,
    wms_config: WmsConfig,
    workflow_name: &str,
    client_code_hash: u64,
) -> ProvenanceChart {
    ProvenanceChart {
        hardware: HardwareInfo::polaris_like(topo.node_count),
        system: SystemInfo::synthetic(),
        job,
        wms_config,
        client_code_hash,
        workflow_name: workflow_name.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::ids::NodeId;
    use dtf_core::time::Time;

    #[test]
    fn chart_reflects_topology_and_job() {
        let topo = ClusterTopology::uniform(560, 16);
        let job = JobInfo {
            job_id: 42,
            script: String::new(),
            queue: "prod".into(),
            nodes_requested: 3,
            allocated_nodes: vec![NodeId(0), NodeId(1), NodeId(2)],
            submit_time: Time::ZERO,
            start_time: Time::ZERO,
            walltime_limit_s: 3600,
        };
        let chart = capture_chart(&topo, job, WmsConfig::default(), "xgboost", 0xabc);
        assert_eq!(chart.hardware.node_count, 560);
        assert_eq!(chart.job.job_id, 42);
        assert_eq!(chart.workflow_name, "xgboost");
        assert_eq!(chart.client_code_hash, 0xabc);
        // serializes (FAIR: the chart is stored alongside run data)
        let js = serde_json::to_string(&chart).unwrap();
        assert!(js.contains("EPYC"));
    }
}
