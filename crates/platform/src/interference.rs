//! Background interference processes.
//!
//! HPC storage and network resources are shared with other jobs; the paper
//! cites I/O interference as a prominent variability source at scale
//! ([15], [16] in the paper). We model interference as a piecewise-constant
//! load factor: time is cut into fixed windows and each window's factor is
//! drawn independently from a mixture of "quiet" (factor ≈ 1) and "burst"
//! (heavy-tailed slowdown) regimes.
//!
//! The factor for a window is a pure function of `(seed, window_index)`, so
//! queries may arrive in any time order (different simulated components
//! interleave) and the process is still deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dtf_core::dist::{BoundedPareto, Sample};
use dtf_core::time::{Dur, Time};

/// A stationary, windowed background-load process.
#[derive(Debug, Clone)]
pub struct LoadProcess {
    seed: u64,
    window: Dur,
    /// Probability a window is a burst window.
    burst_prob: f64,
    /// Burst slowdown factor distribution.
    burst: BoundedPareto,
    /// Quiet-regime maximum extra load (uniform in `[1, 1 + quiet_spread]`).
    quiet_spread: f64,
    /// Scheduled bursts `(start, stop, factor)` multiplied on top of the
    /// stochastic factor while `start <= t < stop` (fault injection).
    forced: Vec<(Time, Time, f64)>,
}

impl LoadProcess {
    pub fn new(
        seed: u64,
        window: Dur,
        burst_prob: f64,
        burst: BoundedPareto,
        quiet_spread: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&burst_prob));
        assert!(quiet_spread >= 0.0);
        assert!(window > Dur::ZERO);
        Self { seed, window, burst_prob, burst, quiet_spread, forced: Vec::new() }
    }

    /// Overlay deterministic burst windows `(start, stop, factor)`; within
    /// a window the stochastic factor is multiplied by `factor`. Used by
    /// the chaos harness to schedule interference at chosen times.
    pub fn with_forced_bursts(mut self, bursts: Vec<(Time, Time, f64)>) -> Self {
        assert!(bursts.iter().all(|(s, e, f)| e > s && *f >= 1.0));
        self.forced = bursts;
        self
    }

    /// Typical PFS interference: 5 s windows, 8 % burst probability,
    /// bursts slowing I/O 1.5–8x, quiet windows within 10 % of nominal.
    pub fn pfs_default(seed: u64) -> Self {
        Self::new(seed, Dur::from_secs_f64(5.0), 0.08, BoundedPareto::new(1.5, 8.0, 1.2), 0.10)
    }

    /// Typical network congestion: shorter windows, milder bursts.
    pub fn network_default(seed: u64) -> Self {
        Self::new(seed, Dur::from_secs_f64(2.0), 0.05, BoundedPareto::new(1.2, 4.0, 1.5), 0.05)
    }

    /// A process that always returns exactly 1 (for ablations).
    pub fn none(seed: u64) -> Self {
        Self::new(seed, Dur::from_secs_f64(1.0), 0.0, BoundedPareto::new(1.0 + 1e-9, 2.0, 1.0), 0.0)
    }

    fn window_index(&self, t: Time) -> u64 {
        t.0 / self.window.0
    }

    /// Load factor (>= 1) in effect at time `t`.
    pub fn factor(&self, t: Time) -> f64 {
        let forced: f64 =
            self.forced.iter().filter(|(s, e, _)| *s <= t && t < *e).map(|(_, _, f)| f).product();
        forced * self.base_factor(t)
    }

    fn base_factor(&self, t: Time) -> f64 {
        let w = self.window_index(t);
        // splitmix-style mix of seed and window index for an independent
        // per-window stream
        let mut z = self.seed ^ w.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let mut rng = SmallRng::seed_from_u64(z ^ (z >> 31));
        if rng.gen::<f64>() < self.burst_prob {
            self.burst.sample(&mut rng)
        } else if self.quiet_spread > 0.0 {
            1.0 + rng.gen::<f64>() * self.quiet_spread
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_is_deterministic_and_order_independent() {
        let p = LoadProcess::pfs_default(42);
        let t1 = Time::from_secs_f64(3.0);
        let t2 = Time::from_secs_f64(100.0);
        let (a1, a2) = (p.factor(t1), p.factor(t2));
        // query in reverse order
        let (b2, b1) = (p.factor(t2), p.factor(t1));
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
    }

    #[test]
    fn same_window_same_factor() {
        let p = LoadProcess::pfs_default(7);
        let a = p.factor(Time::from_secs_f64(10.1));
        let b = p.factor(Time::from_secs_f64(14.9)); // same 5s window [10, 15)
        assert_eq!(a, b);
    }

    #[test]
    fn factors_at_least_one_and_bounded() {
        let p = LoadProcess::pfs_default(9);
        for i in 0..10_000 {
            let f = p.factor(Time::from_secs_f64(i as f64 * 0.7));
            assert!((1.0..=8.0 + 1e-9).contains(&f), "factor {f}");
        }
    }

    #[test]
    fn bursts_occur_at_roughly_configured_rate() {
        let p = LoadProcess::pfs_default(11);
        let mut bursts = 0;
        let n = 20_000;
        for i in 0..n {
            // one sample per window
            if p.factor(Time(Dur::from_secs_f64(5.0).0 * i + 1)) >= 1.5 {
                bursts += 1;
            }
        }
        let rate = bursts as f64 / n as f64;
        assert!((0.05..0.12).contains(&rate), "burst rate {rate}");
    }

    #[test]
    fn none_process_is_identity() {
        let p = LoadProcess::none(5);
        for i in 0..1000 {
            assert_eq!(p.factor(Time::from_secs_f64(i as f64)), 1.0);
        }
    }

    #[test]
    fn forced_bursts_multiply_within_their_window_only() {
        let base = LoadProcess::none(3);
        let p = base.clone().with_forced_bursts(vec![(
            Time::from_secs_f64(10.0),
            Time::from_secs_f64(20.0),
            4.0,
        )]);
        assert_eq!(p.factor(Time::from_secs_f64(9.9)), base.factor(Time::from_secs_f64(9.9)));
        assert_eq!(
            p.factor(Time::from_secs_f64(10.0)),
            4.0 * base.factor(Time::from_secs_f64(10.0))
        );
        assert_eq!(
            p.factor(Time::from_secs_f64(19.9)),
            4.0 * base.factor(Time::from_secs_f64(19.9))
        );
        assert_eq!(p.factor(Time::from_secs_f64(20.0)), base.factor(Time::from_secs_f64(20.0)));
        // overlapping bursts compound
        let q = LoadProcess::none(3).with_forced_bursts(vec![
            (Time::ZERO, Time::from_secs_f64(5.0), 2.0),
            (Time::ZERO, Time::from_secs_f64(5.0), 3.0),
        ]);
        assert_eq!(q.factor(Time::from_secs_f64(1.0)), 6.0);
    }

    #[test]
    fn different_seeds_give_different_processes() {
        let a = LoadProcess::pfs_default(1);
        let b = LoadProcess::pfs_default(2);
        let differs = (0..100).any(|i| {
            a.factor(Time::from_secs_f64(i as f64 * 5.0))
                != b.factor(Time::from_secs_f64(i as f64 * 5.0))
        });
        assert!(differs);
    }
}
