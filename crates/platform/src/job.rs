//! PBS-like job scheduler: allocates nodes with placement variability.
//!
//! The paper notes (§III-E1) that "the allocated nodes may vary in
//! performance due to factors such as network topology" and that scheduler /
//! worker placement across switches changes latency. The allocator below
//! reproduces that: with probability `scatter_prob` an allocation is
//! scattered across distant switches instead of packed under one.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use dtf_core::error::{DtfError, Result};
use dtf_core::ids::NodeId;
use dtf_core::provenance::JobInfo;
use dtf_core::time::Time;

use crate::topology::ClusterTopology;

/// A resource request (the job-script analog).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    pub nodes: u32,
    pub walltime_limit_s: u64,
    pub queue: String,
}

impl JobRequest {
    /// The paper's job configuration: 2 worker nodes + 1 scheduler/client
    /// node (we fold scheduler and client onto the first allocated node).
    pub fn paper_default() -> Self {
        Self { nodes: 3, walltime_limit_s: 3600, queue: "prod".into() }
    }
}

/// Allocation policy knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocPolicy {
    /// Probability that the allocation is scattered across the cluster
    /// instead of packed under contiguous switches.
    pub scatter_prob: f64,
}

impl Default for AllocPolicy {
    fn default() -> Self {
        Self { scatter_prob: 0.35 }
    }
}

/// The job scheduler. Holds no queue state — each `allocate` models one
/// independent batch-job placement, which is how the paper's repeated runs
/// behave (each run is a fresh `qsub`).
#[derive(Debug)]
pub struct JobScheduler {
    policy: AllocPolicy,
    next_job_id: u64,
}

impl JobScheduler {
    pub fn new(policy: AllocPolicy) -> Self {
        Self { policy, next_job_id: 1000 }
    }

    /// Allocate nodes for `req` at `submit_time`. The start delay (queue
    /// wait) is drawn in `[0, 30]` s — short because the paper's jobs are
    /// small — and the node set is packed or scattered per policy.
    pub fn allocate<R: Rng + ?Sized>(
        &mut self,
        topo: &ClusterTopology,
        req: &JobRequest,
        submit_time: Time,
        rng: &mut R,
    ) -> Result<JobInfo> {
        if req.nodes == 0 || req.nodes > topo.node_count {
            return Err(DtfError::Config(format!(
                "cannot allocate {} nodes from a {}-node cluster",
                req.nodes, topo.node_count
            )));
        }
        let scattered = rng.gen::<f64>() < self.policy.scatter_prob;
        let allocated_nodes: Vec<NodeId> = if scattered {
            // sample distinct nodes uniformly over the cluster
            let mut all: Vec<u32> = (0..topo.node_count).collect();
            all.shuffle(rng);
            let mut picked: Vec<u32> = all.into_iter().take(req.nodes as usize).collect();
            picked.sort_unstable();
            picked.into_iter().map(NodeId).collect()
        } else {
            // pack under a random switch-aligned base
            let span = req.nodes;
            let base_max = topo.node_count - span;
            let aligned = (base_max / topo.nodes_per_switch).max(1);
            let base = (rng.gen_range(0..aligned)) * topo.nodes_per_switch;
            (base..base + span).map(NodeId).collect()
        };
        let queue_wait = rng.gen_range(0.0..30.0);
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        Ok(JobInfo {
            job_id,
            script: format!(
                "#!/bin/bash\n#PBS -l select={}:system=polaris\n#PBS -l walltime={}\n#PBS -q {}\n",
                req.nodes, req.walltime_limit_s, req.queue
            ),
            queue: req.queue.clone(),
            nodes_requested: req.nodes,
            allocated_nodes,
            submit_time,
            start_time: submit_time + dtf_core::time::Dur::from_secs_f64(queue_wait),
            walltime_limit_s: req.walltime_limit_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn allocation_has_right_node_count_and_distinct_nodes() {
        let topo = ClusterTopology::uniform(560, 16);
        let mut js = JobScheduler::new(AllocPolicy::default());
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let job =
                js.allocate(&topo, &JobRequest::paper_default(), Time::ZERO, &mut rng).unwrap();
            assert_eq!(job.allocated_nodes.len(), 3);
            let mut uniq = job.allocated_nodes.clone();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "nodes must be distinct");
            assert!(job.allocated_nodes.iter().all(|n| n.0 < 560));
            assert!(job.start_time >= job.submit_time);
        }
    }

    #[test]
    fn job_ids_increase() {
        let topo = ClusterTopology::uniform(64, 16);
        let mut js = JobScheduler::new(AllocPolicy::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let a = js.allocate(&topo, &JobRequest::paper_default(), Time::ZERO, &mut rng).unwrap();
        let b = js.allocate(&topo, &JobRequest::paper_default(), Time::ZERO, &mut rng).unwrap();
        assert!(b.job_id > a.job_id);
    }

    #[test]
    fn scattered_allocations_occur_at_policy_rate() {
        let topo = ClusterTopology::uniform(560, 16);
        let mut js = JobScheduler::new(AllocPolicy { scatter_prob: 0.5 });
        let mut rng = SmallRng::seed_from_u64(3);
        let mut scattered = 0;
        let trials = 400;
        for _ in 0..trials {
            let job =
                js.allocate(&topo, &JobRequest::paper_default(), Time::ZERO, &mut rng).unwrap();
            // packed allocations are contiguous node ranges
            let contiguous = job.allocated_nodes.windows(2).all(|w| w[1].0 == w[0].0 + 1);
            if !contiguous {
                scattered += 1;
            }
        }
        let rate = scattered as f64 / trials as f64;
        // scattered draws can accidentally be contiguous, so rate <= 0.5
        assert!((0.3..=0.55).contains(&rate), "scatter rate {rate}");
    }

    #[test]
    fn packed_allocation_with_scatter_zero_is_always_contiguous() {
        let topo = ClusterTopology::uniform(64, 16);
        let mut js = JobScheduler::new(AllocPolicy { scatter_prob: 0.0 });
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let job = js
                .allocate(
                    &topo,
                    &JobRequest { nodes: 4, walltime_limit_s: 60, queue: "q".into() },
                    Time::ZERO,
                    &mut rng,
                )
                .unwrap();
            assert!(job.allocated_nodes.windows(2).all(|w| w[1].0 == w[0].0 + 1));
            // and switch-aligned
            assert_eq!(job.allocated_nodes[0].0 % 16, 0);
        }
    }

    #[test]
    fn oversized_request_rejected() {
        let topo = ClusterTopology::uniform(4, 2);
        let mut js = JobScheduler::new(AllocPolicy::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let req = JobRequest { nodes: 5, walltime_limit_s: 60, queue: "q".into() };
        assert!(js.allocate(&topo, &req, Time::ZERO, &mut rng).is_err());
        let req = JobRequest { nodes: 0, walltime_limit_s: 60, queue: "q".into() };
        assert!(js.allocate(&topo, &req, Time::ZERO, &mut rng).is_err());
    }

    #[test]
    fn script_records_request() {
        let topo = ClusterTopology::uniform(64, 16);
        let mut js = JobScheduler::new(AllocPolicy::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let job = js.allocate(&topo, &JobRequest::paper_default(), Time::ZERO, &mut rng).unwrap();
        assert!(job.script.contains("select=3"));
        assert!(job.script.contains("walltime=3600"));
    }
}
