//! ProxyStore-analog out-of-band data plane for large task outputs.
//!
//! Task outputs whose size crosses [`ProxyConfig::threshold`] are *published*
//! to a store-backed blob plane (reusing the Warabi blob abstraction from
//! `dtf-mofka`, and through it the `dtf-store` segmented log when durable):
//! a small typed [`ProxyRef`] — key, size, owner, checksum, generation —
//! travels through the scheduler, the Mofka provenance stream, and dependent
//! tasks instead of the payload. Dependents *resolve* the proxy lazily on
//! first use through a per-worker resolver cache with a byte budget;
//! resolution is exactly-once per `(key, worker)` pair no matter how many
//! duplicated or delayed fetch completions race in.
//!
//! The plane is an accounting / provenance / persistence overlay: it never
//! changes what the scheduler decides, so a simulated run with the plane
//! disabled is byte-identical to the same run with it enabled. What changes
//! is *attribution* — with the plane on, only `ProxyRef::wire_size()` bytes
//! per proxied dependency are scheduler-mediated (in-band); the payload
//! moves peer-to-peer out-of-band.
//!
//! Failure handling (see DESIGN.md §18 for the full state machine):
//! - a *dangling* manifest blob (lost to truncation or fault injection) is
//!   repaired by republishing from the live owner with a generation bump;
//! - if the owner is dead but a resolved replica survives, ownership
//!   *re-sources* to the smallest surviving replica (repairing the blob too
//!   when it dangles);
//! - if the owner is dead and no replica survives a dangling blob, the
//!   proxy is *orphaned* and resolution surfaces
//!   [`DtfError::IllegalState`] naming the proxy key — dependents fall back
//!   to the scheduler's recompute path.

use std::collections::{BTreeMap, BTreeSet};

use dtf_core::error::{DtfError, Result};
use dtf_core::events::{ProxyAction, ProxyEvent};
use dtf_core::ids::{GraphId, TaskKey, WorkerId};
use dtf_core::time::Time;
use dtf_mofka::warabi::{BlobId, Warabi};

/// Data-plane configuration, embedded in the simulator config as a
/// serde-defaulted field so pre-proxy config documents parse unchanged.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProxyConfig {
    /// Master switch. Off (the default) short-circuits every hook.
    #[serde(default = "Default::default")]
    pub enabled: bool,
    /// Outputs of at least this many bytes are proxied.
    #[serde(default = "default_threshold")]
    pub threshold: u64,
    /// Per-worker resolver-cache byte budget (LRU eviction beyond it).
    #[serde(default = "default_cache_bytes")]
    pub resolver_cache_bytes: u64,
}

fn default_threshold() -> u64 {
    4 << 20
}

fn default_cache_bytes() -> u64 {
    256 << 20
}

impl Default for ProxyConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            threshold: default_threshold(),
            resolver_cache_bytes: default_cache_bytes(),
        }
    }
}

/// The typed reference that travels in place of the payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProxyRef {
    pub key: TaskKey,
    pub graph: GraphId,
    /// Payload size in bytes (stays out-of-band).
    pub size: u64,
    /// Worker whose memory holds the authoritative payload copy.
    pub owner: WorkerId,
    /// FNV-1a content fingerprint, verified on resolve.
    pub checksum: u64,
    /// Manifest generation; bumped by every republish / re-source.
    pub generation: u32,
}

impl ProxyRef {
    /// Bytes this reference occupies on the wire — the scheduler-mediated
    /// (in-band) cost of a proxied dependency. The payload's `size` bytes
    /// move out-of-band.
    pub fn wire_size(&self) -> u64 {
        serde_json::to_string(self).expect("proxy ref serializes").len() as u64
    }
}

/// Deterministic FNV-1a fingerprint of a proxied payload's identity.
pub fn payload_checksum(key: &TaskKey, size: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_string().bytes().chain(size.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What a [`ProxyPlane::resolve`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveOutcome {
    /// First resolution for this `(key, worker)` pair: the payload
    /// materialized into the worker's resolver cache.
    Fresh,
    /// The pair had already resolved — duplicated fetch completions and
    /// replayed lifecycles dedup here (exactly-once).
    Deduped,
}

/// Running totals the ablation bench and the data-movement view read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaneStats {
    pub published: u64,
    pub republished: u64,
    pub resolved: u64,
    pub deduped: u64,
    pub evicted: u64,
    pub resourced: u64,
    pub orphaned: u64,
    /// Scheduler-mediated bytes for proxied dependencies (`ProxyRef` wire
    /// size per resolve).
    pub in_band_bytes: u64,
    /// Peer-to-peer payload bytes that left the scheduler path.
    pub out_of_band_bytes: u64,
}

#[derive(Debug)]
struct DirEntry {
    r: ProxyRef,
    blob: BlobId,
    /// Workers holding a resolved (cached) copy of the payload.
    replicas: BTreeSet<WorkerId>,
}

#[derive(Debug, Default)]
struct WorkerCache {
    /// key → (payload size, LRU clock at last touch).
    entries: BTreeMap<TaskKey, (u64, u64)>,
    bytes: u64,
}

/// The out-of-band data plane: blob-backed manifests plus per-worker
/// resolver caches. Deterministic — all iteration is over ordered maps and
/// every decision is a pure function of the call sequence.
pub struct ProxyPlane {
    cfg: ProxyConfig,
    store: Warabi,
    dir: BTreeMap<TaskKey, DirEntry>,
    /// Exactly-once ledger: pairs that have resolved.
    resolved: BTreeSet<(TaskKey, WorkerId)>,
    caches: BTreeMap<WorkerId, WorkerCache>,
    /// Blob ids whose payload is gone (fault injection or real loss).
    dangling: BTreeSet<BlobId>,
    dead: BTreeSet<WorkerId>,
    publish_seq: u64,
    resolve_seq: u64,
    lru_clock: u64,
    stats: PlaneStats,
}

impl ProxyPlane {
    /// In-memory plane (simulated runs).
    pub fn new(cfg: ProxyConfig) -> Self {
        Self::with_store(cfg, Warabi::new())
    }

    /// Durable plane: manifests persist through the dtf-store segmented log
    /// and survive the process.
    pub fn durable(cfg: ProxyConfig, dir: &std::path::Path) -> Result<Self> {
        let (store, _report) = Warabi::durable(dir)?;
        Ok(Self::with_store(cfg, store))
    }

    pub fn with_store(cfg: ProxyConfig, store: Warabi) -> Self {
        Self {
            cfg,
            store,
            dir: BTreeMap::new(),
            resolved: BTreeSet::new(),
            caches: BTreeMap::new(),
            dangling: BTreeSet::new(),
            dead: BTreeSet::new(),
            publish_seq: 0,
            resolve_seq: 0,
            lru_clock: 0,
            stats: PlaneStats::default(),
        }
    }

    pub fn config(&self) -> &ProxyConfig {
        &self.cfg
    }

    pub fn stats(&self) -> &PlaneStats {
        &self.stats
    }

    /// Whether an output of `nbytes` takes the out-of-band path.
    pub fn should_proxy(&self, nbytes: u64) -> bool {
        self.cfg.enabled && nbytes >= self.cfg.threshold
    }

    /// Published manifests so far — the index the `DanglingProxy` fault
    /// schedule keys on (next publish gets this index).
    pub fn publish_count(&self) -> u64 {
        self.publish_seq
    }

    /// Resolves attempted so far — the index `SlowResolve` faults key on.
    pub fn resolve_count(&self) -> u64 {
        self.resolve_seq
    }

    pub fn proxy_ref(&self, key: &TaskKey) -> Option<&ProxyRef> {
        self.dir.get(key).map(|e| &e.r)
    }

    fn write_manifest(store: &Warabi, r: &ProxyRef) -> BlobId {
        store.put(serde_json::to_vec(r).expect("manifest serializes"))
    }

    fn event(
        r: &ProxyRef,
        action: ProxyAction,
        worker: Option<WorkerId>,
        time: Time,
    ) -> ProxyEvent {
        ProxyEvent {
            action,
            key: r.key.clone(),
            graph: r.graph,
            size: r.size,
            owner: r.owner,
            checksum: r.checksum,
            generation: r.generation,
            worker,
            time,
        }
    }

    /// Publish a finished task's output. A re-publication of a known key
    /// (the task recomputed after its output was lost) bumps the generation
    /// and moves ownership to the new completing worker.
    pub fn publish(
        &mut self,
        key: &TaskKey,
        graph: GraphId,
        owner: WorkerId,
        size: u64,
        now: Time,
    ) -> (ProxyRef, ProxyEvent) {
        self.publish_seq += 1;
        if let Some(entry) = self.dir.get_mut(key) {
            entry.r.generation += 1;
            entry.r.owner = owner;
            entry.r.size = size;
            entry.r.checksum = payload_checksum(key, size);
            self.dangling.remove(&entry.blob);
            entry.blob = Self::write_manifest(&self.store, &entry.r);
            self.stats.republished += 1;
            let ev = Self::event(&entry.r, ProxyAction::Republished, None, now);
            return (entry.r.clone(), ev);
        }
        let r = ProxyRef {
            key: key.clone(),
            graph,
            size,
            owner,
            checksum: payload_checksum(key, size),
            generation: 0,
        };
        let blob = Self::write_manifest(&self.store, &r);
        self.dir.insert(key.clone(), DirEntry { r: r.clone(), blob, replicas: BTreeSet::new() });
        self.stats.published += 1;
        let ev = Self::event(&self.dir[key].r, ProxyAction::Published, None, now);
        (r, ev)
    }

    /// Fault injection: make the manifest blob behind `key` dangle, as if
    /// the store lost the payload. Returns false for unknown keys.
    pub fn damage(&mut self, key: &TaskKey) -> bool {
        match self.dir.get(key) {
            Some(e) => {
                self.dangling.insert(e.blob);
                true
            }
            None => false,
        }
    }

    /// Resolve `key` for dependent worker `to`. Exactly-once per
    /// `(key, to)`: duplicated completions return [`ResolveOutcome::Deduped`]
    /// with no events. A dangling blob is repaired from the live owner
    /// (generation bump); with the owner dead the error names the proxy key.
    pub fn resolve(
        &mut self,
        key: &TaskKey,
        to: WorkerId,
        now: Time,
    ) -> Result<(ResolveOutcome, Vec<ProxyEvent>)> {
        self.resolve_seq += 1;
        if self.resolved.contains(&(key.clone(), to)) {
            self.stats.deduped += 1;
            return Ok((ResolveOutcome::Deduped, Vec::new()));
        }
        let entry = self
            .dir
            .get_mut(key)
            .ok_or_else(|| DtfError::IllegalState(format!("resolve of unpublished proxy {key}")))?;
        let mut events = Vec::new();
        if self.dangling.contains(&entry.blob) || self.store.get(entry.blob).is_none() {
            if !self.dead.contains(&entry.r.owner) {
                // repair: the owner still holds the payload; republish
                entry.r.generation += 1;
                entry.r.checksum = payload_checksum(key, entry.r.size);
                self.dangling.remove(&entry.blob);
                entry.blob = Self::write_manifest(&self.store, &entry.r);
                self.stats.republished += 1;
                events.push(Self::event(&entry.r, ProxyAction::Republished, None, now));
            } else {
                return Err(DtfError::IllegalState(format!(
                    "dangling proxy {key}: blob {} missing and owner {} dead",
                    entry.blob,
                    entry.r.owner.address(),
                )));
            }
        }
        let expect = payload_checksum(key, entry.r.size);
        if entry.r.checksum != expect {
            return Err(DtfError::IllegalState(format!(
                "proxy {key} checksum mismatch: manifest {:#x}, payload {expect:#x}",
                entry.r.checksum
            )));
        }
        entry.replicas.insert(to);
        let r = entry.r.clone();
        self.resolved.insert((key.clone(), to));
        self.stats.resolved += 1;
        self.stats.in_band_bytes += r.wire_size();
        self.stats.out_of_band_bytes += r.size;
        events.push(Self::event(&r, ProxyAction::Resolved, Some(to), now));
        // admit into the resolver cache, evicting LRU entries beyond budget
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let cache = self.caches.entry(to).or_default();
        cache.entries.insert(key.clone(), (r.size, clock));
        cache.bytes += r.size;
        while cache.bytes > self.cfg.resolver_cache_bytes && cache.entries.len() > 1 {
            // least-recently-used victim, excluding the entry just admitted
            let victim = cache
                .entries
                .iter()
                .filter(|(k, _)| *k != key)
                .min_by_key(|(_, (_, at))| *at)
                .map(|(k, (sz, _))| (k.clone(), *sz))
                .expect("len > 1 guarantees a victim");
            cache.entries.remove(&victim.0);
            cache.bytes -= victim.1;
            if let Some(e) = self.dir.get_mut(&victim.0) {
                e.replicas.remove(&to);
                self.stats.evicted += 1;
                events.push(Self::event(&e.r, ProxyAction::Evicted, Some(to), now));
            }
        }
        Ok((ResolveOutcome::Fresh, events))
    }

    /// The owner-death half of the re-source protocol. Entries owned by the
    /// dead worker re-source to their smallest surviving replica; a dangling
    /// blob with no surviving replica orphans the proxy (dependents fall
    /// back to the scheduler's recompute path).
    pub fn worker_died(&mut self, worker: WorkerId, now: Time) -> Vec<ProxyEvent> {
        self.dead.insert(worker);
        let mut events = Vec::new();
        // the dead worker's resolver cache (and replica claims) vanish
        self.caches.remove(&worker);
        let keys: Vec<TaskKey> = self.dir.keys().cloned().collect();
        for key in keys {
            let entry = self.dir.get_mut(&key).expect("key just listed");
            entry.replicas.remove(&worker);
            if entry.r.owner != worker {
                continue;
            }
            let heir = entry.replicas.iter().next().copied();
            match heir {
                Some(new_owner) => {
                    entry.r.owner = new_owner;
                    entry.r.generation += 1;
                    entry.r.checksum = payload_checksum(&key, entry.r.size);
                    if self.dangling.contains(&entry.blob) || self.store.get(entry.blob).is_none() {
                        // the heir's cached copy also repairs the blob
                        self.dangling.remove(&entry.blob);
                        entry.blob = Self::write_manifest(&self.store, &entry.r);
                    }
                    self.stats.resourced += 1;
                    events.push(Self::event(&entry.r, ProxyAction::Resourced, Some(worker), now));
                }
                None => {
                    if self.dangling.contains(&entry.blob) || self.store.get(entry.blob).is_none() {
                        self.stats.orphaned += 1;
                        events.push(Self::event(&entry.r, ProxyAction::Orphaned, None, now));
                        let blob = entry.blob;
                        self.dangling.remove(&blob);
                        self.dir.remove(&key);
                    }
                    // healthy blob: the plane itself still serves resolves
                }
            }
        }
        events
    }

    /// Bytes a dependency transfer puts on the scheduler-mediated path:
    /// the `ProxyRef` wire size when `key` is proxied, else the payload.
    pub fn in_band_bytes(&self, key: &TaskKey, nbytes: u64) -> u64 {
        match self.dir.get(key) {
            Some(e) => e.r.wire_size(),
            None => nbytes,
        }
    }

    /// Number of live manifests.
    pub fn len(&self) -> usize {
        self.dir.len()
    }

    pub fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }

    /// Total manifest bytes in the blob plane (durability cost).
    pub fn manifest_bytes(&self) -> usize {
        self.store.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::ids::NodeId;

    fn key(i: u32) -> TaskKey {
        TaskKey::new("blob-task", 7, i)
    }

    fn wid(n: u32) -> WorkerId {
        WorkerId::new(NodeId(n), 0)
    }

    fn plane(threshold: u64, cache: u64) -> ProxyPlane {
        ProxyPlane::new(ProxyConfig { enabled: true, threshold, resolver_cache_bytes: cache })
    }

    #[test]
    fn publish_then_resolve_round_trip() {
        let mut p = plane(1 << 20, u64::MAX);
        assert!(p.should_proxy(1 << 20));
        assert!(!p.should_proxy((1 << 20) - 1));
        let (r, ev) = p.publish(&key(0), GraphId(3), wid(1), 8 << 20, Time::from_secs_f64(1.0));
        assert_eq!(ev.action, ProxyAction::Published);
        assert_eq!(r.generation, 0);
        assert_eq!(r.checksum, payload_checksum(&key(0), 8 << 20));
        assert!(r.wire_size() < 256, "refs must be small: {}", r.wire_size());
        let (out, evs) = p.resolve(&key(0), wid(2), Time::from_secs_f64(2.0)).unwrap();
        assert_eq!(out, ResolveOutcome::Fresh);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].action, ProxyAction::Resolved);
        assert_eq!(evs[0].worker, Some(wid(2)));
        assert_eq!(p.stats().resolved, 1);
        assert_eq!(p.stats().out_of_band_bytes, 8 << 20);
        assert!(p.stats().in_band_bytes < 256);
    }

    #[test]
    fn resolution_is_exactly_once_per_worker() {
        let mut p = plane(0, u64::MAX);
        p.publish(&key(0), GraphId(0), wid(1), 1000, Time::ZERO);
        let t = Time::from_secs_f64(1.0);
        assert_eq!(p.resolve(&key(0), wid(2), t).unwrap().0, ResolveOutcome::Fresh);
        // duplicated fetch completion replays the resolve: deduped, no events
        let (out, evs) = p.resolve(&key(0), wid(2), t).unwrap();
        assert_eq!(out, ResolveOutcome::Deduped);
        assert!(evs.is_empty());
        // a different dependent still resolves fresh
        assert_eq!(p.resolve(&key(0), wid(3), t).unwrap().0, ResolveOutcome::Fresh);
        assert_eq!(p.stats().resolved, 2);
        assert_eq!(p.stats().deduped, 1);
    }

    #[test]
    fn dangling_blob_repairs_from_live_owner() {
        let mut p = plane(0, u64::MAX);
        p.publish(&key(0), GraphId(0), wid(1), 4096, Time::ZERO);
        assert!(p.damage(&key(0)));
        let (out, evs) = p.resolve(&key(0), wid(2), Time::from_secs_f64(1.0)).unwrap();
        assert_eq!(out, ResolveOutcome::Fresh);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].action, ProxyAction::Republished);
        assert_eq!(evs[0].generation, 1);
        assert_eq!(evs[1].action, ProxyAction::Resolved);
        assert_eq!(evs[1].generation, 1);
        // repaired: the next dependent resolves without another republish
        let (_, evs) = p.resolve(&key(0), wid(3), Time::from_secs_f64(2.0)).unwrap();
        assert_eq!(evs.len(), 1);
    }

    #[test]
    fn dangling_blob_with_dead_owner_is_illegal_state_naming_the_key() {
        let mut p = plane(0, u64::MAX);
        p.publish(&key(9), GraphId(0), wid(1), 4096, Time::ZERO);
        p.damage(&key(9));
        let evs = p.worker_died(wid(1), Time::from_secs_f64(0.5));
        // no replica survived the dangling blob: orphaned
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].action, ProxyAction::Orphaned);
        let err = p.resolve(&key(9), wid(2), Time::from_secs_f64(1.0)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(&key(9).to_string()), "error must name the proxy key: {msg}");
        assert!(msg.to_lowercase().contains("proxy"), "error should say what dangled: {msg}");
    }

    #[test]
    fn owner_death_resources_to_surviving_replica() {
        let mut p = plane(0, u64::MAX);
        p.publish(&key(0), GraphId(0), wid(1), 4096, Time::ZERO);
        p.resolve(&key(0), wid(2), Time::from_secs_f64(1.0)).unwrap();
        p.resolve(&key(0), wid(3), Time::from_secs_f64(1.5)).unwrap();
        let evs = p.worker_died(wid(1), Time::from_secs_f64(2.0));
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].action, ProxyAction::Resourced);
        // deterministic heir: smallest surviving replica id
        assert_eq!(evs[0].owner, wid(2));
        assert_eq!(evs[0].worker, Some(wid(1)));
        assert_eq!(evs[0].generation, 1);
        assert_eq!(p.proxy_ref(&key(0)).unwrap().owner, wid(2));
        // even with the blob damaged, the heir's copy repairs it
        p.damage(&key(0));
        let evs = p.worker_died(wid(2), Time::from_secs_f64(3.0));
        assert_eq!(evs[0].action, ProxyAction::Resourced);
        assert_eq!(evs[0].owner, wid(3));
        let (out, _) = p.resolve(&key(0), wid(4), Time::from_secs_f64(4.0)).unwrap();
        assert_eq!(out, ResolveOutcome::Fresh);
    }

    #[test]
    fn resolver_cache_evicts_least_recently_used() {
        // budget fits two 1000-byte payloads
        let mut p = plane(0, 2000);
        for i in 0..3 {
            p.publish(&key(i), GraphId(0), wid(1), 1000, Time::ZERO);
        }
        let t = Time::from_secs_f64(1.0);
        p.resolve(&key(0), wid(2), t).unwrap();
        p.resolve(&key(1), wid(2), t).unwrap();
        // third admission evicts key(0), the least recently used
        let (_, evs) = p.resolve(&key(2), wid(2), t).unwrap();
        let evicted: Vec<_> = evs.iter().filter(|e| e.action == ProxyAction::Evicted).collect();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, key(0));
        assert_eq!(p.stats().evicted, 1);
        // key(0) is no longer a replica on wid(2): owner death has no heir
        p.damage(&key(0));
        let evs = p.worker_died(wid(1), Time::from_secs_f64(2.0));
        assert!(evs.iter().any(|e| e.action == ProxyAction::Orphaned && e.key == key(0)));
        // keys 1 and 2 re-source to the surviving cached replica wid(2)
        assert_eq!(evs.iter().filter(|e| e.action == ProxyAction::Resourced).count(), 2);
    }

    #[test]
    fn republish_after_recompute_bumps_generation() {
        let mut p = plane(0, u64::MAX);
        let (r0, _) = p.publish(&key(0), GraphId(0), wid(1), 1000, Time::ZERO);
        // worker died, task recomputed elsewhere, output published again
        let (r1, ev) = p.publish(&key(0), GraphId(0), wid(2), 1000, Time::from_secs_f64(5.0));
        assert_eq!(ev.action, ProxyAction::Republished);
        assert_eq!(r1.generation, r0.generation + 1);
        assert_eq!(r1.owner, wid(2));
        assert_eq!(p.publish_count(), 2);
    }

    #[test]
    fn in_band_attribution_uses_ref_size_only_for_proxied_keys() {
        let mut p = plane(1 << 20, u64::MAX);
        p.publish(&key(0), GraphId(0), wid(1), 16 << 20, Time::ZERO);
        let wire = p.proxy_ref(&key(0)).unwrap().wire_size();
        assert_eq!(p.in_band_bytes(&key(0), 16 << 20), wire);
        // unproxied keys pay their full payload in-band
        assert_eq!(p.in_band_bytes(&key(1), 12345), 12345);
    }

    #[test]
    fn durable_plane_persists_manifests() {
        let dir = std::env::temp_dir().join(format!("dtf-proxy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut p = ProxyPlane::durable(ProxyConfig::default(), &dir).unwrap();
            p.publish(&key(0), GraphId(0), wid(1), 4096, Time::ZERO);
            assert!(p.manifest_bytes() > 0);
        }
        let p = ProxyPlane::durable(ProxyConfig::default(), &dir).unwrap();
        // manifests survived the process through the dtf-store log
        assert!(p.manifest_bytes() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_defaults_and_json_roundtrip() {
        let d = ProxyConfig::default();
        assert!(!d.enabled);
        assert_eq!(d.threshold, 4 << 20);
        // a pre-proxy (empty) document parses to the defaults
        let parsed: ProxyConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(parsed, d);
        let on = ProxyConfig { enabled: true, threshold: 123, resolver_cache_bytes: 456 };
        let back: ProxyConfig = serde_json::from_str(&serde_json::to_string(&on).unwrap()).unwrap();
        assert_eq!(back, on);
    }
}
