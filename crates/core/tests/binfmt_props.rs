//! Property tests for the binary record encoding: an arbitrary
//! [`ProvRecord`] of any family, with arbitrary identifiers, timestamps,
//! and strings, must survive encode→decode exactly — and render the same
//! JSON value tree afterwards (the export boundary the FNV goldens pin).

use dtf_core::events::{
    CommEvent, IoOp, IoRecord, Location, LogEntry, LogLevel, LogSource, ProvRecord, Stimulus,
    TaskDoneEvent, TaskMetaEvent, TaskState, TransitionEvent, WarningEvent, WarningKind,
    WorkerTaskState, WorkerTransitionEvent,
};
use dtf_core::ids::{ClientId, FileId, GraphId, NodeId, TaskKey, ThreadId, WorkerId};
use dtf_core::time::{Dur, Time};
use proptest::prelude::*;

const TASK_STATES: [TaskState; 8] = [
    TaskState::Released,
    TaskState::Waiting,
    TaskState::NoWorker,
    TaskState::Queued,
    TaskState::Processing,
    TaskState::Memory,
    TaskState::Erred,
    TaskState::Forgotten,
];

const WORKER_STATES: [WorkerTaskState; 8] = [
    WorkerTaskState::Waiting,
    WorkerTaskState::Fetch,
    WorkerTaskState::Flight,
    WorkerTaskState::Ready,
    WorkerTaskState::Executing,
    WorkerTaskState::Memory,
    WorkerTaskState::Error,
    WorkerTaskState::Released,
];

const STIMULI: [Stimulus; 11] = [
    Stimulus::GraphSubmitted,
    Stimulus::DependenciesMet,
    Stimulus::Dispatched,
    Stimulus::ComputeStarted,
    Stimulus::ComputeFinished,
    Stimulus::ComputeErred,
    Stimulus::WorkStolen,
    Stimulus::WorkerLost,
    Stimulus::ClientReleased,
    Stimulus::NoWorkerAvailable,
    Stimulus::Queue,
];

const IO_OPS: [IoOp; 4] = [IoOp::Open, IoOp::Read, IoOp::Write, IoOp::Close];
const WARNING_KINDS: [WarningKind; 2] = [WarningKind::UnresponsiveEventLoop, WarningKind::GcPause];
const LOG_LEVELS: [LogLevel; 4] =
    [LogLevel::Debug, LogLevel::Info, LogLevel::Warning, LogLevel::Error];

fn key() -> impl Strategy<Value = TaskKey> {
    ("[a-z0-9_-]{0,16}", any::<u32>(), any::<u32>())
        .prop_map(|(p, token, index)| TaskKey::new(p.as_str(), token, index))
}

fn worker() -> impl Strategy<Value = WorkerId> {
    (any::<u32>(), any::<u32>()).prop_map(|(n, s)| WorkerId::new(NodeId(n), s))
}

fn location() -> impl Strategy<Value = Location> {
    prop_oneof![Just(Location::Scheduler), worker().prop_map(Location::Worker)]
}

fn source() -> impl Strategy<Value = LogSource> {
    prop_oneof![
        Just(LogSource::Scheduler),
        any::<u32>().prop_map(|c| LogSource::Client(ClientId(c))),
        worker().prop_map(LogSource::Worker),
    ]
}

fn record() -> impl Strategy<Value = ProvRecord> {
    prop_oneof![
        (key(), any::<u32>(), any::<u32>(), proptest::collection::vec(key(), 0..5), any::<u64>())
            .prop_map(|(key, graph, client, deps, submitted)| {
                ProvRecord::TaskMeta(TaskMetaEvent {
                    key,
                    graph: GraphId(graph),
                    client: ClientId(client),
                    deps,
                    submitted: Time(submitted),
                })
            }),
        ((key(), any::<u32>(), 0usize..8, 0usize..8), (0usize..11, location(), any::<u64>()))
            .prop_map(|((key, graph, from, to), (stim, location, time))| {
                ProvRecord::Transition(TransitionEvent {
                    key,
                    graph: GraphId(graph),
                    from: TASK_STATES[from],
                    to: TASK_STATES[to],
                    stimulus: STIMULI[stim],
                    location,
                    time: Time(time),
                })
            }),
        (key(), any::<u32>(), worker(), 0usize..8, 0usize..8, any::<u64>()).prop_map(
            |(key, graph, worker, from, to, time)| {
                ProvRecord::WorkerTransition(WorkerTransitionEvent {
                    key,
                    graph: GraphId(graph),
                    worker,
                    from: WORKER_STATES[from],
                    to: WORKER_STATES[to],
                    time: Time(time),
                })
            }
        ),
        ((key(), any::<u32>(), worker(), any::<u64>()), (any::<u64>(), any::<u64>(), any::<u64>()))
            .prop_map(|((key, graph, worker, thread), (start, stop, nbytes))| {
                ProvRecord::TaskDone(TaskDoneEvent {
                    key,
                    graph: GraphId(graph),
                    worker,
                    thread: ThreadId(thread),
                    start: Time(start),
                    stop: Time(stop),
                    nbytes,
                })
            }),
        (key(), worker(), worker(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(key, from, to, nbytes, start, stop)| {
                ProvRecord::Comm(CommEvent {
                    key,
                    from,
                    to,
                    nbytes,
                    start: Time(start),
                    stop: Time(stop),
                })
            }
        ),
        (0usize..2, prop_oneof![Just(None), worker().prop_map(Some)], any::<u64>(), any::<u64>())
            .prop_map(|(kind, worker, time, duration)| {
                ProvRecord::Warning(WarningEvent {
                    kind: WARNING_KINDS[kind],
                    worker,
                    time: Time(time),
                    duration: Dur(duration),
                })
            }),
        (any::<u64>(), 0usize..4, source(), "[ -~πλ\u{1}]{0,48}").prop_map(
            |(time, level, source, message)| {
                ProvRecord::Log(LogEntry {
                    time: Time(time),
                    level: LOG_LEVELS[level],
                    source,
                    message,
                })
            }
        ),
        (
            (any::<u32>(), worker(), any::<u64>(), any::<u64>(), 0usize..4),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
        )
            .prop_map(|((host, worker, thread, file, op), (offset, size, start, stop))| {
                ProvRecord::Io(IoRecord {
                    host: NodeId(host),
                    worker,
                    thread: ThreadId(thread),
                    file: FileId(file),
                    op: IO_OPS[op],
                    offset,
                    size,
                    start: Time(start),
                    stop: Time(stop),
                })
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_records_roundtrip_exactly(rec in record()) {
        let bytes = rec.to_binary_bytes();
        let back = ProvRecord::decode_binary(&bytes).unwrap();
        prop_assert_eq!(&rec, &back);
        // the export boundary (JSON value tree) is unchanged by the trip
        prop_assert_eq!(rec.to_value(), back.to_value());
    }

    #[test]
    fn arbitrary_records_reject_every_truncation(rec in record()) {
        let bytes = rec.to_binary_bytes();
        // decoding any strict prefix must error, never panic or succeed
        for cut in [0, bytes.len() / 2, bytes.len().saturating_sub(1)] {
            if cut < bytes.len() {
                prop_assert!(ProvRecord::decode_binary(&bytes[..cut]).is_err());
            }
        }
        // and trailing garbage is rejected too
        let mut padded = bytes.clone();
        padded.push(0x7f);
        prop_assert!(ProvRecord::decode_binary(&padded).is_err());
    }
}
