//! Property-based tests of the core vocabulary types.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use dtf_core::dist::{BoundedPareto, Exponential, Jitter, LogNormal, Normal, Sample, Uniform};
use dtf_core::ids::{NodeId, TaskKey, ThreadId, WorkerId};
use dtf_core::rngx::RunRng;
use dtf_core::stats::Histogram;
use dtf_core::table::Value;
use dtf_core::time::{Dur, Time};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every distribution produces finite samples for any seed, and the
    /// bounded ones respect their bounds.
    #[test]
    fn distributions_always_finite(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(Normal::new(3.0, 2.0).sample(&mut rng).is_finite());
            prop_assert!(LogNormal::new(0.0, 1.5).sample(&mut rng) > 0.0);
            prop_assert!(Exponential::new(0.5).sample(&mut rng) >= 0.0);
            let u = Uniform::new(-2.0, 7.0).sample(&mut rng);
            prop_assert!((-2.0..7.0).contains(&u));
            let p = BoundedPareto::new(1.0, 50.0, 1.1).sample(&mut rng);
            prop_assert!((1.0..=50.0).contains(&p));
            let j = Jitter::new(0.4, 3.0).factor(&mut rng);
            prop_assert!((1.0 / 3.0..=3.0).contains(&j));
        }
    }

    /// Time arithmetic: conversions roundtrip to nanosecond precision and
    /// subtraction saturates instead of wrapping.
    #[test]
    fn time_arithmetic_consistent(a_ns in 0u64..u64::MAX / 4, b_ns in 0u64..u64::MAX / 4) {
        let (a, b) = (Time(a_ns), Time(b_ns));
        let d = a - b;
        if a_ns >= b_ns {
            prop_assert_eq!(d.0, a_ns - b_ns);
            prop_assert_eq!(b + d, a);
        } else {
            prop_assert_eq!(d, Dur::ZERO);
        }
        prop_assert_eq!(a.since(b), a - b);
    }

    /// Dur::scale by factors in [0, 4] never panics and is monotone.
    #[test]
    fn dur_scale_monotone(ns in 0u64..(1u64 << 50), f1 in 0.0f64..4.0, f2 in 0.0f64..4.0) {
        let d = Dur(ns);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(d.scale(lo) <= d.scale(hi));
    }

    /// TaskKey display/group/serde are stable and injective enough: equal
    /// keys give equal strings, different index gives different strings.
    #[test]
    fn task_key_identities(prefix in "[a-z_]{1,20}", token in any::<u32>(), index in any::<u32>()) {
        let k = TaskKey::new(prefix.clone(), token, index);
        let json = serde_json::to_string(&k).unwrap();
        let back: TaskKey = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &k);
        let other = TaskKey::new(prefix, token, index.wrapping_add(1));
        prop_assert_ne!(other.to_string(), k.to_string());
        prop_assert_eq!(other.group(), k.group(), "group ignores the index");
    }

    /// Synthetic thread ids are injective over realistic cluster shapes.
    #[test]
    fn thread_ids_injective(n1 in 0u32..64, s1 in 0u32..4, t1 in 0u32..16,
                            n2 in 0u32..64, s2 in 0u32..4, t2 in 0u32..16) {
        let a = ThreadId::synth(WorkerId::new(NodeId(n1), s1), t1);
        let b = ThreadId::synth(WorkerId::new(NodeId(n2), s2), t2);
        prop_assert_eq!(a == b, (n1, s1, t1) == (n2, s2, t2));
    }

    /// RunRng streams: same label -> same stream; the stream is a pure
    /// function of (seed, run, label, index).
    #[test]
    fn run_rng_streams_pure(seed in any::<u64>(), run in any::<u32>(), idx in any::<u64>()) {
        use rand::Rng;
        let rr = dtf_core::rngx::RunRng::new(seed, dtf_core::ids::RunId(run));
        let a: u64 = rr.stream_indexed("component", idx).gen();
        let b: u64 = RunRng::new(seed, dtf_core::ids::RunId(run))
            .stream_indexed("component", idx)
            .gen();
        prop_assert_eq!(a, b);
    }

    /// Histogram totals equal the number of pushes for any inputs.
    #[test]
    fn histogram_conserves_counts(values in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
        let mut h = Histogram::new(0.0, 100.0, 7);
        for &v in &values {
            h.push(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
    }

    /// Value total ordering is antisymmetric and reflexive over a mixed pool.
    #[test]
    fn value_ordering_sane(a in value_strategy(), b in value_strategy()) {
        use std::cmp::Ordering;
        let ab = a.cmp_total(&b);
        let ba = b.cmp_total(&a);
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(a.cmp_total(&a), Ordering::Equal);
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        any::<u64>().prop_map(Value::U64),
        (-1e12f64..1e12).prop_map(Value::F64),
        "[a-z0-9]{0,12}".prop_map(Value::Str),
    ]
}
