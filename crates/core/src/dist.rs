//! Seeded probability distributions for the platform simulator.
//!
//! The paper attributes run-to-run performance variability to stochastic
//! platform behaviour: PFS interference, network congestion, garbage
//! collection pauses, event-loop stalls, node placement. The simulator models
//! each as a draw from one of these distributions. They are hand-rolled
//! (Box–Muller for the normal family) so the workspace stays within the
//! approved dependency set — `rand_distr` is intentionally not used.

use rand::Rng;

/// A continuous distribution that can be sampled with any RNG.
pub trait Sample {
    /// Draw one value. Implementations must never return NaN or infinity.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Normal distribution via the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    pub mean: f64,
    pub std: f64,
}

impl Normal {
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0 && std.is_finite(), "std must be finite and >= 0, got {std}");
        assert!(mean.is_finite());
        Self { mean, std }
    }

    /// One standard-normal draw.
    fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // Box–Muller; reject u1 == 0 to keep ln finite.
        loop {
            let u1: f64 = rng.gen::<f64>();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2: f64 = rng.gen::<f64>();
            let r = (-2.0 * u1.ln()).sqrt();
            let z = r * (std::f64::consts::TAU * u2).cos();
            if z.is_finite() {
                return z;
            }
        }
    }
}

impl Sample for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * Self::std_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`. The workhorse for service
/// times (I/O, network) whose tails are heavy but bounded in practice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal (log scale).
    pub mu: f64,
    /// Std of the underlying normal (log scale).
    pub sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite());
        assert!(mu.is_finite());
        Self { mu, sigma }
    }

    /// Construct from the desired *median* multiplier and log-scale sigma.
    /// `LogNormal::multiplier(s)` has median 1.0: handy for jitter factors.
    pub fn multiplier(sigma: f64) -> Self {
        Self::new(0.0, sigma)
    }

    /// Expected value `exp(mu + sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::std_normal(rng)).exp()
    }
}

/// Exponential distribution with the given rate (events per unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    pub rate: f64,
}

impl Exponential {
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive, got {rate}");
        Self { rate }
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen::<f64>();
            if u <= f64::MIN_POSITIVE {
                continue;
            }
            return -u.ln() / self.rate;
        }
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    pub lo: f64,
    pub hi: f64,
}

impl Uniform {
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi && lo.is_finite() && hi.is_finite());
        Self { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lo == self.hi {
            return self.lo;
        }
        rng.gen_range(self.lo..self.hi)
    }
}

/// Bounded Pareto: heavy-tailed sizes/latencies with a hard cap, used for
/// interference bursts so a single draw cannot stall the simulation forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    pub xmin: f64,
    pub xmax: f64,
    pub alpha: f64,
}

impl BoundedPareto {
    pub fn new(xmin: f64, xmax: f64, alpha: f64) -> Self {
        assert!(xmin > 0.0 && xmax > xmin && alpha > 0.0);
        Self { xmin, xmax, alpha }
    }
}

impl Sample for BoundedPareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF sampling of the truncated Pareto.
        let u: f64 = rng.gen::<f64>();
        let la = self.xmin.powf(self.alpha);
        let ha = self.xmax.powf(self.alpha);
        let x = (-(u * (ha - la) - ha) / (ha * la)).powf(-1.0 / self.alpha);
        x.clamp(self.xmin, self.xmax)
    }
}

/// Jitter helper: multiply a base value by a lognormal factor with median 1,
/// clamped to `[1/cap, cap]`. This is how the simulator perturbs every
/// deterministic cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jitter {
    dist: LogNormal,
    cap: f64,
}

impl Jitter {
    /// `sigma` is the log-scale spread; `cap` bounds the factor (cap >= 1).
    pub fn new(sigma: f64, cap: f64) -> Self {
        assert!(cap >= 1.0);
        Self { dist: LogNormal::multiplier(sigma), cap }
    }

    /// No-op jitter (factor always exactly 1).
    pub fn none() -> Self {
        Self { dist: LogNormal::multiplier(0.0), cap: 1.0 }
    }

    pub fn factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.dist.sample(rng).clamp(1.0 / self.cap, self.cap)
    }

    pub fn apply<R: Rng + ?Sized>(&self, base: f64, rng: &mut R) -> f64 {
        base * self.factor(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn mean_of(d: &impl Sample, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Normal::new(5.0, 2.0);
        let m = mean_of(&d, 200_000);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn lognormal_mean_matches_closed_form() {
        let d = LogNormal::new(0.5, 0.4);
        let m = mean_of(&d, 400_000);
        assert!((m - d.mean()).abs() / d.mean() < 0.02, "mean {m} vs {}", d.mean());
    }

    #[test]
    fn lognormal_multiplier_median_near_one() {
        let d = LogNormal::multiplier(0.3);
        let mut r = rng();
        let mut v: Vec<f64> = (0..100_001).map(|_| d.sample(&mut r)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((median - 1.0).abs() < 0.02, "median {median}");
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(4.0);
        let m = mean_of(&d, 200_000);
        assert!((m - 0.25).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn uniform_bounds() {
        let d = Uniform::new(2.0, 3.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((2.0..3.0).contains(&x));
        }
        // degenerate interval
        let d = Uniform::new(2.0, 2.0);
        assert_eq!(d.sample(&mut r), 2.0);
    }

    #[test]
    fn bounded_pareto_within_bounds() {
        let d = BoundedPareto::new(1.0, 100.0, 1.5);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((1.0..=100.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn jitter_clamped_and_centered() {
        let j = Jitter::new(0.2, 2.0);
        let mut r = rng();
        let mut sum = 0.0;
        for _ in 0..50_000 {
            let f = j.factor(&mut r);
            assert!((0.5..=2.0).contains(&f));
            sum += f;
        }
        let mean = sum / 50_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean factor {mean}");
    }

    #[test]
    fn jitter_none_is_identity() {
        let j = Jitter::none();
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(j.apply(3.25, &mut r), 3.25);
        }
    }

    #[test]
    fn samples_never_nan() {
        let mut r = rng();
        type Sampler = Box<dyn Fn(&mut SmallRng) -> f64>;
        let dists: Vec<Sampler> = vec![
            Box::new(|r| Normal::new(0.0, 1.0).sample(r)),
            Box::new(|r| LogNormal::new(0.0, 1.0).sample(r)),
            Box::new(|r| Exponential::new(1.0).sample(r)),
            Box::new(|r| BoundedPareto::new(0.5, 10.0, 1.0).sample(r)),
        ];
        for d in &dists {
            for _ in 0..10_000 {
                assert!(d(&mut r).is_finite());
            }
        }
    }
}
