//! The *common tabular format* (paper §V).
//!
//! Every data source in the framework (task transitions, task completions,
//! communications, I/O traces, warnings, job metadata) can project itself
//! into rows of typed values under a named schema. The analysis engine
//! (`dtf-perfrecup`) ingests these projections into DataFrames and joins
//! them on the shared identifier columns.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically typed cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
}

impl Value {
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::U64(_) => "u64",
            Value::F64(_) => "f64",
            Value::Str(_) => "str",
        }
    }

    /// Numeric view: any numeric variant as f64, `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total ordering for sorting mixed columns: Null < Bool < numbers < Str.
    /// Numeric variants compare by value; NaN sorts last among numbers.
    pub fn cmp_total(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::I64(_) | Value::U64(_) | Value::F64(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.partial_cmp(&y).unwrap_or_else(|| {
                    // NaN handling: NaN sorts after numbers
                    match (x.is_nan(), y.is_nan()) {
                        (true, true) => Equal,
                        (true, false) => Greater,
                        (false, true) => Less,
                        _ => unreachable!(),
                    }
                })
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// Borrowed key form of a [`Value`]: `Hash + Eq + Ord` over the typed
/// variants, so join indexes and group tables can hash rows without
/// rendering each cell to a fresh `String` (the old per-row `to_string()`
/// allocation in `inner_join`/`group_by`).
///
/// Equality semantics match what display-form hashing gave the identifier
/// columns the analyses join on: `U64` and non-negative `I64` canonicalize
/// to one integer variant (both rendered `"1"`), floats keep their own
/// identity (rendered `"1.000000"`, never equal to an integer cell), and
/// `-0.0`/`NaN` are folded to canonical bit patterns so equal-displaying
/// floats hash together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKey<'a> {
    Null,
    Bool(bool),
    /// Strictly negative `I64`.
    NegInt(i64),
    /// `U64`, and `I64 >= 0` canonicalized onto it.
    UInt(u64),
    /// `F64` by canonical bits (`-0.0` → `0.0`, any NaN → one quiet NaN).
    F64(u64),
    Str(&'a str),
}

const CANON_NAN_BITS: u64 = 0x7ff8_0000_0000_0000;

fn canon_f64_bits(v: f64) -> u64 {
    if v.is_nan() {
        CANON_NAN_BITS
    } else if v == 0.0 {
        0 // folds -0.0 onto +0.0
    } else {
        v.to_bits()
    }
}

impl<'a> ValueKey<'a> {
    fn rank(&self) -> u8 {
        match self {
            ValueKey::Null => 0,
            ValueKey::Bool(_) => 1,
            ValueKey::NegInt(_) | ValueKey::UInt(_) | ValueKey::F64(_) => 2,
            ValueKey::Str(_) => 3,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            ValueKey::NegInt(v) => Some(*v as f64),
            ValueKey::UInt(v) => Some(*v as f64),
            ValueKey::F64(bits) => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }

    /// Exactly [`Value::cmp_total`]'s ordering — Null < Bool < numbers <
    /// Str, numbers by value with NaN last — including its Equal verdict
    /// for numerically equal cells of different variants, so a stable sort
    /// over `ValueKey`s reorders nothing a stable sort over `cmp_total`
    /// would keep.
    pub fn cmp_sort(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        match (self, other) {
            (ValueKey::Null, ValueKey::Null) => Equal,
            (ValueKey::Bool(a), ValueKey::Bool(b)) => a.cmp(b),
            (ValueKey::Str(a), ValueKey::Str(b)) => a.cmp(b),
            (a, b) if a.rank() == 2 && b.rank() == 2 => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.partial_cmp(&y).unwrap_or_else(|| match (x.is_nan(), y.is_nan()) {
                    (true, true) => Equal,
                    (true, false) => Greater,
                    (false, true) => Less,
                    _ => unreachable!(),
                })
            }
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }

    /// Exact-payload tiebreak used to make [`Ord`] agree with [`Eq`] where
    /// `cmp_sort` reports Equal for distinct keys (cross-variant numeric
    /// ties, and integers beyond f64 precision).
    fn tiebreak(&self, other: &Self) -> std::cmp::Ordering {
        fn sub(v: &ValueKey<'_>) -> u8 {
            match v {
                ValueKey::NegInt(_) => 0,
                ValueKey::UInt(_) => 1,
                ValueKey::F64(_) => 2,
                _ => 3,
            }
        }
        sub(self).cmp(&sub(other)).then_with(|| match (self, other) {
            (ValueKey::NegInt(a), ValueKey::NegInt(b)) => a.cmp(b),
            (ValueKey::UInt(a), ValueKey::UInt(b)) => a.cmp(b),
            (ValueKey::F64(a), ValueKey::F64(b)) => a.cmp(b),
            _ => std::cmp::Ordering::Equal,
        })
    }
}

impl Ord for ValueKey<'_> {
    /// Total order consistent with `Eq`: `cmp_sort`'s verdict, with exact
    /// payloads breaking its cross-variant numeric ties.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp_sort(other).then_with(|| self.tiebreak(other))
    }
}

impl PartialOrd for ValueKey<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Value {
    /// The borrowed key form of this cell (see [`ValueKey`]).
    pub fn key(&self) -> ValueKey<'_> {
        match self {
            Value::Null => ValueKey::Null,
            Value::Bool(b) => ValueKey::Bool(*b),
            Value::I64(v) if *v < 0 => ValueKey::NegInt(*v),
            Value::I64(v) => ValueKey::UInt(*v as u64),
            Value::U64(v) => ValueKey::UInt(*v),
            Value::F64(v) => ValueKey::F64(canon_f64_bits(*v)),
            Value::Str(s) => ValueKey::Str(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.6}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Types that project into the common tabular format.
pub trait Tabular {
    /// Column names, fixed per type.
    fn schema() -> Vec<&'static str>;
    /// One row; must have exactly `schema().len()` values.
    fn row(&self) -> Vec<Value>;
}

/// Aggregation kinds an [`Accumulator`] supports. `Sum` keeps an exact
/// `u64` tally while every input stays integral and spills to `f64` on the
/// first float; `Min`/`Max` use [`Value::cmp_total`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccKind {
    Count,
    Sum,
    Min,
    Max,
}

/// Internal sum state: integral until the first float input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum SumState {
    Int(u64),
    Float(f64),
}

/// A mergeable streaming aggregate over [`Value`] cells.
///
/// The incremental analysis layer maintains one per `(group, column)`:
/// cells are [`Accumulator::push`]ed as events arrive, partials built on
/// different shards (or different event batches) combine with
/// [`Accumulator::merge`], and [`Accumulator::finish`] renders the current
/// aggregate without consuming the state. All four kinds are commutative
/// and associative over their inputs — `Count` and integral `Sum` exactly,
/// `Min`/`Max` by total order — so merge order never changes the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accumulator {
    kind: AccKind,
    count: u64,
    sum: SumState,
    /// Running extremum for Min/Max (`None` until the first comparable cell).
    extreme: Option<Value>,
}

impl Accumulator {
    pub fn new(kind: AccKind) -> Self {
        Self { kind, count: 0, sum: SumState::Int(0), extreme: None }
    }

    pub fn kind(&self) -> AccKind {
        self.kind
    }

    /// Cells absorbed so far (every cell for Count, numeric/comparable
    /// cells for the numeric kinds — mirroring `DataFrame::group_by`,
    /// which counts every row but aggregates only numeric cells).
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn push(&mut self, v: &Value) {
        match self.kind {
            AccKind::Count => self.count += 1,
            AccKind::Sum => {
                match (&mut self.sum, v) {
                    (SumState::Int(acc), Value::U64(x)) => *acc += x,
                    (SumState::Int(acc), Value::I64(x)) if *x >= 0 => *acc += *x as u64,
                    (SumState::Int(acc), v) => {
                        let Some(x) = v.as_f64() else { return };
                        self.sum = SumState::Float(*acc as f64 + x);
                    }
                    (SumState::Float(acc), v) => {
                        let Some(x) = v.as_f64() else { return };
                        *acc += x;
                    }
                }
                self.count += 1;
            }
            AccKind::Min | AccKind::Max => {
                if matches!(v, Value::Null) {
                    return;
                }
                self.count += 1;
                let better = match (&self.extreme, self.kind) {
                    (None, _) => true,
                    (Some(cur), AccKind::Min) => v.cmp_total(cur) == std::cmp::Ordering::Less,
                    (Some(cur), AccKind::Max) => v.cmp_total(cur) == std::cmp::Ordering::Greater,
                    _ => unreachable!(),
                };
                if better {
                    self.extreme = Some(v.clone());
                }
            }
        }
    }

    /// Absorb another partial of the same kind.
    pub fn merge(&mut self, other: &Accumulator) {
        assert_eq!(self.kind, other.kind, "cannot merge accumulators of different kinds");
        self.count += other.count;
        match self.kind {
            AccKind::Count => {}
            AccKind::Sum => {
                self.sum = match (&self.sum, &other.sum) {
                    (SumState::Int(a), SumState::Int(b)) => SumState::Int(a + b),
                    (a, b) => {
                        let f = |s: &SumState| match s {
                            SumState::Int(v) => *v as f64,
                            SumState::Float(v) => *v,
                        };
                        SumState::Float(f(a) + f(b))
                    }
                };
            }
            AccKind::Min | AccKind::Max => {
                if let Some(v) = &other.extreme {
                    let better = match &self.extreme {
                        None => true,
                        Some(cur) if self.kind == AccKind::Min => {
                            v.cmp_total(cur) == std::cmp::Ordering::Less
                        }
                        Some(cur) => v.cmp_total(cur) == std::cmp::Ordering::Greater,
                    };
                    if better {
                        self.extreme = Some(v.clone());
                    }
                }
            }
        }
    }

    /// The current aggregate as a cell; `Null` when nothing aggregated.
    pub fn finish(&self) -> Value {
        match self.kind {
            AccKind::Count => Value::U64(self.count),
            AccKind::Sum => match self.sum {
                SumState::Int(v) => Value::U64(v),
                SumState::Float(v) => Value::F64(v),
            },
            AccKind::Min | AccKind::Max => self.extreme.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn numeric_views() {
        assert_eq!(Value::I64(-3).as_f64(), Some(-3.0));
        assert_eq!(Value::U64(7).as_f64(), Some(7.0));
        assert_eq!(Value::F64(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::I64(5).as_u64(), Some(5));
        assert_eq!(Value::I64(-5).as_u64(), None);
    }

    #[test]
    fn cross_type_numeric_ordering() {
        assert_eq!(Value::I64(2).cmp_total(&Value::F64(2.5)), Ordering::Less);
        assert_eq!(Value::U64(3).cmp_total(&Value::I64(3)), Ordering::Equal);
    }

    #[test]
    fn rank_ordering() {
        assert_eq!(Value::Null.cmp_total(&Value::Bool(false)), Ordering::Less);
        assert_eq!(Value::F64(1e9).cmp_total(&Value::Str("a".into())), Ordering::Less);
        assert_eq!(Value::Str("a".into()).cmp_total(&Value::Str("b".into())), Ordering::Less);
    }

    #[test]
    fn nan_sorts_last_among_numbers() {
        assert_eq!(Value::F64(f64::NAN).cmp_total(&Value::F64(1.0)), Ordering::Greater);
        assert_eq!(Value::F64(1.0).cmp_total(&Value::F64(f64::NAN)), Ordering::Less);
        assert_eq!(Value::F64(f64::NAN).cmp_total(&Value::F64(f64::NAN)), Ordering::Equal);
    }

    // Pinned behaviour for the ValueKey kernels: cmp_total across every
    // pair of variants, including the Equal verdicts the stable sorts in
    // the analysis layer rely on.
    #[test]
    fn cmp_total_pins_mixed_variant_ordering() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::I64(-2),
            Value::U64(1),
            Value::F64(1.5),
            Value::Str("a".into()),
        ];
        // strictly ascending as listed
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                let expect = i.cmp(&j);
                assert_eq!(vals[i].cmp_total(&vals[j]), expect, "{:?} vs {:?}", vals[i], vals[j]);
            }
        }
        // cross-variant numeric ties are Equal, not variant-ordered
        assert_eq!(Value::I64(1).cmp_total(&Value::U64(1)), Ordering::Equal);
        assert_eq!(Value::U64(2).cmp_total(&Value::F64(2.0)), Ordering::Equal);
        assert_eq!(Value::I64(-1).cmp_total(&Value::F64(-1.0)), Ordering::Equal);
    }

    #[test]
    fn value_key_matches_cmp_total_and_display_equality() {
        use std::cmp::Ordering;
        // cmp_sort reproduces cmp_total on every pair
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::I64(-2),
            Value::I64(3),
            Value::U64(3),
            Value::U64(9),
            Value::F64(3.0),
            Value::F64(f64::NAN),
            Value::Str("s".into()),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(
                    a.key().cmp_sort(&b.key()),
                    a.cmp_total(b),
                    "cmp_sort diverges from cmp_total for {a:?} vs {b:?}"
                );
            }
        }
        // hashing equality matches the display forms of identifier columns
        assert_eq!(Value::I64(3).key(), Value::U64(3).key(), "both render \"3\"");
        assert_ne!(Value::F64(3.0).key(), Value::U64(3).key(), "\"3.000000\" != \"3\"");
        assert_ne!(Value::Str("3".into()).key(), Value::U64(3).key(), "typed, unlike display");
        assert_eq!(Value::F64(0.0).key(), Value::F64(-0.0).key());
        assert_eq!(Value::F64(f64::NAN).key(), Value::F64(-f64::NAN).key());
        // Ord is total and consistent with Eq (ties broken by payload)
        assert_ne!(Value::U64(3).key().cmp(&Value::F64(3.0).key()), Ordering::Equal);
        assert_eq!(Value::U64(3).key().cmp(&Value::U64(3).key()), Ordering::Equal);
    }

    #[test]
    fn accumulator_push_and_finish() {
        let mut c = Accumulator::new(AccKind::Count);
        c.push(&Value::Str("x".into()));
        c.push(&Value::Null);
        assert_eq!(c.finish(), Value::U64(2));

        let mut s = Accumulator::new(AccKind::Sum);
        s.push(&Value::U64(3));
        s.push(&Value::I64(4));
        assert_eq!(s.finish(), Value::U64(7), "integral inputs keep an exact sum");
        s.push(&Value::F64(0.5));
        assert_eq!(s.finish(), Value::F64(7.5), "first float spills to f64");
        s.push(&Value::Str("skip".into()));
        assert_eq!(s.finish(), Value::F64(7.5), "non-numeric cells are skipped");

        let mut m = Accumulator::new(AccKind::Min);
        m.push(&Value::U64(9));
        m.push(&Value::F64(2.5));
        assert_eq!(m.finish(), Value::F64(2.5));
        let mut m = Accumulator::new(AccKind::Max);
        m.push(&Value::Str("a".into()));
        m.push(&Value::Str("b".into()));
        assert_eq!(m.finish(), Value::Str("b".into()));
        assert_eq!(Accumulator::new(AccKind::Max).finish(), Value::Null);
    }

    #[test]
    fn accumulator_merge_equals_combined_push() {
        let cells = [Value::U64(5), Value::F64(1.5), Value::I64(-2), Value::U64(9)];
        for kind in [AccKind::Count, AccKind::Sum, AccKind::Min, AccKind::Max] {
            for split in 0..=cells.len() {
                let mut whole = Accumulator::new(kind);
                for v in &cells {
                    whole.push(v);
                }
                let mut a = Accumulator::new(kind);
                let mut b = Accumulator::new(kind);
                for v in &cells[..split] {
                    a.push(v);
                }
                for v in &cells[split..] {
                    b.push(v);
                }
                a.merge(&b);
                assert_eq!(a.finish(), whole.finish(), "{kind:?} split {split}");
                assert_eq!(a.count(), whole.count(), "{kind:?} split {split}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn accumulator_merge_rejects_kind_mismatch() {
        let mut a = Accumulator::new(AccKind::Sum);
        a.merge(&Accumulator::new(AccKind::Count));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::U64(5).to_string(), "5");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1i64), Value::I64(1));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }
}
