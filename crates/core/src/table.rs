//! The *common tabular format* (paper §V).
//!
//! Every data source in the framework (task transitions, task completions,
//! communications, I/O traces, warnings, job metadata) can project itself
//! into rows of typed values under a named schema. The analysis engine
//! (`dtf-perfrecup`) ingests these projections into DataFrames and joins
//! them on the shared identifier columns.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically typed cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
}

impl Value {
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::U64(_) => "u64",
            Value::F64(_) => "f64",
            Value::Str(_) => "str",
        }
    }

    /// Numeric view: any numeric variant as f64, `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total ordering for sorting mixed columns: Null < Bool < numbers < Str.
    /// Numeric variants compare by value; NaN sorts last among numbers.
    pub fn cmp_total(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::I64(_) | Value::U64(_) | Value::F64(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.partial_cmp(&y).unwrap_or_else(|| {
                    // NaN handling: NaN sorts after numbers
                    match (x.is_nan(), y.is_nan()) {
                        (true, true) => Equal,
                        (true, false) => Greater,
                        (false, true) => Less,
                        _ => unreachable!(),
                    }
                })
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.6}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Types that project into the common tabular format.
pub trait Tabular {
    /// Column names, fixed per type.
    fn schema() -> Vec<&'static str>;
    /// One row; must have exactly `schema().len()` values.
    fn row(&self) -> Vec<Value>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn numeric_views() {
        assert_eq!(Value::I64(-3).as_f64(), Some(-3.0));
        assert_eq!(Value::U64(7).as_f64(), Some(7.0));
        assert_eq!(Value::F64(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::I64(5).as_u64(), Some(5));
        assert_eq!(Value::I64(-5).as_u64(), None);
    }

    #[test]
    fn cross_type_numeric_ordering() {
        assert_eq!(Value::I64(2).cmp_total(&Value::F64(2.5)), Ordering::Less);
        assert_eq!(Value::U64(3).cmp_total(&Value::I64(3)), Ordering::Equal);
    }

    #[test]
    fn rank_ordering() {
        assert_eq!(Value::Null.cmp_total(&Value::Bool(false)), Ordering::Less);
        assert_eq!(Value::F64(1e9).cmp_total(&Value::Str("a".into())), Ordering::Less);
        assert_eq!(Value::Str("a".into()).cmp_total(&Value::Str("b".into())), Ordering::Less);
    }

    #[test]
    fn nan_sorts_last_among_numbers() {
        assert_eq!(Value::F64(f64::NAN).cmp_total(&Value::F64(1.0)), Ordering::Greater);
        assert_eq!(Value::F64(1.0).cmp_total(&Value::F64(f64::NAN)), Ordering::Less);
        assert_eq!(Value::F64(f64::NAN).cmp_total(&Value::F64(f64::NAN)), Ordering::Equal);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::U64(5).to_string(), "5");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1i64), Value::I64(1));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }
}
