//! Identifiers shared across every layer of the framework.
//!
//! The paper's interoperability lesson (§V) is that each pair of data sources
//! must share at least one identifier: tasks are identified by Dask-generated
//! keys, timestamps, the worker address, and POSIX thread ids; workers by
//! IP/port and hostname; I/O operations by hostname, thread id, and
//! timestamps. The types below are those identifiers.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// Identifier of one end-to-end execution of a workflow (one "run" of a
/// campaign). Runs of the same workflow differ only by seed / placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RunId(pub u32);

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run-{:04}", self.0)
    }
}

/// Identifier of a task graph submitted by the client. A workflow may submit
/// several graphs (ImageProcessing submits one per pipeline step, XGBoost
/// submits 74, see Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GraphId(pub u32);

impl fmt::Display for GraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph-{}", self.0)
    }
}

/// An interned task prefix: a shared, immutable `Arc<str>`.
///
/// A workflow has tens of distinct prefixes but tens of thousands of tasks,
/// and the scheduler's hot event loop clones [`TaskKey`]s on every
/// transition, dispatch, and fetch. Interning turns every one of those
/// clones from a heap-allocating `String` copy into a reference-count bump.
/// Ordering, hashing, and equality all delegate to the underlying `str`, so
/// `TaskPrefix` behaves exactly like the `String` it replaced in maps, sets,
/// and sorted containers.
#[derive(Debug, Clone)]
pub struct TaskPrefix(Arc<str>);

/// The global prefix table. Append-only; a handful of entries per workload.
fn interner() -> &'static Mutex<HashSet<Arc<str>>> {
    static INTERNER: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(HashSet::new()))
}

impl TaskPrefix {
    /// Intern `s`: return the canonical shared allocation for this spelling.
    pub fn intern(s: &str) -> Self {
        let mut table = interner().lock().expect("prefix interner poisoned");
        if let Some(existing) = table.get(s) {
            return Self(existing.clone());
        }
        let arc: Arc<str> = Arc::from(s);
        table.insert(arc.clone());
        Self(arc)
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for TaskPrefix {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for TaskPrefix {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for TaskPrefix {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl PartialEq for TaskPrefix {
    fn eq(&self, other: &Self) -> bool {
        // interned: pointer equality short-circuits the common case
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}
impl Eq for TaskPrefix {}

impl PartialEq<str> for TaskPrefix {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for TaskPrefix {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for TaskPrefix {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl std::hash::Hash for TaskPrefix {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // must agree with str's Hash (Borrow<str> contract)
        (*self.0).hash(state)
    }
}

impl PartialOrd for TaskPrefix {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TaskPrefix {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl fmt::Display for TaskPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TaskPrefix {
    fn from(s: &str) -> Self {
        Self::intern(s)
    }
}

impl From<String> for TaskPrefix {
    fn from(s: String) -> Self {
        Self::intern(&s)
    }
}

impl From<&TaskPrefix> for String {
    fn from(p: &TaskPrefix) -> String {
        p.as_str().to_string()
    }
}

impl Serialize for TaskPrefix {
    fn to_content(&self) -> serde::json_impl::Value {
        serde::json_impl::Value::String(self.as_str().to_string())
    }
}

impl Deserialize for TaskPrefix {
    fn from_content(v: &serde::json_impl::Value) -> Result<Self, serde::json_impl::Error> {
        String::from_content(v).map(|s| Self::intern(&s))
    }
}

/// A task key, mirroring Dask's `(prefix-token, index)` convention, e.g.
/// `('getitem__get_categories-24266c..', 63)`.
///
/// * `prefix` — the human-readable operation category (Dask calls the
///   deduplicated form "task prefix"; groups of tasks sharing a token form a
///   "task group"). Interned: cloning a `TaskKey` bumps a reference count
///   instead of copying the string.
/// * `token` — a hash-like token distinguishing groups with the same prefix.
/// * `index` — position within the group (chunk / partition number).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskKey {
    pub prefix: TaskPrefix,
    pub token: u32,
    pub index: u32,
}

impl TaskKey {
    pub fn new(prefix: impl Into<TaskPrefix>, token: u32, index: u32) -> Self {
        Self { prefix: prefix.into(), token, index }
    }

    /// The task *group* name: prefix plus token, shared by all chunks of one
    /// collection operation.
    pub fn group(&self) -> String {
        format!("{}-{:06x}", self.prefix, self.token)
    }

    /// Stream the compact JSON rendering of this key — exactly the bytes
    /// `serde_json::to_string(self)` would allocate (object keys in sorted
    /// order, prefix escaped) — into any `fmt::Write` sink. This is what
    /// lets hash-partitioning hash a typed key without materializing it.
    pub fn write_json<W: std::fmt::Write>(&self, out: &mut W) -> std::fmt::Result {
        write!(out, "{{\"index\":{}", self.index)?;
        out.write_str(",\"prefix\":")?;
        serde::json_impl::write_str_to(self.prefix.as_str(), out)?;
        write!(out, ",\"token\":{}}}", self.token)
    }
}

impl fmt::Display for TaskKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "('{}-{:06x}', {})", self.prefix, self.token, self.index)
    }
}

/// Identifier of a compute node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Hostname as recorded in logs (e.g. `nid0003`, Polaris-style).
    pub fn hostname(&self) -> String {
        format!("nid{:04}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.hostname())
    }
}

/// Identifier of a worker process. Workers are identified in logs by their
/// IP:port address; we derive a deterministic synthetic address from the node
/// and a per-node ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId {
    pub node: NodeId,
    /// Ordinal of the worker on its node (0-based).
    pub slot: u32,
}

impl WorkerId {
    pub fn new(node: NodeId, slot: u32) -> Self {
        Self { node, slot }
    }

    /// Synthetic `ip:port` address, the identifier Dask uses in its logs.
    pub fn address(&self) -> String {
        format!("10.0.{}.{}:{}", self.node.0 / 256, self.node.0 % 256, 40000 + self.slot)
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.address())
    }
}

/// A POSIX thread id (pthread id). This is the join key the authors added to
/// both Darshan DXT records and Dask task records; it is what makes the two
/// data sources correlatable (§III-E3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ThreadId(pub u64);

impl ThreadId {
    /// Deterministic synthetic pthread id for worker `w`, thread ordinal `t`.
    /// Values are large and sparse like real pthread ids but reproducible.
    pub fn synth(w: WorkerId, t: u32) -> Self {
        let base = 0x7f00_0000_0000u64;
        ThreadId(base + (w.node.0 as u64) * 0x10_0000 + (w.slot as u64) * 0x1000 + t as u64)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Identifier of a client process (the task-graph submitter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

/// Identifier of a file on the (simulated) parallel filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_key_display_matches_dask_convention() {
        let k = TaskKey::new("getitem__get_categories", 0x24266c, 63);
        assert_eq!(k.to_string(), "('getitem__get_categories-24266c', 63)");
        assert_eq!(k.group(), "getitem__get_categories-24266c");
    }

    #[test]
    fn prefixes_are_interned_and_compare_like_strings() {
        let a = TaskKey::new("getitem", 1, 0);
        let b = TaskKey::new("getitem", 2, 5);
        // one shared allocation per spelling
        assert!(Arc::ptr_eq(&a.prefix.0, &b.prefix.0));
        assert_eq!(a.prefix, "getitem");
        assert_eq!(a.prefix.as_str(), "getitem");
        assert!(a.prefix == b.prefix);
        assert!(TaskPrefix::intern("a") < TaskPrefix::intern("b"));
        // Hash agrees with str (Borrow<str> contract): usable as map key
        let mut m = std::collections::HashMap::new();
        m.insert(a.prefix.clone(), 1u32);
        assert_eq!(m.get("getitem"), Some(&1));
    }

    #[test]
    fn worker_address_is_deterministic_and_unique_per_slot() {
        let n = NodeId(3);
        let w0 = WorkerId::new(n, 0);
        let w1 = WorkerId::new(n, 1);
        assert_ne!(w0.address(), w1.address());
        assert_eq!(w0.address(), WorkerId::new(n, 0).address());
    }

    #[test]
    fn thread_ids_unique_across_workers_and_threads() {
        let mut seen = std::collections::HashSet::new();
        for node in 0..4 {
            for slot in 0..4 {
                for t in 0..8 {
                    let tid = ThreadId::synth(WorkerId::new(NodeId(node), slot), t);
                    assert!(seen.insert(tid), "duplicate tid {tid}");
                }
            }
        }
    }

    #[test]
    fn hostname_format() {
        assert_eq!(NodeId(7).hostname(), "nid0007");
        assert_eq!(NodeId(1234).hostname(), "nid1234");
    }

    #[test]
    fn ids_serde_roundtrip() {
        let k = TaskKey::new("sum", 12, 3);
        let s = serde_json::to_string(&k).unwrap();
        let back: TaskKey = serde_json::from_str(&s).unwrap();
        assert_eq!(k, back);

        let w = WorkerId::new(NodeId(2), 1);
        let s = serde_json::to_string(&w).unwrap();
        let back: WorkerId = serde_json::from_str(&s).unwrap();
        assert_eq!(w, back);
    }
}
