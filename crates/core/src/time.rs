//! Time representation shared by the simulator and the real executor.
//!
//! All timestamps in the framework are nanoseconds since the start of the
//! run, stored as `u64`. Using integers (rather than `f64` seconds) keeps
//! timestamps totally ordered and hashable, which the discrete-event queue
//! and the analysis joins both rely on.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (virtual or real) time: nanoseconds since run start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

/// A span of time: nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Dur(pub u64);

impl Time {
    pub const ZERO: Time = Time(0);

    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite time: {s}");
        Time((s * 1e9).round() as u64)
    }

    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since `earlier`; saturates at zero if `earlier` is later.
    pub fn since(&self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    pub const ZERO: Dur = Dur(0);

    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite duration: {s}");
        Dur((s * 1e9).round() as u64)
    }

    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    pub fn from_micros(us: u64) -> Self {
        Dur(us * 1_000)
    }

    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scale a duration by a non-negative factor (used for stochastic jitter).
    pub fn scale(&self, f: f64) -> Dur {
        assert!(f >= 0.0 && f.is_finite(), "bad scale factor: {f}");
        Dur((self.0 as f64 * f).round() as u64)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A source of timestamps. The simulator advances a virtual clock; the real
/// executor reads a monotonic OS clock anchored at run start. Code that emits
/// events is generic over this trait so instrumentation is identical in both
/// modes.
pub trait Clock: Send + Sync {
    fn now(&self) -> Time;
}

/// Real monotonic clock anchored at construction time.
#[derive(Debug)]
pub struct RealClock {
    start: std::time::Instant,
}

impl RealClock {
    pub fn new() -> Self {
        Self { start: std::time::Instant::now() }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> Time {
        Time(self.start.elapsed().as_nanos() as u64)
    }
}

/// Shared virtual clock for the discrete-event simulator. The event loop is
/// the only writer; any instrumentation component may read it.
#[derive(Debug, Default)]
pub struct SimClock {
    now: std::sync::atomic::AtomicU64,
}

impl SimClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock. Panics if asked to move backwards: the event queue
    /// must dispatch in nondecreasing time order.
    pub fn advance_to(&self, t: Time) {
        use std::sync::atomic::Ordering;
        let prev = self.now.swap(t.0, Ordering::SeqCst);
        assert!(prev <= t.0, "virtual clock moved backwards: {prev} -> {}", t.0);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Time {
        Time(self.now.load(std::sync::atomic::Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = Time::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        let d = Dur::from_millis_f64(2.5);
        assert_eq!(d.0, 2_500_000);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs_f64(1.0) + Dur::from_secs_f64(0.5);
        assert_eq!(t, Time::from_secs_f64(1.5));
        assert_eq!(t - Time::from_secs_f64(1.0), Dur::from_secs_f64(0.5));
        // saturating subtraction
        assert_eq!(Time::from_secs_f64(1.0) - t, Dur::ZERO);
    }

    #[test]
    fn dur_scale() {
        assert_eq!(Dur::from_secs_f64(2.0).scale(1.5), Dur::from_secs_f64(3.0));
        assert_eq!(Dur::from_secs_f64(2.0).scale(0.0), Dur::ZERO);
    }

    #[test]
    fn sim_clock_advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now(), Time::ZERO);
        c.advance_to(Time(10));
        c.advance_to(Time(10));
        c.advance_to(Time(25));
        assert_eq!(c.now(), Time(25));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn sim_clock_rejects_backwards() {
        let c = SimClock::new();
        c.advance_to(Time(10));
        c.advance_to(Time(5));
    }

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
