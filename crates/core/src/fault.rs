//! Fault-schedule schema: the serializable description of one adversarial
//! run perturbation.
//!
//! A [`FaultSchedule`] is the unit of deterministic chaos testing: it lists
//! every perturbation the simulator will apply to a run — worker deaths,
//! fetch-completion delays and duplications, heartbeat suppression windows,
//! Mofka partition stalls, and forced PFS interference bursts. Because the
//! schedule is plain data (and serde-serializable, like [`crate::provenance`]
//! records), a failing schedule can be archived, diffed, and replayed
//! byte-identically: the simulator draws nothing from ambient randomness
//! while applying it. Schedules are normally *generated* from a seed (see
//! `dtf-chaos`), and `seed` records that provenance; hand-written schedules
//! set it to 0.

use serde::{Deserialize, Serialize};

use crate::time::{Dur, Time};

/// Kill worker `ordinal` (index into the run's worker list) at `time`.
/// The worker stops heartbeating and completing work; the WMS detects the
/// loss through the heartbeat timeout, exactly as for a real crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerDeath {
    pub worker: u32,
    pub time: Time,
}

/// Perturb the `index`-th dependency transfer the engine issues (counted in
/// issue order from 0). `extra_delay` stretches its completion;
/// `duplicate` replays the completion event a second time — the scheduler
/// must treat the replay as a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchFault {
    pub index: u64,
    pub extra_delay: Dur,
    pub duplicate: bool,
}

/// Suppress every heartbeat worker `ordinal` would deliver in
/// `[start, stop)`. A window longer than the heartbeat timeout makes the
/// scheduler evict a perfectly healthy worker — the "stalled event loop"
/// failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatDrop {
    pub worker: u32,
    pub start: Time,
    pub stop: Time,
}

/// Stall one partition of one Mofka topic in `[start, stop)`: appends are
/// accepted but stay invisible to consumers until the stall lifts. Delivery
/// must remain exactly-once and in partition order regardless.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MofkaStall {
    pub topic: String,
    pub partition: u32,
    pub start: Time,
    pub stop: Time,
}

/// Force a PFS interference burst: every I/O issued in `[start, stop)` is
/// additionally slowed by `factor` (on top of the stochastic background
/// load process).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceBurst {
    pub start: Time,
    pub stop: Time,
    pub factor: f64,
}

/// One run's complete fault schedule. The empty (default) schedule is a
/// no-op: a run with it is bit-identical to a run without one.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Seed the schedule was generated from (0 for hand-written schedules).
    pub seed: u64,
    pub deaths: Vec<WorkerDeath>,
    pub fetch_faults: Vec<FetchFault>,
    pub heartbeat_drops: Vec<HeartbeatDrop>,
    pub mofka_stalls: Vec<MofkaStall>,
    pub pfs_bursts: Vec<InterferenceBurst>,
}

impl FaultSchedule {
    /// Whether the schedule perturbs anything at all.
    pub fn is_empty(&self) -> bool {
        self.deaths.is_empty()
            && self.fetch_faults.is_empty()
            && self.heartbeat_drops.is_empty()
            && self.mofka_stalls.is_empty()
            && self.pfs_bursts.is_empty()
    }

    /// Total number of scheduled perturbations.
    pub fn len(&self) -> usize {
        self.deaths.len()
            + self.fetch_faults.len()
            + self.heartbeat_drops.len()
            + self.mofka_stalls.len()
            + self.pfs_bursts.len()
    }

    /// The fault (if any) registered for the `index`-th issued fetch.
    pub fn fetch_fault(&self, index: u64) -> Option<&FetchFault> {
        self.fetch_faults.iter().find(|f| f.index == index)
    }

    /// Whether a heartbeat from worker `ordinal` at `now` is suppressed.
    pub fn heartbeat_dropped(&self, worker: u32, now: Time) -> bool {
        self.heartbeat_drops.iter().any(|d| d.worker == worker && d.start <= now && now < d.stop)
    }

    /// Archive the schedule (pretty JSON).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault schedule serializes")
    }

    /// Parse an archived schedule.
    pub fn from_json(json: &str) -> crate::error::Result<Self> {
        Ok(serde_json::from_str(json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_empty() {
        let s = FaultSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.fetch_fault(0).is_none());
        assert!(!s.heartbeat_dropped(0, Time::ZERO));
    }

    #[test]
    fn lookup_helpers() {
        let s = FaultSchedule {
            seed: 1,
            deaths: vec![WorkerDeath { worker: 1, time: Time::from_secs_f64(2.0) }],
            fetch_faults: vec![FetchFault {
                index: 3,
                extra_delay: Dur::from_secs_f64(1.0),
                duplicate: true,
            }],
            heartbeat_drops: vec![HeartbeatDrop {
                worker: 2,
                start: Time::from_secs_f64(1.0),
                stop: Time::from_secs_f64(5.0),
            }],
            mofka_stalls: vec![],
            pfs_bursts: vec![],
        };
        assert_eq!(s.len(), 3);
        assert!(s.fetch_fault(3).unwrap().duplicate);
        assert!(s.fetch_fault(2).is_none());
        assert!(s.heartbeat_dropped(2, Time::from_secs_f64(1.0)));
        assert!(s.heartbeat_dropped(2, Time::from_secs_f64(4.9)));
        assert!(!s.heartbeat_dropped(2, Time::from_secs_f64(5.0)), "stop is exclusive");
        assert!(!s.heartbeat_dropped(1, Time::from_secs_f64(2.0)), "other worker unaffected");
    }

    #[test]
    fn schedule_roundtrips_through_json() {
        let s = FaultSchedule {
            seed: 42,
            deaths: vec![WorkerDeath { worker: 0, time: Time(7) }],
            fetch_faults: vec![FetchFault { index: 0, extra_delay: Dur(5), duplicate: false }],
            heartbeat_drops: vec![],
            mofka_stalls: vec![MofkaStall {
                topic: "task-transitions".into(),
                partition: 1,
                start: Time(0),
                stop: Time(9),
            }],
            pfs_bursts: vec![InterferenceBurst { start: Time(0), stop: Time(3), factor: 4.0 }],
        };
        let back = FaultSchedule::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        assert!(FaultSchedule::from_json("nope").is_err());
    }
}
