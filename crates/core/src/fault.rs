//! Fault-schedule schema: the serializable description of one adversarial
//! run perturbation.
//!
//! A [`FaultSchedule`] is the unit of deterministic chaos testing: it lists
//! every perturbation the simulator will apply to a run — worker deaths,
//! fetch-completion delays and duplications, heartbeat suppression windows,
//! Mofka partition stalls, and forced PFS interference bursts. Because the
//! schedule is plain data (and serde-serializable, like [`crate::provenance`]
//! records), a failing schedule can be archived, diffed, and replayed
//! byte-identically: the simulator draws nothing from ambient randomness
//! while applying it. Schedules are normally *generated* from a seed (see
//! `dtf-chaos`), and `seed` records that provenance; hand-written schedules
//! set it to 0.

use serde::{Deserialize, Serialize};

use crate::time::{Dur, Time};

/// Kill worker `ordinal` (index into the run's worker list) at `time`.
/// The worker stops heartbeating and completing work; the WMS detects the
/// loss through the heartbeat timeout, exactly as for a real crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerDeath {
    pub worker: u32,
    pub time: Time,
}

/// Perturb the `index`-th dependency transfer the engine issues (counted in
/// issue order from 0). `extra_delay` stretches its completion;
/// `duplicate` replays the completion event a second time — the scheduler
/// must treat the replay as a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchFault {
    pub index: u64,
    pub extra_delay: Dur,
    pub duplicate: bool,
}

/// Suppress every heartbeat worker `ordinal` would deliver in
/// `[start, stop)`. A window longer than the heartbeat timeout makes the
/// scheduler evict a perfectly healthy worker — the "stalled event loop"
/// failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatDrop {
    pub worker: u32,
    pub start: Time,
    pub stop: Time,
}

/// Stall one partition of one Mofka topic in `[start, stop)`: appends are
/// accepted but stay invisible to consumers until the stall lifts. Delivery
/// must remain exactly-once and in partition order regardless.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MofkaStall {
    pub topic: String,
    pub partition: u32,
    pub start: Time,
    pub stop: Time,
}

/// Force a PFS interference burst: every I/O issued in `[start, stop)` is
/// additionally slowed by `factor` (on top of the stochastic background
/// load process).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceBurst {
    pub start: Time,
    pub stop: Time,
    pub factor: f64,
}

/// Slow every compute worker `ordinal` performs in `[start, stop)` by
/// `factor` (≥ 1.0) — a straggler. Plain data, not an RNG draw, so a
/// straggling run replays byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerFault {
    pub worker: u32,
    pub factor: f64,
    pub start: Time,
    pub stop: Time,
}

/// Bias placement toward worker `ordinal`: its occupancy/transfer score is
/// multiplied by `weight` (< 1.0 makes it look artificially cheap, so the
/// scheduler piles work onto it — a hot spot).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotspotFault {
    pub worker: u32,
    pub weight: f64,
}

/// Make the blob behind the `index`-th *published* proxy manifest dangle
/// (counted in publish order from 0): the first resolve finds the payload
/// missing from the plane and must repair or surface `IllegalState` with
/// the proxy key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DanglingProxy {
    pub index: u64,
}

/// Stretch the `index`-th proxy resolve (counted in resolve order from 0)
/// by `extra_delay` — a slow resolver. Exactly-once resolution must hold
/// regardless of how late the materialization lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowResolve {
    pub index: u64,
    pub extra_delay: Dur,
}

/// One run's complete fault schedule. The empty (default) schedule is a
/// no-op: a run with it is bit-identical to a run without one.
///
/// The proxy-plane and load-skew fields (stragglers, hotspot,
/// dangling_proxies, slow_resolves) were appended after the original
/// schema froze; they carry serde defaults so archived pre-proxy
/// schedules still parse.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Seed the schedule was generated from (0 for hand-written schedules).
    pub seed: u64,
    pub deaths: Vec<WorkerDeath>,
    pub fetch_faults: Vec<FetchFault>,
    pub heartbeat_drops: Vec<HeartbeatDrop>,
    pub mofka_stalls: Vec<MofkaStall>,
    pub pfs_bursts: Vec<InterferenceBurst>,
    #[serde(default = "Default::default")]
    pub stragglers: Vec<StragglerFault>,
    #[serde(default = "Default::default")]
    pub hotspot: Option<HotspotFault>,
    #[serde(default = "Default::default")]
    pub dangling_proxies: Vec<DanglingProxy>,
    #[serde(default = "Default::default")]
    pub slow_resolves: Vec<SlowResolve>,
}

impl FaultSchedule {
    /// Whether the schedule perturbs anything at all.
    pub fn is_empty(&self) -> bool {
        self.deaths.is_empty()
            && self.fetch_faults.is_empty()
            && self.heartbeat_drops.is_empty()
            && self.mofka_stalls.is_empty()
            && self.pfs_bursts.is_empty()
            && self.stragglers.is_empty()
            && self.hotspot.is_none()
            && self.dangling_proxies.is_empty()
            && self.slow_resolves.is_empty()
    }

    /// Total number of scheduled perturbations.
    pub fn len(&self) -> usize {
        self.deaths.len()
            + self.fetch_faults.len()
            + self.heartbeat_drops.len()
            + self.mofka_stalls.len()
            + self.pfs_bursts.len()
            + self.stragglers.len()
            + usize::from(self.hotspot.is_some())
            + self.dangling_proxies.len()
            + self.slow_resolves.len()
    }

    /// The fault (if any) registered for the `index`-th issued fetch.
    pub fn fetch_fault(&self, index: u64) -> Option<&FetchFault> {
        self.fetch_faults.iter().find(|f| f.index == index)
    }

    /// Whether a heartbeat from worker `ordinal` at `now` is suppressed.
    pub fn heartbeat_dropped(&self, worker: u32, now: Time) -> bool {
        self.heartbeat_drops.iter().any(|d| d.worker == worker && d.start <= now && now < d.stop)
    }

    /// Combined straggler slowdown for worker `ordinal` at `now`
    /// (overlapping windows multiply; 1.0 when unperturbed).
    pub fn straggler_factor(&self, worker: u32, now: Time) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.worker == worker && s.start <= now && now < s.stop)
            .map(|s| s.factor)
            .product()
    }

    /// Whether the `index`-th published proxy's blob should dangle.
    pub fn dangling_proxy(&self, index: u64) -> bool {
        self.dangling_proxies.iter().any(|d| d.index == index)
    }

    /// The slow-resolver fault (if any) for the `index`-th proxy resolve.
    pub fn slow_resolve(&self, index: u64) -> Option<&SlowResolve> {
        self.slow_resolves.iter().find(|s| s.index == index)
    }

    /// Archive the schedule (pretty JSON).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault schedule serializes")
    }

    /// Parse an archived schedule.
    pub fn from_json(json: &str) -> crate::error::Result<Self> {
        Ok(serde_json::from_str(json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_empty() {
        let s = FaultSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.fetch_fault(0).is_none());
        assert!(!s.heartbeat_dropped(0, Time::ZERO));
    }

    #[test]
    fn lookup_helpers() {
        let s = FaultSchedule {
            seed: 1,
            deaths: vec![WorkerDeath { worker: 1, time: Time::from_secs_f64(2.0) }],
            fetch_faults: vec![FetchFault {
                index: 3,
                extra_delay: Dur::from_secs_f64(1.0),
                duplicate: true,
            }],
            heartbeat_drops: vec![HeartbeatDrop {
                worker: 2,
                start: Time::from_secs_f64(1.0),
                stop: Time::from_secs_f64(5.0),
            }],
            ..Default::default()
        };
        assert_eq!(s.len(), 3);
        assert!(s.fetch_fault(3).unwrap().duplicate);
        assert!(s.fetch_fault(2).is_none());
        assert!(s.heartbeat_dropped(2, Time::from_secs_f64(1.0)));
        assert!(s.heartbeat_dropped(2, Time::from_secs_f64(4.9)));
        assert!(!s.heartbeat_dropped(2, Time::from_secs_f64(5.0)), "stop is exclusive");
        assert!(!s.heartbeat_dropped(1, Time::from_secs_f64(2.0)), "other worker unaffected");
    }

    #[test]
    fn schedule_roundtrips_through_json() {
        let s = FaultSchedule {
            seed: 42,
            deaths: vec![WorkerDeath { worker: 0, time: Time(7) }],
            fetch_faults: vec![FetchFault { index: 0, extra_delay: Dur(5), duplicate: false }],
            heartbeat_drops: vec![],
            mofka_stalls: vec![MofkaStall {
                topic: "task-transitions".into(),
                partition: 1,
                start: Time(0),
                stop: Time(9),
            }],
            pfs_bursts: vec![InterferenceBurst { start: Time(0), stop: Time(3), factor: 4.0 }],
            stragglers: vec![StragglerFault {
                worker: 3,
                factor: 2.5,
                start: Time(0),
                stop: Time(9),
            }],
            hotspot: Some(HotspotFault { worker: 1, weight: 0.25 }),
            dangling_proxies: vec![DanglingProxy { index: 2 }],
            slow_resolves: vec![SlowResolve { index: 0, extra_delay: Dur(7) }],
        };
        let back = FaultSchedule::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        assert!(FaultSchedule::from_json("nope").is_err());
    }

    #[test]
    fn pre_proxy_schedules_still_parse() {
        // an archived schedule from before the proxy/skew fields existed
        let old = r#"{
            "seed": 9,
            "deaths": [{"worker": 1, "time": 2000000}],
            "fetch_faults": [],
            "heartbeat_drops": [],
            "mofka_stalls": [],
            "pfs_bursts": []
        }"#;
        let s = FaultSchedule::from_json(old).unwrap();
        assert_eq!(s.seed, 9);
        assert!(s.stragglers.is_empty() && s.hotspot.is_none());
        assert!(s.dangling_proxies.is_empty() && s.slow_resolves.is_empty());
        assert!(!s.is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn proxy_and_skew_helpers() {
        let s = FaultSchedule {
            stragglers: vec![
                StragglerFault { worker: 2, factor: 2.0, start: Time(0), stop: Time(10) },
                StragglerFault { worker: 2, factor: 3.0, start: Time(5), stop: Time(15) },
            ],
            hotspot: Some(HotspotFault { worker: 0, weight: 0.5 }),
            dangling_proxies: vec![DanglingProxy { index: 1 }],
            slow_resolves: vec![SlowResolve { index: 4, extra_delay: Dur(33) }],
            ..Default::default()
        };
        assert!(!s.is_empty());
        assert_eq!(s.len(), 5);
        assert_eq!(s.straggler_factor(2, Time(3)), 2.0);
        assert_eq!(s.straggler_factor(2, Time(7)), 6.0, "overlapping windows multiply");
        assert_eq!(s.straggler_factor(2, Time(12)), 3.0);
        assert_eq!(s.straggler_factor(1, Time(3)), 1.0);
        assert_eq!(s.straggler_factor(2, Time(15)), 1.0, "stop is exclusive");
        assert!(s.dangling_proxy(1) && !s.dangling_proxy(0));
        assert_eq!(s.slow_resolve(4).unwrap().extra_delay, Dur(33));
        assert!(s.slow_resolve(3).is_none());
    }
}
