//! Descriptive statistics used throughout the analysis engine.
//!
//! The paper's figures report means with error bars across runs (Fig. 3) and
//! compare scheduling orders across runs (§IV-D). This module provides the
//! numeric kernels: streaming mean/variance (Welford), percentiles, summary
//! records, and Kendall's tau for order-similarity comparisons.

use serde::{Deserialize, Serialize};

/// Streaming mean / variance accumulator (Welford's algorithm).
///
/// ```
/// use dtf_core::stats::Welford;
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.0);
/// assert_eq!(w.std(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Absorb another accumulator (Chan et al. parallel combination).
    /// Merging is algebraically equivalent to pushing the other side's
    /// samples, but not bit-identical to any particular push order — use
    /// it where partials are combined (per-shard aggregation, cross-run
    /// roll-ups), not where a pinned sequential order must be reproduced.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n_a = self.n as f64;
        let n_b = other.n as f64;
        let n = n_a + n_b;
        let delta = other.mean - self.mean;
        self.mean += delta * (n_b / n);
        self.m2 += other.m2 + delta * delta * (n_a * n_b / n);
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Coefficient of variation (std / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std() / m
        }
    }

    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            mean: self.mean(),
            std: self.std(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// Immutable summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: u64,
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    pub fn of(values: &[f64]) -> Self {
        let mut w = Welford::new();
        for &v in values {
            w.push(v);
        }
        w.summary()
    }

    /// Coefficient of variation (std / mean); 0 for a zero mean.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }
}

/// Percentile with linear interpolation (values need not be sorted).
/// `q` in `[0, 1]`. Returns 0 for an empty slice.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Kendall's tau-a rank correlation between two equal-length sequences.
///
/// Used for the scheduling-order-similarity ablation: the two sequences are
/// the positions at which each task started in run A vs run B. Returns a
/// value in `[-1, 1]`; 1 means identical order. O(n^2) — fine for the tens
/// of thousands of tasks in the paper's workflows when sampled, and exact
/// for per-group comparisons.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "kendall_tau requires equal-length inputs");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant: i64 = 0;
    let mut discordant: i64 = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
            // ties contribute to neither (tau-a)
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Histogram over fixed-width bins of `[lo, hi)`; the last bin is inclusive
/// of `hi`. Out-of-range values are clamped into the edge bins. Used for the
/// warning-distribution figure (Fig. 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub counts: Vec<u64>,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Self { lo, hi, counts: vec![0; bins] }
    }

    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        let idx = (((x - self.lo) / w).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bin center of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // sample std of this classic data set is ~2.138
        assert!((w.std() - 2.138089935299395).abs() < 1e-9, "std {}", w.std());
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.std(), 0.0);
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.std(), 0.0);
    }

    #[test]
    fn merge_matches_sequential_push() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        for split in 0..=data.len() {
            let (lo, hi) = data.split_at(split);
            let mut a = Welford::new();
            let mut b = Welford::new();
            for &x in lo {
                a.push(x);
            }
            for &x in hi {
                b.push(x);
            }
            a.merge(&b);
            assert_eq!(a.count(), whole.count());
            assert!((a.mean() - whole.mean()).abs() < 1e-12, "split {split}");
            assert!((a.std() - whole.std()).abs() < 1e-12, "split {split}");
            assert_eq!(a.min(), whole.min());
            assert_eq!(a.max(), whole.max());
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(3.0);
        w.push(5.0);
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentiles() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn kendall_identical_and_reversed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &rev), -1.0);
    }

    #[test]
    fn kendall_partial() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 3.0, 2.0];
        // one discordant of three pairs -> (2-1)/3
        assert!((kendall_tau(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_trivial_lengths() {
        assert_eq!(kendall_tau(&[], &[]), 1.0);
        assert_eq!(kendall_tau(&[1.0], &[5.0]), 1.0);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(0.5); // bin 0
        h.push(9.99); // bin 4
        h.push(10.0); // clamped into bin 4
        h.push(-3.0); // clamped into bin 0
        h.push(5.0); // bin 2
        assert_eq!(h.counts, vec![2, 0, 1, 0, 2]);
        assert_eq!(h.total(), 5);
        assert!((h.center(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_slice() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }
}
