//! The binary at-rest encoding of [`ProvRecord`]s.
//!
//! PR 5 persisted provenance records as compact JSON text inside the
//! segmented log, so every replay — recovery, `Topic::restore`,
//! `RunData::open_archive` — re-parsed a JSON tree per record. This module
//! is the compact alternative: a one-byte family tag followed by the
//! record's fields in declaration order, integers as LEB128 varints,
//! strings length-prefixed UTF-8. Decoding reads fields straight off the
//! borrowed slice into the typed record — no intermediate value tree is
//! ever built — and task prefixes are re-interned through the global
//! [`TaskPrefix`] table, so a decoded record shares one prefix allocation
//! with every other record of its family, exactly like a live one.
//!
//! The encoding is **not** self-delimiting at the stream level (the
//! segmented log's length frames provide that); [`ProvRecord::decode_binary`]
//! therefore demands that the record consume the slice exactly — trailing
//! bytes are corruption, not padding.
//!
//! Layout reference (all multi-byte integers are LEB128 varints):
//!
//! ```text
//! record   := family:u8 fields…
//! key      := str(prefix) varint(token) varint(index)
//! worker   := varint(node) varint(slot)
//! str(s)   := varint(len) utf8-bytes
//! location := 0x00 | 0x01 worker
//! source   := 0x00 | 0x01 varint(client) | 0x02 worker
//! option   := 0x00 | 0x01 value
//! ```
//!
//! Family tags and per-family field order are frozen by the round-trip
//! proptests and by the mixed-version store tests: changing either is a
//! format break and needs a new segment-header format version.

use crate::error::{DtfError, Result};
use crate::events::{
    CommEvent, IoOp, IoRecord, Location, LogEntry, LogLevel, LogSource, ProvRecord, ProxyAction,
    ProxyEvent, Stimulus, TaskDoneEvent, TaskMetaEvent, TaskState, TransitionEvent, WarningEvent,
    WarningKind, WorkerTaskState, WorkerTransitionEvent,
};
use crate::ids::{ClientId, FileId, GraphId, NodeId, TaskKey, TaskPrefix, ThreadId, WorkerId};
use crate::time::{Dur, Time};

/// One-byte family tags — the first byte of every encoded record.
pub const TAG_TASK_META: u8 = 0;
pub const TAG_TRANSITION: u8 = 1;
pub const TAG_WORKER_TRANSITION: u8 = 2;
pub const TAG_TASK_DONE: u8 = 3;
pub const TAG_COMM: u8 = 4;
pub const TAG_WARNING: u8 = 5;
pub const TAG_LOG: u8 = 6;
pub const TAG_IO: u8 = 7;
/// Appended by PR 10 (proxy data plane); pre-proxy stores simply never
/// contain it, so old segments keep decoding unchanged.
pub const TAG_PROXY: u8 = 8;

fn bad(what: impl Into<String>) -> DtfError {
    DtfError::Serde(format!("binary record: {}", what.into()))
}

// ---------------------------------------------------------------- writing

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_key(out: &mut Vec<u8>, k: &TaskKey) {
    put_str(out, k.prefix.as_str());
    put_varint(out, k.token as u64);
    put_varint(out, k.index as u64);
}

fn put_worker(out: &mut Vec<u8>, w: &WorkerId) {
    put_varint(out, w.node.0 as u64);
    put_varint(out, w.slot as u64);
}

// ---------------------------------------------------------------- reading

/// A cursor over one encoded record. All reads borrow from the slice the
/// caller holds (for replay: the whole-segment buffer) — the only
/// allocations a decode performs are the owned `String`/`Vec` fields of
/// the record itself, and interned prefixes don't even pay that.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8> {
        let b = *self.buf.get(self.pos).ok_or_else(|| bad("truncated"))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(bad("varint overflows u64"));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(bad("varint longer than 10 bytes"));
            }
        }
    }

    fn varint_u32(&mut self) -> Result<u32> {
        u32::try_from(self.varint()?).map_err(|_| bad("varint overflows u32"))
    }

    fn str(&mut self) -> Result<&'a str> {
        let len = self.varint()? as usize;
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| bad("string length exceeds record"))?;
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| bad("string is not utf-8"))?;
        self.pos = end;
        Ok(s)
    }

    fn key(&mut self) -> Result<TaskKey> {
        let prefix = TaskPrefix::intern(self.str()?);
        let token = self.varint_u32()?;
        let index = self.varint_u32()?;
        Ok(TaskKey { prefix, token, index })
    }

    fn worker(&mut self) -> Result<WorkerId> {
        let node = NodeId(self.varint_u32()?);
        let slot = self.varint_u32()?;
        Ok(WorkerId { node, slot })
    }

    /// The record must consume its slice exactly; trailing bytes mean the
    /// frame length and the record disagree — corruption.
    fn finish(self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!("{} trailing bytes", self.buf.len() - self.pos)))
        }
    }
}

// ------------------------------------------------------- enum discriminants

fn task_state_tag(s: TaskState) -> u8 {
    match s {
        TaskState::Released => 0,
        TaskState::Waiting => 1,
        TaskState::NoWorker => 2,
        TaskState::Queued => 3,
        TaskState::Processing => 4,
        TaskState::Memory => 5,
        TaskState::Erred => 6,
        TaskState::Forgotten => 7,
    }
}

fn task_state_from(b: u8) -> Result<TaskState> {
    Ok(match b {
        0 => TaskState::Released,
        1 => TaskState::Waiting,
        2 => TaskState::NoWorker,
        3 => TaskState::Queued,
        4 => TaskState::Processing,
        5 => TaskState::Memory,
        6 => TaskState::Erred,
        7 => TaskState::Forgotten,
        t => return Err(bad(format!("unknown task state {t}"))),
    })
}

fn worker_state_tag(s: WorkerTaskState) -> u8 {
    match s {
        WorkerTaskState::Waiting => 0,
        WorkerTaskState::Fetch => 1,
        WorkerTaskState::Flight => 2,
        WorkerTaskState::Ready => 3,
        WorkerTaskState::Executing => 4,
        WorkerTaskState::Memory => 5,
        WorkerTaskState::Error => 6,
        WorkerTaskState::Released => 7,
    }
}

fn worker_state_from(b: u8) -> Result<WorkerTaskState> {
    Ok(match b {
        0 => WorkerTaskState::Waiting,
        1 => WorkerTaskState::Fetch,
        2 => WorkerTaskState::Flight,
        3 => WorkerTaskState::Ready,
        4 => WorkerTaskState::Executing,
        5 => WorkerTaskState::Memory,
        6 => WorkerTaskState::Error,
        7 => WorkerTaskState::Released,
        t => return Err(bad(format!("unknown worker task state {t}"))),
    })
}

fn stimulus_tag(s: Stimulus) -> u8 {
    match s {
        Stimulus::GraphSubmitted => 0,
        Stimulus::DependenciesMet => 1,
        Stimulus::Dispatched => 2,
        Stimulus::ComputeStarted => 3,
        Stimulus::ComputeFinished => 4,
        Stimulus::ComputeErred => 5,
        Stimulus::WorkStolen => 6,
        Stimulus::WorkerLost => 7,
        Stimulus::ClientReleased => 8,
        Stimulus::NoWorkerAvailable => 9,
        Stimulus::Queue => 10,
    }
}

fn stimulus_from(b: u8) -> Result<Stimulus> {
    Ok(match b {
        0 => Stimulus::GraphSubmitted,
        1 => Stimulus::DependenciesMet,
        2 => Stimulus::Dispatched,
        3 => Stimulus::ComputeStarted,
        4 => Stimulus::ComputeFinished,
        5 => Stimulus::ComputeErred,
        6 => Stimulus::WorkStolen,
        7 => Stimulus::WorkerLost,
        8 => Stimulus::ClientReleased,
        9 => Stimulus::NoWorkerAvailable,
        10 => Stimulus::Queue,
        t => return Err(bad(format!("unknown stimulus {t}"))),
    })
}

fn io_op_tag(op: IoOp) -> u8 {
    match op {
        IoOp::Open => 0,
        IoOp::Read => 1,
        IoOp::Write => 2,
        IoOp::Close => 3,
    }
}

fn io_op_from(b: u8) -> Result<IoOp> {
    Ok(match b {
        0 => IoOp::Open,
        1 => IoOp::Read,
        2 => IoOp::Write,
        3 => IoOp::Close,
        t => return Err(bad(format!("unknown io op {t}"))),
    })
}

fn warning_kind_tag(k: WarningKind) -> u8 {
    match k {
        WarningKind::UnresponsiveEventLoop => 0,
        WarningKind::GcPause => 1,
    }
}

fn warning_kind_from(b: u8) -> Result<WarningKind> {
    Ok(match b {
        0 => WarningKind::UnresponsiveEventLoop,
        1 => WarningKind::GcPause,
        t => return Err(bad(format!("unknown warning kind {t}"))),
    })
}

fn log_level_tag(l: LogLevel) -> u8 {
    match l {
        LogLevel::Debug => 0,
        LogLevel::Info => 1,
        LogLevel::Warning => 2,
        LogLevel::Error => 3,
    }
}

fn log_level_from(b: u8) -> Result<LogLevel> {
    Ok(match b {
        0 => LogLevel::Debug,
        1 => LogLevel::Info,
        2 => LogLevel::Warning,
        3 => LogLevel::Error,
        t => return Err(bad(format!("unknown log level {t}"))),
    })
}

fn proxy_action_tag(a: ProxyAction) -> u8 {
    match a {
        ProxyAction::Published => 0,
        ProxyAction::Republished => 1,
        ProxyAction::Resolved => 2,
        ProxyAction::Evicted => 3,
        ProxyAction::Resourced => 4,
        ProxyAction::Orphaned => 5,
    }
}

fn proxy_action_from(b: u8) -> Result<ProxyAction> {
    Ok(match b {
        0 => ProxyAction::Published,
        1 => ProxyAction::Republished,
        2 => ProxyAction::Resolved,
        3 => ProxyAction::Evicted,
        4 => ProxyAction::Resourced,
        5 => ProxyAction::Orphaned,
        t => return Err(bad(format!("unknown proxy action {t}"))),
    })
}

// ---------------------------------------------------------------- records

impl ProvRecord {
    /// Append the binary encoding of this record to `out`.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        match self {
            ProvRecord::TaskMeta(e) => {
                out.push(TAG_TASK_META);
                put_key(out, &e.key);
                put_varint(out, e.graph.0 as u64);
                put_varint(out, e.client.0 as u64);
                put_varint(out, e.deps.len() as u64);
                for d in &e.deps {
                    put_key(out, d);
                }
                put_varint(out, e.submitted.0);
            }
            ProvRecord::Transition(e) => {
                out.push(TAG_TRANSITION);
                put_key(out, &e.key);
                put_varint(out, e.graph.0 as u64);
                out.push(task_state_tag(e.from));
                out.push(task_state_tag(e.to));
                out.push(stimulus_tag(e.stimulus));
                match e.location {
                    Location::Scheduler => out.push(0),
                    Location::Worker(w) => {
                        out.push(1);
                        put_worker(out, &w);
                    }
                }
                put_varint(out, e.time.0);
            }
            ProvRecord::WorkerTransition(e) => {
                out.push(TAG_WORKER_TRANSITION);
                put_key(out, &e.key);
                put_varint(out, e.graph.0 as u64);
                put_worker(out, &e.worker);
                out.push(worker_state_tag(e.from));
                out.push(worker_state_tag(e.to));
                put_varint(out, e.time.0);
            }
            ProvRecord::TaskDone(e) => {
                out.push(TAG_TASK_DONE);
                put_key(out, &e.key);
                put_varint(out, e.graph.0 as u64);
                put_worker(out, &e.worker);
                put_varint(out, e.thread.0);
                put_varint(out, e.start.0);
                put_varint(out, e.stop.0);
                put_varint(out, e.nbytes);
            }
            ProvRecord::Comm(e) => {
                out.push(TAG_COMM);
                put_key(out, &e.key);
                put_worker(out, &e.from);
                put_worker(out, &e.to);
                put_varint(out, e.nbytes);
                put_varint(out, e.start.0);
                put_varint(out, e.stop.0);
            }
            ProvRecord::Warning(e) => {
                out.push(TAG_WARNING);
                out.push(warning_kind_tag(e.kind));
                match &e.worker {
                    None => out.push(0),
                    Some(w) => {
                        out.push(1);
                        put_worker(out, w);
                    }
                }
                put_varint(out, e.time.0);
                put_varint(out, e.duration.0);
            }
            ProvRecord::Log(e) => {
                out.push(TAG_LOG);
                put_varint(out, e.time.0);
                out.push(log_level_tag(e.level));
                match &e.source {
                    LogSource::Scheduler => out.push(0),
                    LogSource::Client(c) => {
                        out.push(1);
                        put_varint(out, c.0 as u64);
                    }
                    LogSource::Worker(w) => {
                        out.push(2);
                        put_worker(out, w);
                    }
                }
                put_str(out, &e.message);
            }
            ProvRecord::Io(e) => {
                out.push(TAG_IO);
                put_varint(out, e.host.0 as u64);
                put_worker(out, &e.worker);
                put_varint(out, e.thread.0);
                put_varint(out, e.file.0);
                out.push(io_op_tag(e.op));
                put_varint(out, e.offset);
                put_varint(out, e.size);
                put_varint(out, e.start.0);
                put_varint(out, e.stop.0);
            }
            ProvRecord::Proxy(e) => {
                out.push(TAG_PROXY);
                out.push(proxy_action_tag(e.action));
                put_key(out, &e.key);
                put_varint(out, e.graph.0 as u64);
                put_varint(out, e.size);
                put_worker(out, &e.owner);
                put_varint(out, e.checksum);
                put_varint(out, e.generation as u64);
                match &e.worker {
                    None => out.push(0),
                    Some(w) => {
                        out.push(1);
                        put_worker(out, w);
                    }
                }
                put_varint(out, e.time.0);
            }
        }
    }

    /// The binary encoding as an owned buffer (see [`encode_binary`]).
    ///
    /// [`encode_binary`]: ProvRecord::encode_binary
    pub fn to_binary_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        self.encode_binary(&mut out);
        out
    }

    /// Decode one record from `buf`, which must hold exactly one encoded
    /// record (the frame length of the surrounding log delimits it).
    /// Prefixes are re-interned, so decoded keys share allocations the
    /// same way live keys do.
    pub fn decode_binary(buf: &[u8]) -> Result<ProvRecord> {
        let mut r = Reader::new(buf);
        let rec = match r.u8()? {
            TAG_TASK_META => {
                let key = r.key()?;
                let graph = GraphId(r.varint_u32()?);
                let client = ClientId(r.varint_u32()?);
                let n = r.varint()? as usize;
                // a dep count can't exceed the remaining bytes (each dep is
                // at least 3 bytes) — reject before reserving anything
                if n > buf.len() {
                    return Err(bad("dependency count exceeds record"));
                }
                let mut deps = Vec::with_capacity(n);
                for _ in 0..n {
                    deps.push(r.key()?);
                }
                let submitted = Time(r.varint()?);
                ProvRecord::TaskMeta(TaskMetaEvent { key, graph, client, deps, submitted })
            }
            TAG_TRANSITION => ProvRecord::Transition(TransitionEvent {
                key: r.key()?,
                graph: GraphId(r.varint_u32()?),
                from: task_state_from(r.u8()?)?,
                to: task_state_from(r.u8()?)?,
                stimulus: stimulus_from(r.u8()?)?,
                location: match r.u8()? {
                    0 => Location::Scheduler,
                    1 => Location::Worker(r.worker()?),
                    t => return Err(bad(format!("unknown location tag {t}"))),
                },
                time: Time(r.varint()?),
            }),
            TAG_WORKER_TRANSITION => ProvRecord::WorkerTransition(WorkerTransitionEvent {
                key: r.key()?,
                graph: GraphId(r.varint_u32()?),
                worker: r.worker()?,
                from: worker_state_from(r.u8()?)?,
                to: worker_state_from(r.u8()?)?,
                time: Time(r.varint()?),
            }),
            TAG_TASK_DONE => ProvRecord::TaskDone(TaskDoneEvent {
                key: r.key()?,
                graph: GraphId(r.varint_u32()?),
                worker: r.worker()?,
                thread: ThreadId(r.varint()?),
                start: Time(r.varint()?),
                stop: Time(r.varint()?),
                nbytes: r.varint()?,
            }),
            TAG_COMM => ProvRecord::Comm(CommEvent {
                key: r.key()?,
                from: r.worker()?,
                to: r.worker()?,
                nbytes: r.varint()?,
                start: Time(r.varint()?),
                stop: Time(r.varint()?),
            }),
            TAG_WARNING => ProvRecord::Warning(WarningEvent {
                kind: warning_kind_from(r.u8()?)?,
                worker: match r.u8()? {
                    0 => None,
                    1 => Some(r.worker()?),
                    t => return Err(bad(format!("unknown option tag {t}"))),
                },
                time: Time(r.varint()?),
                duration: Dur(r.varint()?),
            }),
            TAG_LOG => ProvRecord::Log(LogEntry {
                time: Time(r.varint()?),
                level: log_level_from(r.u8()?)?,
                source: match r.u8()? {
                    0 => LogSource::Scheduler,
                    1 => LogSource::Client(ClientId(r.varint_u32()?)),
                    2 => LogSource::Worker(r.worker()?),
                    t => return Err(bad(format!("unknown log source tag {t}"))),
                },
                message: r.str()?.to_string(),
            }),
            TAG_IO => ProvRecord::Io(IoRecord {
                host: NodeId(r.varint_u32()?),
                worker: r.worker()?,
                thread: ThreadId(r.varint()?),
                file: FileId(r.varint()?),
                op: io_op_from(r.u8()?)?,
                offset: r.varint()?,
                size: r.varint()?,
                start: Time(r.varint()?),
                stop: Time(r.varint()?),
            }),
            TAG_PROXY => ProvRecord::Proxy(ProxyEvent {
                action: proxy_action_from(r.u8()?)?,
                key: r.key()?,
                graph: GraphId(r.varint_u32()?),
                size: r.varint()?,
                owner: r.worker()?,
                checksum: r.varint()?,
                generation: r.varint_u32()?,
                worker: match r.u8()? {
                    0 => None,
                    1 => Some(r.worker()?),
                    t => return Err(bad(format!("unknown option tag {t}"))),
                },
                time: Time(r.varint()?),
            }),
            t => return Err(bad(format!("unknown family tag {t}"))),
        };
        r.finish()?;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> TaskKey {
        TaskKey::new("inc", 1, 0)
    }

    /// One record of every family with awkward values — the same fixture
    /// shape the JSON wire-size tests pin.
    fn samples() -> Vec<ProvRecord> {
        let w = WorkerId::new(NodeId(12), 3);
        let w2 = WorkerId::new(NodeId(0), 0);
        vec![
            ProvRecord::TaskMeta(TaskMetaEvent {
                key: TaskKey::new("load-image", 42, 1000),
                graph: GraphId(7),
                client: ClientId(3),
                deps: vec![key(), TaskKey::new("sum", 0, 99)],
                submitted: Time(1_234_567_890),
            }),
            ProvRecord::TaskMeta(TaskMetaEvent {
                key: key(),
                graph: GraphId(0),
                client: ClientId(0),
                deps: vec![],
                submitted: Time(0),
            }),
            ProvRecord::Transition(TransitionEvent {
                key: key(),
                graph: GraphId(2),
                from: TaskState::NoWorker,
                to: TaskState::Processing,
                stimulus: Stimulus::Dispatched,
                location: Location::Worker(w),
                time: Time(u64::MAX),
            }),
            ProvRecord::WorkerTransition(WorkerTransitionEvent {
                key: key(),
                graph: GraphId(1),
                worker: w,
                from: WorkerTaskState::Ready,
                to: WorkerTaskState::Executing,
                time: Time(456),
            }),
            ProvRecord::TaskDone(TaskDoneEvent {
                key: key(),
                graph: GraphId(1),
                worker: w,
                thread: ThreadId(777),
                start: Time(10),
                stop: Time(20),
                nbytes: 1 << 40,
            }),
            ProvRecord::Comm(CommEvent {
                key: key(),
                from: w,
                to: w2,
                nbytes: 0,
                start: Time(5),
                stop: Time(6),
            }),
            ProvRecord::Warning(WarningEvent {
                kind: WarningKind::GcPause,
                worker: None,
                time: Time(9),
                duration: Dur(0),
            }),
            ProvRecord::Warning(WarningEvent {
                kind: WarningKind::UnresponsiveEventLoop,
                worker: Some(w),
                time: Time(9),
                duration: Dur(100),
            }),
            ProvRecord::Log(LogEntry {
                time: Time(77),
                level: LogLevel::Warning,
                source: LogSource::Client(ClientId(4)),
                message: String::from("odd \"quoted\"\npath\\x\t\u{1} π"),
            }),
            ProvRecord::Log(LogEntry {
                time: Time(78),
                level: LogLevel::Info,
                source: LogSource::Scheduler,
                message: String::new(),
            }),
            ProvRecord::Io(IoRecord {
                host: NodeId(3),
                worker: w,
                thread: ThreadId(7),
                file: FileId(12),
                op: IoOp::Write,
                offset: 65536,
                size: 4096,
                start: Time(100),
                stop: Time(200),
            }),
            ProvRecord::Proxy(ProxyEvent {
                action: ProxyAction::Published,
                key: TaskKey::new("load-image", 42, 1000),
                graph: GraphId(7),
                size: 1 << 28,
                owner: w,
                checksum: u64::MAX,
                generation: 0,
                worker: None,
                time: Time(314),
            }),
            ProvRecord::Proxy(ProxyEvent {
                action: ProxyAction::Resolved,
                key: key(),
                graph: GraphId(0),
                size: 0,
                owner: w2,
                checksum: 0,
                generation: 12,
                worker: Some(w),
                time: Time(u64::MAX),
            }),
        ]
    }

    #[test]
    fn every_family_roundtrips_exactly() {
        for rec in samples() {
            let bytes = rec.to_binary_bytes();
            let back = ProvRecord::decode_binary(&bytes).unwrap();
            assert_eq!(rec, back, "round-trip diverged for {rec:?}");
            // and the JSON rendering (the export boundary) agrees too
            assert_eq!(rec.to_value(), back.to_value());
        }
    }

    #[test]
    fn binary_is_smaller_than_json() {
        for rec in samples() {
            let bin = rec.to_binary_bytes().len();
            let json = rec.encoded_size();
            assert!(bin < json, "binary ({bin}B) not smaller than JSON ({json}B) for {rec:?}");
        }
    }

    #[test]
    fn decoded_prefixes_are_interned() {
        let rec = ProvRecord::TaskDone(TaskDoneEvent {
            key: TaskKey::new("intern-check", 5, 6),
            graph: GraphId(1),
            worker: WorkerId::new(NodeId(0), 0),
            thread: ThreadId(1),
            start: Time(0),
            stop: Time(1),
            nbytes: 0,
        });
        let back = ProvRecord::decode_binary(&rec.to_binary_bytes()).unwrap();
        let (a, b) = match (&rec, &back) {
            (ProvRecord::TaskDone(a), ProvRecord::TaskDone(b)) => (&a.key.prefix, &b.key.prefix),
            _ => unreachable!(),
        };
        assert_eq!(a, b);
        // pointer-equal through the global intern table, not just equal
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn truncation_at_every_byte_is_an_error_never_a_panic() {
        for rec in samples() {
            let bytes = rec.to_binary_bytes();
            for cut in 0..bytes.len() {
                assert!(
                    ProvRecord::decode_binary(&bytes[..cut]).is_err(),
                    "truncating {rec:?} at byte {cut} decoded to something"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = samples()[0].to_binary_bytes();
        bytes.push(0);
        assert!(ProvRecord::decode_binary(&bytes).is_err());
    }

    #[test]
    fn garbage_tags_are_rejected() {
        assert!(ProvRecord::decode_binary(&[]).is_err());
        assert!(ProvRecord::decode_binary(&[0xff]).is_err());
        // a valid record with its family tag corrupted
        let mut bytes = samples()[2].to_binary_bytes();
        bytes[0] = 200;
        assert!(ProvRecord::decode_binary(&bytes).is_err());
        // a Transition with an out-of-range state byte
        let mut bytes = samples()[2].to_binary_bytes();
        // offset math: ...from,to,stimulus,loc-tag,worker(2),time(10)
        let state_off = bytes.len() - 11;
        // corrupting any single mid-record byte must never panic
        for off in 1..bytes.len() {
            let mut b = bytes.clone();
            b[off] = 0xee;
            let _ = ProvRecord::decode_binary(&b);
        }
        bytes[state_off] = 99;
        let _ = ProvRecord::decode_binary(&bytes);
    }

    #[test]
    fn oversized_length_fields_error_without_allocating() {
        // a TaskMeta whose dep count claims u64::MAX entries
        let mut out = vec![TAG_TASK_META];
        put_str(&mut out, "x");
        put_varint(&mut out, 0); // token
        put_varint(&mut out, 0); // index
        put_varint(&mut out, 0); // graph
        put_varint(&mut out, 0); // client
        put_varint(&mut out, u64::MAX); // dep count
        assert!(ProvRecord::decode_binary(&out).is_err());
        // a Log whose message length exceeds the buffer
        let mut out = vec![TAG_LOG];
        put_varint(&mut out, 0); // time
        out.push(0); // level
        out.push(0); // source: scheduler
        put_varint(&mut out, u64::MAX); // message length
        assert!(ProvRecord::decode_binary(&out).is_err());
    }

    #[test]
    fn varints_roundtrip_at_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut r = Reader::new(&out);
            assert_eq!(r.varint().unwrap(), v);
            r.finish().unwrap();
        }
        // an 11-byte varint is rejected
        let mut r = Reader::new(&[0x80; 11]);
        assert!(r.varint().is_err());
        // a 10-byte varint whose top byte overflows bit 64 is rejected
        let mut over = vec![0xff; 9];
        over.push(0x02);
        let mut r = Reader::new(&over);
        assert!(r.varint().is_err());
    }
}
