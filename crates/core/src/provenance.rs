//! The layered data-provenance chart (paper Fig. 1) and the per-task lineage
//! record (paper Fig. 8).
//!
//! Provenance is collected at three layers:
//! 1. hardware infrastructure (platform characteristics),
//! 2. system software & job configuration (OS, modules, packages, job script,
//!    allocated nodes, WMS configuration),
//! 3. application layer (WMS events + I/O characterization).
//!
//! Layers 1–2 are captured once per run; layer 3 is the event stream.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::events::{CommEvent, IoRecord, Location, Stimulus, TaskState};
use crate::ids::{ClientId, GraphId, NodeId, TaskKey, ThreadId, WorkerId};
use crate::time::Time;

/// Hardware-infrastructure layer provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareInfo {
    pub cpu_model: String,
    pub cores_per_node: u32,
    pub memory_gb_per_node: u32,
    pub gpus_per_node: u32,
    pub nics_per_node: u32,
    pub node_count: u32,
    pub network: String,
    pub pfs: String,
}

impl HardwareInfo {
    /// Polaris-like defaults matching the paper's evaluation platform (§IV-A).
    pub fn polaris_like(node_count: u32) -> Self {
        Self {
            cpu_model: "AMD EPYC Milan 7543P 32c 2.8GHz".into(),
            cores_per_node: 32,
            memory_gb_per_node: 512,
            gpus_per_node: 4,
            nics_per_node: 2,
            node_count,
            network: "Slingshot 11, dragonfly".into(),
            pfs: "Lustre on ClusterStor E1000, 100PB, 650GB/s aggregate".into(),
        }
    }
}

/// System-software / job-configuration layer provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemInfo {
    pub os: String,
    pub kernel: String,
    pub loaded_modules: Vec<String>,
    /// package name -> version
    pub packages: BTreeMap<String, String>,
}

impl SystemInfo {
    pub fn synthetic() -> Self {
        let mut packages = BTreeMap::new();
        packages.insert("dtf-wms".into(), env!("CARGO_PKG_VERSION").into());
        packages.insert("dtf-darshan".into(), env!("CARGO_PKG_VERSION").into());
        packages.insert("dtf-mofka".into(), env!("CARGO_PKG_VERSION").into());
        Self {
            os: "SUSE Linux Enterprise 15".into(),
            kernel: "5.14.21".into(),
            loaded_modules: vec!["PrgEnv-gnu".into(), "cray-mpich".into(), "cudatoolkit".into()],
            packages,
        }
    }
}

/// Job allocation provenance (requested vs allocated resources).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobInfo {
    pub job_id: u64,
    pub script: String,
    pub queue: String,
    pub nodes_requested: u32,
    pub allocated_nodes: Vec<NodeId>,
    pub submit_time: Time,
    pub start_time: Time,
    pub walltime_limit_s: u64,
}

/// WMS configuration relevant to performance (the `distributed.yaml`
/// analog: timeouts, heartbeat intervals, communication settings).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WmsConfig {
    pub workers_per_node: u32,
    pub threads_per_worker: u32,
    pub heartbeat_interval_ms: u64,
    pub connect_timeout_ms: u64,
    pub comm_retry_count: u32,
    pub work_stealing: bool,
    /// Scheduler bandwidth assumption used by its placement heuristic (B/s).
    pub assumed_bandwidth: u64,
}

impl Default for WmsConfig {
    fn default() -> Self {
        // Paper job configuration: 2 worker nodes, 4 workers/node,
        // 8 threads/worker; Dask defaults for the rest.
        Self {
            workers_per_node: 4,
            threads_per_worker: 8,
            heartbeat_interval_ms: 500,
            connect_timeout_ms: 30_000,
            comm_retry_count: 0,
            work_stealing: true,
            assumed_bandwidth: 100 * 1024 * 1024,
        }
    }
}

/// The full static provenance chart for one run (layers 1–2 of Fig. 1 plus
/// client-side application metadata).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceChart {
    pub hardware: HardwareInfo,
    pub system: SystemInfo,
    pub job: JobInfo,
    pub wms_config: WmsConfig,
    /// Hash of the client code that generated the task graphs.
    pub client_code_hash: u64,
    pub workflow_name: String,
}

// ---------------------------------------------------------------------------
// Per-task lineage (Fig. 8)
// ---------------------------------------------------------------------------

/// One state transition in a task's lineage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageTransition {
    pub from: TaskState,
    pub to: TaskState,
    pub stimulus: Stimulus,
    pub location: Location,
    pub time: Time,
}

/// One residence of the task's output in distributed memory (the original
/// compute location plus any replicas created by transfers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageLocation {
    pub worker: WorkerId,
    pub thread: Option<ThreadId>,
    pub since: Time,
}

/// Complete lineage of one task: the paper's Fig. 8 record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TaskLineage {
    #[serde(skip_serializing_if = "Option::is_none")]
    pub key: Option<TaskKey>,
    pub graph: Option<GraphId>,
    pub client: Option<ClientId>,
    pub submitted: Option<Time>,
    pub dependencies: Vec<TaskKey>,
    pub dependents: Vec<TaskKey>,
    pub states: Vec<LineageTransition>,
    pub locations: Vec<LineageLocation>,
    /// Inter-worker movements of this task's output data.
    pub movements: Vec<CommEvent>,
    /// I/O performed while this task was executing (joined via thread id +
    /// timestamps).
    pub io: Vec<IoRecord>,
    pub output_nbytes: Option<u64>,
    pub start: Option<Time>,
    pub stop: Option<Time>,
}

impl TaskLineage {
    /// Lineage sanity: states must be time-ordered and chained (each
    /// transition starts from the state the previous one reached).
    pub fn is_consistent(&self) -> bool {
        for w in self.states.windows(2) {
            if w[1].time < w[0].time {
                return false;
            }
            if w[1].from != w[0].to {
                return false;
            }
        }
        true
    }

    /// Pretty JSON rendering, the Fig. 8 "task provenance summary".
    pub fn to_pretty_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("lineage serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polaris_defaults_match_paper() {
        let hw = HardwareInfo::polaris_like(560);
        assert_eq!(hw.node_count, 560);
        assert_eq!(hw.cores_per_node, 32);
        assert_eq!(hw.gpus_per_node, 4);
    }

    #[test]
    fn wms_config_matches_paper_job_configuration() {
        let c = WmsConfig::default();
        assert_eq!(c.workers_per_node, 4);
        assert_eq!(c.threads_per_worker, 8);
        assert!(c.work_stealing);
    }

    #[test]
    fn lineage_consistency_checks_chain_and_order() {
        let mut l = TaskLineage::default();
        l.states.push(LineageTransition {
            from: TaskState::Released,
            to: TaskState::Waiting,
            stimulus: Stimulus::GraphSubmitted,
            location: Location::Scheduler,
            time: Time(0),
        });
        l.states.push(LineageTransition {
            from: TaskState::Waiting,
            to: TaskState::Processing,
            stimulus: Stimulus::Dispatched,
            location: Location::Scheduler,
            time: Time(10),
        });
        assert!(l.is_consistent());

        // break the chain
        l.states[1].from = TaskState::Queued;
        assert!(!l.is_consistent());

        // break time ordering
        l.states[1].from = TaskState::Waiting;
        l.states[1].time = Time(0);
        l.states[0].time = Time(5);
        assert!(!l.is_consistent());
    }

    #[test]
    fn lineage_serializes_to_pretty_json() {
        let l = TaskLineage {
            key: Some(TaskKey::new("getitem__get_categories", 0x24266c, 63)),
            graph: Some(GraphId(2)),
            ..Default::default()
        };
        let s = l.to_pretty_json();
        assert!(s.contains("getitem__get_categories"));
        assert!(s.contains("\"graph\""));
    }

    #[test]
    fn chart_serde_roundtrip() {
        let chart = ProvenanceChart {
            hardware: HardwareInfo::polaris_like(2),
            system: SystemInfo::synthetic(),
            job: JobInfo {
                job_id: 1,
                script: "#!/bin/bash\n...".into(),
                queue: "debug".into(),
                nodes_requested: 2,
                allocated_nodes: vec![NodeId(0), NodeId(1)],
                submit_time: Time(0),
                start_time: Time(100),
                walltime_limit_s: 3600,
            },
            wms_config: WmsConfig::default(),
            client_code_hash: 0xdead_beef,
            workflow_name: "xgboost".into(),
        };
        let s = serde_json::to_string(&chart).unwrap();
        let back: ProvenanceChart = serde_json::from_str(&s).unwrap();
        assert_eq!(chart, back);
    }
}
