//! The event schema of the characterization framework.
//!
//! These are the records the WMS plugins stream into the event service
//! (paper §III-E2) and that the I/O layer logs (§III-E3). Each record type
//! carries the shared identifiers (task key, worker address, pthread id,
//! timestamps) that make multi-source joins possible at analysis time.

use serde::{Deserialize, Serialize};

use crate::ids::{ClientId, FileId, GraphId, NodeId, TaskKey, ThreadId, WorkerId};
use crate::table::{Tabular, Value};
use crate::time::{Dur, Time};

/// Scheduler-side task states, mirroring Dask's scheduler state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Known but not yet wanted (dependencies of the graph being built).
    Released,
    /// Waiting on one or more dependencies.
    Waiting,
    /// Runnable but no worker satisfies its restrictions / all saturated.
    NoWorker,
    /// Runnable and queued on the scheduler (no worker slot yet).
    Queued,
    /// Assigned to a worker and (about to be) executing.
    Processing,
    /// Finished; result resident in some worker's memory.
    Memory,
    /// Execution raised an error.
    Erred,
    /// All clients released it; removed from scheduler tables.
    Forgotten,
}

impl TaskState {
    pub fn as_str(&self) -> &'static str {
        match self {
            TaskState::Released => "released",
            TaskState::Waiting => "waiting",
            TaskState::NoWorker => "no-worker",
            TaskState::Queued => "queued",
            TaskState::Processing => "processing",
            TaskState::Memory => "memory",
            TaskState::Erred => "erred",
            TaskState::Forgotten => "forgotten",
        }
    }

    /// Whether `self -> to` is a legal transition of the scheduler state
    /// machine. Mirrors `dask.distributed`'s allowed transition table.
    pub fn can_transition_to(&self, to: TaskState) -> bool {
        use TaskState::*;
        matches!(
            (*self, to),
            (Released, Waiting)
                | (Released, Forgotten)
                | (Waiting, Queued)
                | (Waiting, Processing)
                | (Waiting, NoWorker)
                | (Waiting, Released)
                | (Waiting, Erred)
                | (NoWorker, Processing)
                | (NoWorker, Queued)
                | (NoWorker, Released)
                | (Queued, Processing)
                | (Queued, Released)
                | (Processing, Processing) // work stealing: reassigned to another worker
                | (Processing, Memory)
                | (Processing, Erred)
                | (Processing, Released)
                | (Processing, Waiting) // worker lost; must be rescheduled
                | (Memory, Released)
                | (Memory, Forgotten)
                | (Erred, Released)
                | (Erred, Forgotten)
        )
    }

    /// Terminal states from the scheduler's perspective.
    pub fn is_terminal(&self) -> bool {
        matches!(self, TaskState::Memory | TaskState::Erred | TaskState::Forgotten)
    }
}

/// Worker-side task states, mirroring Dask's worker state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkerTaskState {
    /// Arrived at the worker, dependencies not yet local.
    Waiting,
    /// Dependency data scheduled to be fetched from a peer.
    Fetch,
    /// Dependency data in flight from a peer.
    Flight,
    /// All inputs local; in the worker's ready heap.
    Ready,
    /// Running on a worker thread.
    Executing,
    /// Finished on this worker; output in worker memory.
    Memory,
    /// Raised during execution.
    Error,
    /// Released by the scheduler.
    Released,
}

impl WorkerTaskState {
    pub fn as_str(&self) -> &'static str {
        match self {
            WorkerTaskState::Waiting => "waiting",
            WorkerTaskState::Fetch => "fetch",
            WorkerTaskState::Flight => "flight",
            WorkerTaskState::Ready => "ready",
            WorkerTaskState::Executing => "executing",
            WorkerTaskState::Memory => "memory",
            WorkerTaskState::Error => "error",
            WorkerTaskState::Released => "released",
        }
    }
}

impl WorkerTaskState {
    /// Legal transitions of the worker-side machine.
    pub fn can_transition_to(&self, to: WorkerTaskState) -> bool {
        use WorkerTaskState::*;
        matches!(
            (*self, to),
            (Waiting, Fetch)
                | (Waiting, Ready)
                | (Fetch, Flight)
                | (Fetch, Ready)
                | (Flight, Ready)
                | (Ready, Executing)
                | (Executing, Memory)
                | (Executing, Error)
                | (Waiting, Released)
                | (Fetch, Released)
                | (Flight, Released)
                | (Ready, Released)
                | (Memory, Released)
        )
    }
}

/// A worker-side task state transition (paper §III-E1: "we gather task
/// state transitions in the worker to identify the time spent in a worker
/// before execution").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerTransitionEvent {
    pub key: TaskKey,
    pub graph: GraphId,
    pub worker: WorkerId,
    pub from: WorkerTaskState,
    pub to: WorkerTaskState,
    pub time: Time,
}

impl Tabular for WorkerTransitionEvent {
    fn schema() -> Vec<&'static str> {
        vec!["key", "prefix", "graph", "worker", "from", "to", "time_s"]
    }

    fn row(&self) -> Vec<Value> {
        vec![
            Value::Str(self.key.to_string()),
            Value::Str(self.key.prefix.as_str().to_string()),
            Value::U64(self.graph.0 as u64),
            Value::Str(self.worker.address()),
            Value::Str(self.from.as_str().to_string()),
            Value::Str(self.to.as_str().to_string()),
            Value::F64(self.time.as_secs_f64()),
        ]
    }
}

/// What caused a state transition — the "stimuli" captured by the plugins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stimulus {
    /// Client submitted the graph containing this task.
    GraphSubmitted,
    /// The last outstanding dependency entered memory.
    DependenciesMet,
    /// Scheduler chose a worker and dispatched the task.
    Dispatched,
    /// A worker thread began executing.
    ComputeStarted,
    /// Worker reported successful completion.
    ComputeFinished,
    /// Worker reported an error.
    ComputeErred,
    /// An idle worker stole this task from a busy peer.
    WorkStolen,
    /// The worker running/holding this task died.
    WorkerLost,
    /// All clients released their interest.
    ClientReleased,
    /// Scheduler decided no worker can run it right now.
    NoWorkerAvailable,
    /// Scheduler queue admitted the task.
    Queue,
}

impl Stimulus {
    pub fn as_str(&self) -> &'static str {
        match self {
            Stimulus::GraphSubmitted => "graph-submitted",
            Stimulus::DependenciesMet => "dependencies-met",
            Stimulus::Dispatched => "dispatched",
            Stimulus::ComputeStarted => "compute-started",
            Stimulus::ComputeFinished => "compute-finished",
            Stimulus::ComputeErred => "compute-erred",
            Stimulus::WorkStolen => "work-stolen",
            Stimulus::WorkerLost => "worker-lost",
            Stimulus::ClientReleased => "client-released",
            Stimulus::NoWorkerAvailable => "no-worker-available",
            Stimulus::Queue => "queued",
        }
    }
}

/// Where a transition was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    Scheduler,
    Worker(WorkerId),
}

/// A task state transition, the core provenance record (paper §III-E2:
/// "task key, group, prefix, initial state, final state, timestamp, and the
/// stimuli that triggered this transition").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionEvent {
    pub key: TaskKey,
    pub graph: GraphId,
    pub from: TaskState,
    pub to: TaskState,
    pub stimulus: Stimulus,
    pub location: Location,
    pub time: Time,
}

/// Emitted once per task when its graph arrives at the scheduler (paper
/// §III-E1: "we extract all task-related data, such as task keys, groups,
/// prefixes, and dependencies").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskMetaEvent {
    pub key: TaskKey,
    pub graph: GraphId,
    pub client: ClientId,
    pub deps: Vec<TaskKey>,
    pub submitted: Time,
}

impl Tabular for TaskMetaEvent {
    fn schema() -> Vec<&'static str> {
        vec!["key", "group", "prefix", "graph", "client", "n_deps", "submitted_s"]
    }

    fn row(&self) -> Vec<Value> {
        vec![
            Value::Str(self.key.to_string()),
            Value::Str(self.key.group()),
            Value::Str(self.key.prefix.as_str().to_string()),
            Value::U64(self.graph.0 as u64),
            Value::Str(self.client.to_string()),
            Value::U64(self.deps.len() as u64),
            Value::F64(self.submitted.as_secs_f64()),
        ]
    }
}

/// Emitted when a task completes on a worker (paper: "IP address of the
/// worker where the task was executed, the thread ID, start and end times,
/// and the size of the task result").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDoneEvent {
    pub key: TaskKey,
    pub graph: GraphId,
    pub worker: WorkerId,
    pub thread: ThreadId,
    pub start: Time,
    pub stop: Time,
    /// Size of the task's output, in bytes (Dask's "nbytes").
    pub nbytes: u64,
}

impl TaskDoneEvent {
    pub fn duration(&self) -> Dur {
        self.stop - self.start
    }
}

/// An inter-worker data transfer (dependency fetch or steal movement).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommEvent {
    /// The data item being moved (output of this task).
    pub key: TaskKey,
    pub from: WorkerId,
    pub to: WorkerId,
    pub nbytes: u64,
    pub start: Time,
    pub stop: Time,
}

impl CommEvent {
    pub fn duration(&self) -> Dur {
        self.stop - self.start
    }

    /// Whether the transfer stayed within one node (paper Fig. 5 colours).
    pub fn same_node(&self) -> bool {
        self.from.node == self.to.node
    }
}

/// I/O operation type, as recorded by the DXT-analog tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOp {
    Open,
    Read,
    Write,
    Close,
}

impl IoOp {
    pub fn as_str(&self) -> &'static str {
        match self {
            IoOp::Open => "open",
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Close => "close",
        }
    }
}

/// One traced I/O operation. This is the record format shared between the
/// Darshan-analog collector and the analysis engine; `host` + `thread` +
/// timestamps are the join keys against task records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoRecord {
    pub host: NodeId,
    /// Worker process that issued the I/O.
    pub worker: WorkerId,
    /// POSIX thread id — the authors' DXT extension (§III-E3).
    pub thread: ThreadId,
    pub file: FileId,
    pub op: IoOp,
    pub offset: u64,
    pub size: u64,
    pub start: Time,
    pub stop: Time,
}

impl IoRecord {
    pub fn duration(&self) -> Dur {
        self.stop - self.start
    }
}

/// Kinds of runtime warnings mined from scheduler/worker logs (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WarningKind {
    /// Tornado-style "event loop was unresponsive for X s".
    UnresponsiveEventLoop,
    /// "full garbage collections took X% CPU time recently".
    GcPause,
}

impl WarningKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            WarningKind::UnresponsiveEventLoop => "unresponsive-event-loop",
            WarningKind::GcPause => "gc-pause",
        }
    }
}

/// A runtime warning emitted by a worker or the scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarningEvent {
    pub kind: WarningKind,
    pub worker: Option<WorkerId>,
    pub time: Time,
    /// Duration of the stall/pause being warned about.
    pub duration: Dur,
}

/// Log severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LogLevel {
    Debug,
    Info,
    Warning,
    Error,
}

/// Origin of a log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogSource {
    Client(ClientId),
    Scheduler,
    Worker(WorkerId),
}

/// One log line from any component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    pub time: Time,
    pub level: LogLevel,
    pub source: LogSource,
    pub message: String,
}

// ---------------------------------------------------------------------------
// Tabular projections: the "common tabular format" (§V).
// ---------------------------------------------------------------------------

impl Tabular for TransitionEvent {
    fn schema() -> Vec<&'static str> {
        vec!["key", "group", "prefix", "graph", "from", "to", "stimulus", "location", "time_s"]
    }

    fn row(&self) -> Vec<Value> {
        vec![
            Value::Str(self.key.to_string()),
            Value::Str(self.key.group()),
            Value::Str(self.key.prefix.as_str().to_string()),
            Value::U64(self.graph.0 as u64),
            Value::Str(self.from.as_str().to_string()),
            Value::Str(self.to.as_str().to_string()),
            Value::Str(self.stimulus.as_str().to_string()),
            Value::Str(match self.location {
                Location::Scheduler => "scheduler".to_string(),
                Location::Worker(w) => w.address(),
            }),
            Value::F64(self.time.as_secs_f64()),
        ]
    }
}

impl Tabular for TaskDoneEvent {
    fn schema() -> Vec<&'static str> {
        vec![
            "key",
            "group",
            "prefix",
            "graph",
            "worker",
            "host",
            "thread",
            "start_s",
            "stop_s",
            "duration_s",
            "nbytes",
        ]
    }

    fn row(&self) -> Vec<Value> {
        vec![
            Value::Str(self.key.to_string()),
            Value::Str(self.key.group()),
            Value::Str(self.key.prefix.as_str().to_string()),
            Value::U64(self.graph.0 as u64),
            Value::Str(self.worker.address()),
            Value::Str(self.worker.node.hostname()),
            Value::U64(self.thread.0),
            Value::F64(self.start.as_secs_f64()),
            Value::F64(self.stop.as_secs_f64()),
            Value::F64(self.duration().as_secs_f64()),
            Value::U64(self.nbytes),
        ]
    }
}

impl Tabular for CommEvent {
    fn schema() -> Vec<&'static str> {
        vec!["key", "from", "to", "same_node", "nbytes", "start_s", "stop_s", "duration_s"]
    }

    fn row(&self) -> Vec<Value> {
        vec![
            Value::Str(self.key.to_string()),
            Value::Str(self.from.address()),
            Value::Str(self.to.address()),
            Value::Bool(self.same_node()),
            Value::U64(self.nbytes),
            Value::F64(self.start.as_secs_f64()),
            Value::F64(self.stop.as_secs_f64()),
            Value::F64(self.duration().as_secs_f64()),
        ]
    }
}

impl Tabular for IoRecord {
    fn schema() -> Vec<&'static str> {
        vec![
            "host",
            "worker",
            "thread",
            "file",
            "op",
            "offset",
            "size",
            "start_s",
            "stop_s",
            "duration_s",
        ]
    }

    fn row(&self) -> Vec<Value> {
        vec![
            Value::Str(self.host.hostname()),
            Value::Str(self.worker.address()),
            Value::U64(self.thread.0),
            Value::U64(self.file.0),
            Value::Str(self.op.as_str().to_string()),
            Value::U64(self.offset),
            Value::U64(self.size),
            Value::F64(self.start.as_secs_f64()),
            Value::F64(self.stop.as_secs_f64()),
            Value::F64(self.duration().as_secs_f64()),
        ]
    }
}

impl Tabular for WarningEvent {
    fn schema() -> Vec<&'static str> {
        vec!["kind", "worker", "time_s", "duration_s"]
    }

    fn row(&self) -> Vec<Value> {
        vec![
            Value::Str(self.kind.as_str().to_string()),
            Value::Str(self.worker.map(|w| w.address()).unwrap_or_else(|| "scheduler".into())),
            Value::F64(self.time.as_secs_f64()),
            Value::F64(self.duration.as_secs_f64()),
        ]
    }
}

/// Lifecycle step of an out-of-band proxy (the ProxyStore-style data
/// plane): large task outputs are published to the blob plane and move
/// peer-to-peer, with only a small typed reference travelling through the
/// scheduler. Each step is recorded so lineage over the out-of-band path
/// stays as complete as the in-band one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProxyAction {
    /// Output crossed the threshold; manifest written to the blob plane.
    Published,
    /// Manifest re-written (generation bump) after the previous blob was
    /// found dangling while a live owner could repair it.
    Republished,
    /// A dependent materialized the payload on first use.
    Resolved,
    /// Resolver-cache entry dropped to stay within the byte budget.
    Evicted,
    /// Ownership moved to a surviving replica after the owner died.
    Resourced,
    /// Owner died before any resolve and no replica survives; dependents
    /// fall back to the recompute path.
    Orphaned,
}

impl ProxyAction {
    pub fn as_str(&self) -> &'static str {
        match self {
            ProxyAction::Published => "published",
            ProxyAction::Republished => "republished",
            ProxyAction::Resolved => "resolved",
            ProxyAction::Evicted => "evicted",
            ProxyAction::Resourced => "resourced",
            ProxyAction::Orphaned => "orphaned",
        }
    }
}

/// One proxy-plane lifecycle record (topic `proxy-events`). `owner` is
/// the worker holding the payload when the record was emitted; `worker`
/// is the counterparty where the action has one (the resolving dependent
/// worker, the cache doing the eviction), `None` for publish/orphan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyEvent {
    pub action: ProxyAction,
    /// Task whose output the proxy stands for.
    pub key: TaskKey,
    pub graph: GraphId,
    /// Payload size in bytes (what stays out-of-band).
    pub size: u64,
    pub owner: WorkerId,
    /// Content checksum carried by the `ProxyRef` (verified on resolve).
    pub checksum: u64,
    /// Manifest generation; bumped by every republish/re-source.
    pub generation: u32,
    pub worker: Option<WorkerId>,
    pub time: Time,
}

impl Tabular for ProxyEvent {
    fn schema() -> Vec<&'static str> {
        vec![
            "action",
            "key",
            "prefix",
            "graph",
            "size",
            "owner",
            "checksum",
            "generation",
            "worker",
            "time_s",
        ]
    }

    fn row(&self) -> Vec<Value> {
        vec![
            Value::Str(self.action.as_str().to_string()),
            Value::Str(self.key.to_string()),
            Value::Str(self.key.prefix.as_str().to_string()),
            Value::U64(self.graph.0 as u64),
            Value::U64(self.size),
            Value::Str(self.owner.address()),
            Value::U64(self.checksum),
            Value::U64(self.generation as u64),
            Value::Str(self.worker.map(|w| w.address()).unwrap_or_else(|| "-".into())),
            Value::F64(self.time.as_secs_f64()),
        ]
    }
}

// ---------------------------------------------------------------------------
// ProvRecord: the typed union the provenance pipeline carries end to end.
// ---------------------------------------------------------------------------

/// One provenance record of any family — the typed payload that flows
/// from the WMS plugins through Mofka into `RunData` without ever being
/// rendered to JSON on the hot path. Serialization is *untagged*: a
/// `ProvRecord` renders as exactly the JSON of its inner record, so the
/// bytes emitted at export/replay boundaries are identical to what the
/// eager-JSON pipeline produced (the family is implied by the topic).
#[derive(Debug, Clone, PartialEq)]
pub enum ProvRecord {
    TaskMeta(TaskMetaEvent),
    Transition(TransitionEvent),
    WorkerTransition(WorkerTransitionEvent),
    TaskDone(TaskDoneEvent),
    Comm(CommEvent),
    Warning(WarningEvent),
    Log(LogEntry),
    Io(IoRecord),
    Proxy(ProxyEvent),
}

impl ProvRecord {
    /// Render to the JSON value tree (untagged). This is the lazy-render
    /// boundary: only export, archive, and generic-JSON consumers pay it.
    pub fn to_value(&self) -> serde_json::Value {
        match self {
            ProvRecord::TaskMeta(e) => e.to_content(),
            ProvRecord::Transition(e) => e.to_content(),
            ProvRecord::WorkerTransition(e) => e.to_content(),
            ProvRecord::TaskDone(e) => e.to_content(),
            ProvRecord::Comm(e) => e.to_content(),
            ProvRecord::Warning(e) => e.to_content(),
            ProvRecord::Log(e) => e.to_content(),
            ProvRecord::Io(e) => e.to_content(),
            ProvRecord::Proxy(e) => e.to_content(),
        }
    }

    /// The task key this record is scoped to, if its family has one —
    /// the field hash-partitioning routes on. Warnings, logs, and I/O
    /// records are not task-scoped.
    pub fn task_key(&self) -> Option<&TaskKey> {
        match self {
            ProvRecord::TaskMeta(e) => Some(&e.key),
            ProvRecord::Transition(e) => Some(&e.key),
            ProvRecord::WorkerTransition(e) => Some(&e.key),
            ProvRecord::TaskDone(e) => Some(&e.key),
            ProvRecord::Comm(e) => Some(&e.key),
            ProvRecord::Proxy(e) => Some(&e.key),
            ProvRecord::Warning(_) | ProvRecord::Log(_) | ProvRecord::Io(_) => None,
        }
    }

    /// The on-disk archive encoding: compact JSON bytes of [`to_value`]
    /// (untagged — the family is implied by the topic the record sits
    /// in). Persistent topic logs store this form; an archive reopen
    /// decodes it back through the generic-JSON drain path, so a
    /// round-tripped record exports byte-identically.
    ///
    /// [`to_value`]: ProvRecord::to_value
    pub fn to_json_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(&self.to_value()).expect("value tree always renders")
    }

    /// Exact byte length of the compact JSON rendering
    /// (`serde_json::to_string(&record).len()`), computed arithmetically —
    /// no value tree, no string. Pinned against the rendered form by
    /// tests; event `wire_size` accounting is identical on both paths.
    pub fn encoded_size(&self) -> usize {
        match self {
            ProvRecord::TaskMeta(e) => wire::task_meta(e),
            ProvRecord::Transition(e) => wire::transition(e),
            ProvRecord::WorkerTransition(e) => wire::worker_transition(e),
            ProvRecord::TaskDone(e) => wire::task_done(e),
            ProvRecord::Comm(e) => wire::comm(e),
            ProvRecord::Warning(e) => wire::warning(e),
            ProvRecord::Log(e) => wire::log(e),
            ProvRecord::Io(e) => wire::io(e),
            ProvRecord::Proxy(e) => wire::proxy(e),
        }
    }
}

impl serde::Serialize for ProvRecord {
    fn to_content(&self) -> serde_json::Value {
        self.to_value()
    }
}

/// Conversion between a concrete record family and [`ProvRecord`]; what
/// lets the Mofka plugin push and `RunData` drain stay generic over the
/// family without a JSON round-trip.
pub trait ProvEvent: Sized {
    fn into_record(self) -> ProvRecord;
    fn from_record(rec: ProvRecord) -> Option<Self>;
}

macro_rules! impl_prov_event {
    ($($ty:ty => $variant:ident),* $(,)?) => {$(
        impl ProvEvent for $ty {
            fn into_record(self) -> ProvRecord {
                ProvRecord::$variant(self)
            }
            fn from_record(rec: ProvRecord) -> Option<Self> {
                match rec {
                    ProvRecord::$variant(e) => Some(e),
                    _ => None,
                }
            }
        }
        impl From<$ty> for ProvRecord {
            fn from(e: $ty) -> Self {
                ProvRecord::$variant(e)
            }
        }
    )*};
}
impl_prov_event!(
    TaskMetaEvent => TaskMeta,
    TransitionEvent => Transition,
    WorkerTransitionEvent => WorkerTransition,
    TaskDoneEvent => TaskDone,
    CommEvent => Comm,
    WarningEvent => Warning,
    LogEntry => Log,
    IoRecord => Io,
    ProxyEvent => Proxy,
);

/// Exact compact-JSON byte lengths for every record family, mirroring the
/// derive stub's rendering rules: structs are objects (key order does not
/// affect total length), newtypes are transparent, unit enum variants are
/// the variant identifier as a string, newtype variants are one-entry
/// objects, `Option` is value-or-`null`.
mod wire {
    use super::*;
    use crate::ids::WorkerId;

    fn digits(mut n: u64) -> usize {
        let mut d = 1;
        while n >= 10 {
            d += 1;
            n /= 10;
        }
        d
    }

    /// `"key":value` for an escape-free ASCII key.
    fn kv(key: &str, value: usize) -> usize {
        key.len() + 3 + value
    }

    /// `{...}` around `entries` comma-joined field sizes.
    fn obj(entries: &[usize]) -> usize {
        2 + entries.iter().sum::<usize>() + entries.len().saturating_sub(1)
    }

    /// Unit enum variants render as `"<ident>"`; the derived `Debug` of a
    /// unit variant prints exactly that identifier.
    fn unit<T: std::fmt::Debug>(v: &T) -> usize {
        struct Counter(usize);
        impl std::fmt::Write for Counter {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                self.0 += s.len();
                Ok(())
            }
        }
        let mut c = Counter(0);
        use std::fmt::Write as _;
        write!(c, "{v:?}").expect("counting sink is infallible");
        c.0 + 2
    }

    fn task_key(k: &TaskKey) -> usize {
        obj(&[
            kv("index", digits(k.index as u64)),
            kv("prefix", serde::json_impl::str_encoded_len(k.prefix.as_str())),
            kv("token", digits(k.token as u64)),
        ])
    }

    fn worker(w: &WorkerId) -> usize {
        obj(&[kv("node", digits(w.node.0 as u64)), kv("slot", digits(w.slot as u64))])
    }

    fn location(l: &Location) -> usize {
        match l {
            Location::Scheduler => "\"Scheduler\"".len(),
            Location::Worker(w) => obj(&[kv("Worker", worker(w))]),
        }
    }

    fn log_source(s: &LogSource) -> usize {
        match s {
            LogSource::Scheduler => "\"Scheduler\"".len(),
            LogSource::Client(c) => obj(&[kv("Client", digits(c.0 as u64))]),
            LogSource::Worker(w) => obj(&[kv("Worker", worker(w))]),
        }
    }

    fn keys(deps: &[TaskKey]) -> usize {
        2 + deps.iter().map(task_key).sum::<usize>() + deps.len().saturating_sub(1)
    }

    pub(super) fn task_meta(e: &TaskMetaEvent) -> usize {
        obj(&[
            kv("client", digits(e.client.0 as u64)),
            kv("deps", keys(&e.deps)),
            kv("graph", digits(e.graph.0 as u64)),
            kv("key", task_key(&e.key)),
            kv("submitted", digits(e.submitted.0)),
        ])
    }

    pub(super) fn transition(e: &TransitionEvent) -> usize {
        obj(&[
            kv("from", unit(&e.from)),
            kv("graph", digits(e.graph.0 as u64)),
            kv("key", task_key(&e.key)),
            kv("location", location(&e.location)),
            kv("stimulus", unit(&e.stimulus)),
            kv("time", digits(e.time.0)),
            kv("to", unit(&e.to)),
        ])
    }

    pub(super) fn worker_transition(e: &WorkerTransitionEvent) -> usize {
        obj(&[
            kv("from", unit(&e.from)),
            kv("graph", digits(e.graph.0 as u64)),
            kv("key", task_key(&e.key)),
            kv("time", digits(e.time.0)),
            kv("to", unit(&e.to)),
            kv("worker", worker(&e.worker)),
        ])
    }

    pub(super) fn task_done(e: &TaskDoneEvent) -> usize {
        obj(&[
            kv("graph", digits(e.graph.0 as u64)),
            kv("key", task_key(&e.key)),
            kv("nbytes", digits(e.nbytes)),
            kv("start", digits(e.start.0)),
            kv("stop", digits(e.stop.0)),
            kv("thread", digits(e.thread.0)),
            kv("worker", worker(&e.worker)),
        ])
    }

    pub(super) fn comm(e: &CommEvent) -> usize {
        obj(&[
            kv("from", worker(&e.from)),
            kv("key", task_key(&e.key)),
            kv("nbytes", digits(e.nbytes)),
            kv("start", digits(e.start.0)),
            kv("stop", digits(e.stop.0)),
            kv("to", worker(&e.to)),
        ])
    }

    pub(super) fn warning(e: &WarningEvent) -> usize {
        obj(&[
            kv("duration", digits(e.duration.0)),
            kv("kind", unit(&e.kind)),
            kv("time", digits(e.time.0)),
            kv("worker", e.worker.as_ref().map_or("null".len(), worker)),
        ])
    }

    pub(super) fn log(e: &LogEntry) -> usize {
        obj(&[
            kv("level", unit(&e.level)),
            kv("message", serde::json_impl::str_encoded_len(&e.message)),
            kv("source", log_source(&e.source)),
            kv("time", digits(e.time.0)),
        ])
    }

    pub(super) fn proxy(e: &ProxyEvent) -> usize {
        obj(&[
            kv("action", unit(&e.action)),
            kv("checksum", digits(e.checksum)),
            kv("generation", digits(e.generation as u64)),
            kv("graph", digits(e.graph.0 as u64)),
            kv("key", task_key(&e.key)),
            kv("owner", worker(&e.owner)),
            kv("size", digits(e.size)),
            kv("time", digits(e.time.0)),
            kv("worker", e.worker.as_ref().map_or("null".len(), worker)),
        ])
    }

    pub(super) fn io(e: &IoRecord) -> usize {
        obj(&[
            kv("file", digits(e.file.0)),
            kv("host", digits(e.host.0 as u64)),
            kv("offset", digits(e.offset)),
            kv("op", unit(&e.op)),
            kv("size", digits(e.size)),
            kv("start", digits(e.start.0)),
            kv("stop", digits(e.stop.0)),
            kv("thread", digits(e.thread.0)),
            kv("worker", worker(&e.worker)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn key() -> TaskKey {
        TaskKey::new("inc", 1, 0)
    }

    #[test]
    fn legal_transitions_follow_dask_table() {
        use TaskState::*;
        assert!(Released.can_transition_to(Waiting));
        assert!(Waiting.can_transition_to(Processing));
        assert!(Processing.can_transition_to(Memory));
        assert!(Memory.can_transition_to(Forgotten));
        // illegal ones
        assert!(!Memory.can_transition_to(Processing));
        assert!(!Released.can_transition_to(Memory));
        assert!(!Forgotten.can_transition_to(Waiting));
        assert!(!Processing.can_transition_to(Queued));
    }

    #[test]
    fn terminal_states() {
        assert!(TaskState::Memory.is_terminal());
        assert!(TaskState::Erred.is_terminal());
        assert!(!TaskState::Processing.is_terminal());
    }

    #[test]
    fn comm_same_node_detection() {
        let a = WorkerId::new(NodeId(0), 0);
        let b = WorkerId::new(NodeId(0), 1);
        let c = WorkerId::new(NodeId(1), 0);
        let e1 =
            CommEvent { key: key(), from: a, to: b, nbytes: 10, start: Time(0), stop: Time(5) };
        let e2 =
            CommEvent { key: key(), from: a, to: c, nbytes: 10, start: Time(0), stop: Time(5) };
        assert!(e1.same_node());
        assert!(!e2.same_node());
    }

    #[test]
    fn durations() {
        let a = WorkerId::new(NodeId(0), 0);
        let done = TaskDoneEvent {
            key: key(),
            graph: GraphId(0),
            worker: a,
            thread: ThreadId(1),
            start: Time::from_secs_f64(1.0),
            stop: Time::from_secs_f64(3.5),
            nbytes: 100,
        };
        assert_eq!(done.duration(), Dur::from_secs_f64(2.5));
    }

    #[test]
    fn tabular_rows_match_schema_len() {
        let a = WorkerId::new(NodeId(0), 0);
        let tr = TransitionEvent {
            key: key(),
            graph: GraphId(0),
            from: TaskState::Waiting,
            to: TaskState::Processing,
            stimulus: Stimulus::Dispatched,
            location: Location::Scheduler,
            time: Time(5),
        };
        assert_eq!(tr.row().len(), TransitionEvent::schema().len());

        let io = IoRecord {
            host: NodeId(0),
            worker: a,
            thread: ThreadId(7),
            file: FileId(1),
            op: IoOp::Read,
            offset: 0,
            size: 4096,
            start: Time(0),
            stop: Time(10),
        };
        assert_eq!(io.row().len(), IoRecord::schema().len());

        let w = WarningEvent {
            kind: WarningKind::GcPause,
            worker: Some(a),
            time: Time(9),
            duration: Dur(100),
        };
        assert_eq!(w.row().len(), WarningEvent::schema().len());

        let p = ProxyEvent {
            action: ProxyAction::Evicted,
            key: key(),
            graph: GraphId(0),
            size: 1 << 20,
            owner: a,
            checksum: 7,
            generation: 1,
            worker: Some(a),
            time: Time(11),
        };
        assert_eq!(p.row().len(), ProxyEvent::schema().len());
    }

    #[test]
    fn events_serde_roundtrip() {
        let e = TransitionEvent {
            key: key(),
            graph: GraphId(2),
            from: TaskState::Waiting,
            to: TaskState::Processing,
            stimulus: Stimulus::Dispatched,
            location: Location::Worker(WorkerId::new(NodeId(1), 2)),
            time: Time(123),
        };
        let s = serde_json::to_string(&e).unwrap();
        let back: TransitionEvent = serde_json::from_str(&s).unwrap();
        assert_eq!(e, back);
    }

    /// One record of every family, with awkward values: multi-digit ids,
    /// escapes in strings, `None` worker, zero-valued fields.
    fn sample_records() -> Vec<ProvRecord> {
        let w = WorkerId::new(NodeId(12), 3);
        let w2 = WorkerId::new(NodeId(0), 0);
        vec![
            ProvRecord::TaskMeta(TaskMetaEvent {
                key: TaskKey::new("load-image", 42, 1000),
                graph: GraphId(7),
                client: ClientId(3),
                deps: vec![key(), TaskKey::new("sum", 0, 99)],
                submitted: Time(1_234_567_890),
            }),
            ProvRecord::TaskMeta(TaskMetaEvent {
                key: key(),
                graph: GraphId(0),
                client: ClientId(0),
                deps: vec![],
                submitted: Time(0),
            }),
            ProvRecord::Transition(TransitionEvent {
                key: key(),
                graph: GraphId(2),
                from: TaskState::NoWorker,
                to: TaskState::Processing,
                stimulus: Stimulus::Dispatched,
                location: Location::Worker(w),
                time: Time(123),
            }),
            ProvRecord::Transition(TransitionEvent {
                key: key(),
                graph: GraphId(2),
                from: TaskState::Released,
                to: TaskState::Waiting,
                stimulus: Stimulus::GraphSubmitted,
                location: Location::Scheduler,
                time: Time(u64::MAX),
            }),
            ProvRecord::WorkerTransition(WorkerTransitionEvent {
                key: key(),
                graph: GraphId(1),
                worker: w,
                from: WorkerTaskState::Ready,
                to: WorkerTaskState::Executing,
                time: Time(456),
            }),
            ProvRecord::TaskDone(TaskDoneEvent {
                key: key(),
                graph: GraphId(1),
                worker: w,
                thread: ThreadId(777),
                start: Time(10),
                stop: Time(20),
                nbytes: 1 << 40,
            }),
            ProvRecord::Comm(CommEvent {
                key: key(),
                from: w,
                to: w2,
                nbytes: 0,
                start: Time(5),
                stop: Time(6),
            }),
            ProvRecord::Warning(WarningEvent {
                kind: WarningKind::UnresponsiveEventLoop,
                worker: Some(w),
                time: Time(9),
                duration: Dur(100),
            }),
            ProvRecord::Warning(WarningEvent {
                kind: WarningKind::GcPause,
                worker: None,
                time: Time(9),
                duration: Dur(0),
            }),
            ProvRecord::Log(LogEntry {
                time: Time(77),
                level: LogLevel::Warning,
                source: LogSource::Client(ClientId(4)),
                message: String::from("odd \"quoted\"\npath\\x\t\u{1} π"),
            }),
            ProvRecord::Log(LogEntry {
                time: Time(78),
                level: LogLevel::Info,
                source: LogSource::Scheduler,
                message: String::new(),
            }),
            ProvRecord::Io(IoRecord {
                host: NodeId(3),
                worker: w,
                thread: ThreadId(7),
                file: FileId(12),
                op: IoOp::Write,
                offset: 65536,
                size: 4096,
                start: Time(100),
                stop: Time(200),
            }),
            ProvRecord::Proxy(ProxyEvent {
                action: ProxyAction::Published,
                key: TaskKey::new("load-image", 42, 1000),
                graph: GraphId(7),
                size: 1 << 28,
                owner: w,
                checksum: u64::MAX,
                generation: 0,
                worker: None,
                time: Time(314),
            }),
            ProvRecord::Proxy(ProxyEvent {
                action: ProxyAction::Resolved,
                key: key(),
                graph: GraphId(0),
                size: 0,
                owner: w2,
                checksum: 0,
                generation: 12,
                worker: Some(w),
                time: Time(u64::MAX),
            }),
        ]
    }

    #[test]
    fn encoded_size_matches_rendered_json_for_every_family() {
        for rec in sample_records() {
            let rendered = serde_json::to_string(&rec).unwrap();
            assert_eq!(
                rec.encoded_size(),
                rendered.len(),
                "arithmetic size diverges from rendered JSON for {rec:?}: {rendered}"
            );
            // Untagged: ProvRecord renders exactly as its inner record.
            assert_eq!(serde_json::to_value(&rec).unwrap(), rec.to_value());
        }
    }

    #[test]
    fn prov_event_roundtrips_through_record() {
        let e = TransitionEvent {
            key: key(),
            graph: GraphId(2),
            from: TaskState::Waiting,
            to: TaskState::Processing,
            stimulus: Stimulus::Dispatched,
            location: Location::Scheduler,
            time: Time(1),
        };
        let rec = e.clone().into_record();
        assert_eq!(rec.task_key(), Some(&e.key));
        assert_eq!(TransitionEvent::from_record(rec.clone()), Some(e));
        assert_eq!(TaskMetaEvent::from_record(rec), None);
    }

    #[test]
    fn task_key_write_json_matches_serde() {
        for k in [key(), TaskKey::new("load-image", 42, 1000)] {
            let mut streamed = String::new();
            k.write_json(&mut streamed).unwrap();
            assert_eq!(streamed, serde_json::to_string(&k).unwrap());
        }
    }
}
