//! Framework-wide error type.

use std::fmt;

/// Errors surfaced by the dtf framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtfError {
    /// A task graph is malformed (cycle, dangling dependency, duplicate key).
    InvalidGraph(String),
    /// An identifier was not found where it was required.
    NotFound(String),
    /// An operation was attempted in an illegal state (e.g. illegal task
    /// state transition, producing to a closed topic).
    IllegalState(String),
    /// I/O layer error (simulated PFS or log serialization).
    Io(String),
    /// A configuration value is out of range or inconsistent.
    Config(String),
    /// Serialization / deserialization failure.
    Serde(String),
}

impl fmt::Display for DtfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtfError::InvalidGraph(m) => write!(f, "invalid task graph: {m}"),
            DtfError::NotFound(m) => write!(f, "not found: {m}"),
            DtfError::IllegalState(m) => write!(f, "illegal state: {m}"),
            DtfError::Io(m) => write!(f, "i/o error: {m}"),
            DtfError::Config(m) => write!(f, "configuration error: {m}"),
            DtfError::Serde(m) => write!(f, "serialization error: {m}"),
        }
    }
}

impl std::error::Error for DtfError {}

impl From<serde_json::Error> for DtfError {
    fn from(e: serde_json::Error) -> Self {
        DtfError::Serde(e.to_string())
    }
}

impl From<std::io::Error> for DtfError {
    fn from(e: std::io::Error) -> Self {
        DtfError::Io(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, DtfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_prefixed() {
        assert!(DtfError::InvalidGraph("cycle".into()).to_string().contains("invalid task graph"));
        assert!(DtfError::NotFound("x".into()).to_string().contains("not found"));
    }

    #[test]
    fn serde_error_converts() {
        let bad: std::result::Result<u32, _> = serde_json::from_str("not json");
        let err: DtfError = bad.unwrap_err().into();
        assert!(matches!(err, DtfError::Serde(_)));
    }
}
