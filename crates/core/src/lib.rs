//! # dtf-core
//!
//! Shared vocabulary of the `dtf` framework: identifiers, virtual/real clocks,
//! the event and provenance schema emitted by the workflow management system
//! (WMS) and the I/O characterization layer, seeded probability distributions
//! used by the platform simulator, and the *common tabular format* that makes
//! multi-source records joinable on shared identifiers (the paper's FAIR
//! interoperability requirement, §V).
//!
//! Everything downstream (`dtf-platform`, `dtf-wms`, `dtf-darshan`,
//! `dtf-mofka`, `dtf-perfrecup`) speaks these types; none of them re-defines
//! an identifier or a timestamp representation. That is deliberate: the paper
//! found that correlation across layers only works when every layer carries
//! at least one common identifier (thread id + timestamp, worker address,
//! hostname).

pub mod binfmt;
pub mod dist;
pub mod error;
pub mod events;
pub mod fault;
pub mod ids;
pub mod provenance;
pub mod rngx;
pub mod stats;
pub mod table;
pub mod time;

pub use error::{DtfError, Result};
pub use ids::{ClientId, FileId, GraphId, NodeId, RunId, TaskKey, ThreadId, WorkerId};
pub use time::{Dur, Time};
