//! Deterministic, splittable random-number streams.
//!
//! Every run of a campaign is identified by `(campaign_seed, RunId)`. Each
//! simulated component (PFS, network, each worker, the GC model, …) derives
//! its own independent stream from that pair plus a component label, so
//! adding a new component or reordering draws in one component never
//! perturbs another — runs stay reproducible as the codebase evolves.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::ids::RunId;

/// Root of the per-run random streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunRng {
    campaign_seed: u64,
    run: RunId,
}

impl RunRng {
    pub fn new(campaign_seed: u64, run: RunId) -> Self {
        Self { campaign_seed, run }
    }

    /// Derive an independent RNG stream for a named component.
    pub fn stream(&self, label: &str) -> SmallRng {
        SmallRng::seed_from_u64(self.mix(label, 0))
    }

    /// Derive an independent RNG stream for a named, indexed component
    /// (e.g. one per worker).
    pub fn stream_indexed(&self, label: &str, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.mix(label, index))
    }

    fn mix(&self, label: &str, index: u64) -> u64 {
        // FNV-1a over the label, then splitmix64 finalization with seed,
        // run id, and index folded in.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut z = h
            ^ self.campaign_seed.rotate_left(17)
            ^ (self.run.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ index.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        // splitmix64 finalizer
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let a = RunRng::new(7, RunId(3));
        let b = RunRng::new(7, RunId(3));
        let mut ra = a.stream("pfs");
        let mut rb = b.stream("pfs");
        for _ in 0..100 {
            assert_eq!(ra.gen::<u64>(), rb.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        let r = RunRng::new(7, RunId(3));
        let a: u64 = r.stream("pfs").gen();
        let b: u64 = r.stream("net").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_runs_differ() {
        let a: u64 = RunRng::new(7, RunId(0)).stream("pfs").gen();
        let b: u64 = RunRng::new(7, RunId(1)).stream("pfs").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = RunRng::new(1, RunId(0)).stream("pfs").gen();
        let b: u64 = RunRng::new(2, RunId(0)).stream("pfs").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_differ() {
        let r = RunRng::new(7, RunId(3));
        let a: u64 = r.stream_indexed("worker", 0).gen();
        let b: u64 = r.stream_indexed("worker", 1).gen();
        assert_ne!(a, b);
        // index 0 equals the unindexed stream of the same label
        let c: u64 = r.stream("worker").gen();
        assert_eq!(a, c);
    }
}
