//! Crash-injection faults for persisted stores, and the recovery oracle.
//!
//! A "crash" here is damage to the tail of a store's log files — what a
//! process kill or power cut at an arbitrary byte leaves behind: a torn
//! (truncated) tail, a tail written as zeros, or flipped bits. Faults are
//! plain data generated from a seed, in the same tradition as the fault
//! schedules: [`CrashFault::generate`] is deterministic, so a failing
//! fault replays from its seed. Damage is confined to the **last segment
//! past its header** — the committed-tail region a real crash races with;
//! wholesale header destruction is exercised separately by dtf-store's
//! own tests.
//!
//! The oracle, [`recovery_oracle`], asserts the two recovery invariants
//! end to end at the Mofka level: per topic and partition, the recovered
//! event stream is a **prefix** of the original's — nothing committed
//! before the damage point is lost out of order (no resurrection, no
//! reordering) and nothing that was not committed surfaces.

use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};

use rand::Rng;
use serde::{Deserialize, Serialize};

use dtf_core::error::{DtfError, Result};
use dtf_core::ids::RunId;
use dtf_core::rngx::RunRng;
use dtf_mofka::MofkaService;
use dtf_store::log::{segment_paths, HEADER_LEN};

/// Which of a persisted service's two logs the fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashTarget {
    /// The metadata / topic-log WAL (`yokan/`).
    YokanWal,
    /// The blob payload log (`warabi/`).
    WarabiLog,
}

impl CrashTarget {
    fn subdir(self) -> &'static str {
        match self {
            CrashTarget::YokanWal => "yokan",
            CrashTarget::WarabiLog => "warabi",
        }
    }
}

/// The shape of the damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashKind {
    /// Cut the file at a byte offset (a torn write).
    TruncateTail,
    /// Keep the length but overwrite the tail with zeros (a crash during
    /// an overwrite-in-place, or preallocated-but-unwritten blocks).
    ZeroTail,
    /// Flip `1 + seed % 3` random bits in the tail region (media damage).
    BitFlip,
    /// Overwrite four tail bytes with `0xFF` — when they land on a frame's
    /// length field this forges a multi-GB record length, the exact shape
    /// the recovery scan must bounds-check before slicing; anywhere else
    /// it is payload damage the CRC catches.
    MaxLenFrame,
    /// Damage (or forge) an index sidecar (`seg-*.dti`). Sidecars are
    /// caches: recovery must detect the damage and rebuild, losing
    /// **nothing** — this kind asserts exact-state recovery, not a prefix.
    CorruptIndex,
    /// Damage (or forge) a KV snapshot (`snap-*.dtk`). Same cache
    /// contract: the snapshot is discarded and full replay reproduces the
    /// identical map.
    CorruptSnapshot,
    /// Leave a stale compaction-staging directory (`<dir>.new`) full of
    /// garbage beside the store — the artifact of a crash before the
    /// swap's first rename. Repair sweeps it; state is untouched.
    OrphanStaging,
}

/// One seeded crash fault: plain, serializable data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashFault {
    pub target: CrashTarget,
    pub kind: CrashKind,
    pub seed: u64,
}

impl CrashFault {
    /// Deterministically derive a fault from a seed (same seed, same
    /// fault — the replay contract).
    pub fn generate(seed: u64) -> Self {
        let mut rng = RunRng::new(seed, RunId(0)).stream("crash-fault");
        let target = if rng.gen::<bool>() { CrashTarget::YokanWal } else { CrashTarget::WarabiLog };
        let kind = match rng.gen_range(0..4u32) {
            0 => CrashKind::TruncateTail,
            1 => CrashKind::ZeroTail,
            2 => CrashKind::BitFlip,
            _ => CrashKind::MaxLenFrame,
        };
        Self { target, kind, seed }
    }

    /// Like [`CrashFault::generate`], but drawing from the full kind set
    /// including cache damage (index sidecars, snapshots) and orphaned
    /// compaction staging. A separate derivation so seeds recorded
    /// against `generate` keep reproducing the same four-kind faults.
    pub fn generate_extended(seed: u64) -> Self {
        let mut rng = RunRng::new(seed, RunId(0)).stream("crash-fault-ext");
        let target = if rng.gen::<bool>() { CrashTarget::YokanWal } else { CrashTarget::WarabiLog };
        let kind = match rng.gen_range(0..7u32) {
            0 => CrashKind::TruncateTail,
            1 => CrashKind::ZeroTail,
            2 => CrashKind::BitFlip,
            3 => CrashKind::MaxLenFrame,
            4 => CrashKind::CorruptIndex,
            5 => CrashKind::CorruptSnapshot,
            _ => CrashKind::OrphanStaging,
        };
        Self { target, kind, seed }
    }

    /// Whether this fault damages only cache artifacts (sidecars,
    /// snapshots, staging) — recovery must then reproduce the **exact**
    /// original state, not merely a committed prefix.
    pub fn is_cache_only(&self) -> bool {
        matches!(
            self.kind,
            CrashKind::CorruptIndex | CrashKind::CorruptSnapshot | CrashKind::OrphanStaging
        )
    }

    /// Apply the fault to a persisted service directory (normally a copy
    /// — see [`copy_store`]). Returns the damaged file and the byte
    /// offset the damage starts at.
    pub fn apply(&self, store_dir: &Path) -> Result<(PathBuf, u64)> {
        let dir = store_dir.join(self.target.subdir());
        // cache-artifact kinds need no committed tail — handle them first
        match self.kind {
            CrashKind::CorruptIndex => {
                let seg = segment_paths(&dir)?.pop().ok_or_else(|| {
                    DtfError::NotFound(format!("no segments under {}", dir.display()))
                })?;
                let side = seg.with_extension("dti");
                return Ok((damage_or_forge(&side, self.seed)?, 0));
            }
            CrashKind::CorruptSnapshot => {
                // newest snapshot if one exists, else a forged one
                let snap = fs::read_dir(&dir)?
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| {
                        p.extension().is_some_and(|x| x == "dtk")
                            && p.file_name()
                                .is_some_and(|n| n.to_string_lossy().starts_with("snap-"))
                    })
                    .max();
                let snap = snap.unwrap_or_else(|| dir.join("snap-00000000000000ff.dtk"));
                return Ok((damage_or_forge(&snap, self.seed)?, 0));
            }
            CrashKind::OrphanStaging => {
                let mut name = dir.file_name().map(|n| n.to_os_string()).unwrap_or_default();
                name.push(".new");
                let staging = dir.with_file_name(name);
                fs::create_dir_all(&staging)?;
                fs::write(
                    staging.join("seg-0000000000000000.dtl"),
                    b"stale staging left by a crash before the swap's first rename",
                )?;
                return Ok((staging, 0));
            }
            _ => {}
        }
        let seg = segment_paths(&dir)?
            .pop()
            .ok_or_else(|| DtfError::NotFound(format!("no segments under {}", dir.display())))?;
        let len = fs::metadata(&seg)?.len();
        let tail_base = HEADER_LEN as u64;
        if len <= tail_base + 1 {
            return Err(DtfError::IllegalState(format!(
                "{} holds no committed tail to damage",
                seg.display()
            )));
        }
        let mut rng = RunRng::new(self.seed, RunId(0)).stream("crash-apply");
        // damage starts at a random committed offset past the header
        let at = rng.gen_range(tail_base + 1..len);
        match self.kind {
            CrashKind::TruncateTail => {
                OpenOptions::new().write(true).open(&seg)?.set_len(at)?;
            }
            CrashKind::ZeroTail => {
                let mut data = fs::read(&seg)?;
                for b in &mut data[at as usize..] {
                    *b = 0;
                }
                fs::write(&seg, &data)?;
            }
            CrashKind::BitFlip => {
                let mut data = fs::read(&seg)?;
                let flips = 1 + (self.seed % 3) as usize;
                for _ in 0..flips {
                    let off = rng.gen_range(at..len) as usize;
                    let bit = rng.gen_range(0..8u32);
                    data[off] ^= 1 << bit;
                }
                fs::write(&seg, &data)?;
            }
            CrashKind::MaxLenFrame => {
                let mut data = fs::read(&seg)?;
                let end = (at as usize + 4).min(data.len());
                for b in &mut data[at as usize..end] {
                    *b = 0xff;
                }
                fs::write(&seg, &data)?;
            }
            // handled by the early return above
            CrashKind::CorruptIndex | CrashKind::CorruptSnapshot | CrashKind::OrphanStaging => {
                unreachable!()
            }
        }
        Ok((seg, at))
    }
}

/// Flip bits in an existing cache file, or forge a garbage one when the
/// store never wrote it — both are crash artifacts loaders must reject.
fn damage_or_forge(path: &Path, seed: u64) -> Result<PathBuf> {
    match fs::read(path) {
        Ok(mut data) if !data.is_empty() => {
            let mut rng = RunRng::new(seed, RunId(0)).stream("crash-cache");
            let off = rng.gen_range(0..data.len() as u64) as usize;
            data[off] ^= 1 << rng.gen_range(0..8u32);
            fs::write(path, &data)?;
        }
        _ => {
            fs::write(path, b"torn cache artifact: not a valid sidecar")?;
        }
    }
    Ok(path.to_path_buf())
}

/// Recursively copy a persisted store directory, so faults can be applied
/// to a scratch copy while the pristine original stays comparable.
pub fn copy_store(src: &Path, dst: &Path) -> Result<()> {
    fs::create_dir_all(dst)?;
    for entry in fs::read_dir(src)? {
        let entry = entry?;
        let to = dst.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_store(&entry.path(), &to)?;
        } else {
            fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

/// The crash-recovery invariant, checked at the Mofka level: for every
/// topic and partition of `original`, the stream `recovered` exposes is a
/// prefix of the original stream (equal events, in order, no surplus).
/// A topic absent from `recovered` is the empty prefix. Returns the
/// violations found (empty = invariant holds).
pub fn recovery_oracle(original: &MofkaService, recovered: &MofkaService) -> Vec<String> {
    let mut violations = Vec::new();
    let orig_topics = original.topic_names();
    for name in recovered.topic_names() {
        if !orig_topics.contains(&name) {
            violations.push(format!("topic {name} surfaced that never existed"));
        }
    }
    for name in &orig_topics {
        let orig = original.topic(name).expect("listed topic exists");
        let Ok(rec) = recovered.topic(name) else { continue }; // empty prefix
        if rec.num_partitions() != orig.num_partitions() {
            violations.push(format!(
                "topic {name}: partition count changed {} -> {}",
                orig.num_partitions(),
                rec.num_partitions()
            ));
            continue;
        }
        for p in 0..orig.num_partitions() {
            let orig_events = match orig.read(p, 0, usize::MAX >> 1) {
                Ok(e) => e,
                Err(e) => {
                    violations.push(format!("topic {name}/{p}: original unreadable: {e}"));
                    continue;
                }
            };
            let rec_events = match rec.read(p, 0, usize::MAX >> 1) {
                Ok(e) => e,
                Err(e) => {
                    violations.push(format!("topic {name}/{p}: recovered unreadable: {e}"));
                    continue;
                }
            };
            if rec_events.len() > orig_events.len() {
                violations.push(format!(
                    "topic {name}/{p}: {} uncommitted events surfaced",
                    rec_events.len() - orig_events.len()
                ));
                continue;
            }
            for (i, (r, o)) in rec_events.iter().zip(&orig_events).enumerate() {
                if r.event != o.event || r.id != o.id {
                    violations.push(format!(
                        "topic {name}/{p}: event {i} diverges from the committed stream"
                    ));
                    break;
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_mofka::producer::ProducerConfig;
    use dtf_mofka::{Event, ServiceConfig, TopicConfig};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtf-crash-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_store(dir: &Path, events: usize) {
        let svc = MofkaService::with_config(&ServiceConfig {
            persist: Some(dir.to_path_buf()),
            ..Default::default()
        })
        .unwrap();
        svc.create_topic("t", TopicConfig { partitions: 2 }).unwrap();
        let mut p = svc.producer("t", ProducerConfig::default()).unwrap();
        for i in 0..events {
            p.push(Event::new(serde_json::json!({"i": i}), bytes::Bytes::from(vec![i as u8; 16])))
                .unwrap();
        }
        p.flush().unwrap();
        svc.sync().unwrap();
    }

    #[test]
    fn faults_are_deterministic_from_seed() {
        for seed in [1u64, 42, 999] {
            assert_eq!(CrashFault::generate(seed), CrashFault::generate(seed));
        }
        // different seeds eventually produce different faults
        let distinct: std::collections::HashSet<_> = (0..32u64)
            .map(|s| {
                let f = CrashFault::generate(s);
                (f.target.subdir(), format!("{:?}", f.kind))
            })
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn every_fault_kind_recovers_a_prefix() {
        let golden = tmp("golden");
        seeded_store(&golden, 200);
        let (original, _) = MofkaService::reopen(&golden).unwrap();
        for seed in 0..12u64 {
            let fault = CrashFault::generate(seed);
            let victim = tmp(&format!("victim-{seed}"));
            copy_store(&golden, &victim).unwrap();
            fault.apply(&victim).unwrap();
            let (recovered, _) = MofkaService::reopen(&victim).unwrap();
            let violations = recovery_oracle(&original, &recovered);
            assert!(
                violations.is_empty(),
                "seed {seed} fault {fault:?} violated recovery: {violations:?}"
            );
            fs::remove_dir_all(&victim).unwrap();
        }
        fs::remove_dir_all(&golden).unwrap();
    }

    #[test]
    fn extended_faults_are_deterministic_and_reach_the_new_kinds() {
        for seed in [1u64, 42, 999] {
            assert_eq!(CrashFault::generate_extended(seed), CrashFault::generate_extended(seed));
        }
        let kinds: std::collections::HashSet<String> =
            (0..64u64).map(|s| format!("{:?}", CrashFault::generate_extended(s).kind)).collect();
        for want in ["CorruptIndex", "CorruptSnapshot", "OrphanStaging", "TruncateTail"] {
            assert!(kinds.contains(want), "{want} never generated in 64 seeds");
        }
    }

    #[test]
    fn every_extended_fault_recovers_a_prefix() {
        let golden = tmp("ext-golden");
        seeded_store(&golden, 200);
        let (original, _) = MofkaService::reopen(&golden).unwrap();
        for seed in 0..14u64 {
            let fault = CrashFault::generate_extended(seed);
            let victim = tmp(&format!("ext-victim-{seed}"));
            copy_store(&golden, &victim).unwrap();
            fault.apply(&victim).unwrap();
            let (recovered, _) = MofkaService::reopen(&victim).unwrap();
            let violations = recovery_oracle(&original, &recovered);
            assert!(
                violations.is_empty(),
                "seed {seed} fault {fault:?} violated recovery: {violations:?}"
            );
            if fault.is_cache_only() {
                // caches are never truth: damaging them loses nothing
                let orig = original.topic("t").unwrap();
                let rec = recovered.topic("t").unwrap();
                assert_eq!(rec.total_len(), orig.total_len(), "cache fault {fault:?} lost events");
            }
            fs::remove_dir_all(&victim).unwrap();
        }
        fs::remove_dir_all(&golden).unwrap();
    }

    #[test]
    fn every_cache_kind_on_both_targets_recovers_exact_state() {
        let golden = tmp("cache-golden");
        seeded_store(&golden, 150);
        let (original, _) = MofkaService::reopen(&golden).unwrap();
        let total = original.topic("t").unwrap().total_len();
        let mut case = 0u32;
        for kind in [CrashKind::CorruptIndex, CrashKind::CorruptSnapshot, CrashKind::OrphanStaging]
        {
            for target in [CrashTarget::YokanWal, CrashTarget::WarabiLog] {
                let fault = CrashFault { target, kind, seed: 7 };
                assert!(fault.is_cache_only());
                let victim = tmp(&format!("cache-victim-{case}"));
                case += 1;
                copy_store(&golden, &victim).unwrap();
                fault.apply(&victim).unwrap();
                let (recovered, _) = MofkaService::reopen(&victim).unwrap();
                assert!(recovery_oracle(&original, &recovered).is_empty(), "{fault:?}");
                assert_eq!(recovered.topic("t").unwrap().total_len(), total, "{fault:?}");
                fs::remove_dir_all(&victim).unwrap();
            }
        }
        fs::remove_dir_all(&golden).unwrap();
    }

    #[test]
    fn oracle_rejects_surplus_and_divergence() {
        let a_dir = tmp("oracle-a");
        seeded_store(&a_dir, 20);
        let b_dir = tmp("oracle-b");
        seeded_store(&b_dir, 20);
        let (a, _) = MofkaService::reopen(&a_dir).unwrap();
        let (b, _) = MofkaService::reopen(&b_dir).unwrap();
        assert!(recovery_oracle(&a, &b).is_empty(), "identical stores agree");
        // surplus: recovered has more events than the original
        let longer = tmp("oracle-long");
        seeded_store(&longer, 30);
        let (long_svc, _) = MofkaService::reopen(&longer).unwrap();
        let v = recovery_oracle(&a, &long_svc);
        assert!(v.iter().any(|m| m.contains("uncommitted")), "surplus detected: {v:?}");
        // divergence: same length, different content
        let diff = tmp("oracle-diff");
        {
            let svc = MofkaService::with_config(&ServiceConfig {
                persist: Some(diff.clone()),
                ..Default::default()
            })
            .unwrap();
            svc.create_topic("t", TopicConfig { partitions: 2 }).unwrap();
            let mut p = svc.producer("t", ProducerConfig::default()).unwrap();
            for i in 0..20 {
                p.push(Event::new(
                    serde_json::json!({"i": i + 1000}),
                    bytes::Bytes::from(vec![0u8; 4]),
                ))
                .unwrap();
            }
            p.flush().unwrap();
            svc.sync().unwrap();
        }
        let (diff_svc, _) = MofkaService::reopen(&diff).unwrap();
        let v = recovery_oracle(&a, &diff_svc);
        assert!(v.iter().any(|m| m.contains("diverges")), "divergence detected: {v:?}");
        for d in [a_dir, b_dir, longer, diff] {
            fs::remove_dir_all(&d).unwrap();
        }
    }
}
