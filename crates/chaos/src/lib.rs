//! # dtf-chaos
//!
//! Deterministic chaos testing for the simulated WMS stack, in the
//! FoundationDB/TigerBeetle tradition: every run perturbation is a *seeded
//! fault schedule* — plain data generated from a seed — applied under the
//! simulator's virtual clock, so a failing schedule replays byte-identically
//! from its seed (or its archived JSON) with no wall-clock or thread-timing
//! nondeterminism in between.
//!
//! Three layers:
//!
//! * [`schedule`] — the seeded generator: worker deaths, delayed/duplicated
//!   dependency-transfer completions, heartbeat-suppression windows (the
//!   "healthy worker looks dead" failure), Mofka partition stalls, and
//!   forced PFS interference bursts.
//! * [`oracle`] — invariant oracles evaluated on the fused [`RunData`]
//!   after a run: a reference model of the Dask task state machine replayed
//!   transition-by-transition, plus cross-layer checks (delivery
//!   exactly-once per task, provenance lineage acyclic/complete/temporal,
//!   Darshan↔WMS join-key alignment, steal accounting). The *live*
//!   structural invariants (ready ⇒ no undrained `missing_deps`, ≤1
//!   transfer per `(worker, dep)`, `who_has` ⊆ live workers, …) run inside
//!   the simulator after every event via
//!   `Scheduler::invariant_violations`, enabled by
//!   `SimConfig::invariant_checks`.
//! * [`runner`] — the campaign driver: generates K schedules from one
//!   campaign seed, runs each twice, diffs the canonical transition logs
//!   byte-for-byte (the determinism gate), and evaluates every oracle.
//! * [`crash`] — seeded crash-injection for persisted stores (torn tails,
//!   zeroed tails, bit flips) plus the recovery oracle: per partition,
//!   the recovered stream must be a prefix of the committed one.
//!
//! [`RunData`]: dtf_wms::RunData

pub mod crash;
pub mod oracle;
pub mod runner;
pub mod schedule;

pub use crash::{copy_store, recovery_oracle, CrashFault, CrashKind, CrashTarget};
pub use oracle::{check_proxy_plane, check_run};
pub use runner::{
    extended_proxy_config, run_campaign, run_campaign_extended, run_schedule, run_schedule_data,
    run_schedule_extended, schedule_seed, transition_log, CampaignReport, ScheduleOutcome,
};
pub use schedule::{ChaosConfig, STALLABLE_TOPICS};
