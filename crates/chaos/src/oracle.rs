//! Post-run invariant oracles over the fused [`RunData`].
//!
//! These complement the *live* structural checks inside the scheduler
//! (`Scheduler::invariant_violations`, enabled per event via
//! `SimConfig::invariant_checks`): the live checks see internal tables the
//! provenance stream never exports, while these oracles see the whole run
//! at once — the stream as an analyst would read it. A perturbed run is
//! accepted only if both layers stay silent.
//!
//! [`RunData`]: dtf_wms::RunData

use std::collections::{BTreeMap, HashMap, HashSet};

use dtf_core::events::{Stimulus, TaskState, TransitionEvent};
use dtf_core::ids::{TaskKey, ThreadId};
use dtf_core::time::Time;
use dtf_wms::RunData;

/// Run every oracle; returns one message per violation (empty = clean).
pub fn check_run(data: &RunData) -> Vec<String> {
    let mut v = Vec::new();
    v.extend(check_transition_model(data));
    v.extend(check_delivery(data));
    v.extend(check_lineage(data));
    v.extend(check_steal_accounting(data));
    v.extend(check_darshan_join(data));
    v.extend(check_proxy_plane(data));
    v
}

/// Reference model of the Dask scheduler state machine, replayed over the
/// emitted transition log task by task:
/// - every step is a legal edge of the transition matrix (self-loops are
///   observations — compute-started markers — not state changes);
/// - each task's chain is gap-free (`from` of each record equals `to` of
///   the previous one) and starts from `released` via `graph-submitted`;
/// - exactly one `graph-submitted` stimulus per task;
/// - each chain ends terminal; a terminal state is left only through the
///   legal `memory → released` revival (output lost to a worker death);
/// - `memory` entries equal the task's completion records.
pub fn check_transition_model(data: &RunData) -> Vec<String> {
    let mut v = Vec::new();
    let mut chains: BTreeMap<&TaskKey, Vec<&TransitionEvent>> = BTreeMap::new();
    for t in &data.transitions {
        chains.entry(&t.key).or_default().push(t);
    }
    let mut done_count: HashMap<&TaskKey, usize> = HashMap::new();
    for d in &data.task_done {
        *done_count.entry(&d.key).or_default() += 1;
    }
    for (key, chain) in &chains {
        let mut submitted = 0usize;
        let mut memory_entries = 0usize;
        let mut prev: Option<TaskState> = None;
        for t in chain.iter() {
            if t.stimulus == Stimulus::GraphSubmitted {
                submitted += 1;
            }
            if t.from == t.to {
                // observation marker (e.g. compute-started), not a step
                continue;
            }
            if !t.from.can_transition_to(t.to) {
                v.push(format!(
                    "{key}: illegal transition {} -> {} ({})",
                    t.from.as_str(),
                    t.to.as_str(),
                    t.stimulus.as_str()
                ));
            }
            if let Some(p) = prev {
                if p != t.from {
                    v.push(format!(
                        "{key}: chain gap — was {}, next step starts from {}",
                        p.as_str(),
                        t.from.as_str()
                    ));
                }
            } else {
                if t.from != TaskState::Released {
                    v.push(format!("{key}: chain starts from {}", t.from.as_str()));
                }
                if t.stimulus != Stimulus::GraphSubmitted {
                    v.push(format!("{key}: first transition stimulus is {}", t.stimulus.as_str()));
                }
            }
            if t.to == TaskState::Memory {
                memory_entries += 1;
            }
            prev = Some(t.to);
        }
        if submitted != 1 {
            v.push(format!("{key}: {submitted} graph-submitted stimuli (want exactly 1)"));
        }
        match prev {
            Some(last) if !last.is_terminal() => {
                v.push(format!("{key}: chain ends non-terminal in {}", last.as_str()))
            }
            None => v.push(format!("{key}: no state change at all")),
            _ => {}
        }
        let done = done_count.get(key).copied().unwrap_or(0);
        if memory_entries != done {
            v.push(format!("{key}: {memory_entries} memory entries but {done} completion records"));
        }
    }
    // worker-side records: individually legal steps of the worker machine
    for t in &data.worker_transitions {
        if !t.from.can_transition_to(t.to) {
            v.push(format!(
                "{}: illegal worker transition {} -> {} on {}",
                t.key,
                t.from.as_str(),
                t.to.as_str(),
                t.worker
            ));
        }
    }
    v
}

/// Delivery oracle: the observable consequence of Mofka's exactly-once
/// contract per consumer group. Every task has exactly one metadata record
/// (a duplicate would mean re-delivery; a missing one, loss — including
/// loss to a partition stalled past the end of the run), and every key in
/// the other streams resolves against the metadata topic.
pub fn check_delivery(data: &RunData) -> Vec<String> {
    let mut v = Vec::new();
    let mut meta_count: HashMap<&TaskKey, usize> = HashMap::new();
    for m in &data.meta {
        *meta_count.entry(&m.key).or_default() += 1;
    }
    for (key, n) in &meta_count {
        if *n != 1 {
            v.push(format!("{key}: {n} task-meta records (want exactly 1)"));
        }
    }
    let known: HashSet<&TaskKey> = meta_count.keys().copied().collect();
    for t in &data.transitions {
        if !known.contains(&t.key) {
            v.push(format!("{}: transition for task with no task-meta record", t.key));
            break;
        }
    }
    for d in &data.task_done {
        if !known.contains(&d.key) {
            v.push(format!("{}: completion for task with no task-meta record", d.key));
            break;
        }
    }
    v
}

/// Provenance lineage oracle: the dependency relation recorded in the
/// metadata stream is acyclic and complete (every referenced dependency is
/// itself a recorded task), and temporally coherent — every execution of a
/// task starts at or after some completed execution of each dependency.
pub fn check_lineage(data: &RunData) -> Vec<String> {
    let mut v = Vec::new();
    let mut deps: BTreeMap<&TaskKey, &Vec<TaskKey>> = BTreeMap::new();
    for m in &data.meta {
        deps.insert(&m.key, &m.deps);
    }
    // completeness
    for (key, ds) in &deps {
        for d in ds.iter() {
            if !deps.contains_key(d) {
                v.push(format!("{key}: dependency {d} has no task-meta record"));
            }
        }
    }
    // acyclicity (iterative three-color DFS)
    let mut color: HashMap<&TaskKey, u8> = HashMap::new(); // 0 white, 1 grey, 2 black
    for root in deps.keys() {
        if color.get(root).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(&TaskKey, usize)> = vec![(root, 0)];
        color.insert(root, 1);
        while let Some((node, i)) = stack.pop() {
            let children = deps.get(node).map(|d| d.as_slice()).unwrap_or(&[]);
            if i < children.len() {
                stack.push((node, i + 1));
                let child = &children[i];
                if let Some(ck) = deps.get_key_value(child).map(|(k, _)| *k) {
                    match color.get(ck).copied().unwrap_or(0) {
                        0 => {
                            color.insert(ck, 1);
                            stack.push((ck, 0));
                        }
                        1 => v.push(format!("lineage cycle through {node} -> {child}")),
                        _ => {}
                    }
                }
            } else {
                color.insert(node, 2);
            }
        }
    }
    // temporal coherence: dependency data existed before the dependent ran
    let mut completions: HashMap<&TaskKey, Vec<Time>> = HashMap::new();
    for d in &data.task_done {
        completions.entry(&d.key).or_default().push(d.stop);
    }
    for d in &data.task_done {
        let Some(ds) = deps.get(&d.key) else { continue };
        for dep in ds.iter() {
            let ok = completions
                .get(dep)
                .map(|stops| stops.iter().any(|s| *s <= d.start))
                .unwrap_or(false);
            if !ok {
                v.push(format!(
                    "{}: started at {} before any completion of dependency {dep}",
                    d.key, d.start
                ));
            }
        }
    }
    v
}

/// Proxy-plane oracle over the drained `proxy-events` stream:
/// - *lineage completeness*: every proxy record's key joins a task-meta
///   record, so proxied outputs never escape the lineage graph;
/// - *publish/resolve pairing*: every non-publish record (resolve, evict,
///   republish, re-source, orphan) has a publish record for its key at or
///   before its own time, and each key is published exactly once
///   (re-publications are distinct `republished` records);
/// - *exactly-once resolution*: no `(key, worker)` pair resolves twice,
///   however many duplicated or delayed fetch completions raced in;
/// - *generation coherence*: every resolution's generation was actually
///   minted by some publish / republish / re-source record of that key.
pub fn check_proxy_plane(data: &RunData) -> Vec<String> {
    use dtf_core::events::ProxyAction;
    let mut v = Vec::new();
    let known: HashSet<&TaskKey> = data.meta.iter().map(|m| &m.key).collect();
    let mut published_at: HashMap<&TaskKey, Time> = HashMap::new();
    let mut publishes: HashMap<&TaskKey, usize> = HashMap::new();
    let mut gens: HashMap<&TaskKey, HashSet<u32>> = HashMap::new();
    for p in &data.proxies {
        match p.action {
            ProxyAction::Published => {
                *publishes.entry(&p.key).or_default() += 1;
                let at = published_at.entry(&p.key).or_insert(p.time);
                *at = (*at).min(p.time);
                gens.entry(&p.key).or_default().insert(p.generation);
            }
            ProxyAction::Republished | ProxyAction::Resourced => {
                gens.entry(&p.key).or_default().insert(p.generation);
            }
            _ => {}
        }
    }
    for (key, n) in &publishes {
        if *n != 1 {
            v.push(format!("{key}: {n} proxy publish records (want exactly 1)"));
        }
    }
    let mut resolved: HashSet<(&TaskKey, dtf_core::ids::WorkerId)> = HashSet::new();
    for p in &data.proxies {
        if !known.contains(&p.key) {
            v.push(format!("{}: proxy record for task with no task-meta record", p.key));
        }
        if p.action != ProxyAction::Published {
            match published_at.get(&p.key) {
                Some(t0) if *t0 <= p.time => {}
                Some(_) => v.push(format!(
                    "{}: proxy {} at {} precedes its publish",
                    p.key,
                    p.action.as_str(),
                    p.time
                )),
                None => {
                    v.push(format!("{}: proxy {} with no publish record", p.key, p.action.as_str()))
                }
            }
        }
        if p.action == ProxyAction::Resolved {
            match p.worker {
                Some(w) => {
                    if !resolved.insert((&p.key, w)) {
                        v.push(format!(
                            "{}: resolved more than once on {w} (exactly-once violated)",
                            p.key
                        ));
                    }
                }
                None => v.push(format!("{}: resolution without a resolving worker", p.key)),
            }
            let minted = gens.get(&p.key).map(|g| g.contains(&p.generation)).unwrap_or(false);
            if !minted {
                v.push(format!(
                    "{}: resolved generation {} was never minted by a publish",
                    p.key, p.generation
                ));
            }
        }
    }
    v
}

/// The run-level steal counter equals the number of work-stolen stimuli in
/// the transition stream.
pub fn check_steal_accounting(data: &RunData) -> Vec<String> {
    let observed =
        data.transitions.iter().filter(|t| t.stimulus == Stimulus::WorkStolen).count() as u64;
    if observed != data.steals {
        vec![format!("steal counter {} but {} work-stolen transitions", data.steals, observed)]
    } else {
        Vec::new()
    }
}

/// Darshan ↔ WMS join oracle: the identifiers both layers carry actually
/// join. Every DXT record sits in the log of the worker that issued it,
/// its synthetic pthread id decodes to a thread ordinal of that worker,
/// and its `[start, stop]` window falls inside a completed task execution
/// on the same `(worker, thread)`. Runs that lost a worker may carry
/// orphaned records — I/O charged by executions that died with the worker
/// — so the window check is only enforced when no worker was lost.
pub fn check_darshan_join(data: &RunData) -> Vec<String> {
    let mut v = Vec::new();
    let threads = data.chart.wms_config.threads_per_worker;
    let lost_worker =
        data.logs.iter().any(|l| l.message.contains("terminated") || l.message.contains("lost"));
    let mut windows: HashMap<(dtf_core::ids::WorkerId, ThreadId), Vec<(Time, Time)>> =
        HashMap::new();
    for d in &data.task_done {
        windows.entry((d.worker, d.thread)).or_default().push((d.start, d.stop));
    }
    for log in &data.darshan.logs {
        for r in &log.dxt {
            if r.worker != log.header.worker {
                v.push(format!(
                    "io record by {} found in the log of {}",
                    r.worker, log.header.worker
                ));
                continue;
            }
            if r.host != r.worker.node {
                v.push(format!("io record host {} != worker node {}", r.host.0, r.worker.node.0));
            }
            let decodes = (0..threads).any(|t| ThreadId::synth(r.worker, t) == r.thread);
            if !decodes {
                v.push(format!(
                    "io record thread {} does not decode to a thread of {}",
                    r.thread, r.worker
                ));
                continue;
            }
            if !lost_worker {
                let joined = windows
                    .get(&(r.worker, r.thread))
                    .map(|ws| ws.iter().any(|(a, b)| *a <= r.start && r.stop <= *b))
                    .unwrap_or(false);
                if !joined {
                    v.push(format!(
                        "io record on {} thread {} at [{}, {}] joins no task execution",
                        r.worker, r.thread, r.start, r.stop
                    ));
                }
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::events::{Location, TaskMetaEvent};
    use dtf_core::ids::{ClientId, GraphId};

    fn tr(
        key: &TaskKey,
        from: TaskState,
        to: TaskState,
        stim: Stimulus,
        t: u64,
    ) -> TransitionEvent {
        TransitionEvent {
            key: key.clone(),
            graph: GraphId(0),
            from,
            to,
            stimulus: stim,
            location: Location::Scheduler,
            time: Time(t),
        }
    }

    fn meta(key: &TaskKey, deps: Vec<TaskKey>) -> TaskMetaEvent {
        TaskMetaEvent {
            key: key.clone(),
            graph: GraphId(0),
            client: ClientId(0),
            deps,
            submitted: Time(0),
        }
    }

    fn empty_run() -> RunData {
        RunData {
            run: dtf_core::ids::RunId(0),
            workflow: "oracle-unit".into(),
            chart: dtf_core::provenance::ProvenanceChart {
                hardware: dtf_core::provenance::HardwareInfo::polaris_like(2),
                system: dtf_core::provenance::SystemInfo::synthetic(),
                job: dtf_core::provenance::JobInfo {
                    job_id: 0,
                    script: String::new(),
                    queue: "q".into(),
                    nodes_requested: 1,
                    allocated_nodes: vec![dtf_core::ids::NodeId(0)],
                    submit_time: Time(0),
                    start_time: Time(0),
                    walltime_limit_s: 60,
                },
                wms_config: dtf_core::provenance::WmsConfig::default(),
                client_code_hash: 0,
                workflow_name: "oracle-unit".into(),
            },
            meta: vec![],
            transitions: vec![],
            worker_transitions: vec![],
            task_done: vec![],
            comms: vec![],
            warnings: vec![],
            logs: vec![],
            proxies: vec![],
            darshan: Default::default(),
            online_io: vec![],
            wall_time: dtf_core::time::Dur::ZERO,
            start_order: vec![],
            steals: 0,
        }
    }

    #[test]
    fn clean_chain_passes() {
        use Stimulus::*;
        use TaskState::*;
        let k = TaskKey::new("a", 0, 0);
        let mut data = empty_run();
        data.meta = vec![meta(&k, vec![])];
        data.transitions = vec![
            tr(&k, Released, Waiting, GraphSubmitted, 0),
            tr(&k, Waiting, Processing, Dispatched, 1),
            tr(&k, Processing, Processing, ComputeStarted, 2),
            tr(&k, Processing, Memory, ComputeFinished, 3),
        ];
        let v = check_transition_model(&data);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("1 memory entries but 0 completion records"), "{v:?}");
        data.transitions.pop();
        // chain now ends non-terminal
        assert!(check_transition_model(&data).iter().any(|m| m.contains("ends non-terminal")));
    }

    #[test]
    fn illegal_step_gap_and_duplicate_submit_detected() {
        use Stimulus::*;
        use TaskState::*;
        let k = TaskKey::new("a", 0, 0);
        let mut data = empty_run();
        data.transitions = vec![
            tr(&k, Released, Waiting, GraphSubmitted, 0),
            tr(&k, Released, Waiting, GraphSubmitted, 1), // duplicate delivery
            tr(&k, Processing, Memory, ComputeFinished, 2), // gap: waiting never left
            tr(&k, Memory, Waiting, WorkerLost, 3),       // illegal edge
        ];
        let v = check_transition_model(&data);
        assert!(v.iter().any(|m| m.contains("graph-submitted stimuli")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("chain gap")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("illegal transition")), "{v:?}");
    }

    #[test]
    fn lineage_cycle_and_missing_dep_detected() {
        let a = TaskKey::new("a", 0, 0);
        let b = TaskKey::new("b", 0, 0);
        let ghost = TaskKey::new("ghost", 0, 0);
        let mut data = empty_run();
        data.meta = vec![meta(&a, vec![b.clone(), ghost.clone()]), meta(&b, vec![a.clone()])];
        let v = check_lineage(&data);
        assert!(v.iter().any(|m| m.contains("cycle")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("ghost")), "{v:?}");
    }

    #[test]
    fn steal_accounting_mismatch_detected() {
        let mut data = empty_run();
        data.steals = 2;
        assert_eq!(check_steal_accounting(&data).len(), 1);
        data.steals = 0;
        assert!(check_steal_accounting(&data).is_empty());
    }

    #[test]
    fn proxy_plane_oracle_detects_violations() {
        use dtf_core::events::{ProxyAction, ProxyEvent};
        let w = |n| dtf_core::ids::WorkerId::new(dtf_core::ids::NodeId(n), 0);
        let pe = |action, key: &TaskKey, generation, worker, t| ProxyEvent {
            action,
            key: key.clone(),
            graph: GraphId(0),
            size: 1 << 20,
            owner: w(0),
            checksum: 7,
            generation,
            worker,
            time: Time(t),
        };
        let a = TaskKey::new("a", 0, 0);
        let ghost = TaskKey::new("ghost", 0, 0);
        let mut data = empty_run();
        data.meta = vec![meta(&a, vec![])];
        data.proxies = vec![
            pe(ProxyAction::Published, &a, 0, None, 1),
            pe(ProxyAction::Resolved, &a, 0, Some(w(1)), 2),
        ];
        assert!(check_proxy_plane(&data).is_empty(), "{:?}", check_proxy_plane(&data));
        // duplicate resolution of the same (key, worker) pair
        data.proxies.push(pe(ProxyAction::Resolved, &a, 0, Some(w(1)), 3));
        assert!(check_proxy_plane(&data).iter().any(|m| m.contains("exactly-once")));
        data.proxies.pop();
        // resolve without a publish, for a key outside the lineage
        data.proxies.push(pe(ProxyAction::Resolved, &ghost, 0, Some(w(2)), 3));
        let v = check_proxy_plane(&data);
        assert!(v.iter().any(|m| m.contains("no publish record")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("no task-meta record")), "{v:?}");
        data.proxies.pop();
        // a generation no publish ever minted
        data.proxies.push(pe(ProxyAction::Resolved, &a, 5, Some(w(3)), 4));
        assert!(check_proxy_plane(&data).iter().any(|m| m.contains("never minted")));
    }

    #[test]
    fn duplicate_meta_detected() {
        let a = TaskKey::new("a", 0, 0);
        let mut data = empty_run();
        data.meta = vec![meta(&a, vec![]), meta(&a, vec![])];
        assert!(check_delivery(&data).iter().any(|m| m.contains("task-meta")));
    }
}
