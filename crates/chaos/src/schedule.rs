//! Seeded fault-schedule generation.
//!
//! A schedule is a pure function of its seed: the generator draws every
//! perturbation from one labelled [`RunRng`] stream in a fixed order, so
//! the same seed always yields the same [`FaultSchedule`] — the property
//! the replay workflow rests on. Worker ordinal 0 is never killed and
//! never has heartbeats suppressed: at least one worker must survive or a
//! perturbed run could deadlock by construction rather than by bug.

use rand::Rng;

use dtf_core::fault::{
    DanglingProxy, FaultSchedule, FetchFault, HeartbeatDrop, HotspotFault, InterferenceBurst,
    MofkaStall, SlowResolve, StragglerFault, WorkerDeath,
};
use dtf_core::ids::RunId;
use dtf_core::rngx::RunRng;
use dtf_core::time::{Dur, Time};

/// Topics the generator may stall (the 4-partition provenance topics of
/// the default Mofka deployment).
pub const STALLABLE_TOPICS: [&str; 6] = [
    "task-meta",
    "task-transitions",
    "worker-transitions",
    "task-done",
    "comm-events",
    "io-records",
];

/// Generator intensity knobs. Defaults match the default simulated cluster
/// (2 worker nodes × 4 workers) and a run horizon of tens of seconds.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Workers in the perturbed run (ordinal 0 is protected).
    pub workers: u32,
    /// Window fault times are drawn from (roughly the run length).
    pub horizon: Dur,
    /// Maximum worker deaths per schedule.
    pub max_deaths: u32,
    /// Probability of each successive death being scheduled.
    pub death_prob: f64,
    /// Maximum perturbed dependency transfers per schedule.
    pub max_fetch_faults: u32,
    /// Fetch issue-order indices are drawn from `0..fetch_index_range`.
    pub fetch_index_range: u64,
    /// Upper bound of the extra delay added to a perturbed transfer.
    pub max_fetch_delay: Dur,
    /// Maximum heartbeat-suppression windows per schedule.
    pub max_heartbeat_drops: u32,
    /// Longest suppression window (longer than the 3 s detection timeout,
    /// so some windows evict perfectly healthy workers).
    pub max_drop_window: Dur,
    /// Maximum Mofka partition stalls per schedule.
    pub max_mofka_stalls: u32,
    /// Maximum forced PFS interference bursts per schedule.
    pub max_pfs_bursts: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            workers: 8,
            horizon: Dur::from_secs_f64(25.0),
            max_deaths: 2,
            death_prob: 0.45,
            max_fetch_faults: 6,
            fetch_index_range: 48,
            max_fetch_delay: Dur::from_secs_f64(8.0),
            max_heartbeat_drops: 2,
            max_drop_window: Dur::from_secs_f64(6.0),
            max_mofka_stalls: 2,
            max_pfs_bursts: 2,
        }
    }
}

impl ChaosConfig {
    /// Generate the schedule for `seed`. Deterministic: the same config and
    /// seed always produce the same schedule.
    pub fn generate(&self, seed: u64) -> FaultSchedule {
        let rr = RunRng::new(seed, RunId(0));
        let mut rng = rr.stream("fault-schedule");
        let horizon = self.horizon.as_secs_f64();
        let mut s = FaultSchedule { seed, ..Default::default() };

        // worker deaths (never ordinal 0)
        if self.workers >= 2 {
            let mut killed = std::collections::BTreeSet::new();
            for _ in 0..self.max_deaths {
                if rng.gen::<f64>() >= self.death_prob {
                    break;
                }
                let worker = 1 + rng.gen_range(0..self.workers - 1);
                if !killed.insert(worker) {
                    continue; // a worker dies at most once
                }
                let time = Time::from_secs_f64(horizon * (0.05 + 0.85 * rng.gen::<f64>()));
                s.deaths.push(WorkerDeath { worker, time });
            }
            s.deaths.sort_by_key(|d| (d.time, d.worker));
        }

        // fetch faults, keyed on transfer issue order, distinct indices
        let n_fetch = rng.gen_range(0..=self.max_fetch_faults);
        let mut used = std::collections::BTreeSet::new();
        for _ in 0..n_fetch {
            let index = rng.gen_range(0..self.fetch_index_range.max(1));
            let extra_delay =
                Dur::from_secs_f64(rng.gen::<f64>() * self.max_fetch_delay.as_secs_f64());
            let duplicate = rng.gen::<f64>() < 0.5;
            if used.insert(index) {
                s.fetch_faults.push(FetchFault { index, extra_delay, duplicate });
            }
        }
        s.fetch_faults.sort_by_key(|f| f.index);

        // heartbeat-suppression windows (never ordinal 0)
        if self.workers >= 2 {
            let n_drops = rng.gen_range(0..=self.max_heartbeat_drops);
            for _ in 0..n_drops {
                let worker = 1 + rng.gen_range(0..self.workers - 1);
                let start = Time::from_secs_f64(horizon * 0.8 * rng.gen::<f64>());
                let len = 0.5 + (self.max_drop_window.as_secs_f64() - 0.5) * rng.gen::<f64>();
                let stop = start + Dur::from_secs_f64(len);
                s.heartbeat_drops.push(HeartbeatDrop { worker, start, stop });
            }
            s.heartbeat_drops.sort_by_key(|d| (d.start, d.worker));
        }

        // Mofka partition stalls
        let n_stalls = rng.gen_range(0..=self.max_mofka_stalls);
        for _ in 0..n_stalls {
            let topic = STALLABLE_TOPICS[rng.gen_range(0..STALLABLE_TOPICS.len())].to_string();
            let partition = rng.gen_range(0..4u32);
            let start = Time::from_secs_f64(horizon * 0.9 * rng.gen::<f64>());
            let stop = start + Dur::from_secs_f64(1.0 + 14.0 * rng.gen::<f64>());
            s.mofka_stalls.push(MofkaStall { topic, partition, start, stop });
        }
        s.mofka_stalls.sort_by_key(|m| (m.start, m.topic.clone(), m.partition));

        // forced PFS interference bursts
        let n_bursts = rng.gen_range(0..=self.max_pfs_bursts);
        for _ in 0..n_bursts {
            let start = Time::from_secs_f64(horizon * 0.9 * rng.gen::<f64>());
            let stop = start + Dur::from_secs_f64(1.0 + 5.0 * rng.gen::<f64>());
            let factor = 2.0 + 6.0 * rng.gen::<f64>();
            s.pfs_bursts.push(InterferenceBurst { start, stop, factor });
        }
        s.pfs_bursts.sort_by_key(|a| (a.start, a.stop));

        s
    }

    /// Generate the extended schedule for `seed`: the frozen base stream
    /// plus the proxy-plane and load-skew fault families (stragglers,
    /// hot-spot placement bias, dangling proxy blobs, slow resolvers).
    ///
    /// The extension draws from its own labelled RNG stream, so for any
    /// seed the base faults of [`Self::generate`] are byte-identical with
    /// and without the extension — archived base campaigns replay
    /// unchanged.
    pub fn generate_extended(&self, seed: u64) -> FaultSchedule {
        let mut s = self.generate(seed);
        let rr = RunRng::new(seed, RunId(0));
        let mut rng = rr.stream("fault-schedule-ext");
        let horizon = self.horizon.as_secs_f64();

        // straggler windows: seeded per-worker compute slowdown
        let n = rng.gen_range(0..=2u32);
        for _ in 0..n {
            let worker = rng.gen_range(0..self.workers.max(1));
            let factor = 2.0 + 8.0 * rng.gen::<f64>();
            let start = Time::from_secs_f64(horizon * 0.6 * rng.gen::<f64>());
            let stop = start + Dur::from_secs_f64(2.0 + 10.0 * rng.gen::<f64>());
            s.stragglers.push(StragglerFault { worker, factor, start, stop });
        }
        s.stragglers.sort_by_key(|f| (f.start, f.worker));

        // skewed placement: one hot spot at most
        if rng.gen::<f64>() < 0.5 {
            let worker = rng.gen_range(0..self.workers.max(1));
            let weight = 0.05 + 0.4 * rng.gen::<f64>();
            s.hotspot = Some(HotspotFault { worker, weight });
        }

        // dangling proxy blobs, keyed on publish order, distinct indices
        let n = rng.gen_range(0..=3u32);
        let mut used = std::collections::BTreeSet::new();
        for _ in 0..n {
            let index = rng.gen_range(0..24u64);
            if used.insert(index) {
                s.dangling_proxies.push(DanglingProxy { index });
            }
        }
        s.dangling_proxies.sort_by_key(|d| d.index);

        // slow resolvers, keyed on resolve order, distinct indices
        let n = rng.gen_range(0..=3u32);
        let mut used = std::collections::BTreeSet::new();
        for _ in 0..n {
            let index = rng.gen_range(0..48u64);
            let extra_delay = Dur::from_secs_f64(0.2 + 3.0 * rng.gen::<f64>());
            if used.insert(index) {
                s.slow_resolves.push(SlowResolve { index, extra_delay });
            }
        }
        s.slow_resolves.sort_by_key(|f| f.index);

        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ChaosConfig::default();
        for seed in 0..64 {
            assert_eq!(cfg.generate(seed), cfg.generate(seed));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ChaosConfig::default();
        let distinct: std::collections::HashSet<String> =
            (0..32).map(|s| cfg.generate(s).to_json()).collect();
        assert!(distinct.len() > 16, "only {} distinct schedules in 32 seeds", distinct.len());
    }

    #[test]
    fn worker_zero_is_protected() {
        let cfg = ChaosConfig { max_deaths: 8, death_prob: 1.0, ..Default::default() };
        for seed in 0..256 {
            let s = cfg.generate(seed);
            assert!(s.deaths.iter().all(|d| d.worker != 0), "seed {seed} kills worker 0");
            assert!(
                s.heartbeat_drops.iter().all(|d| d.worker != 0),
                "seed {seed} suppresses worker 0"
            );
            assert!(s.deaths.iter().all(|d| d.worker < cfg.workers));
        }
    }

    #[test]
    fn schedules_are_well_formed() {
        let cfg = ChaosConfig::default();
        for seed in 0..256 {
            let s = cfg.generate(seed);
            // one death per worker at most
            let workers: Vec<u32> = s.deaths.iter().map(|d| d.worker).collect();
            let mut dedup = workers.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(workers.len(), dedup.len());
            // fetch indices distinct and sorted
            for w in s.fetch_faults.windows(2) {
                assert!(w[0].index < w[1].index);
            }
            // windows are non-empty
            assert!(s.heartbeat_drops.iter().all(|d| d.stop > d.start));
            assert!(s.mofka_stalls.iter().all(|m| m.stop > m.start));
            assert!(s.pfs_bursts.iter().all(|b| b.stop > b.start && b.factor >= 1.0));
            // schedules roundtrip through their archive format
            assert_eq!(FaultSchedule::from_json(&s.to_json()).unwrap(), s);
        }
    }

    #[test]
    fn extension_never_perturbs_the_base_schedule() {
        let cfg = ChaosConfig::default();
        for seed in 0..64 {
            let base = cfg.generate(seed);
            let ext = cfg.generate_extended(seed);
            // deterministic
            assert_eq!(ext, cfg.generate_extended(seed));
            // the base families are byte-identical with and without the
            // extension — archived base campaigns replay unchanged
            assert_eq!(base.deaths, ext.deaths, "seed {seed}");
            assert_eq!(base.fetch_faults, ext.fetch_faults, "seed {seed}");
            assert_eq!(base.heartbeat_drops, ext.heartbeat_drops, "seed {seed}");
            assert_eq!(base.mofka_stalls, ext.mofka_stalls, "seed {seed}");
            assert_eq!(base.pfs_bursts, ext.pfs_bursts, "seed {seed}");
            // extended schedules roundtrip through the archive format
            assert_eq!(FaultSchedule::from_json(&ext.to_json()).unwrap(), ext);
            assert!(ext.stragglers.iter().all(|f| f.factor > 1.0 && f.stop > f.start));
            if let Some(h) = &ext.hotspot {
                assert!(h.weight > 0.0 && h.weight < 1.0 && h.worker < cfg.workers);
            }
        }
    }

    #[test]
    fn extension_produces_each_new_fault_kind() {
        let cfg = ChaosConfig::default();
        let (mut st, mut hs, mut dp, mut sr) = (0, 0, 0, 0);
        for seed in 0..128 {
            let s = cfg.generate_extended(seed);
            st += s.stragglers.len();
            hs += usize::from(s.hotspot.is_some());
            dp += s.dangling_proxies.len();
            sr += s.slow_resolves.len();
        }
        assert!(st > 0 && hs > 0 && dp > 0 && sr > 0, "({st},{hs},{dp},{sr})");
    }

    #[test]
    fn generator_actually_produces_each_fault_kind() {
        let cfg = ChaosConfig::default();
        let (mut d, mut f, mut h, mut m, mut p) = (0, 0, 0, 0, 0);
        for seed in 0..128 {
            let s = cfg.generate(seed);
            d += s.deaths.len();
            f += s.fetch_faults.len();
            h += s.heartbeat_drops.len();
            m += s.mofka_stalls.len();
            p += s.pfs_bursts.len();
        }
        assert!(d > 0 && f > 0 && h > 0 && m > 0 && p > 0, "({d},{f},{h},{m},{p})");
        assert!(
            cfg.generate(3).fetch_faults.iter().chain(cfg.generate(7).fetch_faults.iter()).count()
                > 0
        );
    }
}
