//! Campaign driver: generate → run twice → diff → judge.
//!
//! A *campaign* is K schedules derived from one campaign seed. Each
//! schedule is applied to a seed-derived random layered workflow and run
//! **twice**; the canonical transition logs of the two runs are compared
//! byte-for-byte (the determinism gate — if they differ, replay-from-seed
//! is broken and every other result is suspect), then the oracles of
//! [`crate::oracle`] judge the first run. The scheduler's live structural
//! invariants are enabled for every perturbed run via
//! `SimConfig::invariant_checks`, so a violation mid-run surfaces as a run
//! error carrying the virtual time it happened at.

use rand::Rng;

use dtf_core::fault::FaultSchedule;
use dtf_core::ids::{FileId, GraphId, RunId};
use dtf_core::rngx::RunRng;
use dtf_core::time::Dur;
use dtf_proxystore::ProxyConfig;
use dtf_wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};
use dtf_wms::{GraphBuilder, IoCall, RunData, SimAction};

use crate::oracle;
use crate::schedule::ChaosConfig;

/// Derive the fault-schedule seed for schedule `index` of a campaign
/// (splitmix64 finalizer — consecutive indices give unrelated seeds).
pub fn schedule_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut z = campaign_seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Canonical, byte-comparable rendering of everything the provenance
/// stream says happened: scheduler transitions, worker transitions, and
/// task completions, in their drained (stably time-sorted) order. Two runs
/// of the same schedule must render identically.
pub fn transition_log(data: &RunData) -> String {
    let mut out = String::new();
    for t in &data.transitions {
        out.push_str(&format!(
            "T {} {} {}->{} {} {:?}\n",
            t.time.0,
            t.key,
            t.from.as_str(),
            t.to.as_str(),
            t.stimulus.as_str(),
            t.location
        ));
    }
    for w in &data.worker_transitions {
        out.push_str(&format!(
            "W {} {} {} {}->{}\n",
            w.time.0,
            w.key,
            w.worker,
            w.from.as_str(),
            w.to.as_str()
        ));
    }
    for d in &data.task_done {
        out.push_str(&format!(
            "D {}..{} {} {} {} {}\n",
            d.start.0, d.stop.0, d.key, d.worker, d.thread, d.nbytes
        ));
    }
    out
}

/// The seed-derived random workflow schedules are applied to: a layered
/// DAG (each layer depends on the previous one) whose roots read slices of
/// a shared dataset file — enough structure to exercise dispatch, transfer,
/// stealing, recompute, and the PFS under every fault kind.
pub fn chaos_workflow(seed: u64) -> SimWorkflow {
    let rr = RunRng::new(seed, RunId(0));
    let mut rng = rr.stream("chaos-workflow");
    let layers = rng.gen_range(3..=5usize);
    let mut b = GraphBuilder::new(GraphId(0));
    let mut prev: Vec<dtf_core::ids::TaskKey> = Vec::new();
    for layer in 0..layers {
        let width = rng.gen_range(2..=5usize);
        let tok = b.new_token();
        let mut cur = Vec::with_capacity(width);
        for i in 0..width {
            let compute = Dur::from_secs_f64(0.2 + rng.gen::<f64>());
            let output_nbytes = 1u64 << rng.gen_range(16..24u32); // 64 KiB – 8 MiB
            let mut action = SimAction::compute_only(compute, output_nbytes);
            let deps = if prev.is_empty() {
                // roots read a slice of the shared dataset
                let size = 1u64 << rng.gen_range(20..23u32);
                let offset = (i as u64) * size;
                action.io.push(IoCall::read(FileId(0), offset, size));
                Vec::new()
            } else {
                let n = rng.gen_range(1..=prev.len().min(3));
                let mut deps = Vec::with_capacity(n);
                for _ in 0..n {
                    let d = prev[rng.gen_range(0..prev.len())].clone();
                    if !deps.contains(&d) {
                        deps.push(d);
                    }
                }
                deps
            };
            cur.push(b.add_sim(&format!("layer{layer}"), tok, i as u32, deps, action));
        }
        prev = cur;
    }
    SimWorkflow {
        name: format!("chaos-{seed:016x}"),
        graphs: vec![b.build(&Default::default()).expect("generated DAG is valid")],
        submit: SubmitPolicy::AllAtOnce,
        startup: Dur::from_secs_f64(1.5),
        inter_graph: Dur::ZERO,
        shutdown: Dur::ZERO,
        dataset: vec![("chaos-input.dat".into(), 1 << 30, 4)],
    }
}

/// What happened to one schedule of a campaign.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Index within the campaign.
    pub index: u64,
    /// Fault-schedule seed (replay key: `repro chaos-replay --seed <this>`).
    pub seed: u64,
    /// The schedule itself, for archival alongside a failure.
    pub schedule: FaultSchedule,
    /// Run error, if either run failed (includes live invariant
    /// violations, which abort the run at their virtual time).
    pub error: Option<String>,
    /// Post-run oracle violations on the first run.
    pub violations: Vec<String>,
    /// Whether both runs produced byte-identical transition logs.
    pub determinism_ok: bool,
    /// Distinct tasks that completed (sanity: the run did real work).
    pub tasks_completed: usize,
}

impl ScheduleOutcome {
    pub fn passed(&self) -> bool {
        self.error.is_none() && self.violations.is_empty() && self.determinism_ok
    }

    /// One-line summary for campaign output.
    pub fn describe(&self) -> String {
        if self.passed() {
            format!(
                "schedule {:>4} seed {:016x}: ok ({} faults, {} tasks)",
                self.index,
                self.seed,
                self.schedule.len(),
                self.tasks_completed
            )
        } else if let Some(e) = &self.error {
            format!("schedule {:>4} seed {:016x}: RUN ERROR: {e}", self.index, self.seed)
        } else if !self.determinism_ok {
            format!(
                "schedule {:>4} seed {:016x}: NONDETERMINISTIC (transition logs differ)",
                self.index, self.seed
            )
        } else {
            format!(
                "schedule {:>4} seed {:016x}: {} ORACLE VIOLATION(S): {}",
                self.index,
                self.seed,
                self.violations.len(),
                self.violations.join("; ")
            )
        }
    }
}

/// Aggregate result of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    pub campaign_seed: u64,
    pub schedules: u64,
    pub passed: u64,
    /// Every non-passing outcome, in index order.
    pub failures: Vec<ScheduleOutcome>,
}

impl CampaignReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run one schedule of a campaign: generate its fault schedule, run the
/// seed-derived workflow under it twice, gate on determinism, judge with
/// the oracles.
pub fn run_schedule(campaign_seed: u64, index: u64, chaos: &ChaosConfig) -> ScheduleOutcome {
    let seed = schedule_seed(campaign_seed, index);
    let faults = chaos.generate(seed);
    run_schedule_faults(seed, index, faults, ProxyConfig::default())
}

/// Proxy-plane configuration extended campaigns run under: enabled, with a
/// 1 MiB threshold so the mid-size chaos-workflow outputs ride out-of-band
/// and a small resolver-cache budget so evictions actually happen.
pub fn extended_proxy_config() -> ProxyConfig {
    ProxyConfig { enabled: true, threshold: 1 << 20, resolver_cache_bytes: 32 << 20 }
}

/// Run one schedule of an *extended* campaign: the fault stream additionally
/// carries stragglers, hot-spot placement bias, dangling proxy blobs, and
/// slow resolvers, and the run executes with the proxy plane enabled so the
/// proxy faults have a surface to land on.
pub fn run_schedule_extended(
    campaign_seed: u64,
    index: u64,
    chaos: &ChaosConfig,
) -> ScheduleOutcome {
    let seed = schedule_seed(campaign_seed, index);
    let faults = chaos.generate_extended(seed);
    run_schedule_faults(seed, index, faults, extended_proxy_config())
}

fn run_schedule_faults(
    seed: u64,
    index: u64,
    faults: FaultSchedule,
    proxy: ProxyConfig,
) -> ScheduleOutcome {
    let mut outcome = ScheduleOutcome {
        index,
        seed,
        schedule: faults.clone(),
        error: None,
        violations: Vec::new(),
        determinism_ok: false,
        tasks_completed: 0,
    };
    let run_once = || -> Result<RunData, String> {
        let cfg = SimConfig {
            campaign_seed: seed,
            run: RunId(index as u32),
            faults: faults.clone(),
            invariant_checks: true,
            proxy: proxy.clone(),
            ..Default::default()
        };
        let cluster = SimCluster::new(cfg).map_err(|e| e.to_string())?;
        cluster.run(chaos_workflow(seed)).map_err(|e| e.to_string())
    };
    match (run_once(), run_once()) {
        (Ok(first), Ok(second)) => {
            outcome.determinism_ok = transition_log(&first) == transition_log(&second);
            outcome.violations = oracle::check_run(&first);
            outcome.tasks_completed = first.distinct_tasks();
        }
        (Err(e), _) | (_, Err(e)) => outcome.error = Some(e),
    }
    outcome
}

/// Run one schedule once and hand back the run record itself — for
/// callers that feed chaos runs into further analysis (e.g. the live-view
/// equivalence oracle, which replays a faulted run's event stream through
/// the incremental engine and compares against the post-hoc kernels).
pub fn run_schedule_data(
    campaign_seed: u64,
    index: u64,
    chaos: &ChaosConfig,
) -> Result<RunData, String> {
    let seed = schedule_seed(campaign_seed, index);
    let faults = chaos.generate(seed);
    let cfg = SimConfig {
        campaign_seed: seed,
        run: RunId(index as u32),
        faults,
        invariant_checks: true,
        ..Default::default()
    };
    let cluster = SimCluster::new(cfg).map_err(|e| e.to_string())?;
    cluster.run(chaos_workflow(seed)).map_err(|e| e.to_string())
}

/// Run a whole campaign of `schedules` schedules.
pub fn run_campaign(campaign_seed: u64, schedules: u64, chaos: &ChaosConfig) -> CampaignReport {
    let mut report = CampaignReport { campaign_seed, schedules, passed: 0, failures: Vec::new() };
    for index in 0..schedules {
        let outcome = run_schedule(campaign_seed, index, chaos);
        if outcome.passed() {
            report.passed += 1;
        } else {
            report.failures.push(outcome);
        }
    }
    report
}

/// Run a whole campaign over the extended fault stream (proxy plane on).
pub fn run_campaign_extended(
    campaign_seed: u64,
    schedules: u64,
    chaos: &ChaosConfig,
) -> CampaignReport {
    let mut report = CampaignReport { campaign_seed, schedules, passed: 0, failures: Vec::new() };
    for index in 0..schedules {
        let outcome = run_schedule_extended(campaign_seed, index, chaos);
        if outcome.passed() {
            report.passed += 1;
        } else {
            report.failures.push(outcome);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_seeds_spread() {
        let seeds: std::collections::HashSet<u64> = (0..64).map(|i| schedule_seed(42, i)).collect();
        assert_eq!(seeds.len(), 64);
        assert_ne!(schedule_seed(1, 0), schedule_seed(2, 0));
    }

    #[test]
    fn workflow_generator_is_deterministic() {
        let a = chaos_workflow(7);
        let b = chaos_workflow(7);
        let keys = |w: &SimWorkflow| {
            w.graphs[0]
                .tasks
                .iter()
                .map(|t| format!("{} <- {:?}", t.key, t.deps))
                .collect::<Vec<_>>()
        };
        assert_eq!(keys(&a), keys(&b));
        assert!(a.graphs[0].len() >= 6, "at least 3 layers × 2 tasks");
        let c = chaos_workflow(8);
        assert!(keys(&a) != keys(&c) || a.graphs[0].len() != c.graphs[0].len());
    }

    #[test]
    fn unperturbed_schedule_passes_all_oracles() {
        // A config that generates empty schedules: the oracles and the
        // determinism gate must hold on a fault-free run.
        let quiet = ChaosConfig {
            max_deaths: 0,
            death_prob: 0.0,
            max_fetch_faults: 0,
            max_heartbeat_drops: 0,
            max_mofka_stalls: 0,
            max_pfs_bursts: 0,
            ..Default::default()
        };
        let outcome = run_schedule(0xD7F, 0, &quiet);
        assert!(outcome.schedule.is_empty());
        assert!(outcome.passed(), "{}", outcome.describe());
        assert!(outcome.tasks_completed >= 6);
    }

    #[test]
    fn extended_campaign_with_proxy_plane_is_clean() {
        // extended fault stream (stragglers, hot spot, dangling proxies,
        // slow resolvers) with the proxy plane enabled: every schedule must
        // hold determinism, the scheduler model, exactly-once resolution,
        // and lineage completeness
        let report = run_campaign_extended(0xFEED, 3, &ChaosConfig::default());
        assert!(
            report.ok(),
            "{}",
            report.failures.iter().map(|f| f.describe()).collect::<Vec<_>>().join("\n")
        );
        assert_eq!(report.passed, 3);
    }

    #[test]
    fn extended_run_actually_emits_proxy_lifecycle() {
        // drive one run directly so we can inspect the drained stream
        let seed = schedule_seed(0xFEED, 0);
        let cfg = SimConfig {
            campaign_seed: seed,
            run: RunId(0),
            faults: ChaosConfig::default().generate_extended(seed),
            invariant_checks: true,
            proxy: extended_proxy_config(),
            ..Default::default()
        };
        let data = SimCluster::new(cfg).unwrap().run(chaos_workflow(seed)).unwrap();
        use dtf_core::events::ProxyAction;
        let n_pub = data.proxies.iter().filter(|p| p.action == ProxyAction::Published).count();
        let n_res = data.proxies.iter().filter(|p| p.action == ProxyAction::Resolved).count();
        assert!(n_pub > 0, "chaos workflow outputs above 1 MiB must publish");
        assert!(n_res > 0, "remote dependents must resolve");
        assert!(oracle::check_proxy_plane(&data).is_empty());
    }

    #[test]
    fn straggler_and_hotspot_fixed_seed_regression() {
        use dtf_core::fault::{HotspotFault, StragglerFault};
        use dtf_core::time::Time;
        // hand-written skew: worker 1 is both a placement hot spot (looks
        // 20x cheaper) and an 8x straggler for the whole run
        let faults = FaultSchedule {
            stragglers: vec![StragglerFault {
                worker: 1,
                factor: 8.0,
                start: Time::ZERO,
                stop: Time::from_secs_f64(1e6),
            }],
            hotspot: Some(HotspotFault { worker: 1, weight: 0.05 }),
            ..Default::default()
        };
        let cfg = SimConfig {
            campaign_seed: 0xBEEF,
            run: RunId(0),
            faults,
            invariant_checks: true,
            ..Default::default()
        };
        let a = SimCluster::new(cfg.clone()).unwrap().run(chaos_workflow(0xBEEF)).unwrap();
        let b = SimCluster::new(cfg).unwrap().run(chaos_workflow(0xBEEF)).unwrap();
        assert_eq!(transition_log(&a), transition_log(&b), "skewed runs must replay");
        assert!(oracle::check_run(&a).is_empty(), "{:?}", oracle::check_run(&a));
        // against the unperturbed baseline of the same seed, the skew must
        // actually bite: load concentrates and the critical path stretches
        let base_cfg = SimConfig { campaign_seed: 0xBEEF, run: RunId(0), ..Default::default() };
        let base = SimCluster::new(base_cfg).unwrap().run(chaos_workflow(0xBEEF)).unwrap();
        let max_share = |d: &RunData| {
            let mut per: std::collections::HashMap<_, usize> = Default::default();
            for t in &d.task_done {
                *per.entry(t.worker).or_default() += 1;
            }
            per.values().copied().max().unwrap_or(0)
        };
        assert!(
            max_share(&a) > max_share(&base),
            "hot spot must concentrate load: skewed {} vs baseline {}",
            max_share(&a),
            max_share(&base)
        );
        assert!(
            a.wall_time > base.wall_time,
            "an 8x straggler on the hot worker must stretch the run: {} vs {}",
            a.wall_time,
            base.wall_time
        );
    }

    #[test]
    fn perturbed_campaign_is_clean() {
        let report = run_campaign(0xC0FFEE, 4, &ChaosConfig::default());
        assert!(
            report.ok(),
            "{}",
            report.failures.iter().map(|f| f.describe()).collect::<Vec<_>>().join("\n")
        );
        assert_eq!(report.passed, 4);
    }
}
