//! DXT (Darshan eXtended Tracing) module: full per-operation traces.
//!
//! Two fidelity details from the paper are modelled explicitly:
//!
//! * **pthread ids** — vanilla DXT records process/rank only; the authors
//!   extended it to record the POSIX thread id of every operation
//!   (§III-E3) so traces join with Dask task records. The
//!   `record_thread_ids` switch selects vanilla vs extended behaviour;
//!   with it off, thread ids are scrubbed to 0 and task-level joins become
//!   impossible (the ablation demonstrates this).
//! * **bounded trace buffers** — Darshan caps per-process DXT memory; when
//!   the cap is hit, further records are silently dropped. The paper's
//!   footnote 9 reports ResNet152 I/O counts being incomplete for exactly
//!   this reason. [`DxtModule`] counts drops and flags truncation.

use serde::{Deserialize, Serialize};

use dtf_core::events::IoRecord;
use dtf_core::ids::ThreadId;

/// How the tracer reacts when its buffer budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OverflowPolicy {
    /// Darshan's behaviour: silently drop further records (footnote 9).
    #[default]
    Truncate,
    /// The paper's future-work idea of "dynamically adjusting our data
    /// capture in response to changes in workflow behavior": once the
    /// budget is hit, halve the sampling rate (keep every 2nd, then every
    /// 4th, ... record) so the trace stays time-representative instead of
    /// stopping dead, while never exceeding ~2x the budget.
    Adaptive,
}

/// DXT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DxtConfig {
    /// Maximum records buffered per process before the overflow policy
    /// applies. Darshan's default DXT memory of 2 MiB holds on the order
    /// of a few tens of thousands of trace segments.
    pub max_records: usize,
    /// The paper's extension: record pthread ids. Off = vanilla DXT.
    pub record_thread_ids: bool,
    /// What to do on buffer exhaustion.
    pub overflow: OverflowPolicy,
}

impl Default for DxtConfig {
    fn default() -> Self {
        Self { max_records: 32_768, record_thread_ids: true, overflow: OverflowPolicy::Truncate }
    }
}

impl DxtConfig {
    /// Vanilla Darshan DXT (no thread ids), for the ablation.
    pub fn vanilla() -> Self {
        Self { record_thread_ids: false, ..Self::default() }
    }

    /// A deliberately small buffer, reproducing the footnote-9 truncation.
    pub fn with_buffer(max_records: usize) -> Self {
        Self { max_records, ..Self::default() }
    }

    /// Adaptive downsampling instead of truncation (paper §VI future work).
    pub fn adaptive(max_records: usize) -> Self {
        Self { max_records, overflow: OverflowPolicy::Adaptive, ..Self::default() }
    }
}

/// The per-process DXT trace buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DxtModule {
    cfg: DxtConfig,
    records: Vec<IoRecord>,
    dropped: u64,
    /// Adaptive mode: keep every `2^level`-th record once over budget.
    sample_level: u32,
    /// Operations seen since entering the current sampling level.
    seen_at_level: u64,
}

impl DxtModule {
    pub fn new(cfg: DxtConfig) -> Self {
        Self { cfg, records: Vec::new(), dropped: 0, sample_level: 0, seen_at_level: 0 }
    }

    /// Trace one operation. Returns `false` if the record was dropped
    /// (truncation or adaptive downsampling).
    pub fn push(&mut self, mut rec: IoRecord) -> bool {
        // adaptive mode: incoming operations are sampled at the current
        // stride, so the tail of the run stays represented
        if self.sample_level > 0 {
            let stride = 1u64 << self.sample_level.min(63);
            let keep = self.seen_at_level.is_multiple_of(stride);
            self.seen_at_level += 1;
            if !keep {
                self.dropped += 1;
                return false;
            }
        }
        if self.records.len() >= self.cfg.max_records {
            match self.cfg.overflow {
                OverflowPolicy::Truncate => {
                    self.dropped += 1;
                    return false;
                }
                OverflowPolicy::Adaptive => {
                    // decimate: drop every other stored record and halve the
                    // future capture rate; memory never exceeds the budget
                    // and the kept trace stays uniform over time
                    let mut i = 0usize;
                    let before = self.records.len();
                    self.records.retain(|_| {
                        i += 1;
                        i % 2 == 1
                    });
                    self.dropped += (before - self.records.len()) as u64;
                    self.sample_level += 1;
                    self.seen_at_level = 1; // this record counts as sampled
                }
            }
        }
        if !self.cfg.record_thread_ids {
            rec.thread = ThreadId(0);
        }
        self.records.push(rec);
        true
    }

    /// Sampling stride currently in effect (1 = full fidelity).
    pub fn sampling_stride(&self) -> u64 {
        1u64 << self.sample_level.min(63)
    }

    pub fn records(&self) -> &[IoRecord] {
        &self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether the trace is incomplete (buffer overflowed at least once).
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }

    pub fn config(&self) -> DxtConfig {
        self.cfg
    }

    /// Consume the module, yielding its records (for log finalization).
    pub fn into_records(self) -> (Vec<IoRecord>, u64) {
        (self.records, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::events::IoOp;
    use dtf_core::ids::{FileId, NodeId, WorkerId};
    use dtf_core::time::Time;

    fn rec(tid: u64) -> IoRecord {
        IoRecord {
            host: NodeId(0),
            worker: WorkerId::new(NodeId(0), 0),
            thread: ThreadId(tid),
            file: FileId(0),
            op: IoOp::Read,
            offset: 0,
            size: 4096,
            start: Time(0),
            stop: Time(10),
        }
    }

    #[test]
    fn records_are_kept_in_push_order() {
        let mut dxt = DxtModule::new(DxtConfig::default());
        for i in 0..5 {
            assert!(dxt.push(rec(i)));
        }
        assert_eq!(dxt.len(), 5);
        let tids: Vec<u64> = dxt.records().iter().map(|r| r.thread.0).collect();
        assert_eq!(tids, vec![0, 1, 2, 3, 4]);
        assert!(!dxt.truncated());
    }

    #[test]
    fn buffer_overflow_truncates_and_counts_drops() {
        let mut dxt = DxtModule::new(DxtConfig::with_buffer(3));
        for i in 0..10 {
            dxt.push(rec(i));
        }
        assert_eq!(dxt.len(), 3);
        assert_eq!(dxt.dropped(), 7);
        assert!(dxt.truncated());
        // the first records survive (Darshan keeps the head of the trace)
        assert_eq!(dxt.records()[0].thread.0, 0);
        assert_eq!(dxt.records()[2].thread.0, 2);
    }

    #[test]
    fn vanilla_mode_scrubs_thread_ids() {
        let mut dxt = DxtModule::new(DxtConfig::vanilla());
        dxt.push(rec(0x7f00_1234));
        assert_eq!(dxt.records()[0].thread, ThreadId(0));
    }

    #[test]
    fn extended_mode_preserves_thread_ids() {
        let mut dxt = DxtModule::new(DxtConfig::default());
        dxt.push(rec(0x7f00_1234));
        assert_eq!(dxt.records()[0].thread, ThreadId(0x7f00_1234));
    }

    #[test]
    fn adaptive_mode_downsamples_instead_of_stopping() {
        let mut dxt = DxtModule::new(DxtConfig::adaptive(100));
        for i in 0..1000 {
            dxt.push(rec(i));
        }
        // memory never exceeds the budget; decimation keeps >= budget/2
        assert!(dxt.len() <= 100, "bounded by the budget: {}", dxt.len());
        assert!(dxt.len() >= 50, "decimation keeps at least half: {}", dxt.len());
        assert!(dxt.truncated(), "drops are still accounted");
        assert!(dxt.sampling_stride() > 1);
        // crucially, the *tail* of the workload is still represented
        let max_tid = dxt.records().iter().map(|r| r.thread.0).max().unwrap();
        assert!(max_tid > 900, "late operations sampled, not cut off: {max_tid}");
        // and coverage is roughly uniform: records exist in every quarter
        for q in 0..4u64 {
            assert!(
                dxt.records().iter().any(|r| r.thread.0 >= q * 250 && r.thread.0 < (q + 1) * 250),
                "quarter {q} unrepresented"
            );
        }
    }

    #[test]
    fn adaptive_mode_below_budget_is_lossless() {
        let mut dxt = DxtModule::new(DxtConfig::adaptive(100));
        for i in 0..100 {
            assert!(dxt.push(rec(i)));
        }
        assert_eq!(dxt.len(), 100);
        assert!(!dxt.truncated());
        assert_eq!(dxt.sampling_stride(), 1);
    }

    #[test]
    fn truncate_mode_loses_the_tail_adaptive_does_not() {
        let mut trunc = DxtModule::new(DxtConfig::with_buffer(50));
        let mut adapt = DxtModule::new(DxtConfig::adaptive(50));
        for i in 0..500 {
            trunc.push(rec(i));
            adapt.push(rec(i));
        }
        let t_max = trunc.records().iter().map(|r| r.thread.0).max().unwrap();
        let a_max = adapt.records().iter().map(|r| r.thread.0).max().unwrap();
        assert_eq!(t_max, 49, "truncation keeps only the head");
        assert!(a_max > 400, "adaptive covers the whole run");
    }

    #[test]
    fn into_records_reports_drops() {
        let mut dxt = DxtModule::new(DxtConfig::with_buffer(1));
        dxt.push(rec(1));
        dxt.push(rec(2));
        let (recs, dropped) = dxt.into_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(dropped, 1);
    }
}
