//! # dtf-darshan
//!
//! A Darshan-analog application-level I/O characterization layer
//! (paper §III-C, §III-E3):
//!
//! * [`counters`] — the POSIX counters module: per-file operation counts,
//!   byte totals, cumulative times, and access-size histograms, aggregated
//!   per worker process (what vanilla Darshan reports).
//! * [`dxt`] — the DXT (eXtended Tracing) module: a full per-operation
//!   trace, **extended with POSIX thread ids** the way the paper's authors
//!   extended it, so traces can be joined with task records. DXT buffers
//!   are bounded; overflow truncates the trace and flags it (the paper's
//!   footnote 9 observed exactly this on ResNet152).
//! * [`runtime`] — the per-process collection runtime that the instrumented
//!   I/O path feeds, and the instrumented-PFS wrapper used by workers.
//! * [`report`] — log-analysis helpers (the PyDarshan analog): per-file and
//!   per-process summaries, size histograms, time-binned activity.
//! * [`log`] — the binary log format written at process shutdown and the
//!   reader that parses it back (the PyDarshan-analog entry point).

pub mod counters;
pub mod dxt;
pub mod log;
pub mod report;
pub mod runtime;

pub use counters::{FileCounters, PosixCounters, SizeBucket};
pub use dxt::{DxtConfig, DxtModule};
pub use log::{DarshanLog, LogHeader};
pub use runtime::{DarshanRuntime, InstrumentedPfs};
