//! The per-process collection runtime and the instrumented PFS wrapper.
//!
//! Dask workers execute many tasks as threads of a single POSIX process
//! (paper §III-E3); Darshan instruments that process. [`DarshanRuntime`] is
//! the per-worker collector (counters + DXT under a lock, because task
//! threads record concurrently), and [`InstrumentedPfs`] is the preloaded
//! I/O path: every operation goes to the platform PFS for its cost and is
//! recorded with worker, thread id, and timestamps.

use parking_lot::Mutex;
use std::sync::Arc;

use rand::Rng;

use dtf_core::error::Result;
use dtf_core::events::{IoOp, IoRecord};
use dtf_core::ids::{FileId, ThreadId, WorkerId};
use dtf_core::time::{Dur, Time};
use dtf_platform::Pfs;

use crate::counters::PosixCounters;
use crate::dxt::{DxtConfig, DxtModule};
use crate::log::{DarshanLog, LogHeader};

/// Callback invoked for every recorded operation (the online-streaming
/// hook, paper §VI: "capturing Darshan records and pushing them to Mofka
/// at runtime to have a fully online system"). `FnMut` so the sink can own
/// mutable state outright — e.g. a batching Mofka producer — without an
/// inner lock; the runtime already serializes calls through its own mutex.
pub type IoSink = Box<dyn FnMut(&IoRecord) + Send>;

/// Per-worker-process Darshan collection state.
pub struct DarshanRuntime {
    worker: WorkerId,
    inner: Mutex<Modules>,
    sink: Mutex<Option<IoSink>>,
}

impl std::fmt::Debug for DarshanRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DarshanRuntime").field("worker", &self.worker).finish()
    }
}

#[derive(Debug)]
struct Modules {
    counters: PosixCounters,
    dxt: DxtModule,
    start: Option<Time>,
    end: Option<Time>,
}

impl DarshanRuntime {
    pub fn new(worker: WorkerId, dxt_cfg: DxtConfig) -> Self {
        Self {
            worker,
            inner: Mutex::new(Modules {
                counters: PosixCounters::new(),
                dxt: DxtModule::new(dxt_cfg),
                start: None,
                end: None,
            }),
            sink: Mutex::new(None),
        }
    }

    /// Attach an online sink: every subsequently recorded operation is also
    /// handed to `sink` immediately (bypassing DXT buffer limits), enabling
    /// in-situ streaming of I/O records.
    pub fn set_sink(&self, sink: IoSink) {
        *self.sink.lock() = Some(sink);
    }

    /// Detach (and drop) the online sink, flushing whatever the sink's
    /// destructor flushes (e.g. a buffered Mofka producer).
    pub fn clear_sink(&self) {
        *self.sink.lock() = None;
    }

    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    /// Record one I/O operation into both modules (and the online sink,
    /// when attached).
    pub fn record(&self, rec: IoRecord) {
        debug_assert_eq!(rec.worker, self.worker, "record from wrong process");
        if let Some(sink) = self.sink.lock().as_mut() {
            sink(&rec);
        }
        let mut m = self.inner.lock();
        m.start = Some(m.start.map_or(rec.start, |t| t.min(rec.start)));
        m.end = Some(m.end.map_or(rec.stop, |t| t.max(rec.stop)));
        m.counters.record(&rec);
        m.dxt.push(rec);
    }

    /// Number of traced (not dropped) DXT records so far.
    pub fn dxt_len(&self) -> usize {
        self.inner.lock().dxt.len()
    }

    /// Finalize at process shutdown: produce the log, consuming nothing
    /// (the runtime can keep collecting; real Darshan writes at exit, and
    /// the simulator finalizes once per run).
    pub fn finalize(&self, run: dtf_core::ids::RunId, job_id: u64) -> DarshanLog {
        let m = self.inner.lock();
        DarshanLog {
            header: LogHeader {
                run,
                job_id,
                worker: self.worker,
                hostname: self.worker.node.hostname(),
                start: m.start.unwrap_or(Time::ZERO),
                end: m.end.unwrap_or(Time::ZERO),
                dxt_truncated: m.dxt.truncated(),
                dxt_dropped: m.dxt.dropped(),
            },
            counters: m.counters.clone(),
            dxt: m.dxt.records().to_vec(),
        }
    }
}

/// The instrumented I/O path handed to task code: wraps the shared PFS,
/// charges each operation's cost, and records it under the calling
/// worker/thread. Cloneable; clones share the PFS and the per-worker
/// runtime.
#[derive(Debug, Clone)]
pub struct InstrumentedPfs {
    pfs: Arc<Mutex<Pfs>>,
    runtime: Arc<DarshanRuntime>,
}

impl InstrumentedPfs {
    pub fn new(pfs: Arc<Mutex<Pfs>>, runtime: Arc<DarshanRuntime>) -> Self {
        Self { pfs, runtime }
    }

    pub fn runtime(&self) -> &Arc<DarshanRuntime> {
        &self.runtime
    }

    pub fn pfs(&self) -> &Arc<Mutex<Pfs>> {
        &self.pfs
    }

    #[allow(clippy::too_many_arguments)] // one parameter per IoRecord field
    fn record(
        &self,
        thread: ThreadId,
        file: FileId,
        op: IoOp,
        offset: u64,
        size: u64,
        now: Time,
        dur: Dur,
    ) {
        let worker = self.runtime.worker();
        self.runtime.record(IoRecord {
            host: worker.node,
            worker,
            thread,
            file,
            op,
            offset,
            size,
            start: now,
            stop: now + dur,
        });
    }

    /// Open `file` at time `now` on behalf of `thread`; returns the cost.
    pub fn open<R: Rng + ?Sized>(
        &self,
        thread: ThreadId,
        file: FileId,
        now: Time,
        rng: &mut R,
    ) -> Result<Dur> {
        let dur = self.pfs.lock().open(file, rng)?;
        self.record(thread, file, IoOp::Open, 0, 0, now, dur);
        Ok(dur)
    }

    pub fn close<R: Rng + ?Sized>(
        &self,
        thread: ThreadId,
        file: FileId,
        now: Time,
        rng: &mut R,
    ) -> Result<Dur> {
        let dur = self.pfs.lock().close(file, rng)?;
        self.record(thread, file, IoOp::Close, 0, 0, now, dur);
        Ok(dur)
    }

    pub fn read<R: Rng + ?Sized>(
        &self,
        thread: ThreadId,
        file: FileId,
        offset: u64,
        len: u64,
        now: Time,
        rng: &mut R,
    ) -> Result<Dur> {
        let dur = self.pfs.lock().read(file, offset, len, now, rng)?;
        self.record(thread, file, IoOp::Read, offset, len, now, dur);
        Ok(dur)
    }

    pub fn write<R: Rng + ?Sized>(
        &self,
        thread: ThreadId,
        file: FileId,
        offset: u64,
        len: u64,
        now: Time,
        rng: &mut R,
    ) -> Result<Dur> {
        let dur = self.pfs.lock().write(file, offset, len, now, rng)?;
        self.record(thread, file, IoOp::Write, offset, len, now, dur);
        Ok(dur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::ids::{NodeId, RunId};
    use dtf_platform::{LoadProcess, PfsConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (InstrumentedPfs, Arc<DarshanRuntime>, FileId) {
        let mut pfs = Pfs::new(PfsConfig::default(), LoadProcess::none(1));
        let file = pfs.create("/data/x.parquet", 1 << 30, 4);
        let worker = WorkerId::new(NodeId(0), 0);
        let rt = Arc::new(DarshanRuntime::new(worker, DxtConfig::default()));
        (InstrumentedPfs::new(Arc::new(Mutex::new(pfs)), rt.clone()), rt, file)
    }

    #[test]
    fn operations_are_traced_with_thread_and_time() {
        let (io, rt, file) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        let t0 = Time::from_secs_f64(10.0);
        let tid = ThreadId(0xabc);
        io.open(tid, file, t0, &mut rng).unwrap();
        let dur = io.read(tid, file, 0, 4 << 20, t0, &mut rng).unwrap();
        assert!(dur > Dur::ZERO);
        let log = rt.finalize(RunId(0), 1);
        assert_eq!(log.dxt.len(), 2);
        let read = &log.dxt[1];
        assert_eq!(read.op, IoOp::Read);
        assert_eq!(read.thread, tid);
        assert_eq!(read.start, t0);
        assert_eq!(read.stop, t0 + dur);
        assert_eq!(read.size, 4 << 20);
        assert_eq!(log.counters.totals().reads, 1);
        assert!(!log.header.dxt_truncated);
    }

    #[test]
    fn read_error_is_not_traced() {
        let (io, rt, file) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(io.read(ThreadId(1), file, 0, u64::MAX / 2, Time::ZERO, &mut rng).is_err());
        assert_eq!(rt.dxt_len(), 0);
    }

    #[test]
    fn concurrent_task_threads_all_recorded() {
        let (io, rt, file) = setup();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let io = io.clone();
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t);
                    for i in 0..50 {
                        io.read(ThreadId(t), file, i * 4096, 4096, Time(i), &mut rng).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let log = rt.finalize(RunId(0), 1);
        assert_eq!(log.dxt.len(), 400);
        assert_eq!(log.counters.totals().reads, 400);
        // all 8 thread ids present
        let tids: std::collections::HashSet<u64> = log.dxt.iter().map(|r| r.thread.0).collect();
        assert_eq!(tids.len(), 8);
    }

    #[test]
    fn finalize_window_spans_all_ops() {
        let (io, rt, file) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        io.read(ThreadId(1), file, 0, 1024, Time::from_secs_f64(5.0), &mut rng).unwrap();
        io.read(ThreadId(1), file, 0, 1024, Time::from_secs_f64(2.0), &mut rng).unwrap();
        let log = rt.finalize(RunId(0), 1);
        assert_eq!(log.header.start, Time::from_secs_f64(2.0));
        assert!(log.header.end > Time::from_secs_f64(5.0));
    }
}
