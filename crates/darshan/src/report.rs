//! Log-analysis helpers, the PyDarshan analog (paper [17]): summaries
//! computed from parsed log sets — per-file tables, per-process tables,
//! access-size histograms, and time-binned activity for heatmap-style
//! views.

use serde::{Deserialize, Serialize};

use dtf_core::events::IoOp;
use dtf_core::ids::{FileId, WorkerId};
use dtf_core::time::Dur;

use crate::counters::SizeBucket;
use crate::log::LogSet;

/// Aggregate row of the per-file report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileReport {
    pub file: FileId,
    /// Processes (workers) that touched the file.
    pub processes: usize,
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub read_time: Dur,
    pub write_time: Dur,
}

/// Aggregate row of the per-process report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessReport {
    pub worker: WorkerId,
    pub files: usize,
    pub data_ops: u64,
    pub bytes: u64,
    pub io_time: Dur,
    pub dxt_truncated: bool,
}

/// Per-file summary across all processes, ordered by file id.
pub fn per_file(set: &LogSet) -> Vec<FileReport> {
    let mut map: std::collections::BTreeMap<FileId, FileReport> = Default::default();
    let mut touched: std::collections::HashMap<FileId, std::collections::HashSet<WorkerId>> =
        Default::default();
    for log in &set.logs {
        for (id, c) in log.counters.files() {
            let entry = map.entry(*id).or_insert_with(|| FileReport {
                file: *id,
                processes: 0,
                reads: 0,
                writes: 0,
                bytes_read: 0,
                bytes_written: 0,
                read_time: Dur::ZERO,
                write_time: Dur::ZERO,
            });
            entry.reads += c.reads;
            entry.writes += c.writes;
            entry.bytes_read += c.bytes_read;
            entry.bytes_written += c.bytes_written;
            entry.read_time += c.read_time;
            entry.write_time += c.write_time;
            touched.entry(*id).or_default().insert(log.header.worker);
        }
    }
    for (id, workers) in touched {
        if let Some(r) = map.get_mut(&id) {
            r.processes = workers.len();
        }
    }
    map.into_values().collect()
}

/// Per-process summary, in log order.
pub fn per_process(set: &LogSet) -> Vec<ProcessReport> {
    set.logs
        .iter()
        .map(|log| {
            let t = log.counters.totals();
            ProcessReport {
                worker: log.header.worker,
                files: log.counters.file_count(),
                data_ops: t.data_ops(),
                bytes: t.bytes_read + t.bytes_written,
                io_time: t.total_time(),
                dxt_truncated: log.header.dxt_truncated,
            }
        })
        .collect()
}

/// Access-size histogram folded across all processes (Darshan job-summary
/// style), indexed by [`SizeBucket::ALL`].
pub fn access_size_histogram(set: &LogSet) -> [u64; 10] {
    let mut out = [0u64; 10];
    for log in &set.logs {
        let t = log.counters.totals();
        for (slot, n) in out.iter_mut().zip(t.size_histogram) {
            *slot += n;
        }
    }
    out
}

/// Time-binned read/write operation counts from the DXT traces (the
/// heatmap view): `bins` windows over `[0, horizon_s]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityBins {
    pub horizon_s: f64,
    pub reads: Vec<u64>,
    pub writes: Vec<u64>,
}

pub fn activity(set: &LogSet, bins: usize, horizon_s: f64) -> ActivityBins {
    assert!(bins > 0 && horizon_s > 0.0);
    let mut out = ActivityBins { horizon_s, reads: vec![0; bins], writes: vec![0; bins] };
    let w = horizon_s / bins as f64;
    for r in set.all_records() {
        let idx = ((r.start.as_secs_f64() / w) as usize).min(bins - 1);
        match r.op {
            IoOp::Read => out.reads[idx] += 1,
            IoOp::Write => out.writes[idx] += 1,
            _ => {}
        }
    }
    out
}

/// Largest access-size bucket that actually occurred (for report text).
pub fn dominant_bucket(set: &LogSet) -> Option<SizeBucket> {
    let hist = access_size_histogram(set);
    let (idx, n) = hist.iter().enumerate().max_by_key(|(_, n)| **n)?;
    if *n == 0 {
        None
    } else {
        Some(SizeBucket::ALL[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::PosixCounters;
    use crate::log::{DarshanLog, LogHeader};
    use dtf_core::events::IoRecord;
    use dtf_core::ids::{NodeId, RunId, ThreadId};
    use dtf_core::time::Time;

    fn rec(worker: WorkerId, file: u64, op: IoOp, size: u64, start: f64) -> IoRecord {
        IoRecord {
            host: worker.node,
            worker,
            thread: ThreadId(1),
            file: FileId(file),
            op,
            offset: 0,
            size,
            start: Time::from_secs_f64(start),
            stop: Time::from_secs_f64(start + 0.01),
        }
    }

    fn set() -> LogSet {
        let mut logs = Vec::new();
        for w in 0..2u32 {
            let worker = WorkerId::new(NodeId(0), w);
            let mut counters = PosixCounters::new();
            let records = vec![
                rec(worker, 0, IoOp::Read, 4 << 20, 1.0 + w as f64),
                rec(worker, w as u64, IoOp::Write, 8 << 10, 50.0 + w as f64),
            ];
            for r in &records {
                counters.record(r);
            }
            logs.push(DarshanLog {
                header: LogHeader {
                    run: RunId(0),
                    job_id: 1,
                    worker,
                    hostname: worker.node.hostname(),
                    start: Time::ZERO,
                    end: Time::from_secs_f64(100.0),
                    dxt_truncated: w == 1,
                    dxt_dropped: w as u64,
                },
                counters,
                dxt: records,
            });
        }
        LogSet::new(logs)
    }

    #[test]
    fn per_file_merges_processes() {
        let reports = per_file(&set());
        // files 0 (both workers) and 1 (worker 1 only)
        assert_eq!(reports.len(), 2);
        let f0 = &reports[0];
        assert_eq!(f0.file, FileId(0));
        assert_eq!(f0.processes, 2);
        assert_eq!(f0.reads, 2);
        assert_eq!(f0.writes, 1, "worker 0 wrote into file 0");
        let f1 = &reports[1];
        assert_eq!(f1.processes, 1);
        assert_eq!(f1.writes, 1);
    }

    #[test]
    fn per_process_summary() {
        let reports = per_process(&set());
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].data_ops, 2);
        assert!(!reports[0].dxt_truncated);
        assert!(reports[1].dxt_truncated);
        assert!(reports[0].io_time > Dur::ZERO);
    }

    #[test]
    fn histogram_and_dominant_bucket() {
        let hist = access_size_histogram(&set());
        assert_eq!(hist.iter().sum::<u64>(), 4);
        // 2 ops in each of two buckets; ties resolve to the larger bucket
        let dom = dominant_bucket(&set()).unwrap();
        assert!(matches!(dom, SizeBucket::B1K_10K | SizeBucket::B4M_10M));
        assert_eq!(dominant_bucket(&LogSet::default()), None);
    }

    #[test]
    fn activity_bins_place_ops_in_time() {
        let a = activity(&set(), 10, 100.0);
        assert_eq!(a.reads.iter().sum::<u64>(), 2);
        assert_eq!(a.writes.iter().sum::<u64>(), 2);
        assert_eq!(a.reads[0], 2, "reads at t~1s land in the first bin");
        assert_eq!(a.writes[5], 2, "writes at t~50s land mid-run");
    }
}
