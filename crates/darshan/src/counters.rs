//! POSIX counters module: aggregate per-file statistics, Darshan-style.
//!
//! Darshan's POSIX module keeps, per (process, file), operation counts,
//! byte totals, cumulative operation time, extremal access sizes, and a
//! histogram of access sizes. These aggregates are cheap enough to keep for
//! every file (unlike full traces) and are what most Darshan analyses start
//! from.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use dtf_core::events::{IoOp, IoRecord};
use dtf_core::ids::FileId;
use dtf_core::time::{Dur, Time};

/// Darshan-style access-size buckets.
#[allow(non_camel_case_types)] // names mirror Darshan's POSIX_SIZE_*_* counters
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeBucket {
    B0_100,
    B100_1K,
    B1K_10K,
    B10K_100K,
    B100K_1M,
    B1M_4M,
    B4M_10M,
    B10M_100M,
    B100M_1G,
    B1GPlus,
}

impl SizeBucket {
    pub fn of(size: u64) -> Self {
        match size {
            0..=100 => SizeBucket::B0_100,
            101..=1_000 => SizeBucket::B100_1K,
            1_001..=10_000 => SizeBucket::B1K_10K,
            10_001..=100_000 => SizeBucket::B10K_100K,
            100_001..=1_000_000 => SizeBucket::B100K_1M,
            1_000_001..=4_000_000 => SizeBucket::B1M_4M,
            4_000_001..=10_000_000 => SizeBucket::B4M_10M,
            10_000_001..=100_000_000 => SizeBucket::B10M_100M,
            100_000_001..=1_000_000_000 => SizeBucket::B100M_1G,
            _ => SizeBucket::B1GPlus,
        }
    }

    pub const ALL: [SizeBucket; 10] = [
        SizeBucket::B0_100,
        SizeBucket::B100_1K,
        SizeBucket::B1K_10K,
        SizeBucket::B10K_100K,
        SizeBucket::B100K_1M,
        SizeBucket::B1M_4M,
        SizeBucket::B4M_10M,
        SizeBucket::B10M_100M,
        SizeBucket::B100M_1G,
        SizeBucket::B1GPlus,
    ];

    fn index(&self) -> usize {
        Self::ALL.iter().position(|b| b == self).expect("bucket in ALL")
    }
}

/// Aggregated counters for one file within one process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileCounters {
    pub opens: u64,
    pub closes: u64,
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Cumulative time in read operations.
    pub read_time: Dur,
    /// Cumulative time in write operations.
    pub write_time: Dur,
    /// Cumulative time in metadata operations (open/close).
    pub meta_time: Dur,
    pub max_read_size: u64,
    pub max_write_size: u64,
    /// Slowest single operation observed.
    pub slowest_op: Dur,
    /// Timestamp of the first operation on this file.
    pub first_op: Option<Time>,
    /// Timestamp of the last operation's completion.
    pub last_op: Option<Time>,
    /// Access-size histogram over reads and writes (index = `SizeBucket`).
    pub size_histogram: [u64; 10],
}

impl Default for FileCounters {
    fn default() -> Self {
        Self {
            opens: 0,
            closes: 0,
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
            read_time: Dur::ZERO,
            write_time: Dur::ZERO,
            meta_time: Dur::ZERO,
            max_read_size: 0,
            max_write_size: 0,
            slowest_op: Dur::ZERO,
            first_op: None,
            last_op: None,
            size_histogram: [0; 10],
        }
    }
}

impl FileCounters {
    fn update(&mut self, rec: &IoRecord) {
        let dur = rec.duration();
        match rec.op {
            IoOp::Open => {
                self.opens += 1;
                self.meta_time += dur;
            }
            IoOp::Close => {
                self.closes += 1;
                self.meta_time += dur;
            }
            IoOp::Read => {
                self.reads += 1;
                self.bytes_read += rec.size;
                self.read_time += dur;
                self.max_read_size = self.max_read_size.max(rec.size);
                self.size_histogram[SizeBucket::of(rec.size).index()] += 1;
            }
            IoOp::Write => {
                self.writes += 1;
                self.bytes_written += rec.size;
                self.write_time += dur;
                self.max_write_size = self.max_write_size.max(rec.size);
                self.size_histogram[SizeBucket::of(rec.size).index()] += 1;
            }
        }
        self.slowest_op = self.slowest_op.max(dur);
        self.first_op = Some(self.first_op.map_or(rec.start, |t| t.min(rec.start)));
        self.last_op = Some(self.last_op.map_or(rec.stop, |t| t.max(rec.stop)));
    }

    /// Total data operations (reads + writes) — the paper's Table I counts
    /// "I/O operations" at this granularity.
    pub fn data_ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total time spent in I/O on this file (read + write + metadata).
    pub fn total_time(&self) -> Dur {
        self.read_time + self.write_time + self.meta_time
    }
}

/// The per-process POSIX counters module.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PosixCounters {
    per_file: BTreeMap<FileId, FileCounters>,
}

impl PosixCounters {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, rec: &IoRecord) {
        self.per_file.entry(rec.file).or_default().update(rec);
    }

    pub fn file(&self, id: FileId) -> Option<&FileCounters> {
        self.per_file.get(&id)
    }

    pub fn files(&self) -> impl Iterator<Item = (&FileId, &FileCounters)> {
        self.per_file.iter()
    }

    pub fn file_count(&self) -> usize {
        self.per_file.len()
    }

    /// Process-wide totals, folded over files.
    pub fn totals(&self) -> FileCounters {
        let mut t = FileCounters::default();
        for c in self.per_file.values() {
            t.opens += c.opens;
            t.closes += c.closes;
            t.reads += c.reads;
            t.writes += c.writes;
            t.bytes_read += c.bytes_read;
            t.bytes_written += c.bytes_written;
            t.read_time += c.read_time;
            t.write_time += c.write_time;
            t.meta_time += c.meta_time;
            t.max_read_size = t.max_read_size.max(c.max_read_size);
            t.max_write_size = t.max_write_size.max(c.max_write_size);
            t.slowest_op = t.slowest_op.max(c.slowest_op);
            t.first_op = match (t.first_op, c.first_op) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            t.last_op = match (t.last_op, c.last_op) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            for i in 0..10 {
                t.size_histogram[i] += c.size_histogram[i];
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::ids::{NodeId, ThreadId, WorkerId};

    fn rec(file: u64, op: IoOp, size: u64, start: f64, stop: f64) -> IoRecord {
        IoRecord {
            host: NodeId(0),
            worker: WorkerId::new(NodeId(0), 0),
            thread: ThreadId(1),
            file: FileId(file),
            op,
            offset: 0,
            size,
            start: Time::from_secs_f64(start),
            stop: Time::from_secs_f64(stop),
        }
    }

    #[test]
    fn buckets_cover_ranges() {
        assert_eq!(SizeBucket::of(0), SizeBucket::B0_100);
        assert_eq!(SizeBucket::of(100), SizeBucket::B0_100);
        assert_eq!(SizeBucket::of(101), SizeBucket::B100_1K);
        assert_eq!(SizeBucket::of(4 * 1024 * 1024), SizeBucket::B4M_10M);
        assert_eq!(SizeBucket::of(2_000_000_000), SizeBucket::B1GPlus);
    }

    #[test]
    fn counters_accumulate_reads_and_writes() {
        let mut c = PosixCounters::new();
        c.record(&rec(1, IoOp::Open, 0, 0.0, 0.001));
        c.record(&rec(1, IoOp::Read, 4_000_000, 0.001, 0.101));
        c.record(&rec(1, IoOp::Read, 4_000_000, 0.101, 0.181));
        c.record(&rec(1, IoOp::Write, 1000, 0.2, 0.21));
        c.record(&rec(1, IoOp::Close, 0, 0.21, 0.2105));
        let f = c.file(FileId(1)).unwrap();
        assert_eq!((f.opens, f.closes, f.reads, f.writes), (1, 1, 2, 1));
        assert_eq!(f.bytes_read, 8_000_000);
        assert_eq!(f.bytes_written, 1000);
        assert_eq!(f.max_read_size, 4_000_000);
        assert_eq!(f.data_ops(), 3);
        assert!((f.read_time.as_secs_f64() - 0.18).abs() < 1e-9);
        assert_eq!(f.first_op, Some(Time::ZERO));
        assert_eq!(f.last_op, Some(Time::from_secs_f64(0.2105)));
        // histogram: two reads in 1M-4M, one write in 100-1K
        assert_eq!(f.size_histogram[SizeBucket::B1M_4M.index()], 2);
        assert_eq!(f.size_histogram[SizeBucket::B100_1K.index()], 1);
    }

    #[test]
    fn slowest_op_tracked() {
        let mut c = PosixCounters::new();
        c.record(&rec(1, IoOp::Read, 10, 0.0, 0.5));
        c.record(&rec(1, IoOp::Read, 10, 0.5, 0.6));
        assert!((c.file(FileId(1)).unwrap().slowest_op.as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn totals_fold_across_files() {
        let mut c = PosixCounters::new();
        c.record(&rec(1, IoOp::Read, 100, 0.0, 0.1));
        c.record(&rec(2, IoOp::Write, 200, 1.0, 1.2));
        assert_eq!(c.file_count(), 2);
        let t = c.totals();
        assert_eq!(t.reads, 1);
        assert_eq!(t.writes, 1);
        assert_eq!(t.bytes_read, 100);
        assert_eq!(t.bytes_written, 200);
        assert_eq!(t.first_op, Some(Time::ZERO));
        assert_eq!(t.last_op, Some(Time::from_secs_f64(1.2)));
    }

    #[test]
    fn empty_totals_are_zero() {
        let t = PosixCounters::new().totals();
        assert_eq!(t.data_ops(), 0);
        assert_eq!(t.first_op, None);
        assert_eq!(t.total_time(), Dur::ZERO);
    }

    #[test]
    fn serde_roundtrip() {
        let mut c = PosixCounters::new();
        c.record(&rec(1, IoOp::Read, 100, 0.0, 0.1));
        let s = serde_json::to_string(&c).unwrap();
        let back: PosixCounters = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
