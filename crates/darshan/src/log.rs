//! The Darshan-analog binary log format and its reader.
//!
//! Real Darshan writes one compressed binary log per process at shutdown;
//! PyDarshan parses it for analysis. Our format is a fixed header
//! (magic + version + payload length) followed by a JSON payload — simple,
//! versioned, and self-describing, which is what the analysis layer needs.
//! A [`LogSet`] merges the per-worker logs of one run, the unit the
//! analysis engine consumes.

use serde::{Deserialize, Serialize};

use dtf_core::error::{DtfError, Result};
use dtf_core::events::IoRecord;
use dtf_core::ids::{RunId, WorkerId};
use dtf_core::time::Time;

use crate::counters::PosixCounters;

const MAGIC: &[u8; 8] = b"DTFDARSH";
const VERSION: u32 = 1;

/// Log header: identity of the process and trace-completeness flags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHeader {
    pub run: RunId,
    pub job_id: u64,
    pub worker: WorkerId,
    pub hostname: String,
    pub start: Time,
    pub end: Time,
    /// Whether the DXT trace overflowed its buffer (footnote-9 condition).
    pub dxt_truncated: bool,
    pub dxt_dropped: u64,
}

/// One per-process log: header + POSIX counters + DXT trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DarshanLog {
    pub header: LogHeader,
    pub counters: PosixCounters,
    pub dxt: Vec<IoRecord>,
}

impl DarshanLog {
    /// Serialize to the binary log format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = serde_json::to_vec(self).expect("log serializes");
        let mut out = Vec::with_capacity(16 + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parse a binary log.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 20 {
            return Err(DtfError::Io("darshan log too short".into()));
        }
        if &bytes[0..8] != MAGIC {
            return Err(DtfError::Io("bad darshan log magic".into()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(DtfError::Io(format!("unsupported darshan log version {version}")));
        }
        let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        let payload = bytes
            .get(20..20 + len)
            .ok_or_else(|| DtfError::Io("truncated darshan log payload".into()))?;
        Ok(serde_json::from_slice(payload)?)
    }
}

/// All per-process logs of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LogSet {
    pub logs: Vec<DarshanLog>,
}

impl LogSet {
    pub fn new(logs: Vec<DarshanLog>) -> Self {
        Self { logs }
    }

    /// All DXT records of the run, across workers.
    pub fn all_records(&self) -> impl Iterator<Item = &IoRecord> {
        self.logs.iter().flat_map(|l| l.dxt.iter())
    }

    /// Total I/O operations (reads + writes) from the *counters* modules —
    /// complete even when DXT truncated.
    pub fn total_data_ops(&self) -> u64 {
        self.logs.iter().map(|l| l.counters.totals().data_ops()).sum()
    }

    /// Total traced I/O operations in DXT (may undercount if truncated —
    /// the footnote-9 effect is the gap between this and
    /// [`Self::total_data_ops`]).
    pub fn traced_data_ops(&self) -> u64 {
        self.all_records()
            .filter(|r| {
                matches!(r.op, dtf_core::events::IoOp::Read | dtf_core::events::IoOp::Write)
            })
            .count() as u64
    }

    /// Distinct files touched across the run.
    pub fn distinct_files(&self) -> usize {
        let mut files: std::collections::HashSet<dtf_core::ids::FileId> =
            std::collections::HashSet::new();
        for l in &self.logs {
            files.extend(l.counters.files().map(|(id, _)| *id));
        }
        files.len()
    }

    /// Total time spent in I/O, summed over workers (paper Fig. 3's I/O bar).
    pub fn total_io_time(&self) -> dtf_core::time::Dur {
        let mut total = dtf_core::time::Dur::ZERO;
        for l in &self.logs {
            total += l.counters.totals().total_time();
        }
        total
    }

    pub fn any_truncated(&self) -> bool {
        self.logs.iter().any(|l| l.header.dxt_truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::events::IoOp;
    use dtf_core::ids::{FileId, NodeId, ThreadId};

    fn sample_log(truncated: bool) -> DarshanLog {
        let worker = WorkerId::new(NodeId(0), 0);
        let mut counters = PosixCounters::new();
        let rec = IoRecord {
            host: NodeId(0),
            worker,
            thread: ThreadId(42),
            file: FileId(7),
            op: IoOp::Read,
            offset: 0,
            size: 4096,
            start: Time(100),
            stop: Time(200),
        };
        counters.record(&rec);
        DarshanLog {
            header: LogHeader {
                run: RunId(3),
                job_id: 1001,
                worker,
                hostname: "nid0000".into(),
                start: Time(100),
                end: Time(200),
                dxt_truncated: truncated,
                dxt_dropped: u64::from(truncated) * 5,
            },
            counters,
            dxt: vec![rec],
        }
    }

    #[test]
    fn binary_roundtrip() {
        let log = sample_log(false);
        let bytes = log.to_bytes();
        let back = DarshanLog::from_bytes(&bytes).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn bad_magic_and_truncation_rejected() {
        let log = sample_log(false);
        let mut bytes = log.to_bytes();
        assert!(DarshanLog::from_bytes(&bytes[..10]).is_err());
        assert!(DarshanLog::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        bytes[0] = b'X';
        assert!(DarshanLog::from_bytes(&bytes).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let log = sample_log(false);
        let mut bytes = log.to_bytes();
        bytes[8] = 99;
        assert!(DarshanLog::from_bytes(&bytes).is_err());
    }

    #[test]
    fn logset_aggregates() {
        let set = LogSet::new(vec![sample_log(false), sample_log(true)]);
        assert_eq!(set.total_data_ops(), 2);
        assert_eq!(set.traced_data_ops(), 2);
        assert_eq!(set.distinct_files(), 1);
        assert!(set.any_truncated());
        assert!(set.total_io_time() > dtf_core::time::Dur::ZERO);
    }

    #[test]
    fn truncation_gap_visible_between_counters_and_dxt() {
        // counters see the op, DXT dropped it
        let mut log = sample_log(true);
        log.dxt.clear();
        let set = LogSet::new(vec![log]);
        assert_eq!(set.total_data_ops(), 1);
        assert_eq!(set.traced_data_ops(), 0);
    }
}
