//! Micro-benchmarks of the individual substrates: event streaming
//! throughput, scheduler dispatch, PFS cost-model evaluation, and
//! DataFrame kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use dtf_core::table::Value;
use dtf_mofka::producer::{PartitionStrategy, ProducerConfig};
use dtf_mofka::{ConsumerConfig, Event, MofkaService, TopicConfig};
use dtf_perfrecup::frame::{Agg, DataFrame};
use dtf_platform::{LoadProcess, Pfs, PfsConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Mofka: produce+consume 10k metadata events at different batch sizes.
fn bench_mofka_throughput(c: &mut Criterion) {
    const N: usize = 10_000;
    let mut g = c.benchmark_group("mofka_throughput");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    for batch in [1usize, 64, 512] {
        g.bench_function(format!("produce_consume_batch_{batch}"), |b| {
            b.iter(|| {
                let svc = MofkaService::new();
                svc.create_topic("t", TopicConfig { partitions: 4 }).unwrap();
                let mut p = svc
                    .producer(
                        "t",
                        ProducerConfig {
                            batch_size: batch,
                            strategy: PartitionStrategy::RoundRobin,
                        },
                    )
                    .unwrap();
                for i in 0..N {
                    p.push(Event::meta_only(serde_json::json!({ "i": i }))).unwrap();
                }
                p.flush().unwrap();
                let mut consumer = svc
                    .consumer("t", ConsumerConfig { group: "g".into(), prefetch: 1024 })
                    .unwrap();
                black_box(consumer.drain_all().unwrap().len())
            })
        });
    }
    g.finish();
}

/// Scheduler: submit and drive a 2k-task embarrassingly parallel graph.
fn bench_scheduler_dispatch(c: &mut Criterion) {
    use dtf_core::ids::{GraphId, NodeId, ThreadId, WorkerId};
    use dtf_core::time::{Dur, Time};
    use dtf_wms::graph::{GraphBuilder, SimAction};
    use dtf_wms::plugins::PluginSet;
    use dtf_wms::scheduler::{Scheduler, SchedulerConfig};

    let mut g = c.benchmark_group("scheduler");
    g.throughput(Throughput::Elements(2000));
    g.sample_size(20);
    g.bench_function("dispatch_2k_tasks", |b| {
        b.iter(|| {
            let mut s = Scheduler::new(SchedulerConfig::default(), PluginSet::new());
            for w in 0..8 {
                s.add_worker(WorkerId::new(NodeId(w / 4), w % 4), 8);
            }
            let mut builder = GraphBuilder::new(GraphId(0));
            let tok = builder.new_token();
            for i in 0..2000 {
                builder.add_sim("t", tok, i, vec![], SimAction::compute_only(Dur(1), 64));
            }
            let graph = builder.build(&Default::default()).unwrap();
            let mut actions = s.submit_graph(graph, Time::ZERO).unwrap();
            let mut t = 0u64;
            loop {
                actions.clear();
                let mut progressed = false;
                for w in s.worker_ids() {
                    while let Some(key) = s.try_start(w, Time(t)) {
                        progressed = true;
                        t += 1;
                        actions.extend(s.task_finished(
                            &key,
                            w,
                            ThreadId(1),
                            Time(t - 1),
                            Time(t),
                            64,
                        ));
                    }
                }
                if !progressed {
                    break;
                }
            }
            black_box(s.unfinished())
        })
    });
    g.finish();
}

/// PFS cost model: 10k read-cost evaluations under interference.
fn bench_pfs_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("pfs_cost_model");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("reads_10k", |b| {
        let mut pfs = Pfs::new(PfsConfig::default(), LoadProcess::pfs_default(1));
        let id = pfs.create("/f", 1 << 30, 8);
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let mut total = dtf_core::time::Dur::ZERO;
            for i in 0..10_000u64 {
                total += pfs
                    .read(id, (i % 256) * 4096, 4096, dtf_core::time::Time(i * 1000), &mut rng)
                    .unwrap();
            }
            black_box(total)
        })
    });
    g.finish();
}

/// End-to-end typed provenance pipeline: WMS plugin push → Mofka topics →
/// RunData drain, the path the zero-copy metadata work targets.
fn bench_provenance_pipeline(c: &mut Criterion) {
    const TASKS: u32 = 500;
    // same per-task event mix as `dtf_bench::provenance_pipeline`
    let events = (TASKS * 8 + TASKS / 2 + TASKS / 64 + TASKS / 16) as u64;
    let mut g = c.benchmark_group("provenance_pipeline");
    g.throughput(Throughput::Elements(events));
    g.sample_size(20);
    g.bench_function(format!("push_drain_{TASKS}_tasks"), |b| {
        b.iter(|| {
            let report = dtf_bench::provenance_pipeline(TASKS, 1);
            black_box(report.events)
        })
    });
    g.finish();
}

/// DataFrame kernels over 50k rows.
fn bench_dataframe(c: &mut Criterion) {
    const N: usize = 50_000;
    let mut left = DataFrame::new(vec!["k".into(), "x".into()]);
    let mut right = DataFrame::new(vec!["k".into(), "y".into()]);
    for i in 0..N {
        left.push_row(vec![Value::U64((i % 1000) as u64), Value::F64(i as f64)]).unwrap();
        if i % 5 == 0 {
            right.push_row(vec![Value::U64((i % 1000) as u64), Value::F64(-(i as f64))]).unwrap();
        }
    }
    let mut g = c.benchmark_group("dataframe");
    g.sample_size(20);
    g.bench_function("group_by_50k", |b| {
        b.iter(|| black_box(left.group_by("k", "x", Agg::Mean).unwrap()))
    });
    g.bench_function("sort_50k", |b| b.iter(|| black_box(left.sort_by("x").unwrap())));
    g.bench_function("filter_50k", |b| {
        b.iter(|| black_box(left.filter("k", |v| v.as_u64() == Some(7)).unwrap()))
    });
    g.bench_function("join_50k_x_10k", |b| {
        b.iter(|| black_box(left.inner_join(&right, "k", "k").unwrap().n_rows()))
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_mofka_throughput,
    bench_scheduler_dispatch,
    bench_pfs_model,
    bench_provenance_pipeline,
    bench_dataframe
);
criterion_main!(micro);
