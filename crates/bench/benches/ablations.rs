//! Criterion benches for the design-choice ablations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dtf_core::ids::RunId;
use dtf_core::rngx::RunRng;
use dtf_darshan::DxtConfig;
use dtf_wms::sim::{SimCluster, SimConfig};
use dtf_workflows::Workload;

fn run_with(cfg: SimConfig, workload: Workload) -> dtf_wms::RunData {
    let rr = RunRng::new(cfg.campaign_seed, cfg.run);
    let workflow = workload.generate(&rr);
    SimCluster::new(cfg).expect("cluster").run(workflow).expect("run")
}

/// Work stealing on vs off: full ImageProcessing run under each policy.
fn bench_stealing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_stealing");
    g.sample_size(10);
    for enabled in [true, false] {
        g.bench_function(if enabled { "on" } else { "off" }, |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut cfg =
                    SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
                Workload::ImageProcessing.adjust(&mut cfg);
                cfg.scheduler.work_stealing = enabled;
                black_box(run_with(cfg, Workload::ImageProcessing))
            })
        });
    }
    g.finish();
}

/// Mofka producer batch size: cost of streaming a full run's telemetry.
fn bench_mofka_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_mofka_batch");
    g.sample_size(10);
    for batch in [1usize, 64, 1024] {
        g.bench_function(format!("batch_{batch}"), |b| {
            let mut seed = 100;
            b.iter(|| {
                seed += 1;
                let mut cfg =
                    SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
                Workload::ImageProcessing.adjust(&mut cfg);
                cfg.mofka_batch = batch;
                black_box(run_with(cfg, Workload::ImageProcessing))
            })
        });
    }
    g.finish();
}

/// DXT buffer limit: collection cost as the trace budget grows.
fn bench_dxt_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dxt_buffer");
    g.sample_size(10);
    for buf in [256usize, 4096, 32768] {
        g.bench_function(format!("buffer_{buf}"), |b| {
            let mut seed = 200;
            b.iter(|| {
                seed += 1;
                let mut cfg =
                    SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
                cfg.dxt = DxtConfig::with_buffer(buf);
                black_box(run_with(cfg, Workload::ResNet152))
            })
        });
    }
    g.finish();
}

criterion_group!(ablations, bench_stealing, bench_mofka_batch, bench_dxt_buffer);
criterion_main!(ablations);
