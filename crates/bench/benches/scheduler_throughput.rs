//! Scheduler-throughput microbenchmarks over very wide graphs.
//!
//! The hot paths under test are the ready/queued insertion, the
//! `(worker, dep)` fetch bookkeeping, and the worker lookup — the places
//! where a linear scan turns a 100k-task wide graph from milliseconds
//! into minutes. The raw drive loop exercises the scheduler alone (no
//! network model, no Mofka streaming); the `sim_wide` group pushes the
//! same shape through the full simulator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use dtf_core::ids::{GraphId, NodeId, RunId, ThreadId, WorkerId};
use dtf_core::time::{Dur, Time};
use dtf_wms::graph::{GraphBuilder, SimAction, TaskGraph};
use dtf_wms::plugins::PluginSet;
use dtf_wms::scheduler::{Scheduler, SchedulerConfig};
use dtf_wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};

const WORKERS: u32 = 32;
const THREADS: u32 = 4;

fn wide_graph(n: u32) -> TaskGraph {
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    for i in 0..n {
        b.add_sim("w", tok, i, vec![], SimAction::compute_only(Dur(1_000), 64));
    }
    b.build(&Default::default()).unwrap()
}

/// A wide fan-out whose results all feed one reducer per 64-task block:
/// exercises the fetch path (reducers depend on data spread across
/// workers), not just dispatch.
fn fan_in_graph(n: u32) -> TaskGraph {
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    let mut block = Vec::new();
    for i in 0..n {
        block.push(b.add_sim("m", tok, i, vec![], SimAction::compute_only(Dur(1_000), 1 << 20)));
        if block.len() == 64 {
            let deps = std::mem::take(&mut block);
            b.add_sim("r", tok, i, deps, SimAction::compute_only(Dur(1_000), 64));
        }
    }
    b.build(&Default::default()).unwrap()
}

/// Drive a graph to completion against the bare scheduler: instantaneous
/// fetches, one logical tick per task.
fn drive(graph: TaskGraph) -> usize {
    let mut s = Scheduler::new(SchedulerConfig::default(), PluginSet::new());
    for w in 0..WORKERS {
        s.add_worker(WorkerId::new(NodeId(w / 4), w % 4), THREADS);
    }
    let mut actions = s.submit_graph(graph, Time::ZERO).unwrap();
    let mut t = 0u64;
    loop {
        let mut progressed = false;
        while let Some(a) = actions.pop() {
            let dtf_wms::scheduler::Action::Fetch { dep, to, .. } = a;
            progressed = true;
            s.fetch_done(&dep, to, Time(t));
        }
        for w in s.worker_ids() {
            while let Some(key) = s.try_start(w, Time(t)) {
                progressed = true;
                t += 1;
                actions.extend(s.task_finished(&key, w, ThreadId(1), Time(t - 1), Time(t), 64));
            }
        }
        actions.extend(s.rebalance(Time(t)));
        if !progressed && actions.is_empty() {
            break;
        }
    }
    assert_eq!(s.unfinished(), 0, "benchmark graph must drain completely");
    s.start_order().len()
}

fn bench_raw_drive(c: &mut Criterion) {
    for n in [10_000u32, 30_000, 100_000] {
        let mut g = c.benchmark_group("scheduler_wide");
        g.throughput(Throughput::Elements(n as u64));
        g.sample_size(10);
        g.bench_function(format!("drive_{n}"), |b| b.iter(|| black_box(drive(wide_graph(n)))));
        g.finish();
    }
}

fn bench_fan_in(c: &mut Criterion) {
    let n = 20_000u32;
    let mut g = c.benchmark_group("scheduler_fan_in");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function(format!("drive_{n}"), |b| b.iter(|| black_box(drive(fan_in_graph(n)))));
    g.finish();
}

/// The same wide shape through the full simulator (network model, plugin
/// streaming, event queue) — the end-to-end number the paper's tables
/// depend on.
fn bench_sim_wide(c: &mut Criterion) {
    let n = 100_000u32;
    let mut g = c.benchmark_group("sim_wide");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function(format!("run_{n}"), |b| {
        b.iter(|| {
            let cfg = SimConfig {
                campaign_seed: 7,
                run: RunId(0),
                worker_nodes: 8,
                interference: false,
                ..Default::default()
            };
            let wf = SimWorkflow {
                name: "wide-bench".into(),
                graphs: vec![wide_graph(n)],
                submit: SubmitPolicy::AllAtOnce,
                startup: Dur::ZERO,
                inter_graph: Dur::ZERO,
                shutdown: Dur::ZERO,
                dataset: vec![],
            };
            let data = SimCluster::new(cfg).expect("cluster").run(wf).expect("run");
            black_box(data.task_done.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_raw_drive, bench_fan_in, bench_sim_wide);
criterion_main!(benches);
