//! Criterion benches regenerating each paper table/figure.
//!
//! One group per experiment. The generation benches (`table1_*`) measure a
//! full single run of each workload — simulation, Mofka streaming, Darshan
//! collection, and fusion. The analysis benches (`fig*`) measure the
//! analysis kernels over a precomputed run, i.e. the PERFRECUP side.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dtf_core::ids::RunId;
use dtf_core::rngx::RunRng;
use dtf_perfrecup::phases::{PhaseBreakdown, PhaseSample};
use dtf_perfrecup::{comm_scatter, io_timeline, lineage, parallel_coords, warnings_dist, RunViews};
use dtf_wms::sim::{SimCluster, SimConfig};
use dtf_wms::RunData;
use dtf_workflows::Workload;

fn run_once(workload: Workload, seed: u64) -> RunData {
    let rr = RunRng::new(seed, RunId(0));
    let workflow = workload.generate(&rr);
    let mut cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
    workload.adjust(&mut cfg);
    SimCluster::new(cfg).expect("cluster").run(workflow).expect("run")
}

/// Table I: one full characterization run per workload.
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_run_generation");
    g.sample_size(10);
    for w in Workload::ALL {
        g.bench_function(w.name(), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_once(w, seed))
            })
        });
    }
    g.finish();
}

/// Fig. 3: phase aggregation across run summaries.
fn bench_fig3(c: &mut Criterion) {
    let samples: Vec<PhaseSample> = (0..50)
        .map(|i| PhaseSample {
            wall_s: 1000.0 + i as f64,
            io_s: 5.0 + (i % 7) as f64,
            comm_s: 60.0,
            compute_s: 40_000.0,
        })
        .collect();
    c.bench_function("fig3_phase_breakdown", |b| {
        b.iter(|| black_box(PhaseBreakdown::from_samples(black_box(&samples), 64.0)))
    });
}

/// Fig. 4: per-thread I/O segments + burst-phase detection.
fn bench_fig4(c: &mut Criterion) {
    let data = run_once(Workload::ImageProcessing, 42);
    let mut g = c.benchmark_group("fig4_io_timeline");
    g.sample_size(20);
    g.bench_function("segments", |b| b.iter(|| black_box(io_timeline::segments(&data))));
    g.bench_function("phase_detection", |b| {
        b.iter(|| black_box(io_timeline::detect_phases(&data, 2.0)))
    });
    g.finish();
}

/// Fig. 5: communication scatter summary.
fn bench_fig5(c: &mut Criterion) {
    let data = run_once(Workload::ResNet152, 42);
    c.bench_function("fig5_comm_scatter", |b| {
        b.iter(|| black_box(comm_scatter::summary(&data, 30.0)))
    });
}

/// Fig. 6: parallel-coordinates summary over 10k tasks.
fn bench_fig6(c: &mut Criterion) {
    let data = run_once(Workload::Xgboost, 42);
    let mut g = c.benchmark_group("fig6_parallel_coords");
    g.sample_size(20);
    g.bench_function("summary", |b| b.iter(|| black_box(parallel_coords::summary(&data))));
    g.finish();
}

/// Fig. 7: warning distribution + long-task correlation.
fn bench_fig7(c: &mut Criterion) {
    let data = run_once(Workload::Xgboost, 42);
    c.bench_function("fig7_warning_report", |b| {
        b.iter(|| black_box(warnings_dist::report(&data, 12, 500.0, 60.0)))
    });
}

/// Fig. 8: lineage construction (single task and the fused I/O join).
fn bench_fig8(c: &mut Criterion) {
    let data = run_once(Workload::Xgboost, 42);
    let key = data
        .meta
        .iter()
        .find(|m| m.key.prefix == "getitem__get_categories")
        .map(|m| m.key.clone())
        .expect("key exists");
    let mut g = c.benchmark_group("fig8_lineage");
    g.sample_size(20);
    g.bench_function("single_task", |b| b.iter(|| black_box(lineage::build(&data, &key).unwrap())));
    g.bench_function("task_io_join", |b| {
        let views = RunViews::new(&data);
        b.iter(|| black_box(views.task_io()))
    });
    g.finish();
}

criterion_group!(
    experiments,
    bench_table1,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8
);
criterion_main!(experiments);
