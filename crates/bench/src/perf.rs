//! Machine-readable performance artifact: `BENCH_repro.json`.
//!
//! One `repro bench` invocation measures the numbers the perf trajectory
//! tracks across PRs — per-workflow campaign wall time (sequential vs the
//! parallel pool), runs/sec, the scheduler-throughput number, the
//! DataFrame kernel throughputs, and peak RSS where the OS exposes it —
//! and serializes them as one JSON document.

use std::time::Instant;

use serde::Serialize;

use dtf_core::ids::{GraphId, NodeId, ThreadId, WorkerId};
use dtf_core::table::Value;
use dtf_core::time::{Dur, Time};
use dtf_perfrecup::frame::{Agg, DataFrame};
use dtf_wms::graph::{GraphBuilder, SimAction, TaskGraph};
use dtf_wms::plugins::PluginSet;
use dtf_wms::scheduler::{Scheduler, SchedulerConfig};
use dtf_workflows::{Campaign, Workload};

/// The `BENCH_repro.json` document. Field names are the public contract:
/// CI uploads this artifact and cross-PR tooling diffs it.
#[derive(Debug, Serialize)]
pub struct BenchReport {
    pub schema: u32,
    pub seed: u64,
    /// Logical cores the measurement ran on (speedups are bounded by it).
    pub cores: usize,
    /// Pool size used for the parallel campaign measurements.
    pub parallel_jobs: usize,
    pub scheduler_throughput: SchedulerThroughput,
    pub frame_kernels: FrameKernels,
    /// Events/s through plugin → producer → topic → `RunData` ingest.
    pub provenance_pipeline: crate::provenance::ProvenancePipeline,
    /// dtf-store append throughput per flush policy, recovery-scan rate,
    /// codec rows, and the scale rows — snapshot-bounded recovery and
    /// indexed reads (schema 6).
    pub storage: crate::storage::StorageBench,
    /// Many-client aggregate throughput through the sharded real-time
    /// data plane (schema 5).
    pub stress: crate::stress::StressBench,
    /// Incremental live-view maintenance vs full recompute, with the
    /// live/post-hoc equivalence verdict (schema 7).
    pub views: crate::liveviews::ViewBench,
    /// Out-of-band proxy-plane ablation: scheduler-mediated byte reduction
    /// on a data-heavy workflow plus resolver fast-path latency (schema 8).
    pub proxy: crate::proxy::ProxyBench,
    pub campaigns: Vec<CampaignBench>,
    /// Peak resident set size in bytes (`VmHWM`), `None` where unexposed.
    pub peak_rss_bytes: Option<u64>,
}

#[derive(Debug, Serialize)]
pub struct SchedulerThroughput {
    pub tasks: u64,
    pub wall_s: f64,
    pub tasks_per_s: f64,
}

#[derive(Debug, Serialize)]
pub struct FrameKernels {
    pub rows: u64,
    pub inner_join_s: f64,
    pub inner_join_rows_per_s: f64,
    pub group_by_s: f64,
    pub group_by_rows_per_s: f64,
    pub sort_by_s: f64,
}

#[derive(Debug, Serialize)]
pub struct CampaignBench {
    pub workload: String,
    pub runs: u32,
    pub sequential_wall_s: f64,
    pub parallel_wall_s: f64,
    pub speedup: f64,
    /// Runs per second of real time under the parallel pool.
    pub runs_per_s: f64,
    /// Mean *simulated* wall time per run (the paper-facing quantity;
    /// must be identical under both pool sizes).
    pub mean_sim_wall_s: f64,
}

/// Drive a wide graph to completion against the bare scheduler —
/// the same loop as the `scheduler_throughput` Criterion bench, timed
/// with a single wall clock so the number lands in the artifact.
fn drive_wide(n: u32) -> f64 {
    const WORKERS: u32 = 32;
    const THREADS: u32 = 4;
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    for i in 0..n {
        b.add_sim("w", tok, i, vec![], SimAction::compute_only(Dur(1_000), 64));
    }
    let graph: TaskGraph = b.build(&Default::default()).unwrap();
    let t0 = Instant::now();
    let mut s = Scheduler::new(SchedulerConfig::default(), PluginSet::new());
    for w in 0..WORKERS {
        s.add_worker(WorkerId::new(NodeId(w / 4), w % 4), THREADS);
    }
    let mut actions = s.submit_graph(graph, Time::ZERO).unwrap();
    let mut t = 0u64;
    loop {
        let mut progressed = false;
        while let Some(a) = actions.pop() {
            let dtf_wms::scheduler::Action::Fetch { dep, to, .. } = a;
            progressed = true;
            s.fetch_done(&dep, to, Time(t));
        }
        for w in s.worker_ids() {
            while let Some(key) = s.try_start(w, Time(t)) {
                progressed = true;
                t += 1;
                actions.extend(s.task_finished(&key, w, ThreadId(1), Time(t - 1), Time(t), 64));
            }
        }
        actions.extend(s.rebalance(Time(t)));
        if !progressed && actions.is_empty() {
            break;
        }
    }
    assert_eq!(s.unfinished(), 0, "benchmark graph must drain completely");
    t0.elapsed().as_secs_f64()
}

/// The DataFrame kernel measurement the ISSUE's ≥2× acceptance reads:
/// `inner_join` and `group_by` over a 100k-row frame.
fn frame_kernels(rows: u64) -> FrameKernels {
    let mut left = DataFrame::new(vec!["k".into(), "x".into()]);
    let mut right = DataFrame::new(vec!["k".into(), "y".into()]);
    left.reserve(rows as usize);
    for i in 0..rows {
        left.push_row(vec![Value::U64(i % 4096), Value::F64(i as f64)]).unwrap();
        if i % 5 == 0 {
            right.push_row(vec![Value::U64(i % 4096), Value::F64(-(i as f64))]).unwrap();
        }
    }
    let reps = 5u32;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(left.inner_join(&right, "k", "k").unwrap().n_rows());
    }
    let inner_join_s = t0.elapsed().as_secs_f64() / reps as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(left.group_by("k", "x", Agg::Mean).unwrap().n_rows());
    }
    let group_by_s = t0.elapsed().as_secs_f64() / reps as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(left.sort_by("x").unwrap().n_rows());
    }
    let sort_by_s = t0.elapsed().as_secs_f64() / reps as f64;
    FrameKernels {
        rows,
        inner_join_s,
        inner_join_rows_per_s: rows as f64 / inner_join_s.max(1e-12),
        group_by_s,
        group_by_rows_per_s: rows as f64 / group_by_s.max(1e-12),
        sort_by_s,
    }
}

/// Peak resident set size (`VmHWM`) in bytes, Linux only.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn campaign_bench(workload: Workload, seed: u64, runs: u32, jobs: usize) -> CampaignBench {
    let mut base = Campaign::paper(workload, seed).with_jobs(1);
    base.runs = runs;
    base.keep_first = false;
    let t0 = Instant::now();
    let seq = base.execute().expect("sequential campaign");
    let sequential_wall_s = t0.elapsed().as_secs_f64();
    let par_campaign = base.clone().with_jobs(jobs);
    let t0 = Instant::now();
    let par = par_campaign.execute().expect("parallel campaign");
    let parallel_wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        serde_json::to_string(&seq.summaries).unwrap(),
        serde_json::to_string(&par.summaries).unwrap(),
        "parallel campaign output must be byte-identical to sequential"
    );
    CampaignBench {
        workload: workload.name().to_string(),
        runs,
        sequential_wall_s,
        parallel_wall_s,
        speedup: sequential_wall_s / parallel_wall_s.max(1e-12),
        runs_per_s: runs as f64 / parallel_wall_s.max(1e-12),
        mean_sim_wall_s: par.mean_wall().as_secs_f64(),
    }
}

/// Run every measurement and build the report. `jobs` defaults to
/// `DTF_JOBS`, then `available_parallelism`.
pub fn bench_report(seed: u64, runs: u32, jobs: Option<usize>) -> BenchReport {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let parallel_jobs = jobs
        .or_else(|| std::env::var("DTF_JOBS").ok().and_then(|s| s.parse().ok()))
        .filter(|&n| n >= 1)
        .unwrap_or(cores);
    const WIDE: u32 = 100_000;
    let wall_s = drive_wide(WIDE);
    let scheduler_throughput = SchedulerThroughput {
        tasks: WIDE as u64,
        wall_s,
        tasks_per_s: WIDE as f64 / wall_s.max(1e-12),
    };
    let frame = frame_kernels(100_000);
    let provenance = crate::provenance::provenance_pipeline(2_000, 3);
    let storage = crate::storage::storage_bench();
    let stress = crate::stress::stress_bench(&crate::stress::StressConfig::full());
    assert!(
        stress.violations.is_empty(),
        "stress run reported delivery violations: {:?}",
        stress.violations
    );
    let views = crate::liveviews::view_bench();
    assert!(views.equivalent, "live views diverged from the post-hoc kernels");
    let proxy = crate::proxy::proxy_bench();
    assert!(proxy.identical, "proxy plane perturbed the schedule");
    let campaigns =
        Workload::ALL.iter().map(|&w| campaign_bench(w, seed, runs, parallel_jobs)).collect();
    BenchReport {
        schema: 8,
        seed,
        cores,
        parallel_jobs,
        scheduler_throughput,
        frame_kernels: frame,
        provenance_pipeline: provenance,
        storage,
        stress: stress.bench,
        views,
        proxy,
        campaigns,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Render the report as the `BENCH_repro.json` document plus a short
/// human-readable summary for the console.
pub fn bench_artifact(seed: u64, runs: u32, jobs: Option<usize>) -> (String, String) {
    let report = bench_report(seed, runs, jobs);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let mut text = String::new();
    use std::fmt::Write as _;
    writeln!(
        text,
        "scheduler throughput: {:.0} tasks/s ({} tasks in {:.2}s)",
        report.scheduler_throughput.tasks_per_s,
        report.scheduler_throughput.tasks,
        report.scheduler_throughput.wall_s
    )
    .unwrap();
    writeln!(
        text,
        "frame kernels ({} rows): join {:.1}ms, group_by {:.1}ms, sort {:.1}ms",
        report.frame_kernels.rows,
        report.frame_kernels.inner_join_s * 1e3,
        report.frame_kernels.group_by_s * 1e3,
        report.frame_kernels.sort_by_s * 1e3
    )
    .unwrap();
    writeln!(
        text,
        "provenance pipeline: {:.0} events/s ({} events in {:.2}s)",
        report.provenance_pipeline.events_per_s,
        report.provenance_pipeline.events,
        report.provenance_pipeline.wall_s
    )
    .unwrap();
    for a in &report.storage.append {
        writeln!(
            text,
            "store append [{}]: {:.0} records/s ({:.1} MiB/s, {} x {}B)",
            a.policy,
            a.records_per_s,
            a.bytes_per_s / (1024.0 * 1024.0),
            a.records,
            report.storage.record_bytes
        )
        .unwrap();
    }
    writeln!(
        text,
        "store recovery: {:.0} records/s ({} records, {} segments in {:.3}s)",
        report.storage.recovery.records_per_s,
        report.storage.recovery.records,
        report.storage.recovery.segments,
        report.storage.recovery.wall_s
    )
    .unwrap();
    writeln!(
        text,
        "store codec: encode {:.0} MiB/s, decode {:.0} MiB/s, replay binary {:.1}ms vs json {:.1}ms",
        report.storage.codec.encode_mib_s,
        report.storage.codec.decode_mib_s,
        report.storage.codec.replay_binary_ms,
        report.storage.codec.replay_json_ms
    )
    .unwrap();
    writeln!(
        text,
        "stress plane: {:.2}M events/s aggregate ({} producers x {} events, {} groups, \
         {:.2}s wall)",
        report.stress.aggregate_events_per_s / 1e6,
        report.stress.producers,
        report.stress.events_per_producer,
        report.stress.consumer_groups,
        report.stress.wall_s
    )
    .unwrap();
    writeln!(
        text,
        "live views: Δ-refresh {:.2}ms vs recompute {:.1}ms ({:.0}x, {} events, \
         equivalent: {})",
        report.views.delta_refresh_ms,
        report.views.recompute_ms,
        report.views.speedup,
        report.views.events,
        report.views.equivalent
    )
    .unwrap();
    writeln!(
        text,
        "proxy plane: in-band {:.1} MiB -> {:.3} MiB ({:.0}x reduction, {} transfers, \
         resolve {:.0}ns, identical: {})",
        report.proxy.in_band_bytes_off as f64 / (1024.0 * 1024.0),
        report.proxy.in_band_bytes_on as f64 / (1024.0 * 1024.0),
        report.proxy.scheduler_bytes_reduction,
        report.proxy.transfers,
        report.proxy.resolve_ns,
        report.proxy.identical
    )
    .unwrap();
    for c in &report.campaigns {
        writeln!(
            text,
            "{}: {} runs, sequential {:.2}s, parallel({} jobs) {:.2}s, speedup {:.2}x ({} cores)",
            c.workload,
            c.runs,
            c.sequential_wall_s,
            report.parallel_jobs,
            c.parallel_wall_s,
            c.speedup,
            report.cores
        )
        .unwrap();
    }
    if let Some(rss) = report.peak_rss_bytes {
        writeln!(text, "peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0)).unwrap();
    }
    (json, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_probe_works_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0);
        }
    }

    #[test]
    fn frame_kernel_measurement_is_sane() {
        let k = frame_kernels(10_000);
        assert!(k.inner_join_rows_per_s > 0.0);
        assert!(k.group_by_rows_per_s > 0.0);
    }
}
