//! # dtf-bench
//!
//! The experiment harness: library functions that regenerate every table
//! and figure of the paper's evaluation (plus the ablations DESIGN.md
//! calls out), shared between the `repro` binary and the Criterion
//! benches. Each function returns a plain-text report whose rows mirror
//! what the paper reports, with the paper's own numbers printed alongside
//! for comparison.

pub mod ablations;
pub mod experiments;
pub mod liveviews;
pub mod perf;
pub mod provenance;
pub mod proxy;
pub mod storage;
pub mod stress;

pub use experiments::{fig3, fig4, fig5, fig6, fig7, fig8, table1};
pub use liveviews::{view_bench, ViewBench};
pub use perf::{bench_artifact, bench_report, BenchReport};
pub use provenance::{provenance_pipeline, ProvenancePipeline};
pub use proxy::{proxy_bench, ProxyBench};
pub use storage::{storage_bench, StorageBench};
pub use stress::{stress_bench, StressBench, StressConfig, StressOutcome};
