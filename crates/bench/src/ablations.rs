//! Ablations of the design choices DESIGN.md calls out.

use std::fmt::Write as _;

use dtf_core::ids::RunId;
use dtf_core::rngx::RunRng;
use dtf_darshan::DxtConfig;
use dtf_perfrecup::schedule_order;
use dtf_wms::sim::{SimCluster, SimConfig};
use dtf_workflows::{Campaign, Workload};

/// A deliberately imbalanced workflow: per-worker root datasets of very
/// different fan-out, with children pinned to their root's worker by a
/// huge (expensive-to-move) dependency. This is the regime in which Dask's
/// work stealing engages: locality concentrates ready backlogs on a few
/// workers while others idle (paper §V calls stealing out as a runtime
/// decision with data-movement costs).
fn skewed_workflow() -> dtf_wms::sim::SimWorkflow {
    use dtf_core::ids::GraphId;
    use dtf_core::time::Dur;
    use dtf_wms::{GraphBuilder, SimAction};
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    for root_idx in 0..8u32 {
        let root = b.add_sim(
            "shard",
            tok,
            root_idx,
            vec![],
            // 8 GB shard: children stay put unless stolen
            SimAction::compute_only(Dur::from_secs_f64(1.0), 8 << 30),
        );
        // skewed fan-out: shard k has 12k children
        for c in 0..(12 * root_idx) {
            b.add_sim(
                "analyze",
                tok + 1 + root_idx,
                c,
                vec![root.clone()],
                SimAction::compute_only(Dur::from_secs_f64(2.0), 1 << 20),
            );
        }
    }
    dtf_wms::sim::SimWorkflow {
        name: "skewed".into(),
        graphs: vec![b.build(&Default::default()).expect("valid graph")],
        submit: dtf_wms::sim::SubmitPolicy::AllAtOnce,
        startup: Dur::from_secs_f64(1.0),
        inter_graph: Dur::ZERO,
        shutdown: Dur::ZERO,
        dataset: vec![],
    }
}

/// Work stealing on/off (paper §V: stealing is a runtime decision that may
/// hurt via data movement).
pub fn stealing(seed: u64, runs: u32) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "ABLATION: work stealing on/off (skewed shard-analysis workflow, {runs} runs each)"
    )
    .unwrap();
    writeln!(out, "  (eager dispatch; per-shard fan-out skew pins uneven backlogs to workers)")
        .unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    for enabled in [true, false] {
        let mut walls = Vec::new();
        let mut comms = Vec::new();
        let mut steals = 0u64;
        for run in 0..runs {
            let mut cfg = SimConfig { campaign_seed: seed, run: RunId(run), ..Default::default() };
            cfg.scheduler.queue_factor = 1e9; // eager dispatch
            cfg.scheduler.work_stealing = enabled;
            let data = SimCluster::new(cfg).expect("cluster").run(skewed_workflow()).expect("run");
            walls.push(data.wall_time.as_secs_f64());
            comms.push(data.comm_count() as f64);
            steals += data.steals;
        }
        let w = dtf_core::stats::Summary::of(&walls);
        let cm = dtf_core::stats::Summary::of(&comms);
        writeln!(
            out,
            "  stealing={:<5} wall {:.1}s +/- {:.1}s   comms {:.0} +/- {:.0}   steals/run {:.0}",
            enabled,
            w.mean,
            w.std,
            cm.mean,
            cm.std,
            steals as f64 / runs as f64
        )
        .unwrap();
    }
    writeln!(out, "  Expectation: stealing trades extra data movement (more comms, each").unwrap();
    writeln!(out, "  dragging an 8 GB shard) for load balance (shorter wall time) — the").unwrap();
    writeln!(out, "  trade-off the paper flags as a variability source.").unwrap();
    out
}

/// DXT buffer-size sweep: reproduces footnote 9 (ResNet152 trace
/// truncation) and shows when the trace becomes complete.
pub fn dxt_buffer(seed: u64) -> String {
    let mut out = String::new();
    writeln!(out, "ABLATION: Darshan DXT buffer limit (ResNet152, 1 run each)").unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    writeln!(
        out,
        "{:>14} {:>12} {:>12} {:>11}",
        "buffer/worker", "traced ops", "actual ops", "truncated"
    )
    .unwrap();
    for buf in [256usize, 820, 2048, 8192, 32768] {
        let mut cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
        cfg.dxt = DxtConfig::with_buffer(buf);
        let rr = RunRng::new(seed, RunId(0));
        let wf = Workload::ResNet152.generate(&rr);
        let data = SimCluster::new(cfg).expect("cluster").run(wf).expect("run");
        writeln!(
            out,
            "{:>14} {:>12} {:>12} {:>11}",
            buf,
            data.io_ops(),
            data.io_ops_complete(),
            data.darshan.any_truncated()
        )
        .unwrap();
    }
    writeln!(out, "  Paper footnote 9: default buffers truncate the ResNet152 trace").unwrap();
    writeln!(out, "  (2057-2302 of 3929 reads); larger buffers recover the full trace.").unwrap();
    out
}

/// Vanilla vs extended DXT: the pthread-id extension is what makes the
/// task<->I/O join possible at all.
pub fn dxt_thread_ids(seed: u64) -> String {
    let mut out = String::new();
    writeln!(out, "ABLATION: DXT pthread-id extension (ImageProcessing, 1 run each)").unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    for (label, dxt) in
        [("vanilla DXT", DxtConfig::vanilla()), ("extended DXT", DxtConfig::default())]
    {
        let mut cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
        cfg.dxt = dxt;
        let rr = RunRng::new(seed, RunId(0));
        let wf = Workload::ImageProcessing.generate(&rr);
        let data = SimCluster::new(cfg).expect("cluster").run(wf).expect("run");
        let views = dtf_perfrecup::RunViews::new(&data);
        writeln!(
            out,
            "  {:<14} I/O-to-task attribution rate: {:>5.1}%",
            label,
            views.io_attribution_rate() * 100.0
        )
        .unwrap();
    }
    writeln!(out, "  The paper's extension (§III-E3) records pthread ids in DXT; without").unwrap();
    writeln!(out, "  them no I/O record can be correlated with its task.").unwrap();
    out
}

/// Scheduling-order similarity across runs (§IV-D).
pub fn schedule_order_similarity(seed: u64, runs: u32) -> String {
    let mut c = Campaign::paper(Workload::ImageProcessing, seed);
    c.runs = runs;
    c.keep_order = true;
    let r = c.execute().expect("campaign executes");
    let orders: Vec<_> = r.summaries.iter().filter_map(|s| s.start_order.clone()).collect();
    let m = schedule_order::pairwise(&orders, 400);
    let mut out = String::new();
    writeln!(out, "ABLATION: scheduling-order similarity across runs (ImageProcessing)").unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    writeln!(
        out,
        "  {} runs, pairwise Kendall tau: mean {:.3}, min {:.3}, max {:.3}",
        m.runs, m.summary.mean, m.summary.min, m.summary.max
    )
    .unwrap();
    writeln!(out, "  Dynamic scheduling keeps the order similar (submission priority) but")
        .unwrap();
    writeln!(out, "  never identical run to run — one of the paper's variability sources.")
        .unwrap();
    out
}

/// Mofka producer batch-size sweep: measured wall-clock cost of streaming
/// one run's full instrumentation through the event service.
pub fn mofka_batch(seed: u64) -> String {
    let mut out = String::new();
    writeln!(out, "ABLATION: Mofka producer batch size (ImageProcessing, 1 run each)").unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    writeln!(out, "{:>11} {:>14} {:>14}", "batch size", "events", "harness time").unwrap();
    for batch in [1usize, 16, 64, 256, 1024] {
        let mut cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
        cfg.mofka_batch = batch;
        let rr = RunRng::new(seed, RunId(0));
        let wf = Workload::ImageProcessing.generate(&rr);
        let t0 = std::time::Instant::now();
        let data = SimCluster::new(cfg).expect("cluster").run(wf).expect("run");
        let elapsed = t0.elapsed();
        let events =
            data.transitions.len() + data.task_done.len() + data.comms.len() + data.meta.len();
        writeln!(out, "{:>11} {:>14} {:>11.0} ms", batch, events, elapsed.as_secs_f64() * 1e3)
            .unwrap();
    }
    writeln!(out, "  Batching amortizes per-event synchronization in the streaming service")
        .unwrap();
    writeln!(out, "  (harness time includes the simulation itself; deltas are Mofka cost).")
        .unwrap();
    out
}

/// Diagnostic: comm counts by the fetched dependency's task category.
pub fn debug_comms(seed: u64, workload: Workload) -> String {
    let mut c = Campaign::paper(workload, seed);
    c.runs = 1;
    let r = c.execute().expect("campaign executes");
    let data = r.first.as_ref().expect("first kept");
    let mut by: std::collections::HashMap<&str, usize> = Default::default();
    for cm in &data.comms {
        *by.entry(cm.key.prefix.as_str()).or_default() += 1;
    }
    let mut rows: Vec<_> = by.into_iter().collect();
    rows.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    let mut out = format!("total comms {} steals {}\n", data.comms.len(), data.steals);
    for (k, n) in rows {
        out.push_str(&format!("  {k:<28} {n}\n"));
    }
    out
}

/// Instrumentation-overhead characterization (paper §VI future work:
/// "a thorough performance characterization of the overhead of Darshan
/// and Mofka within Dask workflows"). Runs the same real workload on the
/// real executor under three instrumentation configurations and measures
/// wall time.
pub fn instrumentation_overhead(repetitions: u32) -> String {
    use dtf_mofka::bedrock::BedrockConfig;
    use dtf_mofka::producer::ProducerConfig;
    use dtf_wms::exec::{ExecConfig, LocalCluster};
    use dtf_wms::graph::TaskValue;
    use dtf_wms::plugins::PluginSet;
    use dtf_wms::{CollectorPlugin, Delayed, MofkaPlugin};

    const TASKS: u32 = 600;

    fn run_once(plugins: PluginSet, iters_per_task: u64) -> f64 {
        let cluster = LocalCluster::start(
            ExecConfig { workers: 2, threads_per_worker: 2, ..Default::default() },
            plugins,
        );
        let mut client = Delayed::new(&cluster);
        let t0 = std::time::Instant::now();
        for _ in 0..TASKS {
            client.delayed("work", vec![], move |_| {
                let mut acc = 1u64;
                for i in 1..iters_per_task {
                    acc = acc.wrapping_mul(i | 1);
                }
                TaskValue::new(acc, 8)
            });
        }
        client.compute().expect("submit");
        cluster.wait_all();
        let elapsed = t0.elapsed().as_secs_f64();
        cluster.shutdown();
        elapsed
    }

    let mut out = String::new();
    writeln!(
        out,
        "OVERHEAD: instrumentation cost on the real executor ({TASKS} tasks, {repetitions} reps)"
    )
    .unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    type PluginFactory = Box<dyn Fn() -> PluginSet>;
    let configs: Vec<(&str, PluginFactory)> = vec![
        ("uninstrumented", Box::new(PluginSet::new)),
        (
            "collector plugin",
            Box::new(|| {
                let mut p = PluginSet::new();
                p.register(Box::new(CollectorPlugin::new()));
                p
            }),
        ),
        (
            "mofka streaming",
            Box::new(|| {
                let svc = BedrockConfig::wms_default().bootstrap().expect("bootstrap");
                let mut p = PluginSet::new();
                p.register(Box::new(
                    MofkaPlugin::new(&svc, ProducerConfig::default()).expect("plugin"),
                ));
                // the service must outlive the run; leak it for the
                // measurement (each config run is short-lived)
                std::mem::forget(svc);
                p
            }),
        ),
    ];
    for (granularity, iters) in
        [("micro-tasks (~40us)", 40_000u64), ("realistic tasks (~2ms)", 2_000_000u64)]
    {
        writeln!(out, "  task granularity: {granularity}").unwrap();
        let mut baseline = None;
        for (label, make) in &configs {
            let mut walls = Vec::new();
            for _ in 0..repetitions {
                walls.push(run_once(make(), iters));
            }
            let s = dtf_core::stats::Summary::of(&walls);
            let overhead = baseline
                .map(|b: f64| format!("{:+.1}%", (s.mean / b - 1.0) * 100.0))
                .unwrap_or_else(|| "baseline".into());
            if baseline.is_none() {
                baseline = Some(s.mean);
            }
            writeln!(
                out,
                "    {:<18} wall {:>8.1} ms +/- {:>5.1} ms   {overhead}",
                label,
                s.mean * 1e3,
                s.std * 1e3
            )
            .unwrap();
        }
    }
    writeln!(out, "  Instrumentation cost is per event, so its relative weight depends on")
        .unwrap();
    writeln!(out, "  task granularity: significant for microsecond tasks, negligible at the")
        .unwrap();
    writeln!(out, "  millisecond-and-up granularity of the paper's workloads (as the paper")
        .unwrap();
    writeln!(out, "  anticipated; Mofka's cost is one JSON serialization + batched append).")
        .unwrap();
    out
}

/// Which task categories are responsible for the largest run-to-run
/// variations (the paper's central §I question, answered with the
/// per-category analysis).
pub fn category_variability(seed: u64, runs: u32, workload: Workload) -> String {
    use std::collections::HashMap;
    let mut per_cat: HashMap<String, Vec<f64>> = HashMap::new();
    for run in 0..runs {
        let mut cfg = SimConfig { campaign_seed: seed, run: RunId(run), ..Default::default() };
        workload.adjust(&mut cfg);
        let rr = RunRng::new(seed, RunId(run));
        let data = SimCluster::new(cfg).expect("cluster").run(workload.generate(&rr)).expect("run");
        for stat in dtf_perfrecup::category::per_category(&data) {
            per_cat.entry(stat.category).or_default().push(stat.duration.mean);
        }
    }
    let mut rows: Vec<(String, dtf_core::stats::Summary, f64)> = per_cat
        .into_iter()
        .map(|(cat, means)| {
            let s = dtf_core::stats::Summary::of(&means);
            let cv = if s.mean > 0.0 { s.std / s.mean } else { 0.0 };
            (cat, s, cv)
        })
        .collect();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite cv"));
    let mut out = String::new();
    writeln!(
        out,
        "CATEGORY VARIABILITY: per-category mean duration across {} {} runs",
        runs,
        workload.name()
    )
    .unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    writeln!(out, "  {:<30} {:>12} {:>10} {:>18}", "category", "mean dur", "cv", "range").unwrap();
    for (cat, s, cv) in rows.iter().take(10) {
        writeln!(out, "  {:<30} {:>10.3}s {:>10.3} {:>8.3}..{:.3}s", cat, s.mean, cv, s.min, s.max)
            .unwrap();
    }
    writeln!(out, "  Categories whose duration varies most across identical runs are the").unwrap();
    writeln!(out, "  prime suspects for irreproducible performance (paper §I).").unwrap();
    out
}

/// Utilization timeline: per-window cluster activity and worker imbalance
/// (the system-level view an LDMS-class service would provide).
pub fn utilization_timeline(seed: u64, workload: Workload) -> String {
    let mut cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
    workload.adjust(&mut cfg);
    let rr = RunRng::new(seed, RunId(0));
    let data = SimCluster::new(cfg).expect("cluster").run(workload.generate(&rr)).expect("run");
    let bins = 16;
    let threads = data.chart.wms_config.threads_per_worker;
    let utils = dtf_perfrecup::utilization::per_worker(&data, bins, threads);
    let imbalance = dtf_perfrecup::utilization::imbalance(&utils);
    let windows = dtf_perfrecup::zoom::timeline(&data, bins);
    let mut out = String::new();
    writeln!(
        out,
        "UTILIZATION TIMELINE: {} ({} workers, {bins} windows)",
        workload.name(),
        utils.len()
    )
    .unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    writeln!(
        out,
        "  {:>9} {:>9} {:>8} {:>8} {:>8} {:>10} {:>9}",
        "window", "tasks", "comms", "io ops", "warns", "mean util", "imbalance"
    )
    .unwrap();
    for (i, w) in windows.iter().enumerate() {
        let mean_util: f64 =
            utils.iter().map(|u| u.busy[i]).sum::<f64>() / utils.len().max(1) as f64;
        writeln!(
            out,
            "  {:>4.0}-{:<4.0} {:>9} {:>8} {:>8} {:>8} {:>9.0}% {:>8.0}%",
            w.t0.as_secs_f64(),
            w.t1.as_secs_f64(),
            w.tasks_active,
            w.comms_active,
            w.io_ops,
            w.warnings,
            mean_util * 100.0,
            imbalance[i] * 100.0
        )
        .unwrap();
    }
    out
}
