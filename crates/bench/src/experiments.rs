//! One function per paper table/figure. Each runs the required campaign(s)
//! and formats the measured rows next to the paper's reported values.

use std::fmt::Write as _;

use dtf_perfrecup::io_timeline;
use dtf_perfrecup::lineage;
use dtf_perfrecup::parallel_coords;
use dtf_perfrecup::phases::{PhaseBreakdown, PhaseSample};
use dtf_perfrecup::warnings_dist;
use dtf_perfrecup::{comm_scatter, RunViews};
use dtf_workflows::{Campaign, CampaignResult, RunSummary, Workload};

/// Run the paper campaign for one workload (10/10/50 runs), or a reduced
/// `runs` override for quick looks.
pub fn campaign(workload: Workload, seed: u64, runs: Option<u32>) -> CampaignResult {
    let mut c = Campaign::paper(workload, seed);
    if let Some(r) = runs {
        c.runs = r;
    }
    c.execute().expect("campaign executes")
}

fn phase_samples(summaries: &[RunSummary]) -> Vec<PhaseSample> {
    summaries
        .iter()
        .map(|s| PhaseSample {
            wall_s: s.wall_s,
            io_s: s.io_s,
            comm_s: s.comm_s,
            compute_s: s.compute_s,
        })
        .collect()
}

/// Table I: workflow characteristics, paper vs. measured.
pub fn table1(seed: u64, runs: Option<u32>) -> String {
    struct PaperRow {
        graphs: u64,
        tasks: u64,
        files: u64,
        io: (u64, u64),
        comms: (u64, u64),
    }
    let paper = [
        (
            Workload::ImageProcessing,
            PaperRow { graphs: 3, tasks: 5440, files: 151, io: (5274, 5287), comms: (3141, 3247) },
        ),
        (
            Workload::ResNet152,
            PaperRow { graphs: 1, tasks: 8645, files: 3929, io: (2057, 2302), comms: (3751, 3976) },
        ),
        (
            Workload::Xgboost,
            PaperRow { graphs: 74, tasks: 10348, files: 61, io: (867, 1670), comms: (1464, 2027) },
        ),
    ];
    let mut out = String::new();
    writeln!(out, "TABLE I: Workflow Characteristics (paper -> measured)").unwrap();
    writeln!(out, "{:-<100}", "").unwrap();
    for (w, p) in paper {
        let r = campaign(w, seed, runs);
        let s0 = &r.summaries[0];
        let io = r.range(|s| s.io_ops);
        let comms = r.range(|s| s.comms);
        let files = r.range(|s| s.files);
        writeln!(out, "{} ({} runs)", w.name(), r.summaries.len()).unwrap();
        writeln!(out, "  Task graphs    paper {:>5}        measured {:>5}", p.graphs, s0.graphs)
            .unwrap();
        writeln!(out, "  Distinct tasks paper {:>5}        measured {:>5}", p.tasks, s0.tasks)
            .unwrap();
        writeln!(
            out,
            "  Distinct files paper {:>5}        measured {:>5}-{}",
            p.files, files.0, files.1
        )
        .unwrap();
        writeln!(
            out,
            "  I/O operations paper {:>5}-{:<5}  measured {:>5}-{}",
            p.io.0, p.io.1, io.0, io.1
        )
        .unwrap();
        if w == Workload::ResNet152 {
            let complete = r.range(|s| s.io_ops_complete);
            writeln!(
                out,
                "    (DXT truncated, footnote 9: counters module saw {}-{} ops)",
                complete.0, complete.1
            )
            .unwrap();
        }
        writeln!(
            out,
            "  Communications paper {:>5}-{:<5}  measured {:>5}-{}",
            p.comms.0, p.comms.1, comms.0, comms.1
        )
        .unwrap();
        writeln!(out, "  Mean wall time measured {:.1}s", r.mean_wall().as_secs_f64()).unwrap();
        writeln!(out).unwrap();
    }
    out
}

/// Fig. 3: relative time per phase with across-run error bars.
pub fn fig3(seed: u64, runs: Option<u32>) -> String {
    let mut out = String::new();
    writeln!(out, "FIG 3: Relative time in I/O / communication / computation / total").unwrap();
    writeln!(out, "  (normalized by each workflow's mean wall time; +/- is std across runs)")
        .unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    writeln!(
        out,
        "{:<18} {:>15} {:>15} {:>15} {:>15}",
        "workflow", "I/O", "comm", "compute", "total"
    )
    .unwrap();
    for w in Workload::ALL {
        let r = campaign(w, seed, runs);
        let b = PhaseBreakdown::from_samples(&phase_samples(&r.summaries), 64.0);
        let cell = |bar: &dtf_perfrecup::phases::PhaseBar| {
            format!("{:.3}+/-{:.3}", bar.mean_norm, bar.std_norm)
        };
        writeln!(
            out,
            "{:<18} {:>15} {:>15} {:>15} {:>15}",
            w.name(),
            cell(&b.io),
            cell(&b.comm),
            cell(&b.compute),
            cell(&b.total)
        )
        .unwrap();
        writeln!(
            out,
            "{:<18}   wall {:.1}s +/- {:.1}s, coordination share {:.0}% (64 threads)",
            "",
            b.total.mean_s,
            b.total.std_s,
            b.coordination_share() * 100.0
        )
        .unwrap();
    }
    writeln!(out).unwrap();
    writeln!(out, "  Paper shape: ImageProcessing & ResNet152 walls are ~100s and dominated")
        .unwrap();
    writeln!(out, "  by coordination; XGBOOST amortizes it and shows the widest error bars.")
        .unwrap();
    out
}

/// Fig. 4: per-thread I/O of ImageProcessing over time.
pub fn fig4(seed: u64) -> String {
    let r = campaign(Workload::ImageProcessing, seed, Some(1));
    let data = r.first.as_ref().expect("first run kept");
    let sig = io_timeline::signature(data, 2.0);
    let mut out = String::new();
    writeln!(out, "FIG 4: Per-thread I/O of ImageProcessing over time").unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    let segs = io_timeline::segments(data);
    writeln!(out, "  {} traced I/O segments across {} threads", segs.n_rows(), {
        let mut t: Vec<u64> =
            segs.col("thread").unwrap().iter().filter_map(|v| v.as_u64()).collect();
        t.sort_unstable();
        t.dedup();
        t.len()
    })
    .unwrap();
    writeln!(out, "  Detected activity phases (gap > 2s): {}", sig.phases.len()).unwrap();
    for (i, p) in sig.phases.iter().enumerate() {
        writeln!(
            out,
            "    phase {}: t={:.1}..{:.1}s  reads {:>5} ({:.1} MB avg)  writes {:>4} ({:.1} KB avg)",
            i + 1,
            p.start_s,
            p.end_s,
            p.read_ops,
            if p.read_ops > 0 { p.read_bytes as f64 / p.read_ops as f64 / (1 << 20) as f64 } else { 0.0 },
            p.write_ops,
            if p.write_ops > 0 { p.write_bytes as f64 / p.write_ops as f64 / 1024.0 } else { 0.0 },
        )
        .unwrap();
    }
    writeln!(out, "  Paper shape: 3 read phases (4 MB reads), each followed by a burst of")
        .unwrap();
    writeln!(
        out,
        "  small writes; measured: {} read-dominant phases, {} with write bursts.",
        sig.read_phases, sig.phases_with_writes
    )
    .unwrap();
    out
}

/// Fig. 5: communication duration vs size for ResNet152.
pub fn fig5(seed: u64) -> String {
    let r = campaign(Workload::ResNet152, seed, Some(1));
    let data = r.first.as_ref().expect("first run kept");
    let s = comm_scatter::summary(data, 30.0);
    let mut out = String::new();
    writeln!(out, "FIG 5: Interworker communication time vs message size (ResNet152)").unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    writeln!(
        out,
        "  communications: {} total ({} intra-node, {} inter-node)",
        s.total, s.intra_node, s.inter_node
    )
    .unwrap();
    writeln!(
        out,
        "  median size {:.1} KB, median duration {:.5}s",
        s.median_bytes / 1024.0,
        s.median_duration_s
    )
    .unwrap();
    writeln!(
        out,
        "  slow-small communications: {} total, {} within first {:.0}s",
        s.slow_small, s.slow_small_early, s.early_window_s
    )
    .unwrap();
    writeln!(
        out,
        "  intra-node share among early slow-small: {:.0}%",
        s.slow_small_early_intra_share * 100.0
    )
    .unwrap();
    writeln!(out, "  Paper shape: several long communications near the beginning despite small")
        .unwrap();
    writeln!(out, "  sizes, split roughly evenly between intra- and inter-node.").unwrap();
    out
}

/// Fig. 6: parallel-coordinates of XGBoost tasks.
pub fn fig6(seed: u64) -> String {
    let r = campaign(Workload::Xgboost, seed, Some(1));
    let data = r.first.as_ref().expect("first run kept");
    let s = parallel_coords::summary(data);
    let mut out = String::new();
    writeln!(out, "FIG 6: Parallel coordinates of XGBOOST tasks").unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    writeln!(
        out,
        "  {} tasks; longest category: {} (mean {:.1}s)",
        s.total_tasks, s.longest_category, s.longest_mean_duration_s
    )
    .unwrap();
    writeln!(out, "  tasks with output > 128 MB (Dask recommendation): {}", s.oversized_tasks)
        .unwrap();
    for (c, n) in s.oversized_categories.iter().take(4) {
        writeln!(out, "    {c}: {n}").unwrap();
    }
    writeln!(out, "  Paper shape: the longest (red) tasks are read_parquet-fused-assign and")
        .unwrap();
    writeln!(out, "  their outputs significantly exceed the recommended 128 MB.").unwrap();
    out
}

/// Fig. 7: warning distribution in XGBoost.
pub fn fig7(seed: u64) -> String {
    let r = campaign(Workload::Xgboost, seed, Some(1));
    let data = r.first.as_ref().expect("first run kept");
    let rep = warnings_dist::report(data, 12, 500.0, 60.0);
    let mut out = String::new();
    writeln!(out, "FIG 7: Distribution of warnings in XGBOOST").unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    writeln!(
        out,
        "  warnings: {} total ({} unresponsive-event-loop, {} gc-pause)",
        rep.total, rep.unresponsive, rep.gc
    )
    .unwrap();
    writeln!(
        out,
        "  unresponsive warnings in first 500s: paper 297, measured {}",
        rep.unresponsive_early
    )
    .unwrap();
    writeln!(
        out,
        "  correlation with long tasks (>= {:.0}s): {:.0}% of warnings overlap one",
        rep.long_task_threshold_s,
        rep.long_task_overlap * 100.0
    )
    .unwrap();
    if let Some(c) = &rep.dominant_category {
        writeln!(out, "  dominant overlapped category: {c}").unwrap();
    }
    writeln!(
        out,
        "  histogram over time ({} bins of {:.0}s):",
        rep.histogram.counts.len(),
        (rep.histogram.hi - rep.histogram.lo) / rep.histogram.counts.len() as f64
    )
    .unwrap();
    let max = rep.histogram.counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, &n) in rep.histogram.counts.iter().enumerate() {
        let bar = "#".repeat((n * 48 / max) as usize);
        writeln!(out, "    t={:>6.0}s {:>5} {}", rep.histogram.center(i), n, bar).unwrap();
    }
    out
}

/// Fig. 8: provenance summary of one XGBoost task.
pub fn fig8(seed: u64) -> String {
    let r = campaign(Workload::Xgboost, seed, Some(1));
    let data = r.first.as_ref().expect("first run kept");
    // the paper shows a getitem__get_categories task from the second graph
    let key = data
        .meta
        .iter()
        .find(|m| m.key.prefix == "getitem__get_categories" && m.key.index == 63)
        .map(|m| m.key.clone())
        .expect("xgboost has getitem__get_categories tasks");
    let l = lineage::build(data, &key).expect("lineage builds");
    let mut out = String::new();
    writeln!(out, "FIG 8: Task provenance summary for {key}").unwrap();
    writeln!(out, "{:-<84}", "").unwrap();
    out.push_str(&l.to_pretty_json());
    out.push('\n');
    // also validate the views' attribution like the framework promises
    let views = RunViews::new(data);
    writeln!(
        out,
        "\n  I/O-to-task attribution rate this run: {:.1}%",
        views.io_attribution_rate() * 100.0
    )
    .unwrap();
    out
}
