//! Provenance-pipeline micro-bench: events/s through the paper's data
//! path — WMS plugin → Mofka producer → topic → `RunData` ingest.
//!
//! This is the measurement behind `provenance_events_per_s` in
//! `BENCH_repro.json`. It synthesizes a deterministic stream of every
//! record family the plugins emit (task meta, scheduler and worker
//! transitions, completions, comms, warnings, logs), pushes them through
//! a real `MofkaPlugin` against a freshly bootstrapped service, and then
//! drains the topics back into typed vectors the way `SimCluster::finalize`
//! does. The clock covers the whole pipeline, so both the produce-side
//! cost (serialization, partitioning, batching) and the ingest-side cost
//! (claiming, decoding, sorting) land in the number.

use std::time::Instant;

use serde::Serialize;

use dtf_core::events::{
    CommEvent, Location, LogEntry, LogLevel, LogSource, Stimulus, TaskDoneEvent, TaskMetaEvent,
    TaskState, TransitionEvent, WarningEvent, WarningKind, WorkerTaskState, WorkerTransitionEvent,
};
use dtf_core::ids::{ClientId, GraphId, NodeId, RunId, TaskKey, ThreadId, WorkerId};
use dtf_core::provenance::{HardwareInfo, JobInfo, ProvenanceChart, SystemInfo, WmsConfig};
use dtf_core::time::{Dur, Time};
use dtf_darshan::log::LogSet;
use dtf_mofka::bedrock::BedrockConfig;
use dtf_mofka::producer::ProducerConfig;
use dtf_wms::plugins::{MofkaPlugin, WmsPlugin};
use dtf_wms::RunData;

/// The `provenance_pipeline` section of `BENCH_repro.json`.
#[derive(Debug, Serialize)]
pub struct ProvenancePipeline {
    /// Events pushed through the pipeline (all record families).
    pub events: u64,
    pub wall_s: f64,
    pub events_per_s: f64,
}

fn chart() -> ProvenanceChart {
    ProvenanceChart {
        hardware: HardwareInfo::polaris_like(2),
        system: SystemInfo::synthetic(),
        job: JobInfo {
            job_id: 1,
            script: String::new(),
            queue: "bench".into(),
            nodes_requested: 2,
            allocated_nodes: vec![NodeId(0), NodeId(1)],
            submit_time: Time::ZERO,
            start_time: Time::ZERO,
            walltime_limit_s: 60,
        },
        wms_config: WmsConfig::default(),
        client_code_hash: 0,
        workflow_name: "provenance-bench".into(),
    }
}

/// One rep: push `tasks` tasks' worth of provenance through a fresh
/// service and drain it back. Returns the number of events pushed.
fn one_rep(tasks: u32) -> u64 {
    const PREFIXES: [&str; 4] = ["inc", "double", "sum", "load"];
    let svc = BedrockConfig::wms_default().bootstrap().expect("bootstrap");
    let mut plugin =
        MofkaPlugin::new(&svc, ProducerConfig::default()).expect("plugin against default topics");
    let mut events = 0u64;
    for i in 0..tasks {
        let key = TaskKey::new(PREFIXES[(i % 4) as usize], i % 16, i);
        let worker = WorkerId::new(NodeId(i % 2), i % 4);
        let deps = if i == 0 {
            vec![]
        } else {
            vec![TaskKey::new(PREFIXES[((i - 1) % 4) as usize], (i - 1) % 16, i - 1)]
        };
        let t0 = Time(i as u64 * 1_000);
        plugin.on_task_meta(&TaskMetaEvent {
            key: key.clone(),
            graph: GraphId(0),
            client: ClientId(0),
            deps,
            submitted: t0,
        });
        events += 1;
        for (from, to, stimulus, dt) in [
            (TaskState::Released, TaskState::Waiting, Stimulus::GraphSubmitted, 0),
            (TaskState::Waiting, TaskState::Processing, Stimulus::Dispatched, 10),
            (TaskState::Processing, TaskState::Memory, Stimulus::ComputeFinished, 110),
        ] {
            plugin.on_transition(&TransitionEvent {
                key: key.clone(),
                graph: GraphId(0),
                from,
                to,
                stimulus,
                location: Location::Scheduler,
                time: t0 + Dur(dt),
            });
            events += 1;
        }
        for (from, to, dt) in [
            (WorkerTaskState::Waiting, WorkerTaskState::Ready, 20u64),
            (WorkerTaskState::Ready, WorkerTaskState::Executing, 30),
            (WorkerTaskState::Executing, WorkerTaskState::Memory, 100),
        ] {
            plugin.on_worker_transition(&WorkerTransitionEvent {
                key: key.clone(),
                graph: GraphId(0),
                worker,
                from,
                to,
                time: t0 + Dur(dt),
            });
            events += 1;
        }
        plugin.on_task_done(&TaskDoneEvent {
            key: key.clone(),
            graph: GraphId(0),
            worker,
            thread: ThreadId(1 + (i % 4) as u64),
            start: t0 + Dur(30),
            stop: t0 + Dur(100),
            nbytes: 4096,
        });
        events += 1;
        if i % 2 == 0 {
            plugin.on_comm(&CommEvent {
                key: key.clone(),
                from: worker,
                to: WorkerId::new(NodeId((i + 1) % 2), i % 4),
                nbytes: 4096,
                start: t0 + Dur(100),
                stop: t0 + Dur(150),
            });
            events += 1;
        }
        if i % 64 == 0 {
            plugin.on_warning(&WarningEvent {
                kind: WarningKind::GcPause,
                worker: Some(worker),
                time: t0,
                duration: Dur(500),
            });
            events += 1;
        }
        if i % 16 == 0 {
            plugin.on_log(&LogEntry {
                time: t0,
                level: LogLevel::Info,
                source: LogSource::Worker(worker),
                message: format!("task {key} dispatched"),
            });
            events += 1;
        }
    }
    plugin.flush();
    let data = RunData::drain_from_mofka(
        &svc,
        RunId(0),
        "provenance-bench".into(),
        chart(),
        LogSet::default(),
        Dur::from_secs_f64(1.0),
        vec![],
        0,
    )
    .expect("drain");
    let drained = (data.meta.len()
        + data.transitions.len()
        + data.worker_transitions.len()
        + data.task_done.len()
        + data.comms.len()
        + data.warnings.len()
        + data.logs.len()) as u64;
    assert_eq!(drained, events, "ingest must recover every pushed event");
    events
}

/// Measure the pipeline: `reps` repetitions of `tasks` tasks each, one
/// wall clock over everything.
pub fn provenance_pipeline(tasks: u32, reps: u32) -> ProvenancePipeline {
    // warm-up rep outside the clock (first-touch allocations, lazy statics)
    one_rep(tasks.min(256));
    let t0 = Instant::now();
    let mut events = 0u64;
    for _ in 0..reps {
        events += one_rep(tasks);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    ProvenancePipeline { events, wall_s, events_per_s: events as f64 / wall_s.max(1e-12) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_bench_pushes_and_recovers_all_records() {
        let p = provenance_pipeline(256, 1);
        // 256 tasks x (1 meta + 3 transitions + 3 worker transitions +
        // 1 done) + 128 comms + 4 warnings + 16 logs
        assert_eq!(p.events, 256 * 8 + 128 + 4 + 16);
        assert!(p.events_per_s > 0.0);
    }
}
