//! Storage micro-benchmarks: append throughput per flush policy and the
//! recovery-scan rate of the segmented log — the `storage` section of
//! `BENCH_repro.json`.
//!
//! Three append configurations bracket the durability/throughput
//! trade-off dtf-store exposes:
//!
//! * `every_record` — fsync after each record (strict durability floor),
//! * `group_commit_256` — the default group-commit batch (`EveryN(256)`),
//! * `manual` — buffered writes, one fsync at the end (throughput ceiling).
//!
//! The recovery number re-opens the group-commit log and times the full
//! checksum scan, since that is what every durable reopen pays.

use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::Serialize;

use dtf_store::{FlushPolicy, LogConfig, SegmentedLog};

/// The `storage` section of the artifact.
#[derive(Debug, Serialize)]
pub struct StorageBench {
    /// Payload size of every appended record.
    pub record_bytes: usize,
    pub append: Vec<AppendBench>,
    pub recovery: RecoveryBench,
}

#[derive(Debug, Serialize)]
pub struct AppendBench {
    /// Flush-policy label: `every_record`, `group_commit_256`, `manual`.
    pub policy: String,
    pub records: u64,
    pub wall_s: f64,
    pub records_per_s: f64,
    pub bytes_per_s: f64,
}

#[derive(Debug, Serialize)]
pub struct RecoveryBench {
    pub records: u64,
    pub segments: u64,
    pub wall_s: f64,
    pub records_per_s: f64,
}

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtf-store-bench-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Trials per measurement; the fastest is reported. fsync-bound wall
/// times are noisy in one direction only (interference slows, nothing
/// speeds up), so best-of-N is what makes the 20% CI gate trustworthy.
const TRIALS: u32 = 3;

/// Append `records` payloads under `flush` into a fresh dir, ending with
/// one explicit `sync` so every configuration measures time-to-durable.
/// Returns the wall time of this trial.
fn append_trial(dir: &Path, flush: FlushPolicy, records: u64, payload: &[u8]) -> f64 {
    let cfg = LogConfig { flush, ..Default::default() };
    let (mut log, existing, _) = SegmentedLog::open(dir, cfg).expect("open bench log");
    assert!(existing.is_empty(), "bench log directory must start empty");
    let t0 = Instant::now();
    for _ in 0..records {
        log.append(payload).expect("append");
    }
    log.sync().expect("sync");
    t0.elapsed().as_secs_f64()
}

/// Best-of-[`TRIALS`] append measurement. The last trial's directory is
/// left in place (its path is returned) so the recovery scan can reopen a
/// fully-committed log.
fn bench_append(
    label: &str,
    flush: FlushPolicy,
    policy: &str,
    records: u64,
    payload: &[u8],
) -> (AppendBench, PathBuf) {
    let mut best = f64::INFINITY;
    let mut dir = PathBuf::new();
    for trial in 0..TRIALS {
        if trial > 0 {
            let _ = std::fs::remove_dir_all(&dir);
        }
        dir = scratch(&format!("{label}-{trial}"));
        best = best.min(append_trial(&dir, flush, records, payload));
    }
    let bench = AppendBench {
        policy: policy.to_string(),
        records,
        wall_s: best,
        records_per_s: records as f64 / best.max(1e-12),
        bytes_per_s: (records as usize * payload.len()) as f64 / best.max(1e-12),
    };
    (bench, dir)
}

/// Run the storage sweep. `every_record` appends fewer records than the
/// batched policies because each one costs an fsync; rates are still
/// directly comparable since everything is reported per second.
pub fn storage_bench() -> StorageBench {
    const RECORD_BYTES: usize = 256;
    const BATCHED_RECORDS: u64 = 16_384;
    let payload = vec![0xa5u8; RECORD_BYTES];
    let mut append = Vec::new();
    let (b, dir) = bench_append("every", FlushPolicy::EveryRecord, "every_record", 512, &payload);
    append.push(b);
    let _ = std::fs::remove_dir_all(&dir);
    let (b, group) = bench_append(
        "group",
        FlushPolicy::EveryN(256),
        "group_commit_256",
        BATCHED_RECORDS,
        &payload,
    );
    append.push(b);
    let (b, dir) = bench_append("manual", FlushPolicy::Manual, "manual", BATCHED_RECORDS, &payload);
    append.push(b);
    let _ = std::fs::remove_dir_all(&dir);

    // Recovery scan: reopen the group-commit log (many segments, all
    // committed) and time the checksum pass, again best-of-TRIALS.
    let mut recovery =
        RecoveryBench { records: 0, segments: 0, wall_s: f64::INFINITY, records_per_s: 0.0 };
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        let (log, recovered, report) =
            SegmentedLog::open(&group, LogConfig::default()).expect("reopen bench log");
        let wall_s = t0.elapsed().as_secs_f64();
        assert_eq!(recovered.len() as u64, BATCHED_RECORDS, "clean reopen recovers every record");
        assert!(!report.torn, "clean reopen reports no tear");
        log.abandon(); // nothing appended; reopen must leave the log as-is
        if wall_s < recovery.wall_s {
            recovery = RecoveryBench {
                records: recovered.len() as u64,
                segments: report.segments as u64,
                wall_s,
                records_per_s: recovered.len() as f64 / wall_s.max(1e-12),
            };
        }
    }
    let _ = std::fs::remove_dir_all(&group);
    StorageBench { record_bytes: RECORD_BYTES, append, recovery }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_sweep_measures_all_policies() {
        let b = storage_bench();
        assert_eq!(b.record_bytes, 256);
        let policies: Vec<&str> = b.append.iter().map(|a| a.policy.as_str()).collect();
        assert_eq!(policies, ["every_record", "group_commit_256", "manual"]);
        for a in &b.append {
            assert!(a.records_per_s > 0.0, "{}: rate must be positive", a.policy);
        }
        assert_eq!(b.recovery.records, 16_384);
        assert!(b.recovery.segments >= 1);
        assert!(b.recovery.records_per_s > 0.0);
    }
}
