//! Storage micro-benchmarks: append throughput per flush policy and the
//! recovery-scan rate of the segmented log — the `storage` section of
//! `BENCH_repro.json`.
//!
//! Three append configurations bracket the durability/throughput
//! trade-off dtf-store exposes:
//!
//! * `every_record` — fsync after each record (strict durability floor),
//! * `group_commit_256` — the default group-commit batch (`EveryN(256)`),
//! * `manual` — buffered writes, one fsync at the end (throughput ceiling).
//!
//! The recovery number re-opens the group-commit log and times the full
//! checksum scan, since that is what every durable reopen pays.
//!
//! The `codec` subsection measures the binary record format: pure
//! encode/decode throughput over a mixed-family record corpus, and the
//! end-to-end replay (service reopen + read + typed materialization) of
//! two stores with identical content — one written binary-era (typed
//! slots), one JSON-era (value-tree slots) — which is the wall time
//! `open_archive` pays per format.
//!
//! The `scale` subsection (schema 6) measures what the sparse indexes and
//! snapshots buy at size: KV recovery wall at two log sizes (8x apart; a
//! tail-bounded reopen keeps the ratio near 1 instead of near 8), the
//! full-replay wall for contrast, and indexed point/range reads against
//! the full-scan alternative. `DTF_STORE_SCALE` scales the record counts
//! (0.125 is the CI smoke size; 1.0 the reference artifact).

use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::Serialize;

use dtf_core::events::{
    LogEntry, LogLevel, LogSource, ProvEvent, ProvRecord, TaskDoneEvent, TransitionEvent,
};
use dtf_core::ids::{ClientId, GraphId, NodeId, TaskKey, ThreadId, WorkerId};
use dtf_core::time::Time;
use dtf_mofka::{Event, Metadata, MofkaService, ServiceConfig, TopicConfig};
use dtf_store::{
    FlushPolicy, KvWalConfig, LogConfig, LogReader, ReaderOptions, SegmentedLog, WalKv,
};

/// The `storage` section of the artifact.
#[derive(Debug, Serialize)]
pub struct StorageBench {
    /// Payload size of every appended record.
    pub record_bytes: usize,
    pub append: Vec<AppendBench>,
    pub recovery: RecoveryBench,
    pub codec: CodecBench,
    pub scale: ScaleBench,
}

#[derive(Debug, Serialize)]
pub struct AppendBench {
    /// Flush-policy label: `every_record`, `group_commit_256`, `manual`.
    pub policy: String,
    pub records: u64,
    pub wall_s: f64,
    pub records_per_s: f64,
    pub bytes_per_s: f64,
}

#[derive(Debug, Serialize)]
pub struct RecoveryBench {
    pub records: u64,
    pub segments: u64,
    pub wall_s: f64,
    pub records_per_s: f64,
}

/// Binary record-format measurements (schema 4).
#[derive(Debug, Serialize)]
pub struct CodecBench {
    /// Records in the encode/decode corpus (mixed event families).
    pub records: u64,
    /// Corpus size in its binary encoding.
    pub binary_bytes: u64,
    /// The same corpus rendered as compact JSON (the JSON-era at-rest size).
    pub json_bytes: u64,
    /// Binary encode throughput, MiB of encoded output per second.
    pub encode_mib_s: f64,
    /// Binary decode throughput, MiB of encoded input per second.
    pub decode_mib_s: f64,
    /// Events in each replay store.
    pub replay_events: u64,
    /// End-to-end reopen + read + typed materialization, binary-era store.
    pub replay_binary_ms: f64,
    /// Same, JSON-era store (value-tree slots parsed back per event).
    pub replay_json_ms: f64,
}

/// GB-scale behaviour measurements (schema 6): snapshot-bounded recovery
/// and indexed reads, at a record count scaled by `DTF_STORE_SCALE`.
#[derive(Debug, Serialize)]
pub struct ScaleBench {
    /// The `DTF_STORE_SCALE` factor these numbers were taken at.
    pub scale: f64,
    /// Value size of every KV put in the recovery stores.
    pub value_bytes: usize,
    pub small_records: u64,
    pub large_records: u64,
    /// Snapshot-aided reopen wall of the small / large store.
    pub recovery_small_ms: f64,
    pub recovery_large_ms: f64,
    /// `recovery_large / recovery_small` — near-constant (tail-bounded)
    /// recovery keeps this far below the 8x log-size ratio; gated ≤ 2.
    pub recovery_ratio: f64,
    /// Replay of the large store's *whole* log (`SegmentedLog::open`) —
    /// the cost every reopen paid before snapshots, for contrast.
    pub full_replay_large_ms: f64,
    pub indexed: IndexedBench,
}

/// Indexed archive reads vs the full-scan alternative on one log.
#[derive(Debug, Serialize)]
pub struct IndexedBench {
    pub records: u64,
    pub record_bytes: usize,
    /// Records per sparse-index entry (and per cached block).
    pub stride: u32,
    /// Wall of a full `SegmentedLog::open` body scan — what answering any
    /// point query costs without an index.
    pub full_scan_ms: f64,
    /// `LogReader::open` wall (header walk + tail scan; no cold bodies).
    pub reader_open_ms: f64,
    pub point_lookups: u64,
    /// Mean wall of one indexed point read (cold cache at first touch).
    pub point_avg_us: f64,
    /// Wall of one indexed 256-record range read mid-log.
    pub range_ms: f64,
    /// `full_scan / point_avg` — an indexed point read replaces a scan.
    pub point_speedup: f64,
    /// `full_scan / range` — same for the range read.
    pub range_speedup: f64,
    /// Block-cache hits/misses across the point-read pass (schema 7) —
    /// spread lookups mostly miss; same-block neighbours hit.
    pub point_cache_hits: u64,
    pub point_cache_misses: u64,
    /// Same counters for the range read on its fresh reader: one miss per
    /// block touched, hits for every record after the first in a block.
    pub range_cache_hits: u64,
    pub range_cache_misses: u64,
}

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtf-store-bench-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Trials per measurement; the fastest is reported. fsync-bound wall
/// times are noisy in one direction only (interference slows, nothing
/// speeds up), so best-of-N is what makes the 20% CI gate trustworthy.
const TRIALS: u32 = 3;

/// Append `records` payloads under `flush` into a fresh dir, ending with
/// one explicit `sync` so every configuration measures time-to-durable.
/// Returns the wall time of this trial.
fn append_trial(dir: &Path, flush: FlushPolicy, records: u64, payload: &[u8]) -> f64 {
    let cfg = LogConfig { flush, ..Default::default() };
    let (mut log, existing, _) = SegmentedLog::open(dir, cfg).expect("open bench log");
    assert!(existing.is_empty(), "bench log directory must start empty");
    let t0 = Instant::now();
    for _ in 0..records {
        log.append(payload).expect("append");
    }
    log.sync().expect("sync");
    t0.elapsed().as_secs_f64()
}

/// Best-of-[`TRIALS`] append measurement. The last trial's directory is
/// left in place (its path is returned) so the recovery scan can reopen a
/// fully-committed log.
fn bench_append(
    label: &str,
    flush: FlushPolicy,
    policy: &str,
    records: u64,
    payload: &[u8],
) -> (AppendBench, PathBuf) {
    let mut best = f64::INFINITY;
    let mut dir = PathBuf::new();
    for trial in 0..TRIALS {
        if trial > 0 {
            let _ = std::fs::remove_dir_all(&dir);
        }
        dir = scratch(&format!("{label}-{trial}"));
        best = best.min(append_trial(&dir, flush, records, payload));
    }
    let bench = AppendBench {
        policy: policy.to_string(),
        records,
        wall_s: best,
        records_per_s: records as f64 / best.max(1e-12),
        bytes_per_s: (records as usize * payload.len()) as f64 / best.max(1e-12),
    };
    (bench, dir)
}

/// Deterministic mixed-family corpus for the codec rows: three of the
/// hottest record families in realistic proportion (transitions dominate a
/// run's stream, then task-done, then logs), with index-derived values so
/// no RNG is involved.
fn codec_corpus(n: u64) -> Vec<ProvRecord> {
    use dtf_core::events::{Location, Stimulus, TaskState};
    (0..n)
        .map(|i| {
            let key = TaskKey::new("bench-task", (i % 64) as u32, (i / 64) as u32);
            let worker = WorkerId::new(NodeId((i % 8) as u32), (i % 4) as u32);
            match i % 4 {
                0 | 1 => ProvRecord::Transition(TransitionEvent {
                    key,
                    graph: GraphId((i % 3) as u32),
                    from: TaskState::Queued,
                    to: TaskState::Processing,
                    stimulus: Stimulus::Dispatched,
                    location: Location::Worker(worker),
                    time: Time(1_000_000 + i * 17),
                }),
                2 => ProvRecord::TaskDone(TaskDoneEvent {
                    key,
                    graph: GraphId((i % 3) as u32),
                    worker,
                    thread: ThreadId(i % 16),
                    start: Time(1_000_000 + i * 17),
                    stop: Time(1_000_500 + i * 17),
                    nbytes: (i * 4096) % (1 << 30),
                }),
                _ => ProvRecord::Log(LogEntry {
                    time: Time(1_000_000 + i * 17),
                    level: LogLevel::Info,
                    source: LogSource::Client(ClientId((i % 5) as u32)),
                    message: format!("progress update {i} for graph {}", i % 3),
                }),
            }
        })
        .collect()
}

/// One replay store: the corpus pushed into a persisted "logs"-style
/// topic, either typed (binary slots) or as value trees (JSON slots).
fn build_replay_store(dir: &Path, corpus: &[ProvRecord], typed: bool) {
    let svc = MofkaService::with_config(&ServiceConfig {
        persist: Some(dir.to_path_buf()),
        ..Default::default()
    })
    .expect("replay store");
    svc.create_topic("events", TopicConfig { partitions: 1 }).expect("topic");
    let t = svc.topic("events").expect("topic handle");
    for rec in corpus {
        let event =
            if typed { Event::typed(rec.clone()) } else { Event::meta_only(rec.to_value()) };
        t.append_batch(0, vec![event]).expect("append");
    }
    svc.sync().expect("sync");
}

/// Reopen a replay store and materialize every event to its typed form —
/// the `open_archive` read path. Returns this trial's wall time.
fn replay_trial(dir: &Path, expect: u64) -> f64 {
    let t0 = Instant::now();
    let (svc, recovery) = MofkaService::reopen(dir).expect("replay reopen");
    assert_eq!(recovery.restored_events, expect, "replay store must recover fully");
    let t = svc.topic("events").expect("topic");
    let mut sink = 0u64;
    for stored in t.read(0, 0, usize::MAX >> 1).expect("read") {
        let rec: ProvRecord = match stored.event.metadata {
            Metadata::Typed(rec) => {
                std::sync::Arc::try_unwrap(rec).unwrap_or_else(|a| (*a).clone())
            }
            Metadata::Json(v) => {
                // the drain's fallback: one from_value parse per event.
                // Values are untagged, so dispatch on a family-unique field.
                if v.get("stimulus").is_some() {
                    TransitionEvent::into_record(
                        serde_json::from_value(v).expect("transition parses"),
                    )
                } else if v.get("nbytes").is_some() {
                    TaskDoneEvent::into_record(serde_json::from_value(v).expect("task_done parses"))
                } else {
                    LogEntry::into_record(serde_json::from_value(v).expect("log parses"))
                }
            }
        };
        if let Some(k) = rec.task_key() {
            sink = sink.wrapping_add(k.token as u64);
        }
    }
    std::hint::black_box(sink);
    t0.elapsed().as_secs_f64()
}

/// Codec sweep: pure encode/decode throughput plus the end-to-end replay
/// comparison between a binary-era and a JSON-era store.
fn codec_bench() -> CodecBench {
    const CODEC_RECORDS: u64 = 32_768;
    const REPLAY_EVENTS: u64 = 8_192;
    let corpus = codec_corpus(CODEC_RECORDS);

    // pure encode: one growing buffer, frame boundaries remembered
    let mut encode_s = f64::INFINITY;
    let mut buf = Vec::new();
    let mut bounds = Vec::with_capacity(corpus.len());
    for _ in 0..TRIALS {
        buf.clear();
        bounds.clear();
        let t0 = Instant::now();
        for rec in &corpus {
            rec.encode_binary(&mut buf);
            bounds.push(buf.len());
        }
        encode_s = encode_s.min(t0.elapsed().as_secs_f64());
    }
    let binary_bytes = buf.len() as u64;
    let json_bytes: u64 = corpus.iter().map(|r| r.encoded_size() as u64).sum();

    // pure decode, straight off the encoded buffer slices
    let mut decode_s = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        let mut start = 0usize;
        let mut sink = 0u64;
        for &end in &bounds {
            let rec = ProvRecord::decode_binary(&buf[start..end]).expect("corpus decodes");
            if let Some(k) = rec.task_key() {
                sink = sink.wrapping_add(k.index as u64);
            }
            start = end;
        }
        std::hint::black_box(sink);
        decode_s = decode_s.min(t0.elapsed().as_secs_f64());
    }

    // end-to-end replay: identical content, two at-rest formats
    let replay_corpus = codec_corpus(REPLAY_EVENTS);
    let bin_dir = scratch("replay-binary");
    let json_dir = scratch("replay-json");
    build_replay_store(&bin_dir, &replay_corpus, true);
    build_replay_store(&json_dir, &replay_corpus, false);
    let mut replay_binary_s = f64::INFINITY;
    let mut replay_json_s = f64::INFINITY;
    for _ in 0..TRIALS {
        replay_binary_s = replay_binary_s.min(replay_trial(&bin_dir, REPLAY_EVENTS));
        replay_json_s = replay_json_s.min(replay_trial(&json_dir, REPLAY_EVENTS));
    }
    let _ = std::fs::remove_dir_all(&bin_dir);
    let _ = std::fs::remove_dir_all(&json_dir);

    let mib = binary_bytes as f64 / (1u64 << 20) as f64;
    CodecBench {
        records: CODEC_RECORDS,
        binary_bytes,
        json_bytes,
        encode_mib_s: mib / encode_s.max(1e-12),
        decode_mib_s: mib / decode_s.max(1e-12),
        replay_events: REPLAY_EVENTS,
        replay_binary_ms: replay_binary_s * 1e3,
        replay_json_ms: replay_json_s * 1e3,
    }
}

/// `DTF_STORE_SCALE` factor: scales every record count in the `scale`
/// subsection. 1.0 is the reference artifact; CI smoke uses 0.125.
fn scale_from_env() -> f64 {
    std::env::var("DTF_STORE_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// KV config for the scale stores: inline maintenance (deterministic),
/// compaction disabled (isolates snapshot-bounded recovery), snapshots on
/// the given cadence.
fn scale_kv_cfg(snapshot_every: u64) -> KvWalConfig {
    KvWalConfig {
        log: LogConfig { flush: FlushPolicy::Manual, sync_data: false, ..Default::default() },
        compact_min_records: u64::MAX,
        compact_ratio: 4,
        snapshot_every,
        background: false,
    }
}

/// Build a KV store of `records` puts over a `keys`-sized working set.
fn build_scale_store(dir: &Path, records: u64, keys: u64, value: &[u8], snapshot_every: u64) {
    let (mut kv, report) = WalKv::open(dir, scale_kv_cfg(snapshot_every)).expect("scale store");
    assert_eq!(report.records, 0, "scale store directory must start empty");
    for i in 0..records {
        kv.put(format!("key-{:08}", i % keys), value.to_vec()).expect("scale put");
    }
    kv.sync().expect("scale sync");
}

/// Best-of-[`TRIALS`] snapshot-aided reopen wall of a scale store, in ms.
fn recovery_wall_ms(dir: &Path, records: u64, snapshot_every: u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        let (kv, report) = WalKv::open(dir, scale_kv_cfg(snapshot_every)).expect("scale reopen");
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(report.records, records, "scale store must recover fully");
        assert!(report.snapshot_records > 0, "reopen must be snapshot-aided");
        drop(kv); // nothing appended: reopen leaves the store as-is
        best = best.min(wall);
    }
    best * 1e3
}

/// Indexed archive reads vs the full-scan alternative over one log of
/// `records` 1 KiB payloads.
fn indexed_bench(records: u64) -> IndexedBench {
    const REC_BYTES: usize = 1024;
    const POINTS: u64 = 256;
    let dir = scratch("indexed");
    let cfg = LogConfig { flush: FlushPolicy::Manual, sync_data: false, ..Default::default() };
    {
        let (mut log, existing, _) = SegmentedLog::open(&dir, cfg).expect("indexed log");
        assert!(existing.is_empty());
        let mut payload = vec![0u8; REC_BYTES];
        for i in 0..records {
            payload[..8].copy_from_slice(&i.to_le_bytes());
            log.append(&payload).expect("append");
        }
        log.sync().expect("sync");
    }

    // the full-scan alternative: every body read and checksummed
    let mut full_scan_s = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        let (log, recovered, _) = SegmentedLog::open(&dir, cfg).expect("full scan");
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(recovered.len() as u64, records);
        log.abandon();
        full_scan_s = full_scan_s.min(wall);
    }

    let opts = ReaderOptions::default();
    let t0 = Instant::now();
    let (reader, report) = LogReader::open(&dir, opts).expect("reader open");
    let reader_open_s = t0.elapsed().as_secs_f64();
    assert_eq!(report.records, records);

    // point reads spread across the log, cold cache at first touch
    let t0 = Instant::now();
    for j in 0..POINTS {
        let idx = (j * records / POINTS + j % 17) % records;
        let rec = reader.get(idx).expect("indexed point read");
        assert_eq!(&rec[..8], &idx.to_le_bytes());
    }
    let point_avg_s = t0.elapsed().as_secs_f64() / POINTS as f64;
    let point_cache = reader.cache_stats();

    // range read mid-log on a fresh reader (fresh cache)
    let (reader2, _) = LogReader::open(&dir, opts).expect("reader reopen");
    let want = 256usize.min(records as usize / 2);
    let t0 = Instant::now();
    let got = reader2.range(records / 2, want);
    let range_s = t0.elapsed().as_secs_f64();
    assert_eq!(got.len(), want);
    let range_cache = reader2.cache_stats();

    let _ = std::fs::remove_dir_all(&dir);
    IndexedBench {
        records,
        record_bytes: REC_BYTES,
        stride: opts.stride,
        full_scan_ms: full_scan_s * 1e3,
        reader_open_ms: reader_open_s * 1e3,
        point_lookups: POINTS,
        point_avg_us: point_avg_s * 1e6,
        range_ms: range_s * 1e3,
        point_speedup: full_scan_s / point_avg_s.max(1e-12),
        range_speedup: full_scan_s / range_s.max(1e-12),
        point_cache_hits: point_cache.hits,
        point_cache_misses: point_cache.misses,
        range_cache_hits: range_cache.hits,
        range_cache_misses: range_cache.misses,
    }
}

/// The scale sweep: recovery walls at two log sizes 8x apart (snapshots
/// make the ratio tail-bounded), the full-replay contrast, and the
/// indexed-read comparison.
fn scale_bench(scale: f64) -> ScaleBench {
    const VALUE_BYTES: usize = 4096;
    let small = ((8192.0 * scale) as u64).max(512);
    let large = small * 8;
    let keys = (small / 4).max(1);
    let snapshot_every = small / 2;
    let value = vec![0x5au8; VALUE_BYTES];

    let small_dir = scratch("scale-small");
    let large_dir = scratch("scale-large");
    build_scale_store(&small_dir, small, keys, &value, snapshot_every);
    build_scale_store(&large_dir, large, keys, &value, snapshot_every);

    let recovery_small_ms = recovery_wall_ms(&small_dir, small, snapshot_every);
    let recovery_large_ms = recovery_wall_ms(&large_dir, large, snapshot_every);

    // contrast: what the same reopen costs as a full body replay
    let mut full_replay_s = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        let (log, recovered, _) =
            SegmentedLog::open(&large_dir, scale_kv_cfg(snapshot_every).log).expect("full replay");
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(recovered.len() as u64, large);
        log.abandon();
        full_replay_s = full_replay_s.min(wall);
    }

    let _ = std::fs::remove_dir_all(&small_dir);
    let _ = std::fs::remove_dir_all(&large_dir);

    ScaleBench {
        scale,
        value_bytes: VALUE_BYTES,
        small_records: small,
        large_records: large,
        recovery_small_ms,
        recovery_large_ms,
        recovery_ratio: recovery_large_ms / recovery_small_ms.max(1e-9),
        full_replay_large_ms: full_replay_s * 1e3,
        indexed: indexed_bench(large),
    }
}

/// Run the storage sweep at the `DTF_STORE_SCALE` env scale.
pub fn storage_bench() -> StorageBench {
    storage_bench_with_scale(scale_from_env())
}

/// Run the storage sweep. `every_record` appends fewer records than the
/// batched policies because each one costs an fsync; rates are still
/// directly comparable since everything is reported per second.
pub fn storage_bench_with_scale(scale: f64) -> StorageBench {
    const RECORD_BYTES: usize = 256;
    const BATCHED_RECORDS: u64 = 16_384;
    let payload = vec![0xa5u8; RECORD_BYTES];
    let mut append = Vec::new();
    let (b, dir) = bench_append("every", FlushPolicy::EveryRecord, "every_record", 512, &payload);
    append.push(b);
    let _ = std::fs::remove_dir_all(&dir);
    let (b, group) = bench_append(
        "group",
        FlushPolicy::EveryN(256),
        "group_commit_256",
        BATCHED_RECORDS,
        &payload,
    );
    append.push(b);
    let (b, dir) = bench_append("manual", FlushPolicy::Manual, "manual", BATCHED_RECORDS, &payload);
    append.push(b);
    let _ = std::fs::remove_dir_all(&dir);

    // Recovery scan: reopen the group-commit log (many segments, all
    // committed) and time the checksum pass, again best-of-TRIALS.
    let mut recovery =
        RecoveryBench { records: 0, segments: 0, wall_s: f64::INFINITY, records_per_s: 0.0 };
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        let (log, recovered, report) =
            SegmentedLog::open(&group, LogConfig::default()).expect("reopen bench log");
        let wall_s = t0.elapsed().as_secs_f64();
        assert_eq!(recovered.len() as u64, BATCHED_RECORDS, "clean reopen recovers every record");
        assert!(!report.torn, "clean reopen reports no tear");
        log.abandon(); // nothing appended; reopen must leave the log as-is
        if wall_s < recovery.wall_s {
            recovery = RecoveryBench {
                records: recovered.len() as u64,
                segments: report.segments as u64,
                wall_s,
                records_per_s: recovered.len() as f64 / wall_s.max(1e-12),
            };
        }
    }
    let _ = std::fs::remove_dir_all(&group);
    StorageBench {
        record_bytes: RECORD_BYTES,
        append,
        recovery,
        codec: codec_bench(),
        scale: scale_bench(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_sweep_measures_all_policies() {
        // 1/16 scale keeps the unit test fast; the full artifact is taken
        // by `repro store-bench` at the env scale.
        let b = storage_bench_with_scale(0.0625);
        assert_eq!(b.record_bytes, 256);
        let policies: Vec<&str> = b.append.iter().map(|a| a.policy.as_str()).collect();
        assert_eq!(policies, ["every_record", "group_commit_256", "manual"]);
        for a in &b.append {
            assert!(a.records_per_s > 0.0, "{}: rate must be positive", a.policy);
        }
        assert_eq!(b.recovery.records, 16_384);
        assert!(b.recovery.segments >= 1);
        assert!(b.recovery.records_per_s > 0.0);
        // codec rows are structurally sound; the 2x replay ratio itself is
        // asserted by hand when reviewing store-bench output, not here (CI
        // boxes are too noisy to gate a ratio between two measurements)
        assert!(b.codec.records > 0 && b.codec.replay_events > 0);
        assert!(
            b.codec.binary_bytes < b.codec.json_bytes,
            "binary encoding must be smaller than JSON ({} vs {})",
            b.codec.binary_bytes,
            b.codec.json_bytes
        );
        assert!(b.codec.encode_mib_s > 0.0 && b.codec.decode_mib_s > 0.0);
        assert!(b.codec.replay_binary_ms > 0.0 && b.codec.replay_json_ms > 0.0);
        // scale rows: structural soundness here; the ≤2x / ≥10x thresholds
        // are gated by store-check against artifacts taken on quiet runs
        assert_eq!(b.scale.small_records, 512);
        assert_eq!(b.scale.large_records, 4096);
        assert!(b.scale.recovery_small_ms > 0.0 && b.scale.recovery_large_ms > 0.0);
        assert!(b.scale.recovery_ratio > 0.0);
        assert!(b.scale.full_replay_large_ms > 0.0);
        let idx = &b.scale.indexed;
        assert_eq!(idx.records, 4096);
        assert!(idx.full_scan_ms > 0.0 && idx.reader_open_ms > 0.0);
        assert!(idx.point_avg_us > 0.0 && idx.range_ms > 0.0);
        assert!(
            idx.point_speedup > 1.0,
            "an indexed point read must beat a full scan (speedup {})",
            idx.point_speedup
        );
        assert!(idx.range_speedup > 1.0, "range speedup {}", idx.range_speedup);
        assert!(
            idx.point_cache_hits + idx.point_cache_misses > 0,
            "point reads must touch the block cache"
        );
        assert!(idx.range_cache_misses > 0, "a fresh-cache range read must miss at least once");
    }
}
