//! Proxy-plane ablation: the `proxy` section of `BENCH_repro.json`
//! (schema 8).
//!
//! One data-heavy layered workflow (large task outputs, heavy cross-layer
//! fan-in) is simulated twice from the same seed — out-of-band plane off
//! and on. The plane is a pure accounting overlay over an unchanged
//! schedule, so the two runs must agree event-for-event (`identical`);
//! the payoff is attribution: with the plane on, every transfer of a
//! published output carries only the [`dtf_proxystore::ProxyRef`]
//! in-band while the payload moves peer-to-peer. The reported
//! `scheduler_bytes_reduction` (all-in-band bytes over in-band bytes with
//! the plane on, via [`dtf_perfrecup::data_movement`]) is what
//! `repro proxy-check` gates (≥5x, plus a 20% regression band), alongside
//! `resolve_ns` — a timed micro-benchmark of the resolver fast path
//! (manifest read + checksum verify + cache admission).

use std::collections::HashSet;
use std::time::Instant;

use serde::Serialize;

use dtf_core::ids::{GraphId, NodeId, RunId, TaskKey, WorkerId};
use dtf_core::time::{Dur, Time};
use dtf_perfrecup::data_movement;
use dtf_proxystore::{ProxyConfig, ProxyPlane};
use dtf_wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};
use dtf_wms::{GraphBuilder, SimAction};

/// The `proxy` section of the artifact.
#[derive(Debug, Serialize)]
pub struct ProxyBench {
    /// Tasks in the data-heavy workflow.
    pub tasks: u64,
    /// Inter-worker transfers the schedule produced.
    pub transfers: u64,
    /// Publish threshold the ablation ran with.
    pub threshold_bytes: u64,
    /// Per-output payload size of the data-heavy layers.
    pub payload_bytes: u64,
    /// Plane-off and plane-on runs agree event-for-event: same wall time,
    /// same start order, same transfers, same transitions.
    pub identical: bool,
    /// Simulated wall time (identical under both configurations).
    pub sim_wall_s: f64,
    /// Total payload bytes moved between workers.
    pub total_bytes: u64,
    /// Scheduler-mediated bytes with the plane off (everything in-band).
    pub in_band_bytes_off: u64,
    /// Scheduler-mediated bytes with the plane on (refs for proxied
    /// transfers, payloads for the rest).
    pub in_band_bytes_on: u64,
    /// Payload bytes that moved peer-to-peer through the blob plane.
    pub out_of_band_bytes: u64,
    /// `in_band_bytes_off / in_band_bytes_on` — gated ≥ 5 by `proxy-check`.
    pub scheduler_bytes_reduction: f64,
    /// Manifests published during the plane-on run.
    pub published: u64,
    /// First-use resolves during the plane-on run.
    pub resolved: u64,
    /// Fresh resolves timed by the micro-benchmark.
    pub resolves: u64,
    /// Best mean nanoseconds per fresh resolve — gated by `proxy-check`.
    pub resolve_ns: f64,
}

/// Layered data-heavy workflow: `width` loaders emit `payload`-sized
/// outputs, then `layers` transform layers with two-parent fan-in keep the
/// large intermediates flowing across workers, and one small reduce drains
/// the last layer. Every large output crosses the publish threshold.
fn data_heavy_workflow(layers: u32, width: u32, payload: u64) -> SimWorkflow {
    let mut b = GraphBuilder::new(GraphId(0));
    let tok = b.new_token();
    let mut prev: Vec<TaskKey> = (0..width)
        .map(|i| {
            b.add_sim(
                "load",
                tok,
                i,
                vec![],
                SimAction::compute_only(Dur::from_secs_f64(1.0), payload),
            )
        })
        .collect();
    for layer in 1..=layers {
        prev = (0..width)
            .map(|i| {
                let deps = vec![prev[i as usize].clone(), prev[((i + 1) % width) as usize].clone()];
                b.add_sim(
                    "transform",
                    tok + layer,
                    i,
                    deps,
                    SimAction::compute_only(Dur::from_secs_f64(0.5), payload),
                )
            })
            .collect();
    }
    b.add_sim(
        "reduce",
        tok + layers + 1,
        0,
        prev,
        SimAction::compute_only(Dur::from_secs_f64(0.5), 1 << 10),
    );
    SimWorkflow {
        name: "proxy-ablation".into(),
        graphs: vec![b.build(&HashSet::new()).expect("valid graph")],
        submit: SubmitPolicy::AllAtOnce,
        startup: Dur::from_secs_f64(1.0),
        inter_graph: Dur::ZERO,
        shutdown: Dur::ZERO,
        dataset: vec![],
    }
}

/// Resolver fast-path micro-benchmark: publish `keys` manifests, then time
/// `keys x workers` fresh resolves (distinct `(key, worker)` pairs so the
/// dedup shortcut never fires). Best-of-`trials` mean ns per resolve.
fn resolve_latency(keys: u32, workers: u32, trials: u32) -> (u64, f64) {
    let resolves = (keys as u64) * (workers as u64);
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let mut plane = ProxyPlane::new(ProxyConfig {
            enabled: true,
            threshold: 1,
            resolver_cache_bytes: u64::MAX,
        });
        let owner = WorkerId::new(NodeId(0), 0);
        let keys: Vec<TaskKey> = (0..keys)
            .map(|i| {
                let key = TaskKey::new("rb", 0, i);
                plane.publish(&key, GraphId(0), owner, 1 << 20, Time(i as u64));
                key
            })
            .collect();
        let t0 = Instant::now();
        for w in 0..workers {
            let to = WorkerId::new(NodeId(w / 4 + 1), w % 4);
            for key in &keys {
                let (_, events) = plane.resolve(key, to, Time(1_000_000)).expect("fresh resolve");
                std::hint::black_box(events.len());
            }
        }
        best = best.min(t0.elapsed().as_secs_f64() / resolves as f64);
    }
    (resolves, best * 1e9)
}

/// Run the ablation at the reference size: 6 transform layers, width 12,
/// 64 MiB payloads, 1 MiB threshold.
pub fn proxy_bench() -> ProxyBench {
    proxy_bench_sized(6, 12, 64 << 20)
}

/// Run the ablation over a `layers`-deep, `width`-wide workflow with
/// `payload`-byte large outputs.
pub fn proxy_bench_sized(layers: u32, width: u32, payload: u64) -> ProxyBench {
    const SEED: u64 = 0x9d0f;
    let threshold = 1u64 << 20;
    let off_cfg = SimConfig { campaign_seed: SEED, run: RunId(0), ..Default::default() };
    let mut on_cfg = off_cfg.clone();
    on_cfg.proxy =
        ProxyConfig { enabled: true, threshold, resolver_cache_bytes: 4 * payload.max(1) };

    let wf = data_heavy_workflow(layers, width, payload);
    let tasks = wf.graphs.iter().map(|g| g.len() as u64).sum();
    let off = SimCluster::new(off_cfg).expect("cluster").run(wf.clone()).expect("plane-off run");
    let on = SimCluster::new(on_cfg).expect("cluster").run(wf).expect("plane-on run");

    let identical = off.wall_time == on.wall_time
        && off.start_order == on.start_order
        && serde_json::to_string(&off.comms).unwrap() == serde_json::to_string(&on.comms).unwrap()
        && serde_json::to_string(&off.transitions).unwrap()
            == serde_json::to_string(&on.transitions).unwrap();

    let s_off = data_movement::summary(&off);
    let s_on = data_movement::summary(&on);
    debug_assert_eq!(s_off.in_band_bytes, s_off.total_bytes, "plane off: everything in-band");

    use dtf_core::events::ProxyAction;
    let published = on.proxies.iter().filter(|p| p.action == ProxyAction::Published).count() as u64;
    let resolved = on.proxies.iter().filter(|p| p.action == ProxyAction::Resolved).count() as u64;

    let (resolves, resolve_ns) = resolve_latency(256, 8, 3);

    ProxyBench {
        tasks,
        transfers: on.comms.len() as u64,
        threshold_bytes: threshold,
        payload_bytes: payload,
        identical,
        sim_wall_s: on.wall_time.as_secs_f64(),
        total_bytes: s_on.total_bytes,
        in_band_bytes_off: s_off.in_band_bytes,
        in_band_bytes_on: s_on.in_band_bytes,
        out_of_band_bytes: s_on.out_of_band_bytes,
        scheduler_bytes_reduction: s_off.in_band_bytes as f64 / s_on.in_band_bytes.max(1) as f64,
        published,
        resolved,
        resolves,
        resolve_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_bench_shows_reduction_at_small_scale() {
        // small shape keeps the unit test fast; the reference artifact is
        // taken by `repro proxy-bench` at 6x12 with 64 MiB payloads
        let b = proxy_bench_sized(3, 6, 16 << 20);
        assert!(b.identical, "plane on/off must agree event-for-event");
        assert!(b.published > 0, "large outputs must publish");
        assert!(b.resolved > 0, "cross-worker dependents must resolve");
        assert!(b.out_of_band_bytes > 0);
        assert_eq!(b.in_band_bytes_off, b.total_bytes);
        assert!(
            b.scheduler_bytes_reduction >= 5.0,
            "data-heavy run must relieve the scheduler channel ≥5x, got {:.2}",
            b.scheduler_bytes_reduction
        );
        assert!(b.resolve_ns > 0.0);
        assert_eq!(b.resolves, 256 * 8);
    }
}
