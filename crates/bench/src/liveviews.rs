//! Live-view maintenance benchmark: the `views` section of
//! `BENCH_repro.json` (schema 7).
//!
//! One synthetic run's task-done stream (category waves over a fixed
//! worker pool, every `(stop, start)` pair distinct so the post-hoc sort
//! order is unambiguous) is produced into a Mofka service and consumed two
//! ways:
//!
//! * **incremental** — a [`dtf_perfrecup::live::LiveViews`] engine pumps
//!   the stream in Δ-sized batches and publishes a fresh snapshot after
//!   each one, with subscriber threads blocked on versioned handles. The
//!   reported `delta_refresh_ms` is the best of several *timed* Δ-batches
//!   appended once the engine already holds the full run — the marginal
//!   cost of keeping the views fresh at size.
//! * **recompute** — the non-incremental alternative a dashboard would
//!   otherwise pay per refresh: re-drain the stream from the service
//!   (fresh consumer group) and re-run the post-hoc kernels
//!   (`per_category` + `per_worker` + `phase_sample`) over everything.
//!
//! `speedup = recompute / delta_refresh` is what `repro view-check` gates
//! (≥10x), alongside `equivalent`: the finalized live snapshot must be
//! value-identical to the post-hoc kernels over the drained record.

use std::time::{Duration, Instant};

use serde::Serialize;

use dtf_core::events::TaskDoneEvent;
use dtf_core::ids::{GraphId, NodeId, RunId, TaskKey, ThreadId, WorkerId};
use dtf_core::provenance::{HardwareInfo, JobInfo, ProvenanceChart, SystemInfo, WmsConfig};
use dtf_core::time::{Dur, Time};
use dtf_darshan::log::LogSet;
use dtf_mofka::bedrock::BedrockConfig;
use dtf_mofka::{Event, ProducerConfig};
use dtf_perfrecup::category::per_category;
use dtf_perfrecup::live::{phase_sample, LiveConfig, LiveViews, RunFinal};
use dtf_perfrecup::utilization::per_worker;
use dtf_wms::RunData;

/// The `views` section of the artifact.
#[derive(Debug, Serialize)]
pub struct ViewBench {
    /// Task-done events in the synthetic stream.
    pub events: u64,
    /// Δ: events per live refresh (pump + publish).
    pub batch: u64,
    /// Distinct task categories (arriving in waves, as workflow layers do).
    pub categories: u64,
    /// Workers the stream round-robins over.
    pub workers: u64,
    /// Utilization bins the live config maintains.
    pub bins: u64,
    /// Publishes performed while ingesting the stream.
    pub refreshes: u64,
    /// Total live-path wall: every pump + publish, plus finalize.
    pub ingest_ms: f64,
    /// Best timed Δ-refresh with the full run already ingested.
    pub delta_refresh_ms: f64,
    /// One post-hoc drain of the stream (fresh consumer group).
    pub drain_ms: f64,
    /// Post-hoc kernels over the drained record.
    pub kernels_ms: f64,
    /// `drain + kernels` — the non-incremental refresh.
    pub recompute_ms: f64,
    /// `recompute / delta_refresh` — gated ≥ 10 by `view-check`.
    pub speedup: f64,
    /// Finalized live snapshot is value-identical to the post-hoc kernels.
    pub equivalent: bool,
    /// Subscriber threads that observed a published version during ingest.
    pub subscribers: u64,
    /// Snapshot version after finalize.
    pub final_version: u64,
}

const CATEGORIES: u64 = 64;
const WORKERS: u64 = 16;
const BINS: usize = 20;
/// Timed Δ-refresh rounds appended at full size; the best is reported.
const TAIL_ROUNDS: u64 = 5;
/// Post-hoc trials (drain + kernels); the best of each is reported.
const TRIALS: u64 = 3;

/// Event `i` of `n`: categories arrive in waves (`i * CATEGORIES / n`,
/// the shape workflow layers produce), workers round-robin, and both
/// `start` and `stop` are strictly increasing in `i` so every post-hoc
/// sort key is distinct — order equivalence cannot hinge on tie-breaks.
fn synth_event(i: u64, n: u64) -> TaskDoneEvent {
    let c = (i * CATEGORIES / n.max(1)).min(CATEGORIES - 1);
    let w = i % WORKERS;
    let start = 1_000_000 + i * 1_000;
    TaskDoneEvent {
        key: TaskKey::new(format!("view{c:03}").as_str(), c as u32, i as u32),
        graph: GraphId((i % 3) as u32),
        worker: WorkerId::new(NodeId((w / 4) as u32), (w % 4) as u32),
        thread: ThreadId(w),
        start: Time(start),
        stop: Time(start + 640 + (i % 251)),
        nbytes: (i * 4096) % (1 << 24),
    }
}

/// Static chart for the drain plumbing (the view kernels never read it).
fn bench_chart() -> ProvenanceChart {
    ProvenanceChart {
        hardware: HardwareInfo::polaris_like(1),
        system: SystemInfo::synthetic(),
        job: JobInfo {
            job_id: 1,
            script: "#!/bin/bash\nrepro view-bench".into(),
            queue: "debug".into(),
            nodes_requested: 1,
            allocated_nodes: vec![NodeId(0)],
            submit_time: Time(0),
            start_time: Time(0),
            walltime_limit_s: 3600,
        },
        wms_config: WmsConfig::default(),
        client_code_hash: 0x7fec,
        workflow_name: "view-bench".into(),
    }
}

/// Run the sweep at the reference size: 100k events, Δ = 1000.
pub fn view_bench() -> ViewBench {
    view_bench_sized(100_000, 1_000)
}

/// Run the sweep over `events` task-done events in Δ = `batch` refreshes.
pub fn view_bench_sized(events: u64, batch: u64) -> ViewBench {
    assert!(events > TAIL_ROUNDS * batch, "stream must be larger than the timed tail");
    let svc = BedrockConfig::wms_default().bootstrap().expect("view-bench service");
    let wall_time = Dur(1_000_000 + events * 1_000 + 1_000);
    let head = events - TAIL_ROUNDS * batch;

    let mut producer = svc.producer("task-done", ProducerConfig::default()).expect("producer");
    for i in 0..head {
        producer.push(Event::typed(synth_event(i, events))).expect("push");
    }
    producer.flush().expect("flush");
    svc.sync().expect("sync");

    let cfg = LiveConfig { group: "view-bench".into(), bins: BINS, threads_per_worker: 1 };
    let mut live = LiveViews::attach(&svc, cfg).expect("attach");
    let subscribers: Vec<_> = (0..4)
        .map(|_| {
            let sub = live.subscribe();
            std::thread::spawn(move || sub.wait_newer(0, Duration::from_secs(120)).version)
        })
        .collect();

    // ingest the head of the stream, one publish per Δ-batch
    let mut ingest_s = 0.0;
    let mut refreshes = 0u64;
    let deadline = Instant::now() + Duration::from_secs(300);
    let t0 = Instant::now();
    while live.progress().task_done < head {
        if live.pump(batch as usize).expect("pump") > 0 {
            live.publish();
            refreshes += 1;
        }
        assert!(Instant::now() < deadline, "live ingest stalled");
    }
    ingest_s += t0.elapsed().as_secs_f64();

    // timed Δ-refreshes with the full run already held: produce one more
    // batch, then time exactly the live path that absorbs it
    let mut delta_s = f64::INFINITY;
    for round in 0..TAIL_ROUNDS {
        let hi = head + (round + 1) * batch;
        for i in (hi - batch)..hi {
            producer.push(Event::typed(synth_event(i, events))).expect("push");
        }
        producer.flush().expect("flush");
        svc.sync().expect("sync");
        let t = Instant::now();
        while live.progress().task_done < hi {
            live.pump(batch as usize).expect("pump");
            assert!(Instant::now() < deadline, "live ingest stalled");
        }
        live.publish();
        let round_s = t.elapsed().as_secs_f64();
        ingest_s += round_s;
        delta_s = delta_s.min(round_s);
        refreshes += 1;
    }

    let t = Instant::now();
    let snap = live.finalize(RunFinal { darshan: LogSet::default(), wall_time }).expect("finalize");
    ingest_s += t.elapsed().as_secs_f64();

    // the non-incremental alternative: re-drain the stream and re-run the
    // post-hoc kernels over everything, best-of-TRIALS
    let chart = bench_chart();
    let mut drain_s = f64::INFINITY;
    let mut kernels_s = f64::INFINITY;
    let mut equivalent = false;
    for trial in 0..TRIALS {
        let t = Instant::now();
        let data = RunData::drain_from_mofka(
            &svc,
            RunId(900 + trial as u32), // fresh consumer group per trial
            "view-bench".into(),
            chart.clone(),
            LogSet::default(),
            wall_time,
            Vec::new(),
            0,
        )
        .expect("post-hoc drain");
        drain_s = drain_s.min(t.elapsed().as_secs_f64());
        assert_eq!(data.task_done.len() as u64, events, "drain must see the whole stream");
        let t = Instant::now();
        let cats = per_category(&data);
        let util = per_worker(&data, BINS, 1);
        let phases = phase_sample(&data);
        kernels_s = kernels_s.min(t.elapsed().as_secs_f64());
        equivalent = snap.categories == cats && snap.utilization == util && snap.phases == phases;
    }

    // every subscriber saw a published version (the first publish happened
    // long before this join, so these return immediately)
    let live_subscribers = subscribers
        .into_iter()
        .filter_map(|h| h.join().ok())
        .filter(|version| *version >= 1)
        .count() as u64;

    let recompute_s = drain_s + kernels_s;
    ViewBench {
        events,
        batch,
        categories: CATEGORIES,
        workers: WORKERS,
        bins: BINS as u64,
        refreshes,
        ingest_ms: ingest_s * 1e3,
        delta_refresh_ms: delta_s * 1e3,
        drain_ms: drain_s * 1e3,
        kernels_ms: kernels_s * 1e3,
        recompute_ms: recompute_s * 1e3,
        speedup: recompute_s / delta_s.max(1e-12),
        equivalent,
        subscribers: live_subscribers,
        final_version: snap.version,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_bench_is_equivalent_and_sane() {
        // small stream keeps the unit test fast; the reference artifact is
        // taken by `repro view-bench` at 100k events
        let b = view_bench_sized(4_000, 200);
        assert_eq!(b.events, 4_000);
        assert!(b.refreshes >= TAIL_ROUNDS, "every Δ-batch published");
        assert!(b.equivalent, "live snapshot must equal the post-hoc kernels");
        assert!(b.delta_refresh_ms > 0.0 && b.recompute_ms > 0.0);
        assert!(b.speedup > 0.0);
        assert_eq!(b.subscribers, 4);
        assert!(b.final_version >= 1);
    }
}
