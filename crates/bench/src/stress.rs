//! Many-client stress bench for the sharded concurrent Mofka data plane —
//! the `stress` section of `BENCH_repro.json` (schema 5).
//!
//! One real-time service, hundreds of concurrent clients: `producers`
//! producer threads each push `events_per_producer` typed events through
//! the shard plane while `groups × members_per_group` consumer threads
//! (pipelined when `pipeline_depth > 0`) tail the topic in situ, every
//! group draining the full stream. The headline number is *aggregate*
//! throughput — events produced plus events delivered, over one wall
//! clock — the quantity that scales with concurrent fan-out and that the
//! `stress-check` CI gate holds a floor under.
//!
//! The smoke configuration additionally verifies delivery: every group
//! sees each (producer, seq) pair exactly once, with per-producer order
//! preserved inside each partition — the same invariants the mofka
//! concurrency proptests check, here under real threads and real time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use serde::Serialize;

use dtf_mofka::producer::{PartitionStrategy, ProducerConfig};
use dtf_mofka::{ConsumerConfig, Event, Metadata, MofkaService, TopicConfig};

/// Knobs of one stress run.
#[derive(Debug, Clone)]
pub struct StressConfig {
    pub producers: usize,
    pub events_per_producer: u64,
    pub partitions: u32,
    /// Shard workers of the real-time plane (0 = auto).
    pub shards: usize,
    pub groups: usize,
    pub members_per_group: usize,
    /// Consumer pipeline depth; 0 uses synchronous (unpipelined) members.
    pub pipeline_depth: usize,
    pub batch_size: usize,
    pub prefetch: usize,
    /// Track (producer, seq) per delivery and check exactly-once + order.
    pub verify: bool,
    /// Independent runs to take; the best aggregate is reported. The
    /// machine hosting a stress run is rarely quiet — CPU steal and
    /// scheduler noise can halve one run's throughput — so the bench
    /// measures the plane's capability as the best of a few trials, the
    /// same way Criterion-style benches discard cold iterations.
    pub trials: usize,
}

impl StressConfig {
    /// The full many-client configuration `repro stress-bench` runs: 256
    /// producers and 8 consumer groups (264 concurrent clients) on one
    /// service. Each knob can be overridden through `DTF_STRESS_*`
    /// environment variables (producers, events, partitions, shards,
    /// groups, members, depth, batch, prefetch) for tuning sweeps.
    pub fn full() -> Self {
        fn knob(name: &str, default: usize) -> usize {
            std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
        }
        Self {
            producers: knob("DTF_STRESS_PRODUCERS", 256),
            events_per_producer: knob("DTF_STRESS_EVENTS", 20_000) as u64,
            partitions: knob("DTF_STRESS_PARTITIONS", 2) as u32,
            shards: knob("DTF_STRESS_SHARDS", 4),
            groups: knob("DTF_STRESS_GROUPS", 8),
            members_per_group: knob("DTF_STRESS_MEMBERS", 1),
            pipeline_depth: knob("DTF_STRESS_DEPTH", 0),
            batch_size: knob("DTF_STRESS_BATCH", 2048),
            prefetch: knob("DTF_STRESS_PREFETCH", 4096),
            verify: false,
            trials: knob("DTF_STRESS_TRIALS", 4),
        }
    }

    /// The scaled-down CI smoke: 16 producers × 4 consumer groups, with
    /// full exactly-once verification.
    pub fn smoke() -> Self {
        Self {
            producers: 16,
            events_per_producer: 2_000,
            partitions: 4,
            shards: 2,
            groups: 4,
            members_per_group: 2,
            pipeline_depth: 2,
            batch_size: 64,
            prefetch: 256,
            verify: true,
            trials: 1,
        }
    }
}

/// The `stress` section of the artifact.
#[derive(Debug, Serialize)]
pub struct StressBench {
    pub producers: u64,
    pub events_per_producer: u64,
    pub partitions: u64,
    pub shards: u64,
    pub consumer_groups: u64,
    pub members_per_group: u64,
    pub pipeline_depth: u64,
    pub batch_size: u64,
    pub prefetch: u64,
    pub events_produced: u64,
    pub events_consumed: u64,
    pub wall_s: f64,
    pub produced_per_s: f64,
    pub consumed_per_s: f64,
    /// (produced + consumed) / wall — the >10M events/s target and the
    /// `stress-check` gate read this field.
    pub aggregate_events_per_s: f64,
    /// How many trials this best-of measurement took.
    pub trials: u64,
}

/// Outcome of a stress run: the measurement plus any delivery violations
/// (always empty unless `verify` was set — and must stay empty then).
#[derive(Debug)]
pub struct StressOutcome {
    pub bench: StressBench,
    pub violations: Vec<String>,
}

/// One delivered event, as tracked in verify mode.
#[derive(Debug, Clone, Copy)]
struct Delivery {
    partition: u32,
    offset: u64,
    producer: u64,
    seq: u64,
}

fn make_event(verify: bool, shared: &Arc<dtf_core::events::ProvRecord>, p: u64, s: u64) -> Event {
    if verify {
        Event::meta_only(serde_json::json!({ "p": p, "s": s }))
    } else {
        // the hot path ships typed records: one shared Arc per producer,
        // refcount-bumped per event — what the provenance pipeline does
        Event { metadata: Metadata::Typed(shared.clone()), data: Default::default() }
    }
}

/// Check the smoke invariants for one group's deliveries: exactly-once
/// over all (producer, seq) pairs, unique (partition, offset) claims, and
/// per-producer seq order preserved within each (member, partition).
fn verify_group(
    group: usize,
    cfg: &StressConfig,
    per_member: &[Vec<Delivery>],
    violations: &mut Vec<String>,
) {
    let expected = cfg.producers as u64 * cfg.events_per_producer;
    let total: usize = per_member.iter().map(|m| m.len()).sum();
    if total as u64 != expected {
        violations.push(format!("group {group}: delivered {total}, expected {expected}"));
    }
    let mut seen_slot = std::collections::HashSet::with_capacity(total);
    let mut seen_pair = std::collections::HashSet::with_capacity(total);
    for (member, deliveries) in per_member.iter().enumerate() {
        // per (producer, partition) the seq must increase in delivery
        // order: batches preserve producer order, partitions preserve
        // append order, and a member drains claims in claim order
        let mut last_seq: std::collections::HashMap<(u64, u32), u64> = Default::default();
        for d in deliveries {
            if !seen_slot.insert((d.partition, d.offset)) {
                violations.push(format!(
                    "group {group}: slot ({}, {}) delivered twice",
                    d.partition, d.offset
                ));
            }
            if !seen_pair.insert((d.producer, d.seq)) {
                violations.push(format!(
                    "group {group}: event (p{}, s{}) delivered twice",
                    d.producer, d.seq
                ));
            }
            if let Some(prev) = last_seq.insert((d.producer, d.partition), d.seq) {
                if d.seq <= prev {
                    violations.push(format!(
                        "group {group} member {member}: producer {} seq {} after {} in \
                         partition {}",
                        d.producer, d.seq, prev, d.partition
                    ));
                }
            }
        }
    }
    if seen_pair.len() as u64 != expected && total as u64 == expected {
        violations.push(format!(
            "group {group}: only {} distinct (producer, seq) pairs of {expected}",
            seen_pair.len()
        ));
    }
}

/// Run one stress configuration against a fresh real-time service,
/// best-of-`trials` (delivery violations from every trial are kept).
pub fn stress_bench(cfg: &StressConfig) -> StressOutcome {
    let mut best: Option<StressOutcome> = None;
    for _ in 0..cfg.trials.max(1) {
        let run = stress_run(cfg);
        best = Some(match best.take() {
            Some(mut prev) => {
                if run.bench.aggregate_events_per_s > prev.bench.aggregate_events_per_s {
                    let mut run = run;
                    run.violations.extend(prev.violations);
                    run
                } else {
                    prev.violations.extend(run.violations);
                    prev
                }
            }
            None => run,
        });
    }
    best.expect("at least one trial")
}

/// One trial: fresh service, full produce + consume overlap, one wall clock.
fn stress_run(cfg: &StressConfig) -> StressOutcome {
    let svc = MofkaService::real_time(cfg.shards);
    svc.create_topic("stress", TopicConfig { partitions: cfg.partitions }).expect("topic");
    let shards = svc.plane().expect("real-time service has a plane").num_shards();
    let expected = cfg.producers as u64 * cfg.events_per_producer;
    // everyone (producers, consumers, the timing thread) starts together
    let start = Barrier::new(cfg.producers + cfg.groups * cfg.members_per_group + 1);
    let group_counts: Vec<AtomicU64> = (0..cfg.groups).map(|_| AtomicU64::new(0)).collect();
    let shared_record =
        Arc::new(dtf_core::events::ProvRecord::from(dtf_core::events::WarningEvent {
            kind: dtf_core::events::WarningKind::GcPause,
            worker: None,
            time: dtf_core::time::Time(0),
            duration: dtf_core::time::Dur(1),
        }));

    let mut wall_s = 0.0;
    let mut consumed_total = 0u64;
    let mut violations = Vec::new();
    std::thread::scope(|scope| {
        let mut producer_handles = Vec::new();
        for p in 0..cfg.producers {
            let svc = &svc;
            let start = &start;
            let shared = shared_record.clone();
            producer_handles.push(scope.spawn(move || {
                let mut producer = svc
                    .producer(
                        "stress",
                        ProducerConfig {
                            batch_size: cfg.batch_size,
                            strategy: PartitionStrategy::RoundRobin,
                        },
                    )
                    .expect("producer");
                start.wait();
                for s in 0..cfg.events_per_producer {
                    producer.push(make_event(cfg.verify, &shared, p as u64, s)).expect("push");
                }
                // flush + plane barrier: every handed-off batch is applied
                // (and deferred shard errors would surface here)
                producer.sync().expect("producer sync");
            }));
        }
        let mut consumer_handles = Vec::new();
        for (g, group_count) in group_counts.iter().enumerate() {
            for _m in 0..cfg.members_per_group {
                let svc = &svc;
                let start = &start;
                let count = group_count;
                consumer_handles.push(scope.spawn(move || {
                    let ccfg = ConsumerConfig { group: format!("g{g}"), prefetch: cfg.prefetch };
                    let mut consumer = if cfg.pipeline_depth > 0 {
                        svc.consumer_pipelined("stress", ccfg, cfg.pipeline_depth)
                            .expect("pipelined consumer")
                    } else {
                        svc.consumer("stress", ccfg).expect("consumer")
                    };
                    let mut deliveries = Vec::new();
                    let mut delivered = 0u64;
                    // Accumulation backoff: while tailing live producers,
                    // pulls come back small and their fixed claim cost
                    // (locks + a KV update) swamps the per-event work —
                    // and every cycle spent here is stolen from the
                    // producers we are waiting on. Small pulls double the
                    // pause (cap 32ms); a full pull means a backlog built
                    // up, so drop back to draining at full speed.
                    let mut pause = std::time::Duration::from_millis(1);
                    const MAX_PAUSE: std::time::Duration = std::time::Duration::from_millis(32);
                    start.wait();
                    loop {
                        let batch = consumer.pull(4096).expect("pull");
                        if batch.len() >= 2048 {
                            pause = std::time::Duration::from_millis(1);
                        } else if count.load(Ordering::Acquire) + batch.len() as u64 >= expected
                            && batch.is_empty()
                        {
                            break;
                        } else {
                            std::thread::sleep(pause);
                            pause = (pause * 2).min(MAX_PAUSE);
                        }
                        if batch.is_empty() {
                            continue;
                        }
                        delivered += batch.len() as u64;
                        count.fetch_add(batch.len() as u64, Ordering::AcqRel);
                        if cfg.verify {
                            deliveries.extend(batch.iter().map(|se| Delivery {
                                partition: se.id.partition,
                                offset: se.id.offset,
                                producer: se.event.metadata["p"].as_u64().unwrap_or(u64::MAX),
                                seq: se.event.metadata["s"].as_u64().unwrap_or(u64::MAX),
                            }));
                        }
                    }
                    (delivered, deliveries)
                }));
            }
        }
        start.wait();
        let t0 = Instant::now();
        for h in producer_handles {
            h.join().expect("producer thread");
        }
        let mut per_group: Vec<Vec<Vec<Delivery>>> = (0..cfg.groups).map(|_| Vec::new()).collect();
        for (i, h) in consumer_handles.into_iter().enumerate() {
            let (delivered, deliveries) = h.join().expect("consumer thread");
            consumed_total += delivered;
            per_group[i / cfg.members_per_group].push(deliveries);
        }
        wall_s = t0.elapsed().as_secs_f64();
        if cfg.verify {
            for (g, members) in per_group.iter().enumerate() {
                verify_group(g, cfg, members, &mut violations);
            }
        }
    });

    let produced = expected;
    let bench = StressBench {
        producers: cfg.producers as u64,
        events_per_producer: cfg.events_per_producer,
        partitions: cfg.partitions as u64,
        shards: shards as u64,
        consumer_groups: cfg.groups as u64,
        members_per_group: cfg.members_per_group as u64,
        pipeline_depth: cfg.pipeline_depth as u64,
        batch_size: cfg.batch_size as u64,
        prefetch: cfg.prefetch as u64,
        events_produced: produced,
        events_consumed: consumed_total,
        wall_s,
        produced_per_s: produced as f64 / wall_s.max(1e-12),
        consumed_per_s: consumed_total as f64 / wall_s.max(1e-12),
        aggregate_events_per_s: (produced + consumed_total) as f64 / wall_s.max(1e-12),
        trials: cfg.trials.max(1) as u64,
    };
    StressOutcome { bench, violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_stress_run_is_exact_and_clean() {
        let cfg = StressConfig {
            producers: 4,
            events_per_producer: 500,
            partitions: 2,
            shards: 2,
            groups: 2,
            members_per_group: 2,
            pipeline_depth: 1,
            batch_size: 16,
            prefetch: 32,
            verify: true,
            trials: 1,
        };
        let out = stress_bench(&cfg);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.bench.events_produced, 2_000);
        assert_eq!(out.bench.events_consumed, 4_000, "each group drains the full stream");
    }

    #[test]
    fn synchronous_members_also_run_clean() {
        let cfg = StressConfig {
            producers: 3,
            events_per_producer: 400,
            partitions: 3,
            shards: 0,
            groups: 2,
            members_per_group: 1,
            pipeline_depth: 0,
            batch_size: 8,
            prefetch: 64,
            verify: true,
            trials: 1,
        };
        let out = stress_bench(&cfg);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.bench.events_consumed, 2 * 1_200);
    }
}
