//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--seed N] [--runs N]
//!
//! experiments:
//!   table1   fig3   fig4   fig5   fig6   fig7   fig8
//!   ablation-stealing   ablation-dxt-buffer   ablation-dxt-threads
//!   ablation-schedule-order   ablation-mofka-batch
//!   chaos           (--seed N --schedules K: seeded fault-schedule campaign;
//!                    exits nonzero on any oracle/determinism failure)
//!   chaos-replay    (--seed N --index I: replay one schedule, print its
//!                    JSON and outcome)
//!   bench           (--runs N --jobs J: timed perf sweep — scheduler
//!                    throughput, frame kernels, provenance pipeline,
//!                    sequential-vs-parallel campaigns — written to
//!                    BENCH_repro.json)
//!   provenance-bench  (measure the provenance pipeline alone and print
//!                      events/s)
//!   provenance-check  (measure and gate against the committed
//!                      BENCH_repro.json: exits nonzero if events/s
//!                      regressed by more than 20%)
//!   all      (everything above, in order)
//! ```
//!
//! `--runs` caps campaign sizes (default: the paper's 10/10/50).

use dtf_bench::{ablations, experiments};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut seed = 42u64;
    let mut runs: Option<u32> = None;
    let mut schedules = 50u64;
    let mut index = 0u64;
    let mut jobs: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                i += 1;
                jobs = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--runs" => {
                i += 1;
                runs = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--schedules" => {
                i += 1;
                schedules = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--index" => {
                i += 1;
                index = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            c if cmd.is_none() => cmd = Some(c.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let Some(cmd) = cmd else { usage() };
    match cmd.as_str() {
        "chaos" => std::process::exit(chaos_campaign(seed, schedules)),
        "chaos-replay" => std::process::exit(chaos_replay(seed, index)),
        "bench" => std::process::exit(perf_bench(seed, runs.unwrap_or(3), jobs)),
        "provenance-bench" => std::process::exit(provenance_bench()),
        "provenance-check" => std::process::exit(provenance_check()),
        _ => {}
    }
    let ablation_runs = runs.unwrap_or(6);
    let run_one = |name: &str| match name {
        "table1" => experiments::table1(seed, runs),
        "fig3" => experiments::fig3(seed, runs),
        "fig4" => experiments::fig4(seed),
        "fig5" => experiments::fig5(seed),
        "fig6" => experiments::fig6(seed),
        "fig7" => experiments::fig7(seed),
        "fig8" => experiments::fig8(seed),
        "ablation-stealing" => ablations::stealing(seed, ablation_runs),
        "ablation-dxt-buffer" => ablations::dxt_buffer(seed),
        "ablation-dxt-threads" => ablations::dxt_thread_ids(seed),
        "ablation-schedule-order" => ablations::schedule_order_similarity(seed, ablation_runs),
        "ablation-mofka-batch" => ablations::mofka_batch(seed),
        "overhead" => ablations::instrumentation_overhead(ablation_runs.min(10)),
        "category-variability" => {
            ablations::category_variability(seed, ablation_runs, dtf_workflows::Workload::Xgboost)
        }
        "timeline" => {
            ablations::utilization_timeline(seed, dtf_workflows::Workload::ImageProcessing)
        }
        "export-run" => {
            use dtf_core::ids::RunId;
            use dtf_core::rngx::RunRng;
            use dtf_wms::sim::{SimCluster, SimConfig};
            let workload = dtf_workflows::Workload::ImageProcessing;
            let mut cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
            workload.adjust(&mut cfg);
            let rr = RunRng::new(seed, RunId(0));
            let data =
                SimCluster::new(cfg).expect("cluster").run(workload.generate(&rr)).expect("run");
            let dir = std::path::PathBuf::from("dtf-run-export");
            let n = dtf_perfrecup::export::export_run(&data, &dir).expect("export");
            format!("exported {n} files to {}\n", dir.display())
        }
        "debug-comms-ip" => ablations::debug_comms(seed, dtf_workflows::Workload::ImageProcessing),
        "debug-comms-rn" => ablations::debug_comms(seed, dtf_workflows::Workload::ResNet152),
        "debug-comms-xgb" => ablations::debug_comms(seed, dtf_workflows::Workload::Xgboost),
        _ => usage(),
    };
    if cmd == "all" {
        for name in [
            "table1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "ablation-stealing",
            "ablation-dxt-buffer",
            "ablation-dxt-threads",
            "ablation-schedule-order",
            "ablation-mofka-batch",
            "overhead",
            "category-variability",
            "timeline",
        ] {
            println!("{}", run_one(name));
        }
    } else {
        println!("{}", run_one(&cmd));
    }
}

/// Run a chaos campaign: K seeded fault schedules, each run twice under
/// virtual time with live invariant checks, gated on byte-identical
/// transition logs, judged by the post-run oracles. Returns the exit code.
fn chaos_campaign(seed: u64, schedules: u64) -> i32 {
    use dtf_chaos::{run_schedule, ChaosConfig};
    let chaos = ChaosConfig::default();
    println!("chaos campaign: seed {seed}, {schedules} schedules");
    let mut passed = 0u64;
    let mut failed = 0u64;
    for i in 0..schedules {
        let outcome = run_schedule(seed, i, &chaos);
        if outcome.passed() {
            passed += 1;
        } else {
            failed += 1;
            println!("{}", outcome.describe());
            println!("  replay: repro chaos-replay --seed {seed} --index {i}");
            println!("  schedule: {}", outcome.schedule.to_json());
        }
    }
    println!("chaos campaign: {passed}/{schedules} passed, {failed} failed");
    if failed > 0 {
        1
    } else {
        0
    }
}

/// Replay one schedule of a campaign and print everything a bug report
/// needs: the schedule JSON and the full outcome. Returns the exit code.
fn chaos_replay(seed: u64, index: u64) -> i32 {
    use dtf_chaos::{run_schedule, schedule_seed, ChaosConfig};
    let outcome = run_schedule(seed, index, &ChaosConfig::default());
    println!(
        "campaign seed {seed}, index {index} -> schedule seed {:016x}",
        schedule_seed(seed, index)
    );
    println!("schedule: {}", outcome.schedule.to_json());
    println!("{}", outcome.describe());
    for v in &outcome.violations {
        println!("  violation: {v}");
    }
    if outcome.passed() {
        0
    } else {
        1
    }
}

/// Timed perf sweep. Writes `BENCH_repro.json` to the working directory
/// and prints a short summary; exits nonzero if the artifact could not be
/// written (the parallel-vs-sequential identity check asserts internally).
fn perf_bench(seed: u64, runs: u32, jobs: Option<usize>) -> i32 {
    let (json, text) = dtf_bench::perf::bench_artifact(seed, runs, jobs);
    print!("{text}");
    match std::fs::write("BENCH_repro.json", json) {
        Ok(()) => {
            println!("wrote BENCH_repro.json");
            0
        }
        Err(e) => {
            eprintln!("failed to write BENCH_repro.json: {e}");
            1
        }
    }
}

/// Measure the provenance pipeline alone (the fast path for iterating on
/// it) and print the section that `bench` embeds in `BENCH_repro.json`.
fn provenance_bench() -> i32 {
    let p = dtf_bench::provenance::provenance_pipeline(2_000, 3);
    println!(
        "provenance pipeline: {:.0} events/s ({} events in {:.2}s)",
        p.events_per_s, p.events, p.wall_s
    );
    println!("{}", serde_json::to_string_pretty(&p).expect("section serializes"));
    0
}

/// CI regression gate: re-measure the provenance pipeline and compare to
/// the committed `BENCH_repro.json`. Fails (exit 1) on a >20% drop in
/// events/s; fails (exit 2) if the baseline artifact is missing the field,
/// so the gate can never silently pass.
fn provenance_check() -> i32 {
    const ALLOWED_REGRESSION: f64 = 0.20;
    let baseline = match std::fs::read_to_string("BENCH_repro.json") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("provenance-check: cannot read BENCH_repro.json: {e}");
            return 2;
        }
    };
    let doc: serde_json::Value = match serde_json::from_str(&baseline) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("provenance-check: BENCH_repro.json is not valid JSON: {e}");
            return 2;
        }
    };
    let Some(expected) = doc["provenance_pipeline"]["events_per_s"].as_f64() else {
        eprintln!("provenance-check: BENCH_repro.json has no provenance_pipeline.events_per_s");
        return 2;
    };
    let p = dtf_bench::provenance::provenance_pipeline(2_000, 3);
    let floor = expected * (1.0 - ALLOWED_REGRESSION);
    println!(
        "provenance pipeline: measured {:.0} events/s, baseline {:.0} (floor {:.0})",
        p.events_per_s, expected, floor
    );
    if p.events_per_s < floor {
        eprintln!(
            "provenance-check: FAIL — events/s regressed more than {:.0}%",
            ALLOWED_REGRESSION * 100.0
        );
        1
    } else {
        println!("provenance-check: OK");
        0
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <table1|fig3|fig4|fig5|fig6|fig7|fig8|\\
ablation-stealing|ablation-dxt-buffer|ablation-dxt-threads|\\
ablation-schedule-order|ablation-mofka-batch|overhead|\\
chaos|chaos-replay|bench|provenance-bench|provenance-check|all> \\
[--seed N] [--runs N] [--schedules K] [--index I] [--jobs J]"
    );
    std::process::exit(2)
}
