//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--seed N] [--runs N]
//!
//! experiments:
//!   table1   fig3   fig4   fig5   fig6   fig7   fig8
//!   ablation-stealing   ablation-dxt-buffer   ablation-dxt-threads
//!   ablation-schedule-order   ablation-mofka-batch
//!   chaos           (--seed N --schedules K: seeded fault-schedule campaign;
//!                    exits nonzero on any oracle/determinism failure)
//!   chaos-replay    (--seed N --index I: replay one schedule, print its
//!                    JSON and outcome)
//!   bench           (--runs N --jobs J: timed perf sweep — scheduler
//!                    throughput, frame kernels, provenance pipeline,
//!                    sequential-vs-parallel campaigns — written to
//!                    BENCH_repro.json)
//!   provenance-bench  (measure the provenance pipeline alone and print
//!                      events/s)
//!   provenance-check  (measure and gate against the committed
//!                      BENCH_repro.json: exits nonzero if events/s
//!                      regressed by more than 20%)
//!   store-bench     (measure dtf-store append throughput per flush policy,
//!                    the recovery-scan rate, the binary-codec rows, and the
//!                    schema-6 scale rows — snapshot-bounded recovery at two
//!                    log sizes plus indexed point/range reads, scaled by
//!                    DTF_STORE_SCALE; prints the `storage` section and
//!                    refreshes it inside BENCH_repro.json when present)
//!   store-check     (measure and gate against the committed
//!                    BENCH_repro.json `storage` section: exits nonzero on
//!                    a >20% drop in group-commit append, recovery rate, or
//!                    codec throughput, a >20% rise in binary replay time,
//!                    a recovery ratio above 2x between the 8x-apart log
//!                    sizes, or an indexed point/range speedup below 10x;
//!                    exit 2 on a pre-schema-6 baseline)
//!   stress-bench    (many-client stress of the sharded real-time data
//!                    plane: 256 concurrent producers + 8 consumer groups
//!                    on one service; prints the `stress` section and
//!                    refreshes it inside BENCH_repro.json when present)
//!   stress-check    (re-measure a scaled stress run and gate against the
//!                    committed BENCH_repro.json `stress` section: exits
//!                    nonzero on a >20% drop in aggregate events/s)
//!   view-bench      (incremental live-view maintenance vs full recompute
//!                    over a 100k-event stream: Δ-refresh wall, re-drain +
//!                    kernel recompute wall, and the live/post-hoc
//!                    equivalence verdict; prints the `views` section and
//!                    refreshes it inside BENCH_repro.json when present,
//!                    bumping the document to schema 7)
//!   view-check      (re-measure and gate: exits nonzero if the live
//!                    snapshot is not value-identical to the post-hoc
//!                    kernels, if a Δ-refresh is less than 10x faster than
//!                    a full recompute, or if Δ-refresh wall regressed >20%
//!                    against the committed BENCH_repro.json `views`
//!                    section; exit 2 on a pre-schema-7 baseline)
//!   proxy-bench     (out-of-band proxy-plane ablation on a data-heavy
//!                    workflow: same seed with the plane off and on, gated
//!                    event-for-event identical; reports the scheduler-
//!                    mediated byte reduction and the resolver fast-path
//!                    latency; prints the `proxy` section and refreshes it
//!                    inside BENCH_repro.json when present, bumping the
//!                    document to schema 8)
//!   proxy-check     (re-measure and gate: exits nonzero if the plane
//!                    perturbed the schedule, if the scheduler-byte
//!                    reduction is below 5x or regressed >20% against the
//!                    committed `proxy` section, or if resolve latency
//!                    regressed >20%; exit 2 on a pre-schema-8 baseline)
//!   recovery-smoke  (--seed N: run a persistent seeded campaign, verify a
//!                    fresh-process archive reopen reproduces the export
//!                    bundle byte-for-byte, then damage store copies under
//!                    seeded crash faults — torn/zeroed/bit-flipped tails,
//!                    corrupted index sidecars and snapshots, orphaned
//!                    compaction staging — and check the recovery oracle;
//!                    exits nonzero — keeping the store dir as an artifact —
//!                    on any violation)
//!   all      (everything above, in order)
//! ```
//!
//! `--runs` caps campaign sizes (default: the paper's 10/10/50).

use dtf_bench::{ablations, experiments};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut seed = 42u64;
    let mut runs: Option<u32> = None;
    let mut schedules = 50u64;
    let mut index = 0u64;
    let mut jobs: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                i += 1;
                jobs = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--runs" => {
                i += 1;
                runs = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--schedules" => {
                i += 1;
                schedules = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--index" => {
                i += 1;
                index = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            c if cmd.is_none() => cmd = Some(c.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let Some(cmd) = cmd else { usage() };
    match cmd.as_str() {
        "chaos" => std::process::exit(chaos_campaign(seed, schedules)),
        "chaos-replay" => std::process::exit(chaos_replay(seed, index)),
        "bench" => std::process::exit(perf_bench(seed, runs.unwrap_or(3), jobs)),
        "provenance-bench" => std::process::exit(provenance_bench()),
        "provenance-check" => std::process::exit(provenance_check()),
        "store-bench" => std::process::exit(store_bench()),
        "store-check" => std::process::exit(store_check()),
        "stress-bench" => std::process::exit(stress_bench()),
        "stress-check" => std::process::exit(stress_check()),
        "view-bench" => std::process::exit(view_bench()),
        "view-check" => std::process::exit(view_check()),
        "proxy-bench" => std::process::exit(proxy_bench()),
        "proxy-check" => std::process::exit(proxy_check()),
        "recovery-smoke" => std::process::exit(recovery_smoke(seed)),
        _ => {}
    }
    let ablation_runs = runs.unwrap_or(6);
    let run_one = |name: &str| match name {
        "table1" => experiments::table1(seed, runs),
        "fig3" => experiments::fig3(seed, runs),
        "fig4" => experiments::fig4(seed),
        "fig5" => experiments::fig5(seed),
        "fig6" => experiments::fig6(seed),
        "fig7" => experiments::fig7(seed),
        "fig8" => experiments::fig8(seed),
        "ablation-stealing" => ablations::stealing(seed, ablation_runs),
        "ablation-dxt-buffer" => ablations::dxt_buffer(seed),
        "ablation-dxt-threads" => ablations::dxt_thread_ids(seed),
        "ablation-schedule-order" => ablations::schedule_order_similarity(seed, ablation_runs),
        "ablation-mofka-batch" => ablations::mofka_batch(seed),
        "overhead" => ablations::instrumentation_overhead(ablation_runs.min(10)),
        "category-variability" => {
            ablations::category_variability(seed, ablation_runs, dtf_workflows::Workload::Xgboost)
        }
        "timeline" => {
            ablations::utilization_timeline(seed, dtf_workflows::Workload::ImageProcessing)
        }
        "export-run" => {
            use dtf_core::ids::RunId;
            use dtf_core::rngx::RunRng;
            use dtf_wms::sim::{SimCluster, SimConfig};
            let workload = dtf_workflows::Workload::ImageProcessing;
            let mut cfg = SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() };
            workload.adjust(&mut cfg);
            let rr = RunRng::new(seed, RunId(0));
            let data =
                SimCluster::new(cfg).expect("cluster").run(workload.generate(&rr)).expect("run");
            let dir = std::path::PathBuf::from("dtf-run-export");
            let n = dtf_perfrecup::export::export_run(&data, &dir).expect("export");
            format!("exported {n} files to {}\n", dir.display())
        }
        "debug-comms-ip" => ablations::debug_comms(seed, dtf_workflows::Workload::ImageProcessing),
        "debug-comms-rn" => ablations::debug_comms(seed, dtf_workflows::Workload::ResNet152),
        "debug-comms-xgb" => ablations::debug_comms(seed, dtf_workflows::Workload::Xgboost),
        _ => usage(),
    };
    if cmd == "all" {
        for name in [
            "table1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "ablation-stealing",
            "ablation-dxt-buffer",
            "ablation-dxt-threads",
            "ablation-schedule-order",
            "ablation-mofka-batch",
            "overhead",
            "category-variability",
            "timeline",
        ] {
            println!("{}", run_one(name));
        }
    } else {
        println!("{}", run_one(&cmd));
    }
}

/// Run a chaos campaign: K seeded fault schedules, each run twice under
/// virtual time with live invariant checks, gated on byte-identical
/// transition logs, judged by the post-run oracles. Returns the exit code.
fn chaos_campaign(seed: u64, schedules: u64) -> i32 {
    use dtf_chaos::{run_schedule, ChaosConfig};
    let chaos = ChaosConfig::default();
    println!("chaos campaign: seed {seed}, {schedules} schedules");
    let mut passed = 0u64;
    let mut failed = 0u64;
    for i in 0..schedules {
        let outcome = run_schedule(seed, i, &chaos);
        if outcome.passed() {
            passed += 1;
        } else {
            failed += 1;
            println!("{}", outcome.describe());
            println!("  replay: repro chaos-replay --seed {seed} --index {i}");
            println!("  schedule: {}", outcome.schedule.to_json());
        }
    }
    println!("chaos campaign: {passed}/{schedules} passed, {failed} failed");
    if failed > 0 {
        1
    } else {
        0
    }
}

/// Replay one schedule of a campaign and print everything a bug report
/// needs: the schedule JSON and the full outcome. Returns the exit code.
fn chaos_replay(seed: u64, index: u64) -> i32 {
    use dtf_chaos::{run_schedule, schedule_seed, ChaosConfig};
    let outcome = run_schedule(seed, index, &ChaosConfig::default());
    println!(
        "campaign seed {seed}, index {index} -> schedule seed {:016x}",
        schedule_seed(seed, index)
    );
    println!("schedule: {}", outcome.schedule.to_json());
    println!("{}", outcome.describe());
    for v in &outcome.violations {
        println!("  violation: {v}");
    }
    if outcome.passed() {
        0
    } else {
        1
    }
}

/// Timed perf sweep. Writes `BENCH_repro.json` to the working directory
/// and prints a short summary; exits nonzero if the artifact could not be
/// written (the parallel-vs-sequential identity check asserts internally).
fn perf_bench(seed: u64, runs: u32, jobs: Option<usize>) -> i32 {
    let (json, text) = dtf_bench::perf::bench_artifact(seed, runs, jobs);
    print!("{text}");
    match std::fs::write("BENCH_repro.json", json) {
        Ok(()) => {
            println!("wrote BENCH_repro.json");
            0
        }
        Err(e) => {
            eprintln!("failed to write BENCH_repro.json: {e}");
            1
        }
    }
}

/// Measure the provenance pipeline alone (the fast path for iterating on
/// it) and print the section that `bench` embeds in `BENCH_repro.json`.
fn provenance_bench() -> i32 {
    let p = dtf_bench::provenance::provenance_pipeline(2_000, 3);
    println!(
        "provenance pipeline: {:.0} events/s ({} events in {:.2}s)",
        p.events_per_s, p.events, p.wall_s
    );
    println!("{}", serde_json::to_string_pretty(&p).expect("section serializes"));
    0
}

/// CI regression gate: re-measure the provenance pipeline and compare to
/// the committed `BENCH_repro.json`. Fails (exit 1) on a >20% drop in
/// events/s; fails (exit 2) if the baseline artifact is missing the field,
/// so the gate can never silently pass.
fn provenance_check() -> i32 {
    const ALLOWED_REGRESSION: f64 = 0.20;
    let baseline = match std::fs::read_to_string("BENCH_repro.json") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("provenance-check: cannot read BENCH_repro.json: {e}");
            return 2;
        }
    };
    let doc: serde_json::Value = match serde_json::from_str(&baseline) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("provenance-check: BENCH_repro.json is not valid JSON: {e}");
            return 2;
        }
    };
    let Some(expected) = doc["provenance_pipeline"]["events_per_s"].as_f64() else {
        eprintln!("provenance-check: BENCH_repro.json has no provenance_pipeline.events_per_s");
        return 2;
    };
    let p = dtf_bench::provenance::provenance_pipeline(2_000, 3);
    let floor = expected * (1.0 - ALLOWED_REGRESSION);
    println!(
        "provenance pipeline: measured {:.0} events/s, baseline {:.0} (floor {:.0})",
        p.events_per_s, expected, floor
    );
    if p.events_per_s < floor {
        eprintln!(
            "provenance-check: FAIL — events/s regressed more than {:.0}%",
            ALLOWED_REGRESSION * 100.0
        );
        1
    } else {
        println!("provenance-check: OK");
        0
    }
}

/// Measure the storage layer alone and print the section that `bench`
/// embeds in `BENCH_repro.json`.
fn store_bench() -> i32 {
    let b = dtf_bench::storage::storage_bench();
    for a in &b.append {
        println!(
            "store append [{}]: {:.0} records/s ({} x {}B in {:.3}s)",
            a.policy, a.records_per_s, a.records, b.record_bytes, a.wall_s
        );
    }
    println!(
        "store recovery: {:.0} records/s ({} records, {} segments in {:.3}s)",
        b.recovery.records_per_s, b.recovery.records, b.recovery.segments, b.recovery.wall_s
    );
    println!(
        "store codec encode: {:.0} MiB/s, decode: {:.0} MiB/s ({} records, {}B binary vs {}B json)",
        b.codec.encode_mib_s,
        b.codec.decode_mib_s,
        b.codec.records,
        b.codec.binary_bytes,
        b.codec.json_bytes
    );
    println!(
        "store replay: binary {:.1} ms, json-era {:.1} ms ({} events, {:.1}x)",
        b.codec.replay_binary_ms,
        b.codec.replay_json_ms,
        b.codec.replay_events,
        b.codec.replay_json_ms / b.codec.replay_binary_ms.max(1e-12)
    );
    println!(
        "store scale (x{}): recovery {:.1} ms @ {} records vs {:.1} ms @ {} (ratio {:.2}, \
         full replay {:.1} ms)",
        b.scale.scale,
        b.scale.recovery_small_ms,
        b.scale.small_records,
        b.scale.recovery_large_ms,
        b.scale.large_records,
        b.scale.recovery_ratio,
        b.scale.full_replay_large_ms
    );
    println!(
        "store indexed: point {:.1} us ({:.0}x vs {:.1} ms scan), range {:.2} ms ({:.0}x), \
         reader open {:.1} ms",
        b.scale.indexed.point_avg_us,
        b.scale.indexed.point_speedup,
        b.scale.indexed.full_scan_ms,
        b.scale.indexed.range_ms,
        b.scale.indexed.range_speedup,
        b.scale.indexed.reader_open_ms
    );
    let section = serde_json::to_value(&b).expect("section serializes");
    println!("{}", serde_json::to_string_pretty(&section).expect("section serializes"));
    // refresh the committed artifact's storage section in place, leaving
    // every other section at its committed baseline
    if let Ok(s) = std::fs::read_to_string("BENCH_repro.json") {
        match serde_json::from_str::<serde_json::Value>(&s) {
            Ok(serde_json::Value::Object(mut doc)) => {
                doc.insert("storage".to_string(), section);
                let pretty = serde_json::to_string_pretty(&serde_json::Value::Object(doc))
                    .expect("doc serializes");
                match std::fs::write("BENCH_repro.json", pretty) {
                    Ok(()) => println!("refreshed storage section of BENCH_repro.json"),
                    Err(e) => {
                        eprintln!("store-bench: cannot rewrite BENCH_repro.json: {e}");
                        return 1;
                    }
                }
            }
            Ok(_) => {
                eprintln!("store-bench: BENCH_repro.json is not a JSON object, leaving it");
                return 1;
            }
            Err(e) => {
                eprintln!("store-bench: BENCH_repro.json is not valid JSON, leaving it: {e}");
                return 1;
            }
        }
    }
    0
}

/// CI regression gate for the storage layer: re-measure and compare to the
/// committed `BENCH_repro.json`. Fails (exit 1) on a >20% drop in
/// group-commit append rate or recovery-scan rate; fails (exit 2) if the
/// baseline artifact lacks the fields, so the gate can never silently pass.
fn store_check() -> i32 {
    const ALLOWED_REGRESSION: f64 = 0.20;
    let baseline = match std::fs::read_to_string("BENCH_repro.json") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("store-check: cannot read BENCH_repro.json: {e}");
            return 2;
        }
    };
    let doc: serde_json::Value = match serde_json::from_str(&baseline) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("store-check: BENCH_repro.json is not valid JSON: {e}");
            return 2;
        }
    };
    let baseline_append = doc["storage"]["append"]
        .as_array()
        .and_then(|arr| arr.iter().find(|a| a["policy"] == "group_commit_256"))
        .and_then(|a| a["records_per_s"].as_f64());
    let Some(expected_append) = baseline_append else {
        eprintln!("store-check: BENCH_repro.json has no storage.append[group_commit_256]");
        return 2;
    };
    let Some(expected_recovery) = doc["storage"]["recovery"]["records_per_s"].as_f64() else {
        eprintln!("store-check: BENCH_repro.json has no storage.recovery.records_per_s");
        return 2;
    };
    // schema-4 codec rows: their absence means a stale baseline, exit 2
    let Some(expected_encode) = doc["storage"]["codec"]["encode_mib_s"].as_f64() else {
        eprintln!("store-check: BENCH_repro.json has no storage.codec.encode_mib_s (schema < 4?)");
        return 2;
    };
    let Some(expected_decode) = doc["storage"]["codec"]["decode_mib_s"].as_f64() else {
        eprintln!("store-check: BENCH_repro.json has no storage.codec.decode_mib_s");
        return 2;
    };
    let Some(expected_replay) = doc["storage"]["codec"]["replay_binary_ms"].as_f64() else {
        eprintln!("store-check: BENCH_repro.json has no storage.codec.replay_binary_ms");
        return 2;
    };
    // schema-6 scale rows: their absence means a pre-index baseline, exit 2
    if doc["storage"]["scale"]["recovery_ratio"].as_f64().is_none() {
        eprintln!(
            "store-check: BENCH_repro.json has no storage.scale.recovery_ratio (schema < 6?)"
        );
        return 2;
    }
    if doc["storage"]["scale"]["indexed"]["point_speedup"].as_f64().is_none() {
        eprintln!("store-check: BENCH_repro.json has no storage.scale.indexed.point_speedup");
        return 2;
    }
    let b = dtf_bench::storage::storage_bench();
    let measured_append = b
        .append
        .iter()
        .find(|a| a.policy == "group_commit_256")
        .map(|a| a.records_per_s)
        .unwrap_or(0.0);
    let mut failed = false;
    for (what, unit, measured, expected) in [
        ("group-commit append", "records/s", measured_append, expected_append),
        ("recovery scan", "records/s", b.recovery.records_per_s, expected_recovery),
        ("codec encode", "MiB/s", b.codec.encode_mib_s, expected_encode),
        ("codec decode", "MiB/s", b.codec.decode_mib_s, expected_decode),
    ] {
        let floor = expected * (1.0 - ALLOWED_REGRESSION);
        println!(
            "store {what}: measured {measured:.0} {unit}, baseline {expected:.0} (floor {floor:.0})"
        );
        if measured < floor {
            eprintln!(
                "store-check: FAIL — {what} regressed more than {:.0}%",
                ALLOWED_REGRESSION * 100.0
            );
            failed = true;
        }
    }
    // replay is a wall time: lower is better, so the gate is a ceiling
    let ceiling = expected_replay * (1.0 + ALLOWED_REGRESSION);
    println!(
        "store binary replay: measured {:.1} ms, baseline {:.1} (ceiling {:.1})",
        b.codec.replay_binary_ms, expected_replay, ceiling
    );
    if b.codec.replay_binary_ms > ceiling {
        eprintln!(
            "store-check: FAIL — binary replay slowed more than {:.0}%",
            ALLOWED_REGRESSION * 100.0
        );
        failed = true;
    }
    // schema-6 absolute gates, measured fresh at whatever DTF_STORE_SCALE
    // this run uses: snapshots must keep recovery tail-bounded (an 8x log
    // must not cost more than 2x the reopen) and the sparse index must
    // beat a full scan by an order of magnitude per query.
    const RATIO_CEILING: f64 = 2.0;
    const SPEEDUP_FLOOR: f64 = 10.0;
    println!(
        "store scale recovery ratio: measured {:.2} at x{} ({} -> {} records, ceiling {RATIO_CEILING})",
        b.scale.recovery_ratio, b.scale.scale, b.scale.small_records, b.scale.large_records
    );
    if b.scale.recovery_ratio > RATIO_CEILING {
        eprintln!(
            "store-check: FAIL — snapshot-aided recovery is not tail-bounded \
             (8x log costs {:.2}x reopen, ceiling {RATIO_CEILING})",
            b.scale.recovery_ratio
        );
        failed = true;
    }
    for (what, speedup) in [
        ("indexed point read", b.scale.indexed.point_speedup),
        ("indexed range read", b.scale.indexed.range_speedup),
    ] {
        println!("store {what}: measured {speedup:.0}x vs full scan (floor {SPEEDUP_FLOOR})");
        if speedup < SPEEDUP_FLOOR {
            eprintln!("store-check: FAIL — {what} is only {speedup:.1}x a full scan");
            failed = true;
        }
    }
    if failed {
        1
    } else {
        println!("store-check: OK");
        0
    }
}

/// Run the full many-client stress bench, print the `stress` section of
/// `BENCH_repro.json`, and — when a committed artifact is present —
/// refresh that section in place so CI can upload the measured document.
fn stress_bench() -> i32 {
    let out = dtf_bench::stress::stress_bench(&dtf_bench::StressConfig::full());
    if !out.violations.is_empty() {
        for v in &out.violations {
            eprintln!("stress-bench: delivery violation: {v}");
        }
        return 1;
    }
    let b = &out.bench;
    println!(
        "stress plane: {:.2}M events/s aggregate ({:.2}M produced/s + {:.2}M consumed/s)",
        b.aggregate_events_per_s / 1e6,
        b.produced_per_s / 1e6,
        b.consumed_per_s / 1e6
    );
    println!(
        "  {} producers x {} events -> {} partitions / {} shards, {} groups x {} members \
         (pipeline depth {}), {:.2}s wall",
        b.producers,
        b.events_per_producer,
        b.partitions,
        b.shards,
        b.consumer_groups,
        b.members_per_group,
        b.pipeline_depth,
        b.wall_s
    );
    let section = serde_json::to_value(b).expect("section serializes");
    println!("{}", serde_json::to_string_pretty(&section).expect("section serializes"));
    // refresh the committed artifact's stress section in place, leaving
    // every other section at its committed baseline
    if let Ok(s) = std::fs::read_to_string("BENCH_repro.json") {
        match serde_json::from_str::<serde_json::Value>(&s) {
            Ok(serde_json::Value::Object(mut doc)) => {
                doc.insert("stress".to_string(), section);
                let pretty = serde_json::to_string_pretty(&serde_json::Value::Object(doc))
                    .expect("doc serializes");
                match std::fs::write("BENCH_repro.json", pretty) {
                    Ok(()) => println!("refreshed stress section of BENCH_repro.json"),
                    Err(e) => {
                        eprintln!("stress-bench: cannot rewrite BENCH_repro.json: {e}");
                        return 1;
                    }
                }
            }
            Ok(_) => {
                eprintln!("stress-bench: BENCH_repro.json is not a JSON object, leaving it");
                return 1;
            }
            Err(e) => {
                eprintln!("stress-bench: BENCH_repro.json is not valid JSON, leaving it: {e}");
                return 1;
            }
        }
    }
    0
}

/// CI regression gate for the concurrent data plane: re-run the full
/// stress configuration and compare aggregate events/s to the committed
/// `BENCH_repro.json`. Fails (exit 1) on a >20% drop; fails (exit 2) if
/// the baseline lacks the schema-5 field, so the gate can never silently
/// pass.
fn stress_check() -> i32 {
    const ALLOWED_REGRESSION: f64 = 0.20;
    let baseline = match std::fs::read_to_string("BENCH_repro.json") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stress-check: cannot read BENCH_repro.json: {e}");
            return 2;
        }
    };
    let doc: serde_json::Value = match serde_json::from_str(&baseline) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("stress-check: BENCH_repro.json is not valid JSON: {e}");
            return 2;
        }
    };
    let Some(expected) = doc["stress"]["aggregate_events_per_s"].as_f64() else {
        eprintln!(
            "stress-check: BENCH_repro.json has no stress.aggregate_events_per_s (schema < 5?)"
        );
        return 2;
    };
    let out = dtf_bench::stress::stress_bench(&dtf_bench::StressConfig::full());
    if !out.violations.is_empty() {
        for v in &out.violations {
            eprintln!("stress-check: delivery violation: {v}");
        }
        return 1;
    }
    let measured = out.bench.aggregate_events_per_s;
    let floor = expected * (1.0 - ALLOWED_REGRESSION);
    println!(
        "stress plane: measured {:.2}M events/s aggregate, baseline {:.2}M (floor {:.2}M)",
        measured / 1e6,
        expected / 1e6,
        floor / 1e6
    );
    if measured < floor {
        eprintln!(
            "stress-check: FAIL — aggregate events/s regressed more than {:.0}%",
            ALLOWED_REGRESSION * 100.0
        );
        1
    } else {
        println!("stress-check: OK");
        0
    }
}

/// Measure live-view maintenance alone, print the `views` section, and —
/// when a committed artifact is present — refresh that section in place,
/// bumping the document to schema 7 so `view-check` can gate against it.
fn view_bench() -> i32 {
    let b = dtf_bench::liveviews::view_bench();
    println!(
        "live views: Δ-refresh {:.2} ms (best of tail), ingest {:.1} ms over {} refreshes",
        b.delta_refresh_ms, b.ingest_ms, b.refreshes
    );
    println!(
        "  recompute: drain {:.1} ms + kernels {:.1} ms = {:.1} ms -> speedup {:.0}x",
        b.drain_ms, b.kernels_ms, b.recompute_ms, b.speedup
    );
    println!(
        "  {} events in Δ={} batches, {} categories x {} workers, {} subscribers, \
         equivalent: {}",
        b.events, b.batch, b.categories, b.workers, b.subscribers, b.equivalent
    );
    if !b.equivalent {
        eprintln!("view-bench: FAIL — live snapshot diverged from the post-hoc kernels");
        return 1;
    }
    let section = serde_json::to_value(&b).expect("section serializes");
    println!("{}", serde_json::to_string_pretty(&section).expect("section serializes"));
    // refresh the committed artifact's views section in place, leaving
    // every other section at its committed baseline
    if let Ok(s) = std::fs::read_to_string("BENCH_repro.json") {
        match serde_json::from_str::<serde_json::Value>(&s) {
            Ok(serde_json::Value::Object(mut doc)) => {
                doc.insert("views".to_string(), section);
                // the views section is what schema 7 adds, so refreshing it
                // into an older artifact upgrades the document
                let schema = doc.get("schema").and_then(|v| v.as_u64()).unwrap_or(0);
                doc.insert("schema".to_string(), serde_json::json!(schema.max(7)));
                let pretty = serde_json::to_string_pretty(&serde_json::Value::Object(doc))
                    .expect("doc serializes");
                match std::fs::write("BENCH_repro.json", pretty) {
                    Ok(()) => println!("refreshed views section of BENCH_repro.json"),
                    Err(e) => {
                        eprintln!("view-bench: cannot rewrite BENCH_repro.json: {e}");
                        return 1;
                    }
                }
            }
            Ok(_) => {
                eprintln!("view-bench: BENCH_repro.json is not a JSON object, leaving it");
                return 1;
            }
            Err(e) => {
                eprintln!("view-bench: BENCH_repro.json is not valid JSON, leaving it: {e}");
                return 1;
            }
        }
    }
    0
}

/// CI gate for live-view maintenance: re-measure and require (a) the live
/// snapshot to be value-identical to the post-hoc kernels, (b) a Δ-refresh
/// at least 10x faster than a full recompute, and (c) no >20% regression
/// of the Δ-refresh wall against the committed `BENCH_repro.json`. Exit 2
/// if the baseline lacks the schema-7 fields, so the gate can never
/// silently pass.
fn view_check() -> i32 {
    const ALLOWED_REGRESSION: f64 = 0.20;
    const SPEEDUP_FLOOR: f64 = 10.0;
    let baseline = match std::fs::read_to_string("BENCH_repro.json") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("view-check: cannot read BENCH_repro.json: {e}");
            return 2;
        }
    };
    let doc: serde_json::Value = match serde_json::from_str(&baseline) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("view-check: BENCH_repro.json is not valid JSON: {e}");
            return 2;
        }
    };
    let Some(expected_delta) = doc["views"]["delta_refresh_ms"].as_f64() else {
        eprintln!("view-check: BENCH_repro.json has no views.delta_refresh_ms (schema < 7?)");
        return 2;
    };
    if doc["views"]["speedup"].as_f64().is_none() {
        eprintln!("view-check: BENCH_repro.json has no views.speedup");
        return 2;
    }
    if doc["views"]["equivalent"].as_bool() != Some(true) {
        eprintln!("view-check: committed views baseline was not equivalent");
        return 2;
    }
    let b = dtf_bench::liveviews::view_bench();
    let mut failed = false;
    if !b.equivalent {
        eprintln!("view-check: FAIL — live snapshot diverged from the post-hoc kernels");
        failed = true;
    }
    println!(
        "live views speedup: measured {:.0}x (Δ-refresh {:.2} ms vs recompute {:.1} ms, \
         floor {SPEEDUP_FLOOR}x)",
        b.speedup, b.delta_refresh_ms, b.recompute_ms
    );
    if b.speedup < SPEEDUP_FLOOR {
        eprintln!(
            "view-check: FAIL — a Δ-refresh is only {:.1}x faster than a full recompute",
            b.speedup
        );
        failed = true;
    }
    // Δ-refresh is a wall time: lower is better, so the gate is a ceiling
    let ceiling = expected_delta * (1.0 + ALLOWED_REGRESSION);
    println!(
        "live views Δ-refresh: measured {:.2} ms, baseline {:.2} (ceiling {:.2})",
        b.delta_refresh_ms, expected_delta, ceiling
    );
    if b.delta_refresh_ms > ceiling {
        eprintln!(
            "view-check: FAIL — Δ-refresh slowed more than {:.0}%",
            ALLOWED_REGRESSION * 100.0
        );
        failed = true;
    }
    if failed {
        1
    } else {
        println!("view-check: OK");
        0
    }
}

/// Measure the proxy-plane ablation alone, print the `proxy` section, and
/// — when a committed artifact is present — refresh that section in
/// place, bumping the document to schema 8 so `proxy-check` can gate
/// against it.
fn proxy_bench() -> i32 {
    let b = dtf_bench::proxy::proxy_bench();
    println!(
        "proxy plane: in-band {:.1} MiB -> {:.3} MiB over {} transfers ({:.0}x reduction)",
        b.in_band_bytes_off as f64 / (1024.0 * 1024.0),
        b.in_band_bytes_on as f64 / (1024.0 * 1024.0),
        b.transfers,
        b.scheduler_bytes_reduction
    );
    println!(
        "  {} tasks, {} published / {} resolved, {:.1} MiB payloads over a {:.1} MiB threshold",
        b.tasks,
        b.published,
        b.resolved,
        b.payload_bytes as f64 / (1024.0 * 1024.0),
        b.threshold_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  resolver fast path: {:.0} ns/resolve over {} fresh resolves, sim wall {:.1}s, \
         identical: {}",
        b.resolve_ns, b.resolves, b.sim_wall_s, b.identical
    );
    if !b.identical {
        eprintln!("proxy-bench: FAIL — the plane perturbed the schedule");
        return 1;
    }
    let section = serde_json::to_value(&b).expect("section serializes");
    println!("{}", serde_json::to_string_pretty(&section).expect("section serializes"));
    // refresh the committed artifact's proxy section in place, leaving
    // every other section at its committed baseline
    if let Ok(s) = std::fs::read_to_string("BENCH_repro.json") {
        match serde_json::from_str::<serde_json::Value>(&s) {
            Ok(serde_json::Value::Object(mut doc)) => {
                doc.insert("proxy".to_string(), section);
                // the proxy section is what schema 8 adds, so refreshing it
                // into an older artifact upgrades the document
                let schema = doc.get("schema").and_then(|v| v.as_u64()).unwrap_or(0);
                doc.insert("schema".to_string(), serde_json::json!(schema.max(8)));
                let pretty = serde_json::to_string_pretty(&serde_json::Value::Object(doc))
                    .expect("doc serializes");
                match std::fs::write("BENCH_repro.json", pretty) {
                    Ok(()) => println!("refreshed proxy section of BENCH_repro.json"),
                    Err(e) => {
                        eprintln!("proxy-bench: cannot rewrite BENCH_repro.json: {e}");
                        return 1;
                    }
                }
            }
            Ok(_) => {
                eprintln!("proxy-bench: BENCH_repro.json is not a JSON object, leaving it");
                return 1;
            }
            Err(e) => {
                eprintln!("proxy-bench: BENCH_repro.json is not valid JSON, leaving it: {e}");
                return 1;
            }
        }
    }
    0
}

/// CI gate for the proxy plane: re-measure and require (a) the plane-on
/// run to be event-for-event identical to plane-off, (b) a scheduler-byte
/// reduction of at least 5x that also hasn't dropped >20% against the
/// committed `BENCH_repro.json`, and (c) no >20% regression of the
/// resolver fast-path latency. Exit 2 if the baseline lacks the schema-8
/// fields, so the gate can never silently pass.
fn proxy_check() -> i32 {
    const ALLOWED_REGRESSION: f64 = 0.20;
    const REDUCTION_FLOOR: f64 = 5.0;
    let baseline = match std::fs::read_to_string("BENCH_repro.json") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("proxy-check: cannot read BENCH_repro.json: {e}");
            return 2;
        }
    };
    let doc: serde_json::Value = match serde_json::from_str(&baseline) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("proxy-check: BENCH_repro.json is not valid JSON: {e}");
            return 2;
        }
    };
    let Some(expected_reduction) = doc["proxy"]["scheduler_bytes_reduction"].as_f64() else {
        eprintln!(
            "proxy-check: BENCH_repro.json has no proxy.scheduler_bytes_reduction (schema < 8?)"
        );
        return 2;
    };
    let Some(expected_resolve) = doc["proxy"]["resolve_ns"].as_f64() else {
        eprintln!("proxy-check: BENCH_repro.json has no proxy.resolve_ns");
        return 2;
    };
    if doc["proxy"]["identical"].as_bool() != Some(true) {
        eprintln!("proxy-check: committed proxy baseline was not schedule-identical");
        return 2;
    }
    let b = dtf_bench::proxy::proxy_bench();
    let mut failed = false;
    if !b.identical {
        eprintln!("proxy-check: FAIL — the plane perturbed the schedule");
        failed = true;
    }
    // the reduction is a ratio: higher is better, so the gate is a floor —
    // the absolute 5x acceptance bar and the 20%-of-baseline band
    let floor = REDUCTION_FLOOR.max(expected_reduction * (1.0 - ALLOWED_REGRESSION));
    println!(
        "proxy scheduler-byte reduction: measured {:.1}x, baseline {:.1}x (floor {:.1}x)",
        b.scheduler_bytes_reduction, expected_reduction, floor
    );
    if b.scheduler_bytes_reduction < floor {
        eprintln!(
            "proxy-check: FAIL — scheduler-byte reduction fell below the {:.1}x floor",
            floor
        );
        failed = true;
    }
    // resolve latency is a wall time: lower is better, so a ceiling
    let ceiling = expected_resolve * (1.0 + ALLOWED_REGRESSION);
    println!(
        "proxy resolve latency: measured {:.0} ns, baseline {:.0} (ceiling {:.0})",
        b.resolve_ns, expected_resolve, ceiling
    );
    if b.resolve_ns > ceiling {
        eprintln!(
            "proxy-check: FAIL — resolve latency regressed more than {:.0}%",
            ALLOWED_REGRESSION * 100.0
        );
        failed = true;
    }
    if failed {
        1
    } else {
        println!("proxy-check: OK");
        0
    }
}

/// End-to-end recovery smoke: a persistent seeded campaign, a
/// fresh-process archive reopen gated byte-for-byte against the live
/// export bundle, then seeded crash faults on store copies judged by the
/// recovery oracle. On failure the store directory is left in place so CI
/// can upload it as an artifact.
fn recovery_smoke(seed: u64) -> i32 {
    use dtf_chaos::{copy_store, recovery_oracle, CrashFault};
    use dtf_core::ids::RunId;
    use dtf_core::rngx::RunRng;
    use dtf_mofka::MofkaService;
    use dtf_perfrecup::export::export_run;
    use dtf_wms::sim::{SimCluster, SimConfig};
    use dtf_wms::RunData;

    const FAULTS: u64 = 9;
    let base = std::env::temp_dir().join(format!("dtf-recovery-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let store = base.join("store");
    println!("recovery-smoke: seed {seed}, store {}", store.display());

    let workload = dtf_workflows::Workload::ImageProcessing;
    let mut cfg = SimConfig {
        campaign_seed: seed,
        run: RunId(0),
        persist_dir: Some(store.to_string_lossy().into_owned()),
        ..Default::default()
    };
    workload.adjust(&mut cfg);
    let rr = RunRng::new(seed, RunId(0));
    let cluster = match SimCluster::new(cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("recovery-smoke: cluster bootstrap failed: {e}");
            return 1;
        }
    };
    let live = match cluster.run(workload.generate(&rr)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("recovery-smoke: persistent run failed: {e}");
            return 1;
        }
    };
    let mut failures = 0u32;

    // Gate 1: a fresh-process archive reopen must reproduce the live run's
    // export bundle byte for byte.
    match RunData::open_archive(&store) {
        Ok((archived, recovery)) => {
            println!(
                "recovery-smoke: archive reopened ({} events restored, torn: {})",
                recovery.restored_events,
                recovery.yokan.torn || recovery.warabi.torn
            );
            let live_dir = base.join("export-live");
            let arch_dir = base.join("export-archived");
            let exported = export_run(&live, &live_dir)
                .and_then(|_| export_run(&archived, &arch_dir))
                .map(|_| diff_export_dirs(&live_dir, &arch_dir));
            match exported {
                Ok(diffs) if diffs.is_empty() => {
                    println!("recovery-smoke: archived export is byte-identical to live");
                }
                Ok(diffs) => {
                    for d in &diffs {
                        eprintln!("recovery-smoke: export diff: {d}");
                    }
                    failures += 1;
                }
                Err(e) => {
                    eprintln!("recovery-smoke: export failed: {e}");
                    failures += 1;
                }
            }
        }
        Err(e) => {
            eprintln!("recovery-smoke: archive reopen failed: {e}");
            failures += 1;
        }
    }

    // Gate 2: crash faults at random committed offsets, recovery oracle.
    let original = match MofkaService::reopen(&store) {
        Ok((svc, _)) => svc,
        Err(e) => {
            eprintln!("recovery-smoke: pristine reopen failed: {e}");
            eprintln!("recovery-smoke: FAIL — store kept at {}", base.display());
            return 1;
        }
    };
    for i in 0..FAULTS {
        // the extended fault space also damages cache artifacts (sparse
        // indexes, snapshots) and leaves orphaned compaction staging
        let fault = CrashFault::generate_extended(seed.wrapping_mul(FAULTS).wrapping_add(i));
        let victim = base.join(format!("victim-{i}"));
        let outcome = copy_store(&store, &victim).and_then(|()| fault.apply(&victim)).and_then(
            |(file, at)| {
                let (recovered, _) = MofkaService::reopen(&victim)?;
                Ok((file, at, recovery_oracle(&original, &recovered)))
            },
        );
        match outcome {
            Ok((file, at, violations)) if violations.is_empty() => {
                println!(
                    "recovery-smoke: fault {i} {:?}/{:?} at {} byte {at}: recovered clean",
                    fault.kind,
                    fault.target,
                    file.file_name().unwrap_or_default().to_string_lossy()
                );
                let _ = std::fs::remove_dir_all(&victim);
            }
            Ok((_, at, violations)) => {
                eprintln!("recovery-smoke: fault {i} {fault:?} at byte {at} VIOLATED recovery:");
                for v in &violations {
                    eprintln!("  {v}");
                }
                failures += 1;
            }
            // Metadata-only campaigns leave the blob log empty, so a
            // warabi-targeted fault has no committed tail to damage —
            // that precondition failure is a skip, not a violation
            // (warabi crash coverage lives in dtf-chaos's own tests).
            Err(dtf_core::error::DtfError::IllegalState(msg)) => {
                println!("recovery-smoke: fault {i} {fault:?} skipped: {msg}");
                let _ = std::fs::remove_dir_all(&victim);
            }
            Err(e) => {
                eprintln!("recovery-smoke: fault {i} {fault:?} could not be exercised: {e}");
                failures += 1;
            }
        }
    }

    if failures == 0 {
        let _ = std::fs::remove_dir_all(&base);
        println!("recovery-smoke: OK");
        0
    } else {
        eprintln!(
            "recovery-smoke: FAIL ({failures} gate(s)) — artifacts kept at {}",
            base.display()
        );
        1
    }
}

/// Byte-compare two export directories; returns human-readable mismatches.
fn diff_export_dirs(a: &std::path::Path, b: &std::path::Path) -> Vec<String> {
    let list = |d: &std::path::Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(d)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    };
    let (an, bn) = (list(a), list(b));
    let mut diffs = Vec::new();
    if an != bn {
        diffs.push(format!("file sets differ: {} vs {} files", an.len(), bn.len()));
        return diffs;
    }
    for name in &an {
        let av = std::fs::read(a.join(name)).unwrap_or_default();
        let bv = std::fs::read(b.join(name)).unwrap_or_default();
        if av != bv {
            diffs.push(format!("{name}: {} vs {} bytes, contents differ", av.len(), bv.len()));
        }
    }
    diffs
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <table1|fig3|fig4|fig5|fig6|fig7|fig8|\\
ablation-stealing|ablation-dxt-buffer|ablation-dxt-threads|\\
ablation-schedule-order|ablation-mofka-batch|overhead|\\
chaos|chaos-replay|bench|provenance-bench|provenance-check|\\
store-bench|store-check|stress-bench|stress-check|\\
view-bench|view-check|proxy-bench|proxy-check|recovery-smoke|all> \\
[--seed N] [--runs N] [--schedules K] [--index I] [--jobs J]"
    );
    std::process::exit(2)
}
