//! CI smoke for the many-client stress bench: the scaled-down
//! configuration (16 producers × 4 consumer groups × 2 members, real
//! threads, pipelined consumers) must run clean — every group sees every
//! event exactly once, in per-producer partition order. This is the
//! `cargo test` face of `repro stress-bench`; the full 264-client run and
//! its >20% regression gate (`repro stress-check`) live in the CI stress
//! job.

use dtf_bench::{stress_bench, StressConfig};

#[test]
fn smoke_configuration_runs_clean() {
    let cfg = StressConfig::smoke();
    assert_eq!(cfg.producers, 16);
    assert_eq!(cfg.groups, 4);
    assert!(cfg.verify, "smoke must verify exactly-once delivery");
    let out = stress_bench(&cfg);
    assert!(out.violations.is_empty(), "delivery violations: {:#?}", out.violations);
    let expected = cfg.producers as u64 * cfg.events_per_producer;
    assert_eq!(out.bench.events_produced, expected);
    assert_eq!(
        out.bench.events_consumed,
        expected * cfg.groups as u64,
        "every group drains the full stream"
    );
    assert!(out.bench.aggregate_events_per_s > 0.0);
}
