//! A small block/readahead cache for archive reads.
//!
//! Indexed readers ([`crate::index::LogReader`]) fetch segment data in
//! *blocks* — the byte span between two consecutive sparse-index entries,
//! i.e. one stride's worth of records. Reading a whole block on a point
//! lookup is the readahead: a later read of a neighbouring record in the
//! same block is served from memory, and a range scan hops block to block
//! touching each one once. Blocks are refcounted [`Bytes`], so returning
//! a record is a cheap slice of the cached buffer, never a copy.
//!
//! The cache is a strict byte-bounded LRU keyed by `(segment seqno,
//! block index)`. It is a pure read-side cache: nothing here is ever a
//! durability dependency, and dropping it costs only re-reads.

use std::collections::HashMap;
use std::collections::VecDeque;

use bytes::Bytes;

/// Default capacity: enough for archive scans to keep a working set of
/// hot blocks without holding a large log resident.
pub const DEFAULT_CACHE_BYTES: usize = 32 << 20;

/// Cache hit/miss counters, for benches and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Blocks evicted to stay under the byte cap.
    pub evictions: u64,
}

/// Byte-bounded LRU over `(segment seqno, block index)` → block bytes.
#[derive(Debug)]
pub struct BlockCache {
    cap_bytes: usize,
    held_bytes: usize,
    map: HashMap<(u64, u32), Bytes>,
    /// LRU order, least recent at the front. Touches scan the deque —
    /// fine at the tens-to-hundreds of resident blocks this cap implies.
    order: VecDeque<(u64, u32)>,
    stats: CacheStats,
}

impl BlockCache {
    pub fn new(cap_bytes: usize) -> Self {
        Self {
            cap_bytes: cap_bytes.max(1),
            held_bytes: 0,
            map: HashMap::new(),
            order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look up a block, refreshing its LRU position on a hit.
    pub fn get(&mut self, seqno: u64, block: u32) -> Option<Bytes> {
        let key = (seqno, block);
        match self.map.get(&key) {
            Some(b) => {
                let b = b.clone();
                if let Some(pos) = self.order.iter().position(|k| *k == key) {
                    self.order.remove(pos);
                }
                self.order.push_back(key);
                self.stats.hits += 1;
                Some(b)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a block, evicting least-recently-used blocks until the byte
    /// cap holds. A block larger than the whole cap is passed through
    /// uncached (the caller keeps its handle; caching it would just evict
    /// everything else for nothing).
    pub fn insert(&mut self, seqno: u64, block: u32, data: Bytes) {
        if data.len() > self.cap_bytes {
            return;
        }
        let key = (seqno, block);
        if let Some(old) = self.map.remove(&key) {
            self.held_bytes -= old.len();
            if let Some(pos) = self.order.iter().position(|k| *k == key) {
                self.order.remove(pos);
            }
        }
        while self.held_bytes + data.len() > self.cap_bytes {
            let Some(victim) = self.order.pop_front() else { break };
            if let Some(gone) = self.map.remove(&victim) {
                self.held_bytes -= gone.len();
                self.stats.evictions += 1;
            }
        }
        self.held_bytes += data.len();
        self.map.insert(key, data);
        self.order.push_back(key);
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn held_bytes(&self) -> usize {
        self.held_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_slices() {
        let mut c = BlockCache::new(1 << 20);
        assert!(c.get(0, 0).is_none());
        c.insert(0, 0, Bytes::from_static(b"block-zero"));
        assert_eq!(c.get(0, 0).unwrap().as_ref(), b"block-zero");
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn byte_cap_evicts_least_recent() {
        let mut c = BlockCache::new(256);
        c.insert(0, 0, Bytes::from(vec![0u8; 100]));
        c.insert(0, 1, Bytes::from(vec![1u8; 100]));
        // touch block 0 so block 1 is the LRU victim
        assert!(c.get(0, 0).is_some());
        c.insert(0, 2, Bytes::from(vec![2u8; 100]));
        assert!(c.get(0, 1).is_none(), "LRU block evicted");
        assert!(c.get(0, 0).is_some(), "recently-touched block kept");
        assert!(c.held_bytes() <= 256);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_block_passes_through() {
        let mut c = BlockCache::new(64);
        c.insert(7, 0, Bytes::from(vec![0u8; 128]));
        assert!(c.get(7, 0).is_none());
        assert_eq!(c.held_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let mut c = BlockCache::new(1024);
        c.insert(1, 0, Bytes::from(vec![0u8; 100]));
        c.insert(1, 0, Bytes::from(vec![1u8; 200]));
        assert_eq!(c.held_bytes(), 200);
        assert_eq!(c.get(1, 0).unwrap().len(), 200);
    }
}
