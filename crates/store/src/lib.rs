//! # dtf-store
//!
//! Crash-safe persistence for the Mofka-analog micro-services (paper
//! §III-B: topics persist through Yokan for metadata and Warabi for blob
//! payloads, which is what lets provenance survive the run and be analyzed
//! post-hoc by PERFRECUP).
//!
//! Durable layers, all recoverable:
//!
//! * [`log`] — a segmented append-only record log: length-prefixed,
//!   CRC32-framed records in fixed-size segment files, each segment headed
//!   by a magic, a payload-format version byte, its sequence number, and
//!   the index of its first record. Appends buffer in memory and hit the
//!   file on a configurable group-commit [`FlushPolicy`]; opening a
//!   directory runs a recovery scan that verifies every checksum and
//!   truncates a torn tail, so a reopened log contains exactly the
//!   committed record prefix. Recovered records are zero-copy slices of
//!   the per-segment read buffer, not per-record allocations.
//!   [`log::SegmentedLog::open_tail`] recovers tail-bounded: segment
//!   bodies below a snapshot watermark are trusted via their CRC'd
//!   headers and never read.
//! * [`kv`] — a write-ahead-logged KV built on the same log: put and
//!   delete records replay into a `BTreeMap` on open. Periodic
//!   [`snapshot`]s pin a replay watermark so reopen cost tracks the log
//!   *tail*, and threshold compaction rewrites the live map into a
//!   staging log swapped in by a rename-aside protocol (every crash state
//!   repaired on open). Both run on a background worker by default,
//!   keeping the O(live-set) work off the put/delete path.
//! * [`index`] — sparse per-segment index sidecars (`seg-*.dti`) and the
//!   [`index::LogReader`] archive view: point/range reads seek to an
//!   indexed block instead of scanning the log, served through the
//!   [`cache`] block/readahead LRU.
//!
//! The recovery invariant every layer maintains: **no committed record is
//! ever lost, and no uncommitted record ever surfaces**. "Committed"
//! means flushed by policy or an explicit [`log::SegmentedLog::sync`];
//! a torn or bit-flipped tail truncates the stream at the first damaged
//! byte and never resurrects anything behind it. Index sidecars and
//! snapshots are **caches, never truth**: each is validated on load,
//! rebuilt (or discarded for full replay) on any mismatch, and deleting
//! all of them reproduces the identical state from the log alone.

pub mod cache;
pub mod crc32;
pub mod index;
pub mod kv;
pub mod log;
pub mod snapshot;

pub use cache::{BlockCache, CacheStats};
pub use index::{LogReader, ReaderOptions, SegmentIndex};
pub use kv::{CompactStep, KvWal, KvWalConfig, WalKv};
pub use log::{
    fsync_dir, FlushPolicy, LogConfig, RecoveryReport, SegmentedLog, FORMAT_BINARY, FORMAT_JSON,
};
