//! # dtf-store
//!
//! Crash-safe persistence for the Mofka-analog micro-services (paper
//! §III-B: topics persist through Yokan for metadata and Warabi for blob
//! payloads, which is what lets provenance survive the run and be analyzed
//! post-hoc by PERFRECUP).
//!
//! Two layers, both durable, both recoverable:
//!
//! * [`log`] — a segmented append-only record log: length-prefixed,
//!   CRC32-framed records in fixed-size segment files, each segment headed
//!   by a magic, a payload-format version byte, its sequence number, and
//!   the index of its first record. Appends buffer in memory and hit the
//!   file on a configurable group-commit [`FlushPolicy`]; opening a
//!   directory runs a recovery scan that verifies every checksum and
//!   truncates a torn tail, so a reopened log contains exactly the
//!   committed record prefix. Recovered records are zero-copy slices of
//!   the per-segment read buffer, not per-record allocations.
//! * [`kv`] — a tiny write-ahead-logged KV built on the same log: put and
//!   delete records replay into a `BTreeMap` on open, and a threshold
//!   triggers compaction into a fresh snapshot log swapped in by atomic
//!   rename followed by a parent-directory fsync (with both crash windows
//!   of the swap repaired on open).
//!
//! The recovery invariant both layers maintain: **no committed record is
//! ever lost, and no uncommitted record ever surfaces**. "Committed"
//! means flushed by policy or an explicit [`log::SegmentedLog::sync`];
//! a torn or bit-flipped tail truncates the stream at the first damaged
//! byte and never resurrects anything behind it.

pub mod crc32;
pub mod kv;
pub mod log;

pub use kv::{KvWal, KvWalConfig, WalKv};
pub use log::{
    fsync_dir, FlushPolicy, LogConfig, RecoveryReport, SegmentedLog, FORMAT_BINARY, FORMAT_JSON,
};
