//! Sparse per-segment indexes and the indexed archive reader.
//!
//! Every sealed segment `seg-<seqno>.dtl` can carry a sidecar
//! `seg-<seqno>.dti` holding a **sparse index**: the byte offset of every
//! `stride`-th record, plus (optionally) a caller-extracted `u64` key per
//! entry — a timestamp, a task-prefix hash, whatever is monotone in the
//! stream — so point and range lookups seek to a block instead of
//! scanning the log from byte zero.
//!
//! Sidecars are **caches, never truth**. They are validated on load
//! (magic, CRC, seqno, first-record, and the exact segment byte length
//! they were built against) and rebuilt from the segment whenever they
//! are missing, stale, or corrupt; deleting every `.dti` merely costs the
//! rebuild. Durability never depends on them: the recovery scan ignores
//! them entirely.
//!
//! [`LogReader`] is the read-only archive view built on these sidecars: a
//! header-validated segment map where only the *last* segment's body is
//! scanned at open (the only place a torn tail can live), cold segments
//! are trusted via their CRC'd headers and sidecars, and reads go through
//! a [`BlockCache`] in stride-sized blocks.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use bytes::Bytes;
use dtf_core::error::{DtfError, Result};

use crate::cache::{BlockCache, CacheStats, DEFAULT_CACHE_BYTES};
use crate::crc32::crc32;
use crate::log::{
    header_fields, parse_seqno, segment_paths, RecoveryReport, FRAME_OVERHEAD, HEADER_LEN,
    MAX_RECORD_BYTES,
};

/// Sidecar magic: 7 bytes + a version byte, mirroring the segment header.
const INDEX_MAGIC: &[u8; 7] = b"DTFIDX1";
const INDEX_VERSION: u8 = 1;
/// Records per sparse-index entry (and per cached block).
pub const DEFAULT_STRIDE: u32 = 64;
/// Fixed prefix of the sidecar before the entry array:
/// magic(7) + version(1) + seqno(8) + first_record(8) + records(4) +
/// seg_bytes(8) + stride(4) + has_keys(1) + n_entries(4).
const SIDECAR_FIXED: usize = 45;

/// Per-record key extractor for keyed indexes. Must be cheap and total:
/// a payload it cannot interpret should map to 0.
pub type KeyFn = fn(&[u8]) -> u64;

fn io_err(path: &Path, e: std::io::Error) -> DtfError {
    DtfError::Io(format!("{}: {e}", path.display()))
}

/// The sparse index of one segment. Entry `j` is the byte offset (from
/// the segment start, header included) of record `first_record + j*stride`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentIndex {
    pub seqno: u64,
    pub first_record: u64,
    /// Records in this segment when the index was built.
    pub records: u32,
    /// Segment file length the index was built against — a cheap
    /// staleness check (appends and truncations both change it).
    pub seg_bytes: u64,
    pub stride: u32,
    pub offsets: Vec<u32>,
    /// One key per entry when built with a [`KeyFn`], else empty.
    pub keys: Vec<u64>,
}

impl SegmentIndex {
    /// Sidecar path for a segment: `seg-<seqno>.dtl` → `seg-<seqno>.dti`.
    pub fn sidecar_path(seg: &Path) -> PathBuf {
        seg.with_extension("dti")
    }

    /// Build by scanning the segment's frames. Fails if the header or any
    /// frame is damaged — callers treat that exactly as the recovery scan
    /// would (a tear at the damaged byte).
    pub fn build(seg: &Path, stride: u32, key_fn: Option<KeyFn>) -> Result<Self> {
        let stride = stride.max(1);
        let data = fs::read(seg).map_err(|e| io_err(seg, e))?;
        let (seqno, first_record) = header_fields(&data)
            .ok_or_else(|| DtfError::Io(format!("{}: damaged segment header", seg.display())))?;
        let mut idx = Self {
            seqno,
            first_record,
            records: 0,
            seg_bytes: data.len() as u64,
            stride,
            offsets: Vec::new(),
            keys: Vec::new(),
        };
        let mut off = HEADER_LEN;
        while off < data.len() {
            if off + FRAME_OVERHEAD > data.len() {
                return Err(DtfError::Io(format!("{}: torn frame at {off}", seg.display())));
            }
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            if len > MAX_RECORD_BYTES || len > data.len() - off - FRAME_OVERHEAD {
                return Err(DtfError::Io(format!("{}: bad frame length at {off}", seg.display())));
            }
            let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
            let payload = &data[off + 8..off + 8 + len];
            if crc32(payload) != crc {
                return Err(DtfError::Io(format!(
                    "{}: frame crc mismatch at {off}",
                    seg.display()
                )));
            }
            if idx.records.is_multiple_of(stride) {
                idx.offsets.push(off as u32);
                if let Some(f) = key_fn {
                    idx.keys.push(f(payload));
                }
            }
            idx.records += 1;
            off += FRAME_OVERHEAD + len;
        }
        Ok(idx)
    }

    /// Build from offsets the writer tracked while appending — no rescan.
    /// `offsets` must hold every `stride`-th record's byte offset.
    pub(crate) fn from_tracked(
        seqno: u64,
        first_record: u64,
        records: u32,
        seg_bytes: u64,
        stride: u32,
        offsets: Vec<u32>,
    ) -> Self {
        Self { seqno, first_record, records, seg_bytes, stride, offsets, keys: Vec::new() }
    }

    fn encode(&self) -> Vec<u8> {
        let has_keys = !self.keys.is_empty();
        let entry = if has_keys { 12 } else { 4 };
        let mut out = Vec::with_capacity(SIDECAR_FIXED + self.offsets.len() * entry + 4);
        out.extend_from_slice(INDEX_MAGIC);
        out.push(INDEX_VERSION);
        out.extend_from_slice(&self.seqno.to_le_bytes());
        out.extend_from_slice(&self.first_record.to_le_bytes());
        out.extend_from_slice(&self.records.to_le_bytes());
        out.extend_from_slice(&self.seg_bytes.to_le_bytes());
        out.extend_from_slice(&self.stride.to_le_bytes());
        out.push(has_keys as u8);
        out.extend_from_slice(&(self.offsets.len() as u32).to_le_bytes());
        for (j, off) in self.offsets.iter().enumerate() {
            out.extend_from_slice(&off.to_le_bytes());
            if has_keys {
                out.extend_from_slice(&self.keys[j].to_le_bytes());
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(data: &[u8]) -> Option<Self> {
        if data.len() < SIDECAR_FIXED + 4 || &data[..7] != INDEX_MAGIC || data[7] != INDEX_VERSION {
            return None;
        }
        let body = &data[..data.len() - 4];
        let crc = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
        if crc32(body) != crc {
            return None;
        }
        let seqno = u64::from_le_bytes(data[8..16].try_into().unwrap());
        let first_record = u64::from_le_bytes(data[16..24].try_into().unwrap());
        let records = u32::from_le_bytes(data[24..28].try_into().unwrap());
        let seg_bytes = u64::from_le_bytes(data[28..36].try_into().unwrap());
        let stride = u32::from_le_bytes(data[36..40].try_into().unwrap());
        let has_keys = data[40] == 1;
        let n = u32::from_le_bytes(data[41..45].try_into().unwrap()) as usize;
        let entry = if has_keys { 12 } else { 4 };
        if stride == 0 || body.len() != SIDECAR_FIXED + n * entry {
            return None;
        }
        let mut offsets = Vec::with_capacity(n);
        let mut keys = Vec::with_capacity(if has_keys { n } else { 0 });
        let mut at = SIDECAR_FIXED;
        for _ in 0..n {
            offsets.push(u32::from_le_bytes(data[at..at + 4].try_into().unwrap()));
            at += 4;
            if has_keys {
                keys.push(u64::from_le_bytes(data[at..at + 8].try_into().unwrap()));
                at += 8;
            }
        }
        Some(Self { seqno, first_record, records, seg_bytes, stride, offsets, keys })
    }

    /// Load the sidecar next to `seg` and validate it against the segment
    /// as it exists *now*: same seqno, same first record, same byte
    /// length, expected record count, and (when `want_keys`) a keyed
    /// build. Any mismatch is `None` — the caller rebuilds.
    pub fn load_validated(
        seg: &Path,
        expect_first: u64,
        expect_records: u32,
        want_keys: bool,
    ) -> Option<Self> {
        let data = fs::read(Self::sidecar_path(seg)).ok()?;
        let idx = Self::decode(&data)?;
        let seg_len = fs::metadata(seg).ok()?.len();
        let expected_entries = (expect_records as usize).div_ceil(idx.stride.max(1) as usize);
        (idx.seqno == parse_seqno(seg)
            && idx.first_record == expect_first
            && idx.records == expect_records
            && idx.seg_bytes == seg_len
            && idx.offsets.len() == expected_entries
            && (!want_keys || !idx.keys.is_empty() || expect_records == 0))
            .then_some(idx)
    }

    /// Write the sidecar next to `seg`. Best-effort by contract: callers
    /// may ignore the error, since a missing sidecar only costs a rebuild.
    pub fn write(&self, seg: &Path) -> Result<()> {
        let path = Self::sidecar_path(seg);
        fs::write(&path, self.encode()).map_err(|e| io_err(&path, e))
    }

    /// The block holding record `rec` (global index): returns the block
    /// number and its byte span `[start, end)` within the segment.
    fn block_of(&self, rec: u64) -> Option<(u32, u32, u32)> {
        if rec < self.first_record || rec >= self.first_record + self.records as u64 {
            return None;
        }
        let block = ((rec - self.first_record) / self.stride as u64) as usize;
        let start = *self.offsets.get(block)?;
        let end = self.offsets.get(block + 1).copied().unwrap_or(self.seg_bytes as u32);
        Some((block as u32, start, end))
    }
}

/// Remove the sidecar of a segment, if present (used when recovery drops
/// or truncates the segment itself).
pub(crate) fn remove_sidecar(seg: &Path) {
    let _ = fs::remove_file(SegmentIndex::sidecar_path(seg));
}

/// Tuning for [`LogReader`].
#[derive(Debug, Clone, Copy)]
pub struct ReaderOptions {
    pub cache_bytes: usize,
    /// Stride used when a sidecar must be rebuilt.
    pub stride: u32,
    /// Extract a monotone `u64` key per record (enables [`LogReader::find_from_key`]).
    /// Sidecars without keys are rebuilt when this is set.
    pub key_fn: Option<KeyFn>,
    /// Persist rebuilt sidecars so the next open is cheap.
    pub write_sidecars: bool,
}

impl Default for ReaderOptions {
    fn default() -> Self {
        Self {
            cache_bytes: DEFAULT_CACHE_BYTES,
            stride: DEFAULT_STRIDE,
            key_fn: None,
            write_sidecars: true,
        }
    }
}

#[derive(Debug)]
struct SegMeta {
    path: PathBuf,
    index: SegmentIndex,
}

/// Read-only indexed view of a segmented log directory.
///
/// Opening performs the same *repairs* the recovery scan would make for
/// the damage classes it can see — a torn tail in the last segment is
/// truncated, segments past a damaged header are dropped — but bodies of
/// cold segments with valid sidecars are never read. Damage hiding in a
/// cold body surfaces as `None` from [`LogReader::get`] when (and only
/// when) that record is actually read, the same dangling semantics a
/// truncated store exposes.
#[derive(Debug)]
pub struct LogReader {
    dir: PathBuf,
    segs: Vec<SegMeta>,
    records: u64,
    /// Payload bytes across all records (frame and header overhead
    /// excluded), computable from the segment map without reading bodies.
    payload_bytes: u64,
    cache: Mutex<BlockCache>,
}

impl LogReader {
    /// Open `dir` read-only (beyond recovery repairs; see type docs).
    pub fn open(dir: &Path, opts: ReaderOptions) -> Result<(Self, RecoveryReport)> {
        let paths = segment_paths(dir)?;
        let mut report = RecoveryReport::default();
        let mut survivors: Vec<(PathBuf, u64, u64, u64, u8)> = Vec::new(); // path, seqno, first, len, format
        let mut prev: Option<(u64, u64)> = None; // seqno, first_record
        let mut drop_from = None;
        for (i, path) in paths.iter().enumerate() {
            let head = read_header(path);
            let ok = head.is_some_and(|(seqno, first, _, _)| {
                seqno == parse_seqno(path)
                    && prev.map(|(ps, pf)| seqno == ps + 1 && first >= pf).unwrap_or(first == 0)
            });
            let Some((seqno, first, len, format)) = head.filter(|_| ok) else {
                drop_from = Some(i);
                break;
            };
            prev = Some((seqno, first));
            survivors.push((path.clone(), seqno, first, len, format));
        }
        if let Some(i) = drop_from {
            report.dropped_segments += paths.len() - i;
            for p in &paths[i..] {
                remove_sidecar(p);
                fs::remove_file(p).map_err(|e| io_err(p, e))?;
            }
        }

        let mut segs = Vec::with_capacity(survivors.len());
        let want_keys = opts.key_fn.is_some();
        let mut idx = 0usize;
        while idx < survivors.len() {
            let (path, first, format) = {
                let s = &survivors[idx];
                (s.0.clone(), s.2, s.4)
            };
            let last = idx + 1 == survivors.len();
            let index = if last {
                // The only place a torn tail can live: scan and repair.
                match SegmentIndex::build(&path, opts.stride, opts.key_fn) {
                    Ok(ix) => ix,
                    Err(_) => {
                        let repaired = truncate_at_tear(&path, first, opts)?;
                        report.torn = true;
                        report.truncated_bytes += repaired.1;
                        repaired.0
                    }
                }
            } else {
                let expect_records = (survivors[idx + 1].2 - first) as u32;
                match SegmentIndex::load_validated(&path, first, expect_records, want_keys) {
                    Some(ix) => ix,
                    None => match SegmentIndex::build(&path, opts.stride, opts.key_fn) {
                        Ok(ix) if ix.records == expect_records => {
                            if opts.write_sidecars {
                                let _ = ix.write(&path);
                            }
                            ix
                        }
                        // Damage (or a record-count lie) in a cold body:
                        // recovery semantics — truncate here, drop the rest.
                        _ => {
                            let repaired = truncate_at_tear(&path, first, opts)?;
                            report.torn = true;
                            report.truncated_bytes += repaired.1;
                            report.dropped_segments += survivors.len() - idx - 1;
                            for (p, ..) in &survivors[idx + 1..] {
                                remove_sidecar(p);
                                fs::remove_file(p).map_err(|e| io_err(p, e))?;
                            }
                            survivors.truncate(idx + 1);
                            repaired.0
                        }
                    },
                }
            };
            report.segments += 1;
            report.format = report.format.max(format);
            segs.push(SegMeta { path, index });
            idx += 1;
        }

        let records =
            segs.last().map(|s| s.index.first_record + s.index.records as u64).unwrap_or(0);
        report.records = records;
        let payload_bytes = segs
            .iter()
            .map(|s| {
                s.index.seg_bytes
                    - HEADER_LEN as u64
                    - s.index.records as u64 * FRAME_OVERHEAD as u64
            })
            .sum();
        Ok((
            Self {
                dir: dir.to_path_buf(),
                segs,
                records,
                payload_bytes,
                cache: Mutex::new(BlockCache::new(opts.cache_bytes)),
            },
            report,
        ))
    }

    /// Total records visible to this reader.
    pub fn records(&self) -> u64 {
        self.records
    }

    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Sum of record payload lengths, derived from the segment map.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Point read of record `idx` through the block cache. `None` for an
    /// index past the end *or* a record whose bytes no longer verify —
    /// the dangling-record semantics of a recovered store.
    pub fn get(&self, idx: u64) -> Option<Bytes> {
        let seg = self.seg_for(idx)?;
        let (block, start, end) = seg.index.block_of(idx)?;
        let data = self.block_bytes(seg, block, start, end)?;
        // hop the frames inside the block to the target record
        let skip = (idx - seg.index.first_record) % seg.index.stride as u64;
        let mut off = 0usize;
        for _ in 0..skip {
            let len = frame_len(&data, off)?;
            off += FRAME_OVERHEAD + len;
        }
        let len = frame_len(&data, off)?;
        let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
        let payload = data.slice(off + 8..off + 8 + len);
        (crc32(&payload) == crc).then_some(payload)
    }

    /// Range read of up to `n` records starting at `start`, stopping at
    /// the end of the log or the first unreadable record. Sequential
    /// block hops; each block is read (and cached) once.
    pub fn range(&self, start: u64, n: usize) -> Vec<Bytes> {
        let mut out = Vec::with_capacity(n.min(4096));
        for idx in start..self.records.min(start.saturating_add(n as u64)) {
            match self.get(idx) {
                Some(b) => out.push(b),
                None => break,
            }
        }
        out
    }

    /// For keyed indexes: the smallest record index from whose *block*
    /// forward scanning will reach the first record with key ≥ `k`,
    /// assuming keys are nondecreasing over the stream. Sparse by
    /// construction — the answer is block-aligned, up to `stride - 1`
    /// records early. `None` when the reader has no keyed entries.
    pub fn find_from_key(&self, k: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut prev_start: Option<u64> = None;
        for seg in &self.segs {
            if seg.index.keys.is_empty() {
                return None;
            }
            for (j, key) in seg.index.keys.iter().enumerate() {
                let block_start = seg.index.first_record + j as u64 * seg.index.stride as u64;
                if *key >= k {
                    // the run may begin inside the previous block
                    best = Some(prev_start.unwrap_or(block_start));
                    return best;
                }
                prev_start = Some(block_start);
            }
        }
        best.or(prev_start)
    }

    fn seg_for(&self, idx: u64) -> Option<&SegMeta> {
        if idx >= self.records {
            return None;
        }
        let at = self.segs.partition_point(|s| s.index.first_record <= idx);
        self.segs.get(at.checked_sub(1)?)
    }

    fn block_bytes(&self, seg: &SegMeta, block: u32, start: u32, end: u32) -> Option<Bytes> {
        let seqno = seg.index.seqno;
        if let Some(hit) = self.cache.lock().expect("cache lock").get(seqno, block) {
            return Some(hit);
        }
        let mut f = File::open(&seg.path).ok()?;
        f.seek(SeekFrom::Start(start as u64)).ok()?;
        let mut buf = vec![0u8; (end - start) as usize];
        f.read_exact(&mut buf).ok()?;
        let data = Bytes::from(buf);
        self.cache.lock().expect("cache lock").insert(seqno, block, data.clone());
        Some(data)
    }
}

/// Bounds-checked frame length at `off` inside a block.
fn frame_len(data: &Bytes, off: usize) -> Option<usize> {
    if off + FRAME_OVERHEAD > data.len() {
        return None;
    }
    let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
    (len <= MAX_RECORD_BYTES && len <= data.len() - off - FRAME_OVERHEAD).then_some(len)
}

/// Header fields of a segment file read without its body:
/// `(seqno, first_record, file_len, format)`. `None` when damaged.
fn read_header(path: &Path) -> Option<(u64, u64, u64, u8)> {
    let mut f = File::open(path).ok()?;
    let len = f.metadata().ok()?.len();
    let mut head = [0u8; HEADER_LEN];
    f.read_exact(&mut head).ok()?;
    let (seqno, first) = header_fields(&head)?;
    Some((seqno, first, len, head[7]))
}

/// Recovery repair for a damaged segment body: rescan frame by frame,
/// truncate the file at the first bad frame, and return the index of what
/// survived plus the bytes cut.
fn truncate_at_tear(
    path: &Path,
    first_record: u64,
    opts: ReaderOptions,
) -> Result<(SegmentIndex, u64)> {
    let data = fs::read(path).map_err(|e| io_err(path, e))?;
    let mut off = HEADER_LEN.min(data.len());
    let mut records = 0u32;
    let stride = opts.stride.max(1);
    let mut offsets = Vec::new();
    let mut keys = Vec::new();
    while off < data.len() {
        if off + FRAME_OVERHEAD > data.len() {
            break;
        }
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
        if len > MAX_RECORD_BYTES || len > data.len() - off - FRAME_OVERHEAD {
            break;
        }
        let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
        let payload = &data[off + 8..off + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        if records.is_multiple_of(stride) {
            offsets.push(off as u32);
            if let Some(f) = opts.key_fn {
                keys.push(f(payload));
            }
        }
        records += 1;
        off += FRAME_OVERHEAD + len;
    }
    let cut = (data.len() - off) as u64;
    OpenOptions::new()
        .write(true)
        .open(path)
        .and_then(|f| f.set_len(off as u64))
        .map_err(|e| io_err(path, e))?;
    remove_sidecar(path); // stale against the new length
    let (seqno, _) = header_fields(&data).unwrap_or((parse_seqno(path), first_record));
    Ok((
        SegmentIndex { seqno, first_record, records, seg_bytes: off as u64, stride, offsets, keys },
        cut,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{FlushPolicy, LogConfig, SegmentedLog};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtf-index-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn build_log(dir: &Path, n: u64, seg_bytes: u64) {
        let cfg =
            LogConfig { segment_bytes: seg_bytes, flush: FlushPolicy::Manual, sync_data: false };
        let (mut log, _, _) = SegmentedLog::open(dir, cfg).unwrap();
        for i in 0..n {
            log.append(format!("record-{i:06}").as_bytes()).unwrap();
        }
        log.sync().unwrap();
    }

    #[test]
    fn sidecar_roundtrip_and_validation() {
        let dir = tmpdir("roundtrip");
        build_log(&dir, 100, 1 << 20);
        let seg = segment_paths(&dir).unwrap().pop().unwrap();
        let built = SegmentIndex::build(&seg, 8, None).unwrap();
        assert_eq!(built.records, 100);
        assert_eq!(built.offsets.len(), 13); // ceil(100/8)
        built.write(&seg).unwrap();
        let loaded = SegmentIndex::load_validated(&seg, 0, 100, false).unwrap();
        assert_eq!(loaded, built);
        // corrupt one byte: validation must reject, never misread
        let side = SegmentIndex::sidecar_path(&seg);
        let mut raw = fs::read(&side).unwrap();
        let at = raw.len() / 2;
        raw[at] ^= 0xff;
        fs::write(&side, &raw).unwrap();
        assert!(SegmentIndex::load_validated(&seg, 0, 100, false).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_sidecar_is_rejected_after_append() {
        let dir = tmpdir("stale");
        build_log(&dir, 10, 1 << 20);
        let seg = segment_paths(&dir).unwrap().pop().unwrap();
        SegmentIndex::build(&seg, 4, None).unwrap().write(&seg).unwrap();
        // more appends change the segment length
        let cfg =
            LogConfig { segment_bytes: 1 << 20, flush: FlushPolicy::Manual, sync_data: false };
        let (mut log, _, _) = SegmentedLog::open(&dir, cfg).unwrap();
        log.append(b"more").unwrap();
        log.sync().unwrap();
        drop(log);
        assert!(SegmentIndex::load_validated(&seg, 0, 10, false).is_none(), "stale by length");
        assert!(SegmentIndex::load_validated(&seg, 0, 11, false).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reader_point_and_range_match_full_scan() {
        let dir = tmpdir("reader");
        build_log(&dir, 500, 512); // many segments
        let (reader, report) = LogReader::open(&dir, ReaderOptions::default()).unwrap();
        assert_eq!(reader.records(), 500);
        assert!(!report.torn);
        assert!(report.segments > 3);
        for idx in [0u64, 1, 63, 64, 250, 499] {
            assert_eq!(reader.get(idx).unwrap().as_ref(), format!("record-{idx:06}").as_bytes());
        }
        assert!(reader.get(500).is_none());
        let r = reader.range(100, 50);
        assert_eq!(r.len(), 50);
        assert_eq!(r[0].as_ref(), b"record-000100");
        assert_eq!(r[49].as_ref(), b"record-000149");
        let stats = reader.cache_stats();
        assert!(stats.hits > 0, "range reads inside one block must hit the cache");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deleting_sidecars_changes_nothing_but_rebuild_cost() {
        let dir = tmpdir("rebuild");
        build_log(&dir, 200, 512);
        let (reader, _) = LogReader::open(&dir, ReaderOptions::default()).unwrap();
        let before: Vec<Bytes> = (0..200).map(|i| reader.get(i).unwrap()).collect();
        drop(reader);
        for seg in segment_paths(&dir).unwrap() {
            let _ = fs::remove_file(SegmentIndex::sidecar_path(&seg));
        }
        let (reader, report) = LogReader::open(&dir, ReaderOptions::default()).unwrap();
        assert_eq!(report.records, 200);
        for (i, b) in before.iter().enumerate() {
            assert_eq!(reader.get(i as u64).unwrap(), *b);
        }
        // rebuilt sidecars were persisted for the sealed segments
        let paths = segment_paths(&dir).unwrap();
        for seg in &paths[..paths.len() - 1] {
            assert!(SegmentIndex::sidecar_path(seg).exists(), "sidecar rebuilt and written");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_sidecar_is_rebuilt_not_trusted() {
        let dir = tmpdir("corrupt-side");
        build_log(&dir, 200, 512);
        let paths = segment_paths(&dir).unwrap();
        let side = SegmentIndex::sidecar_path(&paths[0]);
        fs::write(&side, b"garbage that is not an index").unwrap();
        let (reader, report) = LogReader::open(&dir, ReaderOptions::default()).unwrap();
        assert_eq!(report.records, 200);
        assert_eq!(reader.get(0).unwrap().as_ref(), b"record-000000");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_last_segment_is_repaired_at_open() {
        let dir = tmpdir("torn");
        build_log(&dir, 100, 1 << 20);
        let seg = segment_paths(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 3).unwrap();
        let (reader, report) = LogReader::open(&dir, ReaderOptions::default()).unwrap();
        assert!(report.torn);
        assert_eq!(reader.records(), 99);
        assert!(reader.get(98).is_some());
        assert!(reader.get(99).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keyed_index_seeks_monotone_keys() {
        let dir = tmpdir("keyed");
        // key = record index (monotone), encoded in the payload text
        build_log(&dir, 300, 512);
        fn key_of(payload: &[u8]) -> u64 {
            std::str::from_utf8(payload)
                .ok()
                .and_then(|s| s.strip_prefix("record-"))
                .and_then(|s| s.parse().ok())
                .unwrap_or(0)
        }
        let opts = ReaderOptions { key_fn: Some(key_of), stride: 16, ..Default::default() };
        let (reader, _) = LogReader::open(&dir, opts).unwrap();
        let start = reader.find_from_key(123).unwrap();
        assert!(start <= 123, "seek lands at or before the target");
        assert!(123 - start < 32, "…and within two strides of it");
        // forward scan from the hint reaches the exact record
        let found = (start..reader.records()).find(|i| key_of(&reader.get(*i).unwrap()) >= 123);
        assert_eq!(found, Some(123));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_is_an_empty_reader() {
        let dir = tmpdir("empty");
        fs::create_dir_all(&dir).unwrap();
        let (reader, report) = LogReader::open(&dir, ReaderOptions::default()).unwrap();
        assert!(reader.is_empty());
        assert_eq!(report.records, 0);
        assert!(reader.get(0).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
