//! CRC32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! The record-frame and segment-header checksum. Hand-rolled because the
//! workspace vendors no checksum crate; the algorithm matches zlib's
//! `crc32()` so frames are verifiable with standard tooling.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `data` (full init/finalize — equivalent to zlib `crc32(0, …)`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // standard test vectors for CRC-32/ISO-HDLC
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"provenance record");
        let mut flipped = b"provenance record".to_vec();
        for byte in 0..flipped.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
                flipped[byte] ^= 1 << bit;
            }
        }
    }
}
