//! Durable KV snapshots pinning a replay watermark.
//!
//! A snapshot file `snap-<watermark:016x>.dtk` lives *inside* the KV's
//! log directory and holds the full key→value map as of `watermark`
//! committed records. Reopening a store with a valid snapshot restores
//! the map directly and replays only the log tail past the watermark —
//! recovery cost becomes proportional to the tail, not the log.
//!
//! Snapshots follow the same rule as index sidecars: **caches, never
//! truth**. Every load path degrades to full replay — a missing,
//! corrupt, or torn snapshot is simply skipped, and a snapshot whose
//! watermark the (possibly truncated) log can no longer reach is
//! discarded by the caller. Equivalence with full replay is therefore an
//! invariant, not a fast path.
//!
//! Write ordering: encode → write to a `.tmp` sibling → fsync the file →
//! rename into place → fsync the directory. A crash at any point leaves
//! either the previous snapshot set or a `.tmp` orphan that loaders
//! ignore (and [`prune`] sweeps). The rename is the commit point.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use dtf_core::error::{DtfError, Result};

use crate::crc32::crc32;
use crate::log::fsync_dir;

const SNAP_MAGIC: &[u8; 8] = b"DTFSNAP1";
/// Fixed prefix: magic(8) + watermark(8) + n_keys(8).
const SNAP_FIXED: usize = 24;

fn io_err(path: &Path, e: std::io::Error) -> DtfError {
    DtfError::Io(format!("{}: {e}", path.display()))
}

/// Path of the snapshot pinning `watermark` inside `dir`.
pub fn snapshot_path(dir: &Path, watermark: u64) -> PathBuf {
    dir.join(format!("snap-{watermark:016x}.dtk"))
}

/// Snapshot files under `dir` as `(watermark, path)`, ascending. `.tmp`
/// orphans from interrupted writes are not listed.
pub fn snapshot_paths(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else { return found };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(hex) = name.strip_prefix("snap-").and_then(|s| s.strip_suffix(".dtk")) {
            if let Ok(wm) = u64::from_str_radix(hex, 16) {
                found.push((wm, entry.path()));
            }
        }
    }
    found.sort();
    found
}

fn encode(watermark: u64, map: &BTreeMap<String, Bytes>) -> Vec<u8> {
    let body: usize = map.iter().map(|(k, v)| 8 + k.len() + v.len()).sum();
    let mut out = Vec::with_capacity(SNAP_FIXED + body + 4);
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&watermark.to_le_bytes());
    out.extend_from_slice(&(map.len() as u64).to_le_bytes());
    for (k, v) in map {
        out.extend_from_slice(&(k.len() as u32).to_le_bytes());
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
        out.extend_from_slice(v);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode(data: &[u8]) -> Option<(u64, BTreeMap<String, Bytes>)> {
    if data.len() < SNAP_FIXED + 4 || &data[..8] != SNAP_MAGIC {
        return None;
    }
    let body = &data[..data.len() - 4];
    let crc = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    if crc32(body) != crc {
        return None;
    }
    let watermark = u64::from_le_bytes(data[8..16].try_into().unwrap());
    let n = u64::from_le_bytes(data[16..24].try_into().unwrap());
    let mut map = BTreeMap::new();
    let mut at = SNAP_FIXED;
    for _ in 0..n {
        if at + 4 > body.len() {
            return None;
        }
        let klen = u32::from_le_bytes(body[at..at + 4].try_into().unwrap()) as usize;
        at += 4;
        if at + klen + 4 > body.len() {
            return None;
        }
        let key = std::str::from_utf8(&body[at..at + klen]).ok()?.to_owned();
        at += klen;
        let vlen = u32::from_le_bytes(body[at..at + 4].try_into().unwrap()) as usize;
        at += 4;
        if at + vlen > body.len() {
            return None;
        }
        map.insert(key, Bytes::copy_from_slice(&body[at..at + vlen]));
        at += vlen;
    }
    (at == body.len()).then_some((watermark, map))
}

/// Write the snapshot for `watermark` durably (tmp → fsync → rename →
/// dir fsync when `sync`). Returns the final path.
pub fn write_snapshot(
    dir: &Path,
    watermark: u64,
    map: &BTreeMap<String, Bytes>,
    sync: bool,
) -> Result<PathBuf> {
    let path = snapshot_path(dir, watermark);
    let tmp = path.with_extension("dtk.tmp");
    let mut f = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp)
        .map_err(|e| io_err(&tmp, e))?;
    f.write_all(&encode(watermark, map)).map_err(|e| io_err(&tmp, e))?;
    if sync {
        f.sync_data().map_err(|e| io_err(&tmp, e))?;
    }
    drop(f);
    fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
    if sync {
        fsync_dir(dir)?;
    }
    Ok(path)
}

/// Load the newest valid snapshot under `dir`:
/// `(watermark, map)`. Corrupt or torn candidates are skipped (and
/// removed best-effort) in favour of older ones; `None` means full
/// replay.
pub fn load_best(dir: &Path) -> Option<(u64, BTreeMap<String, Bytes>)> {
    for (wm, path) in snapshot_paths(dir).into_iter().rev() {
        match fs::read(&path).ok().and_then(|d| decode(&d)) {
            Some((got_wm, map)) if got_wm == wm => return Some((wm, map)),
            _ => {
                let _ = fs::remove_file(&path);
            }
        }
    }
    None
}

/// Remove snapshot files (and `.tmp` orphans) under `dir`, keeping only
/// the watermark in `keep`. Best-effort: failures leave extra cache
/// files, never lost state.
pub fn prune(dir: &Path, keep: Option<u64>) {
    for (wm, path) in snapshot_paths(dir) {
        if keep != Some(wm) {
            let _ = fs::remove_file(path);
        }
    }
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().ends_with(".dtk.tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

/// Verify a file is a decodable snapshot (used by chaos oracles).
pub fn is_valid_snapshot_file(path: &Path) -> bool {
    fs::read(path).ok().and_then(|d| decode(&d)).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtf-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(n: u32) -> BTreeMap<String, Bytes> {
        (0..n).map(|i| (format!("key-{i:04}"), Bytes::from(vec![i as u8; 10]))).collect()
    }

    #[test]
    fn roundtrip_and_best_selection() {
        let dir = tmpdir("roundtrip");
        write_snapshot(&dir, 100, &sample(5), false).unwrap();
        write_snapshot(&dir, 250, &sample(9), false).unwrap();
        let (wm, map) = load_best(&dir).unwrap();
        assert_eq!(wm, 250);
        assert_eq!(map, sample(9));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmpdir("fallback");
        write_snapshot(&dir, 100, &sample(5), false).unwrap();
        let newest = write_snapshot(&dir, 250, &sample(9), false).unwrap();
        let mut raw = fs::read(&newest).unwrap();
        let at = raw.len() / 2;
        raw[at] ^= 0x01;
        fs::write(&newest, &raw).unwrap();
        let (wm, map) = load_best(&dir).unwrap();
        assert_eq!(wm, 100, "damaged snapshot skipped, previous one wins");
        assert_eq!(map, sample(5));
        assert!(!newest.exists(), "the damaged candidate was swept");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_leaves_previous_set_intact() {
        let dir = tmpdir("torn");
        write_snapshot(&dir, 100, &sample(5), false).unwrap();
        // simulate a crash before rename: a .tmp orphan
        fs::write(dir.join("snap-00000000000000fa.dtk.tmp"), b"partial").unwrap();
        let (wm, _) = load_best(&dir).unwrap();
        assert_eq!(wm, 100);
        prune(&dir, Some(100));
        assert!(snapshot_path(&dir, 100).exists());
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1, "orphan swept by prune");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_only_the_pinned_watermark() {
        let dir = tmpdir("prune");
        for wm in [10u64, 20, 30] {
            write_snapshot(&dir, wm, &sample(3), false).unwrap();
        }
        prune(&dir, Some(20));
        let left = snapshot_paths(&dir);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].0, 20);
        prune(&dir, None);
        assert!(snapshot_paths(&dir).is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_map_snapshots_are_valid() {
        let dir = tmpdir("empty");
        let p = write_snapshot(&dir, 0, &BTreeMap::new(), false).unwrap();
        assert!(is_valid_snapshot_file(&p));
        let (wm, map) = load_best(&dir).unwrap();
        assert_eq!(wm, 0);
        assert!(map.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
