//! A write-ahead-logged key-value store on the segmented log, with
//! snapshot-bounded recovery and background compaction.
//!
//! Every mutation is one log record — `0x00 | klen:u32le | key | value`
//! for a put, `0x01 | klen:u32le | key` for a delete. The live map is
//! rebuilt on open; with a valid snapshot (see [`crate::snapshot`]) only
//! the log tail past the snapshot's watermark is replayed, so reopen cost
//! tracks the tail, not the log. The fallback chain keeps equivalence an
//! invariant: a snapshot that is missing, corrupt, or whose watermark the
//! (possibly truncated) log can no longer reach is discarded and the
//! store falls back to full replay — recovered state is always
//! byte-identical to a full replay of the same directory.
//!
//! Maintenance — periodic snapshots and threshold compaction — runs on a
//! background worker thread by default ([`KvWalConfig::background`]), so
//! the O(live-set) work stays off the put/delete hot path; the writer
//! only stages jobs and applies completions. Compaction rewrites the map
//! as a snapshot of puts into a sibling `<dir>.new` staging log, copies
//! the bounded tail written since the trigger, and swaps with a
//! rename-aside protocol: `dir` → `<dir>.old`, `<dir>.new` → `dir`,
//! fsync parent, remove `<dir>.old`. An authoritative directory exists at
//! every instant (the old remove-then-rename swap had a window where a
//! crash mid-removal lost records); every crash state — stale staging
//! left *before* any rename, the aside/staging pair between renames, a
//! leftover aside after promotion — is repaired on open.
//!
//! [`KvWal`] is the log half only — the caller owns the map, so e.g. the
//! Yokan analog can keep its one `RwLock<BTreeMap>` and write through.
//! [`WalKv`] bundles both for standalone use (tests, benches).

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bytes::Bytes;
use dtf_core::error::{DtfError, Result};

use crate::log::{
    fsync_dir, header_bytes, parse_seqno, segment_name, segment_paths, FlushPolicy, LogConfig,
    RecoveryReport, SegmentedLog, HEADER_LEN,
};
use crate::snapshot;

const TAG_PUT: u8 = 0;
const TAG_DELETE: u8 = 1;

/// KV tuning: the underlying log config plus maintenance triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvWalConfig {
    pub log: LogConfig,
    /// Compaction never fires below this many log records.
    pub compact_min_records: u64,
    /// …and only once records ≥ ratio × live keys (the log is mostly
    /// overwrites and deletes).
    pub compact_ratio: u64,
    /// Write a recovery snapshot every this many records (0 disables).
    /// Snapshots bound reopen cost; they are caches, never truth.
    pub snapshot_every: u64,
    /// Run snapshots and compaction staging on a background worker
    /// thread. Off, maintenance runs inline inside `maybe_maintain` —
    /// deterministic, for tests and benches.
    pub background: bool,
}

impl Default for KvWalConfig {
    fn default() -> Self {
        Self {
            log: LogConfig::default(),
            compact_min_records: 8192,
            compact_ratio: 4,
            snapshot_every: 8192,
            background: true,
        }
    }
}

fn encode_put(key: &str, value: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(5 + key.len() + value.len());
    rec.push(TAG_PUT);
    rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
    rec.extend_from_slice(key.as_bytes());
    rec.extend_from_slice(value);
    rec
}

fn encode_delete(key: &str) -> Vec<u8> {
    let mut rec = Vec::with_capacity(5 + key.len());
    rec.push(TAG_DELETE);
    rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
    rec.extend_from_slice(key.as_bytes());
    rec
}

fn apply_record(map: &mut BTreeMap<String, Bytes>, rec: &Bytes) -> Result<()> {
    let bad = |what: &str| DtfError::Io(format!("kv wal record: {what}"));
    if rec.len() < 5 {
        return Err(bad("shorter than tag + key length"));
    }
    let klen = u32::from_le_bytes(rec[1..5].try_into().unwrap()) as usize;
    if 5 + klen > rec.len() {
        return Err(bad("key length exceeds record"));
    }
    let key =
        std::str::from_utf8(&rec[5..5 + klen]).map_err(|_| bad("key is not utf-8"))?.to_string();
    match rec[0] {
        TAG_PUT => {
            map.insert(key, rec.slice(5 + klen..));
        }
        TAG_DELETE => {
            if rec.len() != 5 + klen {
                return Err(bad("delete record carries trailing bytes"));
            }
            map.remove(&key);
        }
        t => return Err(bad(&format!("unknown tag {t}"))),
    }
    Ok(())
}

fn sibling(dir: &Path, suffix: &str) -> PathBuf {
    let mut name = dir.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(suffix);
    dir.with_file_name(name)
}

fn sibling_new(dir: &Path) -> PathBuf {
    sibling(dir, ".new")
}

fn sibling_old(dir: &Path) -> PathBuf {
    sibling(dir, ".old")
}

fn dir_err(path: &Path, e: std::io::Error) -> DtfError {
    DtfError::Io(format!("{}: {e}", path.display()))
}

/// Repair an interrupted compaction swap before opening the log. Returns
/// whether a swapped store was promoted into place. The matrix covers
/// every crash point of the rename-aside protocol (and the legacy
/// remove-then-rename one):
///
/// - `<dir>` missing, `<dir>.new` present — crash between the renames
///   (or, legacy, after the removal): the staging is complete and
///   authoritative; promote it.
/// - `<dir>` missing, only `<dir>.old` present — should be unreachable
///   (staging only disappears by promotion), but the aside copy is a
///   complete store: restore it rather than lose it.
/// - `<dir>` present — it is authoritative. A `<dir>.new` beside it is
///   stale staging from a crash *before* any rename was attempted (or an
///   abandoned background job) and is removed; a `<dir>.old` is the
///   already-replaced original from a crash after promotion and is
///   removed too.
///
/// With `sync`, promotions fsync the parent directory — otherwise a power
/// loss could resurrect the half-swapped state this repair just resolved.
fn repair_compaction(dir: &Path, sync: bool) -> Result<bool> {
    let staging = sibling_new(dir);
    let aside = sibling_old(dir);
    let mut promoted = false;
    if !dir.exists() {
        let resurrect = if staging.exists() {
            Some(&staging)
        } else if aside.exists() {
            Some(&aside)
        } else {
            None
        };
        if let Some(src) = resurrect {
            fs::rename(src, dir).map_err(|e| dir_err(src, e))?;
            if sync {
                if let Some(parent) = dir.parent() {
                    fsync_dir(parent)?;
                }
            }
            promoted = true;
        }
    }
    if dir.exists() {
        for stale in [&staging, &aside] {
            if stale.exists() {
                fs::remove_dir_all(stale).map_err(|e| dir_err(stale, e))?;
            }
        }
    }
    Ok(promoted)
}

/// Write `map` as a snapshot of puts into the staging log at `staging`.
/// Returns `(segments, records)` of the staged log.
fn stage_snapshot(
    staging: &Path,
    map: &BTreeMap<String, Bytes>,
    cfg: LogConfig,
) -> Result<(u64, u64)> {
    if staging.exists() {
        fs::remove_dir_all(staging).map_err(|e| dir_err(staging, e))?;
    }
    let snap_cfg = LogConfig { flush: FlushPolicy::Manual, ..cfg };
    let (mut snap, _, _) = SegmentedLog::open(staging, snap_cfg)?;
    for (k, v) in map {
        snap.append(&encode_put(k, v))?;
    }
    snap.sync()?;
    let out = (snap.segments(), snap.records());
    drop(snap);
    if cfg.sync_data {
        // staging's directory entries must be durable before any rename
        // can make it authoritative
        fsync_dir(staging)?;
    }
    Ok(out)
}

/// Copy the tail segments (seqno ≥ `tail_seqno`, records ≥ `watermark`)
/// into `staging`, renumbering headers so they chain after the staged
/// snapshot (`staged_segments` segments, `staged_records` records). The
/// tail is bounded by what was appended since the compaction trigger.
fn copy_tail(
    dir: &Path,
    staging: &Path,
    tail_seqno: u64,
    watermark: u64,
    staged_segments: u64,
    staged_records: u64,
    sync: bool,
) -> Result<()> {
    for path in segment_paths(dir)? {
        let seqno = parse_seqno(&path);
        if seqno < tail_seqno {
            continue;
        }
        let data = fs::read(&path).map_err(|e| dir_err(&path, e))?;
        if data.len() < HEADER_LEN {
            continue;
        }
        let first = u64::from_le_bytes(data[16..24].try_into().unwrap());
        let new_seqno = staged_segments + (seqno - tail_seqno);
        let new_first = staged_records + (first - watermark);
        let dst = staging.join(segment_name(new_seqno));
        let mut f = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&dst)
            .map_err(|e| dir_err(&dst, e))?;
        f.write_all(&header_bytes(new_seqno, new_first, data[7])).map_err(|e| dir_err(&dst, e))?;
        f.write_all(&data[HEADER_LEN..]).map_err(|e| dir_err(&dst, e))?;
        if sync {
            f.sync_data().map_err(|e| dir_err(&dst, e))?;
        }
    }
    Ok(())
}

/// Crash points inside the compaction swap, for fault-injection tests:
/// [`KvWal::fail_compaction_at`] makes the swap stop (with the directory
/// in exactly that on-disk state) when it reaches the step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactStep {
    /// Staging written: `<dir>.new` holds the snapshot, nothing renamed.
    Staged,
    /// Tail segments copied into staging; still nothing renamed.
    TailCopied,
    /// Original renamed aside: `<dir>.old` + `<dir>.new`, no `<dir>`.
    OldAside,
    /// Staging promoted to `<dir>`; `<dir>.old` not yet removed.
    Promoted,
}

/// Background maintenance jobs shipped to the worker thread. Maps are
/// cloned at enqueue time — cheap for values ([`Bytes`] is refcounted),
/// O(live keys) for the key strings, and off the hot path's I/O either
/// way.
enum Job {
    Snapshot { dir: PathBuf, watermark: u64, map: BTreeMap<String, Bytes>, sync: bool },
    Stage { staging: PathBuf, map: BTreeMap<String, Bytes>, cfg: LogConfig },
}

enum Done {
    Snapshot,
    /// Staging is written and durable; the writer finishes the swap.
    Staged {
        segments: u64,
        records: u64,
    },
    Failed(String),
}

/// Worker-thread handle. Dropping it closes the job channel and joins —
/// an in-flight job finishes (at worst leaving stale staging that the
/// next open repairs).
struct Worker {
    tx: Option<Sender<Job>>,
    done: Arc<Mutex<Option<Done>>>,
    busy: bool,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker").field("busy", &self.busy).finish()
    }
}

impl Worker {
    fn spawn() -> Self {
        let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
        let done: Arc<Mutex<Option<Done>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&done);
        let handle = std::thread::Builder::new()
            .name("dtf-kv-maintenance".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    let outcome = match job {
                        Job::Snapshot { dir, watermark, map, sync } => {
                            match snapshot::write_snapshot(&dir, watermark, &map, sync) {
                                Ok(_) => {
                                    snapshot::prune(&dir, Some(watermark));
                                    Done::Snapshot
                                }
                                Err(e) => Done::Failed(format!("snapshot: {e}")),
                            }
                        }
                        Job::Stage { staging, map, cfg } => {
                            match stage_snapshot(&staging, &map, cfg) {
                                Ok((segments, records)) => Done::Staged { segments, records },
                                Err(e) => Done::Failed(format!("compaction staging: {e}")),
                            }
                        }
                    };
                    *slot.lock().expect("worker done slot") = Some(outcome);
                }
            })
            .expect("spawn kv maintenance worker");
        Self { tx: Some(tx), done, busy: false, handle: Some(handle) }
    }

    fn submit(&mut self, job: Job) {
        self.busy = true;
        if let Some(tx) = &self.tx {
            let _ = tx.send(job);
        }
    }

    fn take_done(&mut self) -> Option<Done> {
        self.done.lock().expect("worker done slot").take()
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The WAL half of a durable KV: owns the log, not the map.
#[derive(Debug)]
pub struct KvWal {
    log: SegmentedLog,
    cfg: KvWalConfig,
    worker: Option<Worker>,
    /// `(watermark, tail_seqno)` of a staged compaction awaiting its swap.
    pending_swap: Option<(u64, u64)>,
    /// Records at the last snapshot (or compaction, which supersedes it).
    last_snapshot: u64,
    last_error: Option<String>,
    crash_at: Option<CompactStep>,
}

impl KvWal {
    /// Open the WAL at `dir`, repairing any interrupted compaction, and
    /// restore its map — from the newest valid snapshot plus a tail
    /// replay when possible, by full replay otherwise. Either path yields
    /// the identical map; `report.snapshot_records` says how many records'
    /// replay the snapshot saved, `report.skipped_segments` how many
    /// segment bodies were never read.
    pub fn open(
        dir: &Path,
        cfg: KvWalConfig,
    ) -> Result<(Self, BTreeMap<String, Bytes>, RecoveryReport)> {
        repair_compaction(dir, cfg.log.sync_data)?;
        let mut restored = None;
        if let Some((watermark, snap_map)) = snapshot::load_best(dir) {
            if watermark > 0 {
                match SegmentedLog::open_tail(dir, cfg.log, watermark)? {
                    Some((log, tail, mut report)) if report.records >= watermark => {
                        report.snapshot_records = watermark;
                        restored = Some((log, snap_map, tail, report, watermark));
                    }
                    _ => {
                        // the log no longer reaches the watermark (tear
                        // below it) or its header chain is broken: the
                        // snapshot would show state a full replay cannot —
                        // discard it, full replay is truth
                        snapshot::prune(dir, None);
                    }
                }
            }
        }
        let (log, map, report, last_snapshot) = match restored {
            Some((log, mut map, tail, report, watermark)) => {
                for rec in &tail {
                    apply_record(&mut map, rec)?;
                }
                (log, map, report, watermark)
            }
            None => {
                let (log, records, report) = SegmentedLog::open(dir, cfg.log)?;
                let mut map = BTreeMap::new();
                for rec in &records {
                    apply_record(&mut map, rec)?;
                }
                (log, map, report, 0)
            }
        };
        let worker = cfg.background.then(Worker::spawn);
        Ok((
            Self {
                log,
                cfg,
                worker,
                pending_swap: None,
                last_snapshot,
                last_error: None,
                crash_at: None,
            },
            map,
            report,
        ))
    }

    /// Log a put. The caller applies the same mutation to its map.
    pub fn append_put(&mut self, key: &str, value: &[u8]) -> Result<()> {
        self.log.append(&encode_put(key, value))?;
        Ok(())
    }

    /// Log a delete. The caller applies the same mutation to its map.
    pub fn append_delete(&mut self, key: &str) -> Result<()> {
        self.log.append(&encode_delete(key))?;
        Ok(())
    }

    /// Flush pending records per [`SegmentedLog::sync`].
    pub fn sync(&mut self) -> Result<()> {
        self.log.sync()
    }

    /// Records in the log (live + superseded); the compaction input size.
    pub fn records(&self) -> u64 {
        self.log.records()
    }

    pub fn dir(&self) -> &Path {
        self.log.dir()
    }

    /// Whether a background maintenance job is in flight.
    pub fn maintenance_busy(&self) -> bool {
        self.worker.as_ref().map(|w| w.busy).unwrap_or(false)
    }

    /// The last background maintenance failure, if any. Maintenance is
    /// cache work — failures leave a bigger log or a missing snapshot,
    /// never lost state — so they are surfaced here instead of failing
    /// the write path.
    pub fn last_maintenance_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    /// Test hook: make the compaction swap stop dead (directories left in
    /// exactly that state) when it reaches `step`. The store must be
    /// abandoned afterwards; reopening exercises crash repair.
    pub fn fail_compaction_at(&mut self, step: Option<CompactStep>) {
        self.crash_at = step;
    }

    fn check_crash(&self, step: CompactStep) -> Result<()> {
        if self.crash_at == Some(step) {
            return Err(DtfError::Io(format!("injected compaction crash at {step:?}")));
        }
        Ok(())
    }

    /// Drive maintenance: apply any finished background work, then fire
    /// whichever trigger is due — compaction (records ≥ min and ≥ ratio ×
    /// live) or, failing that, a periodic snapshot. Returns whether the
    /// visible log was compacted by this call. `map` must reflect every
    /// record already appended (the caller's write-through copy).
    pub fn maybe_maintain(&mut self, map: &BTreeMap<String, Bytes>) -> Result<bool> {
        let compacted = self.apply_done()?;
        if self.maintenance_busy() || self.pending_swap.is_some() {
            return Ok(compacted);
        }
        let live = map.len() as u64;
        let records = self.log.records();
        if records >= self.cfg.compact_min_records
            && records >= self.cfg.compact_ratio * live.max(1)
        {
            // roll so the tail past the watermark starts on a clean
            // segment boundary — that's what the swap will copy
            self.log.roll()?;
            let watermark = self.log.records();
            let tail_seqno = self.log.current_seqno();
            self.pending_swap = Some((watermark, tail_seqno));
            let staging = sibling_new(self.log.dir());
            if let Some(worker) = &mut self.worker {
                worker.submit(Job::Stage { staging, map: map.clone(), cfg: self.cfg.log });
                return Ok(compacted);
            }
            let (segments, records) = stage_snapshot(&staging, map, self.cfg.log)?;
            self.check_crash(CompactStep::Staged)?;
            self.finish_swap(segments, records)?;
            return Ok(true);
        }
        if self.cfg.snapshot_every > 0 && records - self.last_snapshot >= self.cfg.snapshot_every {
            self.snapshot_now(map)?;
        }
        Ok(compacted)
    }

    /// Write a recovery snapshot of `map` now (at the current committed
    /// watermark), regardless of cadence. Background mode stages it on
    /// the worker; inline mode blocks until it is durable.
    pub fn snapshot_now(&mut self, map: &BTreeMap<String, Bytes>) -> Result<()> {
        self.log.sync()?; // the watermark must cover exactly what's on disk
        let watermark = self.log.records();
        let dir = self.log.dir().to_path_buf();
        self.last_snapshot = watermark;
        if let Some(worker) = &mut self.worker {
            worker.submit(Job::Snapshot {
                dir,
                watermark,
                map: map.clone(),
                sync: self.cfg.log.sync_data,
            });
            return Ok(());
        }
        snapshot::write_snapshot(&dir, watermark, map, self.cfg.log.sync_data)?;
        snapshot::prune(&dir, Some(watermark));
        Ok(())
    }

    /// Apply a finished background job: complete a staged compaction's
    /// swap, or record a snapshot/failure. Returns whether a swap landed.
    fn apply_done(&mut self) -> Result<bool> {
        let Some(worker) = &mut self.worker else { return Ok(false) };
        let Some(done) = worker.take_done() else { return Ok(false) };
        worker.busy = false;
        match done {
            Done::Snapshot => Ok(false),
            Done::Staged { segments, records } => {
                self.check_crash(CompactStep::Staged)?;
                self.finish_swap(segments, records)?;
                Ok(true)
            }
            Done::Failed(msg) => {
                self.pending_swap = None;
                self.last_error = Some(msg);
                Ok(false)
            }
        }
    }

    /// Complete a compaction whose snapshot is staged: copy the bounded
    /// tail, then swap via rename-aside and reattach the log without a
    /// replay. See the module docs for the crash-state matrix.
    fn finish_swap(&mut self, staged_segments: u64, staged_records: u64) -> Result<()> {
        let (watermark, tail_seqno) =
            self.pending_swap.take().expect("finish_swap without a staged compaction");
        self.log.sync()?; // tail records must be on disk before the copy
        let dir = self.log.dir().to_path_buf();
        let staging = sibling_new(&dir);
        let aside = sibling_old(&dir);
        let sync = self.cfg.log.sync_data;
        copy_tail(&dir, &staging, tail_seqno, watermark, staged_segments, staged_records, sync)?;
        if sync {
            fsync_dir(&staging)?;
        }
        self.check_crash(CompactStep::TailCopied)?;
        if aside.exists() {
            fs::remove_dir_all(&aside).map_err(|e| dir_err(&aside, e))?;
        }
        fs::rename(&dir, &aside).map_err(|e| dir_err(&dir, e))?;
        self.check_crash(CompactStep::OldAside)?;
        fs::rename(&staging, &dir).map_err(|e| dir_err(&staging, e))?;
        if sync {
            // the rename pair only survives power loss once the parent
            // directory is flushed
            if let Some(parent) = dir.parent() {
                fsync_dir(parent)?;
            }
        }
        self.check_crash(CompactStep::Promoted)?;
        fs::remove_dir_all(&aside).map_err(|e| dir_err(&aside, e))?;
        // the swapped directory was written by us this instant: reattach
        // at its end instead of replaying it
        self.log = SegmentedLog::attach_end(&dir, self.cfg.log)?;
        self.last_snapshot = self.log.records();
        Ok(())
    }

    /// Block until in-flight background maintenance has completed *and*
    /// its completion has been applied (swap finished, snapshot durable).
    /// Deterministic-test and shutdown hook; a no-op inline.
    pub fn maintenance_barrier(&mut self) -> Result<()> {
        while self.maintenance_busy() {
            if self.apply_done()? {
                continue;
            }
            if self.maintenance_busy() {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        Ok(())
    }

    /// Crash simulation: discard buffered records (see
    /// [`SegmentedLog::abandon`]). A background job still in flight runs
    /// to completion and at worst leaves stale staging or an extra
    /// snapshot — both repaired/ignored on reopen, exactly like a real
    /// crash.
    pub fn abandon(self) {
        drop(self.worker);
        self.log.abandon();
    }
}

/// A self-contained durable KV: [`KvWal`] plus its map. The convenience
/// form for tests and benches; the Mofka analogs use [`KvWal`] directly
/// under their own locks.
#[derive(Debug)]
pub struct WalKv {
    wal: KvWal,
    map: BTreeMap<String, Bytes>,
}

impl WalKv {
    pub fn open(dir: &Path, cfg: KvWalConfig) -> Result<(Self, RecoveryReport)> {
        let (wal, map, report) = KvWal::open(dir, cfg)?;
        Ok((Self { wal, map }, report))
    }

    pub fn put(&mut self, key: impl Into<String>, value: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        let value = value.into();
        self.wal.append_put(&key, &value)?;
        self.map.insert(key, value);
        self.wal.maybe_maintain(&self.map)?;
        Ok(())
    }

    pub fn delete(&mut self, key: &str) -> Result<bool> {
        self.wal.append_delete(key)?;
        let existed = self.map.remove(key).is_some();
        self.wal.maybe_maintain(&self.map)?;
        Ok(existed)
    }

    pub fn get(&self, key: &str) -> Option<Bytes> {
        self.map.get(key).cloned()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    pub fn map(&self) -> &BTreeMap<String, Bytes> {
        &self.map
    }

    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    pub fn wal(&mut self) -> &mut KvWal {
        &mut self.wal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtf-kv-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(sibling_new(&dir));
        let _ = fs::remove_dir_all(sibling_old(&dir));
        dir
    }

    /// Inline maintenance, no fsync: deterministic and fast for tests.
    fn fast() -> KvWalConfig {
        KvWalConfig {
            log: LogConfig {
                flush: FlushPolicy::EveryRecord,
                sync_data: false,
                ..LogConfig::default()
            },
            background: false,
            ..KvWalConfig::default()
        }
    }

    #[test]
    fn puts_and_deletes_replay() {
        let dir = tmpdir("replay");
        {
            let (mut kv, _) = WalKv::open(&dir, fast()).unwrap();
            kv.put("a", &b"1"[..]).unwrap();
            kv.put("b", &b"2"[..]).unwrap();
            kv.put("a", &b"3"[..]).unwrap(); // overwrite
            kv.delete("b").unwrap();
            kv.put("c", &b"4"[..]).unwrap();
        }
        let (kv, report) = WalKv::open(&dir, fast()).unwrap();
        assert_eq!(report.records, 5);
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.get("a").unwrap().as_ref(), b"3");
        assert!(kv.get("b").is_none());
        assert_eq!(kv.get("c").unwrap().as_ref(), b"4");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_map() {
        let dir = tmpdir("compact");
        let cfg = KvWalConfig { compact_min_records: 64, compact_ratio: 4, ..fast() };
        let (mut kv, _) = WalKv::open(&dir, cfg).unwrap();
        for round in 0..20u32 {
            for k in 0..10u32 {
                kv.put(format!("key-{k}"), format!("v{round}").into_bytes()).unwrap();
            }
        }
        assert_eq!(kv.len(), 10);
        assert!(kv.wal_records() < 64, "200 appends over 10 keys must have compacted");
        drop(kv);
        let (kv, _) = WalKv::open(&dir, cfg).unwrap();
        assert_eq!(kv.len(), 10);
        for k in 0..10u32 {
            assert_eq!(kv.get(&format!("key-{k}")).unwrap().as_ref(), b"v19");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_compaction_lands_after_the_barrier() {
        let dir = tmpdir("bg-compact");
        let cfg =
            KvWalConfig { compact_min_records: 64, compact_ratio: 4, background: true, ..fast() };
        let (mut kv, _) = WalKv::open(&dir, cfg).unwrap();
        for round in 0..20u32 {
            for k in 0..10u32 {
                kv.put(format!("key-{k}"), format!("v{round}").into_bytes()).unwrap();
            }
        }
        kv.wal().maintenance_barrier().unwrap();
        // one more write applies the staged swap if the barrier caught it mid-poll
        kv.put("key-0", &b"v19"[..]).unwrap();
        kv.wal().maintenance_barrier().unwrap();
        assert!(kv.wal().last_maintenance_error().is_none());
        assert!(kv.wal_records() < 64, "background compaction must have landed");
        drop(kv);
        let (kv, _) = WalKv::open(&dir, cfg).unwrap();
        assert_eq!(kv.len(), 10);
        for k in 1..10u32 {
            assert_eq!(kv.get(&format!("key-{k}")).unwrap().as_ref(), b"v19");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_bounds_reopen_to_the_tail() {
        let dir = tmpdir("snap-tail");
        let cfg = KvWalConfig {
            snapshot_every: 100,
            compact_min_records: u64::MAX, // isolate snapshotting
            log: LogConfig { segment_bytes: 1 << 10, ..fast().log },
            ..fast()
        };
        {
            let (mut kv, _) = WalKv::open(&dir, cfg).unwrap();
            for i in 0..230u32 {
                kv.put(format!("k-{}", i % 40), i.to_le_bytes().to_vec()).unwrap();
            }
            kv.sync().unwrap();
        }
        let (kv, report) = WalKv::open(&dir, cfg).unwrap();
        assert!(report.snapshot_records >= 100, "a snapshot pinned a watermark");
        assert!(report.skipped_segments > 0, "cold segment bodies were not read");
        assert_eq!(report.records, 230);
        assert_eq!(kv.len(), 40);
        for k in 0..40u32 {
            let want = (0..230u32).rfind(|i| i % 40 == k).unwrap();
            assert_eq!(kv.get(&format!("k-{k}")).unwrap().as_ref(), want.to_le_bytes());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreachable_watermark_discards_the_snapshot() {
        let dir = tmpdir("snap-unreach");
        let cfg = KvWalConfig { compact_min_records: u64::MAX, snapshot_every: 0, ..fast() };
        {
            let (mut kv, _) = WalKv::open(&dir, cfg).unwrap();
            for i in 0..50u32 {
                kv.put(format!("k-{i}"), vec![i as u8]).unwrap();
            }
            kv.sync().unwrap();
            let snap_map = kv.map.clone();
            kv.wal.snapshot_now(&snap_map).unwrap();
        }
        // hard-truncate the log below the watermark: drop the last bytes
        let path = segment_paths(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 40).unwrap();
        let (kv, report) = WalKv::open(&dir, cfg).unwrap();
        assert_eq!(report.snapshot_records, 0, "snapshot discarded, full replay is truth");
        assert!(report.records < 50);
        assert_eq!(kv.len(), report.records as usize);
        assert!(snapshot::snapshot_paths(&dir).is_empty(), "stale snapshot pruned");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_compaction_before_swap_is_discarded() {
        let dir = tmpdir("crash-pre");
        {
            let (mut kv, _) = WalKv::open(&dir, fast()).unwrap();
            kv.put("live", &b"yes"[..]).unwrap();
        }
        // simulate a crash after writing the snapshot but before any
        // rename: both <dir> and <dir>.new exist, <dir> is authoritative
        let new_dir = sibling_new(&dir);
        let (mut snap, _, _) = SegmentedLog::open(&new_dir, LogConfig::default()).unwrap();
        snap.append(&encode_put("stale", b"no")).unwrap();
        snap.sync().unwrap();
        drop(snap);
        let (kv, _) = WalKv::open(&dir, fast()).unwrap();
        assert_eq!(kv.len(), 1);
        assert!(kv.get("live").is_some());
        assert!(kv.get("stale").is_none());
        assert!(!new_dir.exists(), "leftover snapshot must be cleaned up");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_compaction_after_removal_is_completed() {
        let dir = tmpdir("crash-post");
        // legacy crash state (remove-then-rename protocol): only
        // <dir>.new exists and must be promoted
        let new_dir = sibling_new(&dir);
        {
            let (mut snap, _, _) = SegmentedLog::open(&new_dir, LogConfig::default()).unwrap();
            snap.append(&encode_put("survivor", b"promoted")).unwrap();
            snap.sync().unwrap();
        }
        assert!(!dir.exists());
        let (kv, _) = WalKv::open(&dir, fast()).unwrap();
        assert_eq!(kv.get("survivor").unwrap().as_ref(), b"promoted");
        assert!(!new_dir.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aside_only_state_is_restored_not_lost() {
        let dir = tmpdir("crash-aside");
        let aside = sibling_old(&dir);
        {
            let (mut snap, _, _) = SegmentedLog::open(&aside, LogConfig::default()).unwrap();
            snap.append(&encode_put("kept", b"alive")).unwrap();
            snap.sync().unwrap();
        }
        let (kv, _) = WalKv::open(&dir, fast()).unwrap();
        assert_eq!(kv.get("kept").unwrap().as_ref(), b"alive");
        assert!(!aside.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_values_and_empty_values_roundtrip() {
        let dir = tmpdir("binary");
        {
            let (mut kv, _) = WalKv::open(&dir, fast()).unwrap();
            kv.put("zeros", vec![0u8; 256]).unwrap();
            kv.put("empty", Bytes::new()).unwrap();
            kv.put("utf8-key-π", &b"pi"[..]).unwrap();
        }
        let (kv, _) = WalKv::open(&dir, fast()).unwrap();
        assert_eq!(kv.get("zeros").unwrap().len(), 256);
        assert_eq!(kv.get("empty").unwrap().len(), 0);
        assert_eq!(kv.get("utf8-key-π").unwrap().as_ref(), b"pi");
        fs::remove_dir_all(&dir).unwrap();
    }
}
