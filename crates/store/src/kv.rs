//! A tiny write-ahead-logged key-value store on the segmented log.
//!
//! Every mutation is one log record — `0x00 | klen:u32le | key | value`
//! for a put, `0x01 | klen:u32le | key` for a delete — and the live map
//! is rebuilt by replaying the log on open. When the log grows well past
//! the live key count, [`KvWal::maybe_compact`] rewrites the current map
//! as a snapshot of puts into a sibling `<dir>.new` log and swaps it in
//! by `rename`, fsyncing the parent directory afterwards so the swap
//! survives power loss. Both crash windows of the swap are repaired on open: a
//! leftover `<dir>.new` next to an intact `<dir>` is discarded (the swap
//! never started destroying the original), and a `<dir>.new` with no
//! `<dir>` is renamed into place (the swap had already passed the point
//! of no return).
//!
//! [`KvWal`] is the log half only — the caller owns the map, so e.g. the
//! Yokan analog can keep its one `RwLock<BTreeMap>` and write through.
//! [`WalKv`] bundles both for standalone use (tests, benches).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use dtf_core::error::{DtfError, Result};

use crate::log::{fsync_dir, FlushPolicy, LogConfig, RecoveryReport, SegmentedLog};

const TAG_PUT: u8 = 0;
const TAG_DELETE: u8 = 1;

/// KV tuning: the underlying log config plus the compaction trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvWalConfig {
    pub log: LogConfig,
    /// Compaction never fires below this many log records.
    pub compact_min_records: u64,
    /// …and only once records ≥ ratio × live keys (the log is mostly
    /// overwrites and deletes).
    pub compact_ratio: u64,
}

impl Default for KvWalConfig {
    fn default() -> Self {
        Self { log: LogConfig::default(), compact_min_records: 8192, compact_ratio: 4 }
    }
}

fn encode_put(key: &str, value: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(5 + key.len() + value.len());
    rec.push(TAG_PUT);
    rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
    rec.extend_from_slice(key.as_bytes());
    rec.extend_from_slice(value);
    rec
}

fn encode_delete(key: &str) -> Vec<u8> {
    let mut rec = Vec::with_capacity(5 + key.len());
    rec.push(TAG_DELETE);
    rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
    rec.extend_from_slice(key.as_bytes());
    rec
}

fn apply_record(map: &mut BTreeMap<String, Bytes>, rec: &Bytes) -> Result<()> {
    let bad = |what: &str| DtfError::Io(format!("kv wal record: {what}"));
    if rec.len() < 5 {
        return Err(bad("shorter than tag + key length"));
    }
    let klen = u32::from_le_bytes(rec[1..5].try_into().unwrap()) as usize;
    if 5 + klen > rec.len() {
        return Err(bad("key length exceeds record"));
    }
    let key =
        std::str::from_utf8(&rec[5..5 + klen]).map_err(|_| bad("key is not utf-8"))?.to_string();
    match rec[0] {
        TAG_PUT => {
            map.insert(key, rec.slice(5 + klen..));
        }
        TAG_DELETE => {
            if rec.len() != 5 + klen {
                return Err(bad("delete record carries trailing bytes"));
            }
            map.remove(&key);
        }
        t => return Err(bad(&format!("unknown tag {t}"))),
    }
    Ok(())
}

fn sibling_new(dir: &Path) -> PathBuf {
    let mut name = dir.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".new");
    dir.with_file_name(name)
}

/// Repair an interrupted compaction swap before opening the log. Returns
/// whether a completed swap was finished (`<dir>.new` promoted). With
/// `sync`, the parent directory is fsynced after the promotion rename —
/// otherwise a power loss could resurrect the half-swapped state this
/// repair just resolved.
fn repair_compaction(dir: &Path, sync: bool) -> Result<bool> {
    let new_dir = sibling_new(dir);
    if !new_dir.exists() {
        return Ok(false);
    }
    if dir.exists() {
        // the original is intact: the snapshot never became authoritative
        fs::remove_dir_all(&new_dir)
            .map_err(|e| DtfError::Io(format!("{}: {e}", new_dir.display())))?;
        Ok(false)
    } else {
        // the original was removed: the snapshot is the store
        fs::rename(&new_dir, dir)
            .map_err(|e| DtfError::Io(format!("{}: {e}", new_dir.display())))?;
        if sync {
            if let Some(parent) = dir.parent() {
                fsync_dir(parent)?;
            }
        }
        Ok(true)
    }
}

/// The WAL half of a durable KV: owns the log, not the map.
#[derive(Debug)]
pub struct KvWal {
    log: SegmentedLog,
    cfg: KvWalConfig,
}

impl KvWal {
    /// Open the WAL at `dir`, repairing any interrupted compaction, and
    /// replay it into a fresh map.
    pub fn open(
        dir: &Path,
        cfg: KvWalConfig,
    ) -> Result<(Self, BTreeMap<String, Bytes>, RecoveryReport)> {
        repair_compaction(dir, cfg.log.sync_data)?;
        let (log, records, report) = SegmentedLog::open(dir, cfg.log)?;
        let mut map = BTreeMap::new();
        for rec in &records {
            apply_record(&mut map, rec)?;
        }
        Ok((Self { log, cfg }, map, report))
    }

    /// Log a put. The caller applies the same mutation to its map.
    pub fn append_put(&mut self, key: &str, value: &[u8]) -> Result<()> {
        self.log.append(&encode_put(key, value))?;
        Ok(())
    }

    /// Log a delete. The caller applies the same mutation to its map.
    pub fn append_delete(&mut self, key: &str) -> Result<()> {
        self.log.append(&encode_delete(key))?;
        Ok(())
    }

    /// Flush pending records per [`SegmentedLog::sync`].
    pub fn sync(&mut self) -> Result<()> {
        self.log.sync()
    }

    /// Records in the log (live + superseded); the compaction input size.
    pub fn records(&self) -> u64 {
        self.log.records()
    }

    pub fn dir(&self) -> &Path {
        self.log.dir()
    }

    /// Compact if the trigger fires: snapshot `map` as puts into
    /// `<dir>.new`, sync, swap by rename, and reopen the log. Returns
    /// whether compaction ran. `map` must reflect every record already
    /// appended (the caller's write-through copy).
    pub fn maybe_compact(&mut self, map: &BTreeMap<String, Bytes>) -> Result<bool> {
        let live = map.len() as u64;
        if self.log.records() < self.cfg.compact_min_records
            || self.log.records() < self.cfg.compact_ratio * live.max(1)
        {
            return Ok(false);
        }
        self.log.sync()?;
        let dir = self.log.dir().to_path_buf();
        let new_dir = sibling_new(&dir);
        if new_dir.exists() {
            fs::remove_dir_all(&new_dir)
                .map_err(|e| DtfError::Io(format!("{}: {e}", new_dir.display())))?;
        }
        {
            let snap_cfg = LogConfig { flush: FlushPolicy::Manual, ..self.cfg.log };
            let (mut snap, _, _) = SegmentedLog::open(&new_dir, snap_cfg)?;
            for (k, v) in map {
                snap.append(&encode_put(k, v))?;
            }
            snap.sync()?;
        }
        if self.cfg.log.sync_data {
            // the snapshot's directory entries must be durable before the
            // swap can make it authoritative
            fsync_dir(&new_dir)?;
        }
        // point of no return: once `dir` is gone the snapshot is authoritative
        fs::remove_dir_all(&dir).map_err(|e| DtfError::Io(format!("{}: {e}", dir.display())))?;
        fs::rename(&new_dir, &dir)
            .map_err(|e| DtfError::Io(format!("{}: {e}", new_dir.display())))?;
        if self.cfg.log.sync_data {
            // …and the rename itself only survives power loss once the
            // parent directory is flushed
            if let Some(parent) = dir.parent() {
                fsync_dir(parent)?;
            }
        }
        let (log, _, _) = SegmentedLog::open(&dir, self.cfg.log)?;
        self.log = log;
        Ok(true)
    }

    /// Crash simulation: discard buffered records (see
    /// [`SegmentedLog::abandon`]).
    pub fn abandon(self) {
        self.log.abandon();
    }
}

/// A self-contained durable KV: [`KvWal`] plus its map. The convenience
/// form for tests and benches; the Mofka analogs use [`KvWal`] directly
/// under their own locks.
#[derive(Debug)]
pub struct WalKv {
    wal: KvWal,
    map: BTreeMap<String, Bytes>,
}

impl WalKv {
    pub fn open(dir: &Path, cfg: KvWalConfig) -> Result<(Self, RecoveryReport)> {
        let (wal, map, report) = KvWal::open(dir, cfg)?;
        Ok((Self { wal, map }, report))
    }

    pub fn put(&mut self, key: impl Into<String>, value: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        let value = value.into();
        self.wal.append_put(&key, &value)?;
        self.map.insert(key, value);
        self.wal.maybe_compact(&self.map)?;
        Ok(())
    }

    pub fn delete(&mut self, key: &str) -> Result<bool> {
        self.wal.append_delete(key)?;
        let existed = self.map.remove(key).is_some();
        self.wal.maybe_compact(&self.map)?;
        Ok(existed)
    }

    pub fn get(&self, key: &str) -> Option<Bytes> {
        self.map.get(key).cloned()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    pub fn map(&self) -> &BTreeMap<String, Bytes> {
        &self.map
    }

    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtf-kv-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(sibling_new(&dir));
        dir
    }

    fn fast() -> KvWalConfig {
        KvWalConfig {
            log: LogConfig {
                flush: FlushPolicy::EveryRecord,
                sync_data: false,
                ..LogConfig::default()
            },
            ..KvWalConfig::default()
        }
    }

    #[test]
    fn puts_and_deletes_replay() {
        let dir = tmpdir("replay");
        {
            let (mut kv, _) = WalKv::open(&dir, fast()).unwrap();
            kv.put("a", &b"1"[..]).unwrap();
            kv.put("b", &b"2"[..]).unwrap();
            kv.put("a", &b"3"[..]).unwrap(); // overwrite
            kv.delete("b").unwrap();
            kv.put("c", &b"4"[..]).unwrap();
        }
        let (kv, report) = WalKv::open(&dir, fast()).unwrap();
        assert_eq!(report.records, 5);
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.get("a").unwrap().as_ref(), b"3");
        assert!(kv.get("b").is_none());
        assert_eq!(kv.get("c").unwrap().as_ref(), b"4");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_map() {
        let dir = tmpdir("compact");
        let cfg = KvWalConfig { compact_min_records: 64, compact_ratio: 4, ..fast() };
        let (mut kv, _) = WalKv::open(&dir, cfg).unwrap();
        for round in 0..20u32 {
            for k in 0..10u32 {
                kv.put(format!("key-{k}"), format!("v{round}").into_bytes()).unwrap();
            }
        }
        assert_eq!(kv.len(), 10);
        assert!(kv.wal_records() < 64, "200 appends over 10 keys must have compacted");
        drop(kv);
        let (kv, _) = WalKv::open(&dir, cfg).unwrap();
        assert_eq!(kv.len(), 10);
        for k in 0..10u32 {
            assert_eq!(kv.get(&format!("key-{k}")).unwrap().as_ref(), b"v19");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_compaction_before_swap_is_discarded() {
        let dir = tmpdir("crash-pre");
        {
            let (mut kv, _) = WalKv::open(&dir, fast()).unwrap();
            kv.put("live", &b"yes"[..]).unwrap();
        }
        // simulate a crash after writing the snapshot but before the swap:
        // both <dir> and <dir>.new exist, <dir> is authoritative
        let new_dir = sibling_new(&dir);
        let (mut snap, _, _) = SegmentedLog::open(&new_dir, LogConfig::default()).unwrap();
        snap.append(&encode_put("stale", b"no")).unwrap();
        snap.sync().unwrap();
        drop(snap);
        let (kv, _) = WalKv::open(&dir, fast()).unwrap();
        assert_eq!(kv.len(), 1);
        assert!(kv.get("live").is_some());
        assert!(kv.get("stale").is_none());
        assert!(!new_dir.exists(), "leftover snapshot must be cleaned up");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_compaction_after_removal_is_completed() {
        let dir = tmpdir("crash-post");
        // simulate a crash between remove_dir_all(dir) and rename: only
        // <dir>.new exists and must be promoted
        let new_dir = sibling_new(&dir);
        {
            let (mut snap, _, _) = SegmentedLog::open(&new_dir, LogConfig::default()).unwrap();
            snap.append(&encode_put("survivor", b"promoted")).unwrap();
            snap.sync().unwrap();
        }
        assert!(!dir.exists());
        let (kv, _) = WalKv::open(&dir, fast()).unwrap();
        assert_eq!(kv.get("survivor").unwrap().as_ref(), b"promoted");
        assert!(!new_dir.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_values_and_empty_values_roundtrip() {
        let dir = tmpdir("binary");
        {
            let (mut kv, _) = WalKv::open(&dir, fast()).unwrap();
            kv.put("zeros", vec![0u8; 256]).unwrap();
            kv.put("empty", Bytes::new()).unwrap();
            kv.put("utf8-key-π", &b"pi"[..]).unwrap();
        }
        let (kv, _) = WalKv::open(&dir, fast()).unwrap();
        assert_eq!(kv.get("zeros").unwrap().len(), 256);
        assert_eq!(kv.get("empty").unwrap().len(), 0);
        assert_eq!(kv.get("utf8-key-π").unwrap().as_ref(), b"pi");
        fs::remove_dir_all(&dir).unwrap();
    }
}
