//! The segmented append-only record log.
//!
//! On-disk layout: a directory of fixed-size segment files named
//! `seg-<seqno:016x>.dtl`. Each segment starts with a 28-byte header —
//! magic `DTFSEG1`, a format-version byte, the segment's sequence number,
//! the index of its first record, and a CRC32 of those 24 bytes —
//! followed by record frames: `len:u32le | crc32(payload):u32le |
//! payload`. A record never spans segments; a segment holds at least one
//! record even when the record alone exceeds the size cap (oversized
//! records simply get a segment to themselves).
//!
//! The version byte declares how record payloads are encoded. JSON-era
//! stores (written before the binary record format) carry
//! [`FORMAT_JSON`] — which is the `\0` that used to terminate the magic,
//! so their headers validate unchanged. New segments are stamped
//! [`FORMAT_BINARY`]. The log itself treats payloads as opaque either
//! way; the byte exists so a future reader can refuse formats it does
//! not understand instead of misparsing them, and recovery reports the
//! highest version it saw.
//!
//! Appends accumulate in a memory buffer and reach the file as one write
//! (group commit) according to the [`FlushPolicy`]; `sync_data` is called
//! after each flush when [`LogConfig::sync_data`] is set. Dropping the log
//! flushes best-effort without fsync — the semantics of a clean process
//! exit. [`SegmentedLog::abandon`] discards the buffer instead, modelling
//! a hard crash for tests.
//!
//! Opening a directory runs the recovery scan: segments are walked in
//! seqno order; a segment with a damaged header, a seqno gap, or a
//! first-record index that disagrees with the running count is dropped
//! along with everything after it; inside a segment, the first frame with
//! a bad length, a short read, or a CRC mismatch truncates the file at
//! that byte and drops all later segments. What survives is exactly the
//! committed prefix.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use dtf_core::error::{DtfError, Result};

use crate::crc32::crc32;

const MAGIC_PREFIX: &[u8; 7] = b"DTFSEG1";
/// Header byte 7: record payloads are compact JSON text (stores written
/// before the binary format — the byte doubled as the magic terminator).
pub const FORMAT_JSON: u8 = 0;
/// Header byte 7: record payloads are binary-encoded (`dtf_core::binfmt`
/// for provenance records; the KV layer's framing is unchanged).
pub const FORMAT_BINARY: u8 = 1;
/// Highest format this reader understands; headers beyond it are treated
/// as damaged and the segment (plus successors) is dropped.
const FORMAT_MAX: u8 = FORMAT_BINARY;
/// Segment header length: magic(7) + format(1) + seqno(8) +
/// first_record(8) + crc(4).
pub const HEADER_LEN: usize = 28;
/// Frame overhead per record: len(4) + crc(4).
pub const FRAME_OVERHEAD: usize = 8;
/// Upper bound on one record's payload (a corrupted length field larger
/// than this is rejected without attempting the read).
pub const MAX_RECORD_BYTES: usize = 64 << 20;

/// When buffered appends are written (and optionally fsynced) to the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush after every append — maximum durability, one I/O per record.
    EveryRecord,
    /// Group commit: flush once `n` records are pending.
    EveryN(u32),
    /// Only explicit [`SegmentedLog::sync`] calls flush.
    Manual,
}

/// Log tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogConfig {
    /// Target segment size in bytes; a segment rolls when the next frame
    /// would exceed it (but always holds at least one record).
    pub segment_bytes: u64,
    pub flush: FlushPolicy,
    /// Call `sync_data` after each flush (fsync durability). Off, a flush
    /// reaches the OS page cache — durable across process death, not
    /// power loss.
    pub sync_data: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        Self { segment_bytes: 256 << 10, flush: FlushPolicy::EveryN(256), sync_data: true }
    }
}

/// What the recovery scan found and repaired while opening a log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments that passed header validation.
    pub segments: usize,
    /// Records recovered (the committed prefix).
    pub records: u64,
    /// Bytes cut off a torn tail.
    pub truncated_bytes: u64,
    /// Segment files dropped (damaged header, seqno gap, or past a tear).
    pub dropped_segments: usize,
    /// Whether a torn/corrupt tail was found and truncated.
    pub torn: bool,
    /// Highest header format version among the surviving segments
    /// ([`FORMAT_JSON`] for an empty or legacy-only store).
    pub format: u8,
}

/// A segmented append-only record log rooted at one directory.
#[derive(Debug)]
pub struct SegmentedLog {
    dir: PathBuf,
    cfg: LogConfig,
    file: File,
    seg_seqno: u64,
    /// Bytes in the current segment, committed and pending.
    seg_len: u64,
    /// Records appended over the log's lifetime (committed and pending).
    records: u64,
    /// Records written to the file (the crash-durable prefix).
    committed: u64,
    pending: Vec<u8>,
    pending_records: u64,
}

fn io_err(path: &Path, e: std::io::Error) -> DtfError {
    DtfError::Io(format!("{}: {e}", path.display()))
}

fn segment_name(seqno: u64) -> String {
    format!("seg-{seqno:016x}.dtl")
}

fn header_bytes(seqno: u64, first_record: u64, format: u8) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..7].copy_from_slice(MAGIC_PREFIX);
    h[7] = format;
    h[8..16].copy_from_slice(&seqno.to_le_bytes());
    h[16..24].copy_from_slice(&first_record.to_le_bytes());
    let crc = crc32(&h[..24]);
    h[24..28].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Fsync a directory, making renames/creations inside it power-loss
/// durable. POSIX only guarantees a rename survives power loss once the
/// parent directory's entry is flushed — syncing the file alone is not
/// enough.
pub fn fsync_dir(dir: &Path) -> Result<()> {
    File::open(dir).and_then(|f| f.sync_all()).map_err(|e| io_err(dir, e))
}

/// Segment files under `dir`, sorted by sequence number. Exposed so fault
/// injection (dtf-chaos) can aim at the tail segment of a store.
pub fn segment_paths(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(hex) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".dtl")) {
            if let Ok(seqno) = u64::from_str_radix(hex, 16) {
                found.push((seqno, entry.path()));
            }
        }
    }
    found.sort();
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

fn parse_seqno(path: &Path) -> u64 {
    path.file_name()
        .and_then(|n| n.to_str())
        .and_then(|n| n.strip_prefix("seg-"))
        .and_then(|n| n.strip_suffix(".dtl"))
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .expect("segment_paths yields well-formed names")
}

impl SegmentedLog {
    /// Open (creating if absent) the log at `dir`, running the recovery
    /// scan. Returns the log positioned for appending, the recovered
    /// records in order, and the scan report.
    pub fn open(dir: &Path, cfg: LogConfig) -> Result<(Self, Vec<Bytes>, RecoveryReport)> {
        let cfg = LogConfig {
            segment_bytes: cfg.segment_bytes.max((HEADER_LEN + FRAME_OVERHEAD) as u64 + 8),
            ..cfg
        };
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let paths = segment_paths(dir)?;
        let mut report = RecoveryReport::default();
        let mut records: Vec<Bytes> = Vec::new();
        // (seqno, path, byte length) of the segment appends continue into
        let mut active: Option<(u64, PathBuf, u64)> = None;
        let mut drop_from: Option<usize> = None;
        let mut prev_seqno: Option<u64> = None;

        'segments: for (i, path) in paths.iter().enumerate() {
            let seqno = parse_seqno(path);
            // One read and one allocation per segment: recovered records
            // are zero-copy slices into this buffer.
            let data = Bytes::from(fs::read(path).map_err(|e| io_err(path, e))?);
            let header_ok = data.len() >= HEADER_LEN
                && &data[..7] == MAGIC_PREFIX
                && data[7] <= FORMAT_MAX
                && u32::from_le_bytes(data[24..28].try_into().unwrap()) == crc32(&data[..24])
                && u64::from_le_bytes(data[8..16].try_into().unwrap()) == seqno
                && u64::from_le_bytes(data[16..24].try_into().unwrap()) == records.len() as u64
                && prev_seqno.map(|p| seqno == p + 1).unwrap_or(true);
            if !header_ok {
                drop_from = Some(i);
                break;
            }
            prev_seqno = Some(seqno);
            report.segments += 1;
            report.format = report.format.max(data[7]);
            let mut off = HEADER_LEN;
            loop {
                if off == data.len() {
                    break; // clean segment end
                }
                // Bounds-check the length field against the bytes that
                // actually remain BEFORE touching the payload: a corrupted
                // length must tear here, never drive a slice (or, for a
                // copying reader, a multi-GB allocation).
                let mut frame_len = None;
                if off + FRAME_OVERHEAD <= data.len() {
                    let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
                    if len <= MAX_RECORD_BYTES && len <= data.len() - off - FRAME_OVERHEAD {
                        let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
                        if crc32(&data[off + 8..off + 8 + len]) == crc {
                            frame_len = Some(len);
                        }
                    }
                }
                let Some(len) = frame_len else {
                    // torn tail: truncate here, drop everything after
                    let f =
                        OpenOptions::new().write(true).open(path).map_err(|e| io_err(path, e))?;
                    f.set_len(off as u64).map_err(|e| io_err(path, e))?;
                    report.truncated_bytes += (data.len() - off) as u64;
                    report.torn = true;
                    active = Some((seqno, path.clone(), off as u64));
                    drop_from = Some(i + 1);
                    break 'segments;
                };
                records.push(data.slice(off + 8..off + 8 + len));
                off += FRAME_OVERHEAD + len;
            }
            active = Some((seqno, path.clone(), data.len() as u64));
        }

        if let Some(i) = drop_from {
            report.dropped_segments = paths.len() - i;
            for path in &paths[i..] {
                fs::remove_file(path).map_err(|e| io_err(path, e))?;
            }
        }
        report.records = records.len() as u64;

        let (file, seg_seqno, seg_len) = match active {
            Some((seqno, path, len)) => {
                let file =
                    OpenOptions::new().append(true).open(&path).map_err(|e| io_err(&path, e))?;
                (file, seqno, len)
            }
            None => Self::create_segment(dir, 0, 0)?,
        };
        let n = records.len() as u64;
        let log = Self {
            dir: dir.to_path_buf(),
            cfg,
            file,
            seg_seqno,
            seg_len,
            records: n,
            committed: n,
            pending: Vec::new(),
            pending_records: 0,
        };
        Ok((log, records, report))
    }

    fn create_segment(dir: &Path, seqno: u64, first_record: u64) -> Result<(File, u64, u64)> {
        let path = dir.join(segment_name(seqno));
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        file.write_all(&header_bytes(seqno, first_record, FORMAT_BINARY))
            .map_err(|e| io_err(&path, e))?;
        Ok((file, seqno, HEADER_LEN as u64))
    }

    /// Append one record; returns its index (0-based over the log's life).
    /// Flushes per the configured policy.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if payload.len() > MAX_RECORD_BYTES {
            return Err(DtfError::Io(format!(
                "record of {} bytes exceeds the {MAX_RECORD_BYTES}-byte cap",
                payload.len()
            )));
        }
        let frame = (FRAME_OVERHEAD + payload.len()) as u64;
        if self.seg_len + frame > self.cfg.segment_bytes && self.seg_len > HEADER_LEN as u64 {
            self.roll()?;
        }
        let index = self.records;
        self.pending.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending.extend_from_slice(&crc32(payload).to_le_bytes());
        self.pending.extend_from_slice(payload);
        self.pending_records += 1;
        self.records += 1;
        self.seg_len += frame;
        match self.cfg.flush {
            FlushPolicy::EveryRecord => self.sync()?,
            FlushPolicy::EveryN(n) => {
                if self.pending_records >= n.max(1) as u64 {
                    self.sync()?;
                }
            }
            FlushPolicy::Manual => {}
        }
        Ok(index)
    }

    /// Group commit: write everything pending in one `write`, then
    /// `sync_data` if configured. After this returns, every appended
    /// record is committed.
    pub fn sync(&mut self) -> Result<()> {
        if !self.pending.is_empty() {
            self.file.write_all(&self.pending).map_err(|e| io_err(&self.dir, e))?;
            if self.cfg.sync_data {
                self.file.sync_data().map_err(|e| io_err(&self.dir, e))?;
            }
            self.pending.clear();
            self.pending_records = 0;
        }
        self.committed = self.records;
        Ok(())
    }

    /// Flush the current segment and start the next one. The directory is
    /// fsynced after the new segment is created — without it, power loss
    /// can forget the file itself even though its writes were synced.
    fn roll(&mut self) -> Result<()> {
        self.sync()?;
        let (file, seqno, len) = Self::create_segment(&self.dir, self.seg_seqno + 1, self.records)?;
        if self.cfg.sync_data {
            fsync_dir(&self.dir)?;
        }
        self.file = file;
        self.seg_seqno = seqno;
        self.seg_len = len;
        Ok(())
    }

    /// Records appended (committed or still buffered).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records on disk — what a crash right now would preserve.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Number of segment files written so far.
    pub fn segments(&self) -> u64 {
        self.seg_seqno + 1
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Drop the log as a hard crash would: buffered (uncommitted) records
    /// are discarded, not flushed. Test hook for crash-recovery scenarios.
    pub fn abandon(mut self) {
        self.pending.clear();
        self.pending_records = 0;
    }
}

impl Drop for SegmentedLog {
    fn drop(&mut self) {
        // clean-exit semantics: write what's buffered, skip the fsync
        if !self.pending.is_empty() {
            let _ = self.file.write_all(&self.pending);
            self.pending.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtf-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(segment_bytes: u64, flush: FlushPolicy) -> LogConfig {
        LogConfig { segment_bytes, flush, sync_data: false }
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = tmpdir("roundtrip");
        let payloads: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_le_bytes().to_vec()).collect();
        {
            let (mut log, recovered, report) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            assert!(recovered.is_empty());
            assert!(!report.torn);
            for (i, p) in payloads.iter().enumerate() {
                assert_eq!(log.append(p).unwrap(), i as u64);
            }
            assert_eq!(log.committed(), 100);
        }
        let (log, recovered, report) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(report.records, 100);
        assert!(!report.torn);
        assert_eq!(recovered.len(), 100);
        for (r, p) in recovered.iter().zip(&payloads) {
            assert_eq!(r.as_ref(), p.as_slice());
        }
        assert_eq!(log.records(), 100);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_headers_chain() {
        let dir = tmpdir("roll");
        {
            let (mut log, _, _) = SegmentedLog::open(&dir, cfg(128, FlushPolicy::Manual)).unwrap();
            for i in 0..50u8 {
                log.append(&[i; 40]).unwrap();
            }
            log.sync().unwrap();
            assert!(log.segments() > 1, "small segments must roll");
        }
        let paths = segment_paths(&dir).unwrap();
        assert!(paths.len() > 1);
        // headers: contiguous seqnos, first_record strictly increasing
        let mut prev_first = None;
        for (i, p) in paths.iter().enumerate() {
            let data = fs::read(p).unwrap();
            assert_eq!(&data[..7], MAGIC_PREFIX);
            assert_eq!(data[7], FORMAT_BINARY, "new segments carry the binary format byte");
            assert_eq!(u64::from_le_bytes(data[8..16].try_into().unwrap()), i as u64);
            let first = u64::from_le_bytes(data[16..24].try_into().unwrap());
            if let Some(pf) = prev_first {
                assert!(first > pf);
            }
            prev_first = Some(first);
        }
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(128, FlushPolicy::Manual)).unwrap();
        assert_eq!(recovered.len(), 50);
        assert_eq!(report.segments, paths.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_record_gets_its_own_segment() {
        let dir = tmpdir("oversize");
        let (mut log, _, _) = SegmentedLog::open(&dir, cfg(64, FlushPolicy::EveryRecord)).unwrap();
        log.append(&[7u8; 500]).unwrap(); // far over the 64-byte target
        log.append(b"after").unwrap();
        drop(log);
        let (_, recovered, _) =
            SegmentedLog::open(&dir, cfg(64, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].len(), 500);
        assert_eq!(recovered[1].as_ref(), b"after");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_policies_gate_commit() {
        let dir = tmpdir("policies");
        let (mut log, _, _) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryN(10))).unwrap();
        for _ in 0..9 {
            log.append(b"x").unwrap();
        }
        assert_eq!(log.committed(), 0, "below the group threshold nothing is committed");
        log.append(b"x").unwrap();
        assert_eq!(log.committed(), 10, "the 10th append flushes the group");
        log.append(b"x").unwrap();
        assert_eq!(log.committed(), 10);
        log.sync().unwrap();
        assert_eq!(log.committed(), 11);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abandoned_uncommitted_records_never_surface() {
        let dir = tmpdir("abandon");
        let (mut log, _, _) = SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::Manual)).unwrap();
        log.append(b"committed-1").unwrap();
        log.append(b"committed-2").unwrap();
        log.sync().unwrap();
        log.append(b"lost").unwrap();
        log.abandon(); // crash: the pending record must not be written
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::Manual)).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1].as_ref(), b"committed-2");
        assert!(!report.torn, "a clean crash leaves no torn tail");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_committed_prefix() {
        let dir = tmpdir("torn");
        {
            let (mut log, _, _) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            for i in 0..20u8 {
                log.append(&[i; 16]).unwrap();
            }
        }
        let path = segment_paths(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        // cut mid-frame: the 20th record's payload loses its last byte
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 1).unwrap();
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(recovered.len(), 19);
        assert!(report.torn);
        assert!(report.truncated_bytes > 0);
        // reopen again: the repair is idempotent
        let (_, again, report2) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(again.len(), 19);
        assert!(!report2.torn);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_truncates_at_the_damaged_record() {
        let dir = tmpdir("bitflip");
        {
            let (mut log, _, _) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            for i in 0..10u8 {
                log.append(&[i; 32]).unwrap();
            }
        }
        let path = segment_paths(&dir).unwrap().pop().unwrap();
        let mut data = fs::read(&path).unwrap();
        // flip one bit inside record 5's payload
        let target = HEADER_LEN + 5 * (FRAME_OVERHEAD + 32) + FRAME_OVERHEAD + 10;
        data[target] ^= 0x40;
        fs::write(&path, &data).unwrap();
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(recovered.len(), 5, "records before the flip survive, the rest drop");
        for (i, r) in recovered.iter().enumerate() {
            assert_eq!(r.as_ref(), &[i as u8; 32]);
        }
        assert!(report.torn);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_header_drops_segment_and_successors() {
        let dir = tmpdir("header");
        {
            let (mut log, _, _) =
                SegmentedLog::open(&dir, cfg(256, FlushPolicy::EveryRecord)).unwrap();
            for i in 0..40u8 {
                log.append(&[i; 50]).unwrap();
            }
            assert!(log.segments() >= 3);
        }
        let paths = segment_paths(&dir).unwrap();
        let victim = &paths[1];
        let mut data = fs::read(victim).unwrap();
        data[3] ^= 0xff; // corrupt the magic of the middle segment
        fs::write(victim, &data).unwrap();
        let (mut log, recovered, report) =
            SegmentedLog::open(&dir, cfg(256, FlushPolicy::EveryRecord)).unwrap();
        let seg0_records = recovered.len();
        assert!(seg0_records > 0 && seg0_records < 40);
        assert_eq!(report.dropped_segments, paths.len() - 1);
        // the log continues appending after the surviving prefix
        log.append(b"continues").unwrap();
        drop(log);
        let (_, again, _) = SegmentedLog::open(&dir, cfg(256, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(again.len(), seg0_records + 1);
        assert_eq!(again.last().unwrap().as_ref(), b"continues");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_continues_after_recovery_truncation() {
        let dir = tmpdir("continue");
        {
            let (mut log, _, _) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            for _ in 0..5 {
                log.append(b"old").unwrap();
            }
        }
        let path = segment_paths(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 2).unwrap();
        {
            let (mut log, recovered, _) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            assert_eq!(recovered.len(), 4);
            assert_eq!(
                log.append(b"new").unwrap(),
                4,
                "indices continue from the recovered prefix"
            );
        }
        let (_, recovered, _) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(recovered.len(), 5);
        assert_eq!(recovered[4].as_ref(), b"new");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_length_frame_is_a_tear_not_an_allocation() {
        let dir = tmpdir("hugelen");
        {
            let (mut log, _, _) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            for i in 0..8u8 {
                log.append(&[i; 16]).unwrap();
            }
        }
        let path = segment_paths(&dir).unwrap().pop().unwrap();
        let mut data = fs::read(&path).unwrap();
        // record 4's length field claims u32::MAX bytes — far beyond both
        // the segment and MAX_RECORD_BYTES
        let target = HEADER_LEN + 4 * (FRAME_OVERHEAD + 16);
        data[target..target + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &data).unwrap();
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(recovered.len(), 4, "the oversized frame tears, the prefix survives");
        assert!(report.torn);
        assert_eq!(report.truncated_bytes, 4 * (FRAME_OVERHEAD + 16) as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Rewrite a segment's header format byte, keeping the CRC valid —
    /// what a store written by an older (or newer) reader looks like.
    fn restamp_format(path: &Path, format: u8) {
        let mut data = fs::read(path).unwrap();
        data[7] = format;
        let crc = crc32(&data[..24]);
        data[24..28].copy_from_slice(&crc.to_le_bytes());
        fs::write(path, &data).unwrap();
    }

    #[test]
    fn json_era_headers_still_replay() {
        let dir = tmpdir("jsonera");
        {
            let (mut log, _, _) = SegmentedLog::open(&dir, cfg(160, FlushPolicy::Manual)).unwrap();
            for i in 0..12u8 {
                log.append(&[i; 40]).unwrap();
            }
            log.sync().unwrap();
            assert!(log.segments() > 1);
        }
        for p in segment_paths(&dir).unwrap() {
            restamp_format(&p, FORMAT_JSON);
        }
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(160, FlushPolicy::Manual)).unwrap();
        assert_eq!(recovered.len(), 12, "v0 segments replay unchanged");
        assert!(!report.torn);
        assert_eq!(report.format, FORMAT_JSON);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_format_store_reports_the_highest_version() {
        let dir = tmpdir("mixedfmt");
        {
            let (mut log, _, _) = SegmentedLog::open(&dir, cfg(160, FlushPolicy::Manual)).unwrap();
            for i in 0..12u8 {
                log.append(&[i; 40]).unwrap();
            }
            log.sync().unwrap();
            assert!(log.segments() > 1);
        }
        // only the first segment is JSON-era; later ones stay binary
        let first = &segment_paths(&dir).unwrap()[0];
        restamp_format(first, FORMAT_JSON);
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(160, FlushPolicy::Manual)).unwrap();
        assert_eq!(recovered.len(), 12);
        assert_eq!(report.format, FORMAT_BINARY);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_format_versions_are_dropped_not_misread() {
        let dir = tmpdir("futurefmt");
        {
            let (mut log, _, _) = SegmentedLog::open(&dir, cfg(160, FlushPolicy::Manual)).unwrap();
            for i in 0..12u8 {
                log.append(&[i; 40]).unwrap();
            }
            log.sync().unwrap();
            assert!(log.segments() >= 3);
        }
        let paths = segment_paths(&dir).unwrap();
        restamp_format(&paths[1], FORMAT_BINARY + 1);
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(160, FlushPolicy::Manual)).unwrap();
        assert!(recovered.len() < 12, "records past the unknown format are dropped");
        assert_eq!(report.dropped_segments, paths.len() - 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_payloads_are_valid_records() {
        let dir = tmpdir("empty");
        {
            let (mut log, _, _) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            log.append(b"").unwrap();
            log.append(b"x").unwrap();
            log.append(b"").unwrap();
        }
        let (_, recovered, _) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(recovered.len(), 3);
        assert!(recovered[0].is_empty() && recovered[2].is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
