//! The segmented append-only record log.
//!
//! On-disk layout: a directory of fixed-size segment files named
//! `seg-<seqno:016x>.dtl`. Each segment starts with a 28-byte header —
//! magic `DTFSEG1`, a format-version byte, the segment's sequence number,
//! the index of its first record, and a CRC32 of those 24 bytes —
//! followed by record frames: `len:u32le | crc32(payload):u32le |
//! payload`. A record never spans segments; a segment holds at least one
//! record even when the record alone exceeds the size cap (oversized
//! records simply get a segment to themselves).
//!
//! The version byte declares how record payloads are encoded. JSON-era
//! stores (written before the binary record format) carry
//! [`FORMAT_JSON`] — which is the `\0` that used to terminate the magic,
//! so their headers validate unchanged. New segments are stamped
//! [`FORMAT_BINARY`]. The log itself treats payloads as opaque either
//! way; the byte exists so a future reader can refuse formats it does
//! not understand instead of misparsing them, and recovery reports the
//! highest version it saw.
//!
//! Appends accumulate in a memory buffer and reach the file as one write
//! (group commit) according to the [`FlushPolicy`]; `sync_data` is called
//! after each flush when [`LogConfig::sync_data`] is set. Dropping the log
//! flushes best-effort without fsync — the semantics of a clean process
//! exit. [`SegmentedLog::abandon`] discards the buffer instead, modelling
//! a hard crash for tests.
//!
//! Opening a directory runs the recovery scan: segments are walked in
//! seqno order; a segment with a damaged header, a seqno gap, or a
//! first-record index that disagrees with the running count is dropped
//! along with everything after it; inside a segment, the first frame with
//! a bad length, a short read, or a CRC mismatch truncates the file at
//! that byte and drops all later segments. What survives is exactly the
//! committed prefix.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use dtf_core::error::{DtfError, Result};

use crate::crc32::crc32;
use crate::index::{remove_sidecar, SegmentIndex, DEFAULT_STRIDE};

const MAGIC_PREFIX: &[u8; 7] = b"DTFSEG1";
/// Header byte 7: record payloads are compact JSON text (stores written
/// before the binary format — the byte doubled as the magic terminator).
pub const FORMAT_JSON: u8 = 0;
/// Header byte 7: record payloads are binary-encoded (`dtf_core::binfmt`
/// for provenance records; the KV layer's framing is unchanged).
pub const FORMAT_BINARY: u8 = 1;
/// Highest format this reader understands; headers beyond it are treated
/// as damaged and the segment (plus successors) is dropped.
const FORMAT_MAX: u8 = FORMAT_BINARY;
/// Segment header length: magic(7) + format(1) + seqno(8) +
/// first_record(8) + crc(4).
pub const HEADER_LEN: usize = 28;
/// Frame overhead per record: len(4) + crc(4).
pub const FRAME_OVERHEAD: usize = 8;
/// Upper bound on one record's payload (a corrupted length field larger
/// than this is rejected without attempting the read).
pub const MAX_RECORD_BYTES: usize = 64 << 20;

/// When buffered appends are written (and optionally fsynced) to the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush after every append — maximum durability, one I/O per record.
    EveryRecord,
    /// Group commit: flush once `n` records are pending.
    EveryN(u32),
    /// Only explicit [`SegmentedLog::sync`] calls flush.
    Manual,
}

/// Log tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogConfig {
    /// Target segment size in bytes; a segment rolls when the next frame
    /// would exceed it (but always holds at least one record).
    pub segment_bytes: u64,
    pub flush: FlushPolicy,
    /// Call `sync_data` after each flush (fsync durability). Off, a flush
    /// reaches the OS page cache — durable across process death, not
    /// power loss.
    pub sync_data: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        Self { segment_bytes: 256 << 10, flush: FlushPolicy::EveryN(256), sync_data: true }
    }
}

/// What the recovery scan found and repaired while opening a log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments that passed header validation.
    pub segments: usize,
    /// Records recovered (the committed prefix).
    pub records: u64,
    /// Bytes cut off a torn tail.
    pub truncated_bytes: u64,
    /// Segment files dropped (damaged header, seqno gap, or past a tear).
    pub dropped_segments: usize,
    /// Whether a torn/corrupt tail was found and truncated.
    pub torn: bool,
    /// Highest header format version among the surviving segments
    /// ([`FORMAT_JSON`] for an empty or legacy-only store).
    pub format: u8,
    /// Segments whose bodies were never read because tail-only recovery
    /// skipped them (their records are covered by a snapshot watermark).
    pub skipped_segments: usize,
    /// Records whose effects were restored from a snapshot instead of
    /// replay (set by the KV layer; always 0 for a raw log open).
    pub snapshot_records: u64,
}

/// A segmented append-only record log rooted at one directory.
#[derive(Debug)]
pub struct SegmentedLog {
    dir: PathBuf,
    cfg: LogConfig,
    file: File,
    seg_seqno: u64,
    /// Bytes in the current segment, committed and pending.
    seg_len: u64,
    /// Records appended over the log's lifetime (committed and pending).
    records: u64,
    /// Records written to the file (the crash-durable prefix).
    committed: u64,
    pending: Vec<u8>,
    pending_records: u64,
    /// First record index of the current segment.
    seg_first: u64,
    /// Byte offsets of every [`DEFAULT_STRIDE`]-th record in the current
    /// segment, tracked while appending so sealing the segment writes its
    /// index sidecar without a rescan.
    seg_offsets: Vec<u32>,
}

/// What one [`SegmentedLog::scan_bodies`] pass over segment bodies found.
#[derive(Debug, Default)]
struct ScanOutcome {
    /// Record payloads from `collect_from` (global index) onward.
    records: Vec<Bytes>,
    /// Total records through the scanned range, including the skipped base.
    total: u64,
    /// `(seqno, path, byte length)` of the segment appends continue into.
    active: Option<(u64, PathBuf, u64)>,
    dropped_segments: usize,
    torn: bool,
    truncated_bytes: u64,
    /// First record index of the active segment.
    seg_first: u64,
    /// Sparse offsets of the active segment (stride [`DEFAULT_STRIDE`]).
    seg_offsets: Vec<u32>,
    /// Segments that passed full header validation in this scan.
    segments: usize,
    format: u8,
}

fn io_err(path: &Path, e: std::io::Error) -> DtfError {
    DtfError::Io(format!("{}: {e}", path.display()))
}

pub(crate) fn segment_name(seqno: u64) -> String {
    format!("seg-{seqno:016x}.dtl")
}

/// Floor the segment size so a header plus one tiny frame always fits.
fn clamp(cfg: LogConfig) -> LogConfig {
    LogConfig {
        segment_bytes: cfg.segment_bytes.max((HEADER_LEN + FRAME_OVERHEAD) as u64 + 8),
        ..cfg
    }
}

pub(crate) fn header_bytes(seqno: u64, first_record: u64, format: u8) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..7].copy_from_slice(MAGIC_PREFIX);
    h[7] = format;
    h[8..16].copy_from_slice(&seqno.to_le_bytes());
    h[16..24].copy_from_slice(&first_record.to_le_bytes());
    let crc = crc32(&h[..24]);
    h[24..28].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Validate a segment header's fixed fields (magic, known format, CRC)
/// and return `(seqno, first_record)`. `None` when damaged. The caller
/// still owns the chain checks (seqno matches the filename and the
/// previous segment, first_record matches the running count).
pub(crate) fn header_fields(data: &[u8]) -> Option<(u64, u64)> {
    if data.len() < HEADER_LEN
        || &data[..7] != MAGIC_PREFIX
        || data[7] > FORMAT_MAX
        || u32::from_le_bytes(data[24..28].try_into().unwrap()) != crc32(&data[..24])
    {
        return None;
    }
    Some((
        u64::from_le_bytes(data[8..16].try_into().unwrap()),
        u64::from_le_bytes(data[16..24].try_into().unwrap()),
    ))
}

/// Read and validate only a segment's 28-byte header:
/// `(seqno, first_record, format)`. `None` when unreadable or damaged.
fn read_header(path: &Path) -> Option<(u64, u64, u8)> {
    let mut head = [0u8; HEADER_LEN];
    File::open(path).and_then(|mut f| f.read_exact(&mut head)).ok()?;
    let (seqno, first) = header_fields(&head)?;
    Some((seqno, first, head[7]))
}

/// Fsync a directory, making renames/creations inside it power-loss
/// durable. POSIX only guarantees a rename survives power loss once the
/// parent directory's entry is flushed — syncing the file alone is not
/// enough.
pub fn fsync_dir(dir: &Path) -> Result<()> {
    File::open(dir).and_then(|f| f.sync_all()).map_err(|e| io_err(dir, e))
}

/// Segment files under `dir`, sorted by sequence number. Exposed so fault
/// injection (dtf-chaos) can aim at the tail segment of a store.
pub fn segment_paths(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(hex) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".dtl")) {
            if let Ok(seqno) = u64::from_str_radix(hex, 16) {
                found.push((seqno, entry.path()));
            }
        }
    }
    found.sort();
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

pub(crate) fn parse_seqno(path: &Path) -> u64 {
    path.file_name()
        .and_then(|n| n.to_str())
        .and_then(|n| n.strip_prefix("seg-"))
        .and_then(|n| n.strip_suffix(".dtl"))
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .expect("segment_paths yields well-formed names")
}

impl SegmentedLog {
    /// Open (creating if absent) the log at `dir`, running the recovery
    /// scan. Returns the log positioned for appending, the recovered
    /// records in order, and the scan report.
    pub fn open(dir: &Path, cfg: LogConfig) -> Result<(Self, Vec<Bytes>, RecoveryReport)> {
        let cfg = clamp(cfg);
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let paths = segment_paths(dir)?;
        let out = Self::scan_bodies(&paths, 0, 0)?;
        let report = RecoveryReport {
            segments: out.segments,
            records: out.total,
            truncated_bytes: out.truncated_bytes,
            dropped_segments: out.dropped_segments,
            torn: out.torn,
            format: out.format,
            ..Default::default()
        };
        let log = Self::position(dir, cfg, &out)?;
        Ok((log, out.records, report))
    }

    /// Tail-only recovery: trust the CRC-validated headers of segments
    /// wholly below `from_record` without reading their bodies, and
    /// replay only from the segment containing `from_record`. Returns
    /// `Ok(None)` when the header chain cannot support it (a damaged or
    /// discontinuous header anywhere in the walk) — the caller falls back
    /// to a full [`SegmentedLog::open`], which repairs.
    ///
    /// The returned records start exactly at `from_record`; records
    /// before it inside the boundary segment are parsed and discarded
    /// (bounded by one segment). A tear can still truncate *below*
    /// `from_record` — callers holding a snapshot watermark must compare
    /// `report.records` against it and fall back to full replay when the
    /// log no longer reaches the watermark.
    pub fn open_tail(
        dir: &Path,
        cfg: LogConfig,
        from_record: u64,
    ) -> Result<Option<(Self, Vec<Bytes>, RecoveryReport)>> {
        let cfg = clamp(cfg);
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let paths = segment_paths(dir)?;
        if paths.is_empty() {
            return Ok(None);
        }
        let mut prev: Option<(u64, u64)> = None;
        let mut firsts = Vec::with_capacity(paths.len());
        let mut head_format = FORMAT_JSON;
        for path in &paths {
            let Some((seqno, first, format)) = read_header(path) else { return Ok(None) };
            let chain_ok = seqno == parse_seqno(path)
                && prev.map(|(ps, pf)| seqno == ps + 1 && first >= pf).unwrap_or(first == 0);
            if !chain_ok {
                return Ok(None);
            }
            prev = Some((seqno, first));
            head_format = head_format.max(format);
            firsts.push(first);
        }
        // last segment whose first record is at or below the watermark:
        // every earlier segment's body is wholly covered by it
        let boundary = firsts.partition_point(|f| *f <= from_record).saturating_sub(1);
        let out = Self::scan_bodies(&paths[boundary..], firsts[boundary], from_record)?;
        let report = RecoveryReport {
            segments: boundary + out.segments,
            records: out.total,
            truncated_bytes: out.truncated_bytes,
            dropped_segments: out.dropped_segments,
            torn: out.torn,
            format: head_format.max(out.format),
            skipped_segments: boundary,
            ..Default::default()
        };
        let log = Self::position(dir, cfg, &out)?;
        Ok(Some((log, out.records, report)))
    }

    /// Reposition for appending after the caller rewrote the directory
    /// (compaction swap): bodies of cold segments are never read. Falls
    /// back to a full open if the header chain is unexpectedly broken.
    pub(crate) fn attach_end(dir: &Path, cfg: LogConfig) -> Result<Self> {
        match Self::open_tail(dir, cfg, u64::MAX)? {
            Some((log, _, _)) => Ok(log),
            None => Ok(Self::open(dir, cfg)?.0),
        }
    }

    /// Walk `paths` reading full bodies, starting the global record count
    /// at `base` (the first path's first-record index) and collecting
    /// payloads from global index `collect_from` onward. Repairs exactly
    /// as recovery always has: a bad frame truncates the file there, a
    /// bad header (or anything after a tear) drops the file — dropped
    /// and truncated segments also lose their index sidecars, which
    /// would otherwise go stale.
    fn scan_bodies(paths: &[PathBuf], base: u64, collect_from: u64) -> Result<ScanOutcome> {
        let mut out = ScanOutcome { total: base, ..Default::default() };
        let mut drop_from: Option<usize> = None;
        let mut prev_seqno: Option<u64> = None;

        'segments: for (i, path) in paths.iter().enumerate() {
            let seqno = parse_seqno(path);
            // One read and one allocation per segment: recovered records
            // are zero-copy slices into this buffer.
            let data = Bytes::from(fs::read(path).map_err(|e| io_err(path, e))?);
            let header_ok = header_fields(&data)
                .map(|(s, first)| {
                    s == seqno
                        && first == out.total
                        && prev_seqno.map(|p| seqno == p + 1).unwrap_or(true)
                })
                .unwrap_or(false);
            if !header_ok {
                drop_from = Some(i);
                break;
            }
            prev_seqno = Some(seqno);
            out.segments += 1;
            out.format = out.format.max(data[7]);
            let seg_first = out.total;
            let mut seg_offsets: Vec<u32> = Vec::new();
            let mut off = HEADER_LEN;
            loop {
                if off == data.len() {
                    break; // clean segment end
                }
                // Bounds-check the length field against the bytes that
                // actually remain BEFORE touching the payload: a corrupted
                // length must tear here, never drive a slice (or, for a
                // copying reader, a multi-GB allocation).
                let mut frame_len = None;
                if off + FRAME_OVERHEAD <= data.len() {
                    let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
                    if len <= MAX_RECORD_BYTES && len <= data.len() - off - FRAME_OVERHEAD {
                        let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
                        if crc32(&data[off + 8..off + 8 + len]) == crc {
                            frame_len = Some(len);
                        }
                    }
                }
                let Some(len) = frame_len else {
                    // torn tail: truncate here, drop everything after
                    let f =
                        OpenOptions::new().write(true).open(path).map_err(|e| io_err(path, e))?;
                    f.set_len(off as u64).map_err(|e| io_err(path, e))?;
                    remove_sidecar(path); // stale against the new length
                    out.truncated_bytes += (data.len() - off) as u64;
                    out.torn = true;
                    out.active = Some((seqno, path.clone(), off as u64));
                    out.seg_first = seg_first;
                    out.seg_offsets = seg_offsets;
                    drop_from = Some(i + 1);
                    break 'segments;
                };
                if (out.total - seg_first).is_multiple_of(DEFAULT_STRIDE as u64) {
                    seg_offsets.push(off as u32);
                }
                if out.total >= collect_from {
                    out.records.push(data.slice(off + 8..off + 8 + len));
                }
                out.total += 1;
                off += FRAME_OVERHEAD + len;
            }
            out.active = Some((seqno, path.clone(), data.len() as u64));
            out.seg_first = seg_first;
            out.seg_offsets = seg_offsets;
        }

        if let Some(i) = drop_from {
            out.dropped_segments = paths.len() - i;
            for path in &paths[i..] {
                remove_sidecar(path);
                fs::remove_file(path).map_err(|e| io_err(path, e))?;
            }
        }
        Ok(out)
    }

    /// Build the appendable log from a scan outcome.
    fn position(dir: &Path, cfg: LogConfig, out: &ScanOutcome) -> Result<Self> {
        let (file, seg_seqno, seg_len) = match &out.active {
            Some((seqno, path, len)) => {
                let file =
                    OpenOptions::new().append(true).open(path).map_err(|e| io_err(path, e))?;
                (file, *seqno, *len)
            }
            None => Self::create_segment(dir, 0, 0)?,
        };
        Ok(Self {
            dir: dir.to_path_buf(),
            cfg,
            file,
            seg_seqno,
            seg_len,
            records: out.total,
            committed: out.total,
            pending: Vec::new(),
            pending_records: 0,
            seg_first: out.seg_first,
            seg_offsets: out.seg_offsets.clone(),
        })
    }

    fn create_segment(dir: &Path, seqno: u64, first_record: u64) -> Result<(File, u64, u64)> {
        let path = dir.join(segment_name(seqno));
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        file.write_all(&header_bytes(seqno, first_record, FORMAT_BINARY))
            .map_err(|e| io_err(&path, e))?;
        Ok((file, seqno, HEADER_LEN as u64))
    }

    /// Append one record; returns its index (0-based over the log's life).
    /// Flushes per the configured policy.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if payload.len() > MAX_RECORD_BYTES {
            return Err(DtfError::Io(format!(
                "record of {} bytes exceeds the {MAX_RECORD_BYTES}-byte cap",
                payload.len()
            )));
        }
        let frame = (FRAME_OVERHEAD + payload.len()) as u64;
        if self.seg_len + frame > self.cfg.segment_bytes && self.seg_len > HEADER_LEN as u64 {
            self.roll()?;
        }
        let index = self.records;
        if (self.records - self.seg_first).is_multiple_of(DEFAULT_STRIDE as u64) {
            self.seg_offsets.push(self.seg_len as u32);
        }
        self.pending.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending.extend_from_slice(&crc32(payload).to_le_bytes());
        self.pending.extend_from_slice(payload);
        self.pending_records += 1;
        self.records += 1;
        self.seg_len += frame;
        match self.cfg.flush {
            FlushPolicy::EveryRecord => self.sync()?,
            FlushPolicy::EveryN(n) => {
                if self.pending_records >= n.max(1) as u64 {
                    self.sync()?;
                }
            }
            FlushPolicy::Manual => {}
        }
        Ok(index)
    }

    /// Group commit: write everything pending in one `write`, then
    /// `sync_data` if configured. After this returns, every appended
    /// record is committed.
    pub fn sync(&mut self) -> Result<()> {
        if !self.pending.is_empty() {
            self.file.write_all(&self.pending).map_err(|e| io_err(&self.dir, e))?;
            if self.cfg.sync_data {
                self.file.sync_data().map_err(|e| io_err(&self.dir, e))?;
            }
            self.pending.clear();
            self.pending_records = 0;
        }
        self.committed = self.records;
        Ok(())
    }

    /// Flush the current segment and start the next one. The directory is
    /// fsynced after the new segment is created — without it, power loss
    /// can forget the file itself even though its writes were synced.
    /// Sealing a segment also writes its index sidecar from the offsets
    /// tracked during appends.
    pub(crate) fn roll(&mut self) -> Result<()> {
        self.sync()?;
        self.write_sidecar();
        let (file, seqno, len) = Self::create_segment(&self.dir, self.seg_seqno + 1, self.records)?;
        if self.cfg.sync_data {
            fsync_dir(&self.dir)?;
        }
        self.file = file;
        self.seg_seqno = seqno;
        self.seg_len = len;
        self.seg_first = self.records;
        self.seg_offsets.clear();
        Ok(())
    }

    /// Best-effort index sidecar for the segment being sealed. Sidecars
    /// are a pure cache — a failed write only costs a later rebuild.
    fn write_sidecar(&mut self) {
        let idx = SegmentIndex::from_tracked(
            self.seg_seqno,
            self.seg_first,
            (self.records - self.seg_first) as u32,
            self.seg_len,
            DEFAULT_STRIDE,
            std::mem::take(&mut self.seg_offsets),
        );
        let _ = idx.write(&self.dir.join(segment_name(self.seg_seqno)));
    }

    /// Records appended (committed or still buffered).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records on disk — what a crash right now would preserve.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Number of segment files written so far.
    pub fn segments(&self) -> u64 {
        self.seg_seqno + 1
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the segment currently accepting appends.
    pub(crate) fn current_seqno(&self) -> u64 {
        self.seg_seqno
    }

    /// Drop the log as a hard crash would: buffered (uncommitted) records
    /// are discarded, not flushed. Test hook for crash-recovery scenarios.
    pub fn abandon(mut self) {
        self.pending.clear();
        self.pending_records = 0;
    }
}

impl Drop for SegmentedLog {
    fn drop(&mut self) {
        // clean-exit semantics: write what's buffered, skip the fsync
        if !self.pending.is_empty() {
            let _ = self.file.write_all(&self.pending);
            self.pending.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dtf-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(segment_bytes: u64, flush: FlushPolicy) -> LogConfig {
        LogConfig { segment_bytes, flush, sync_data: false }
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = tmpdir("roundtrip");
        let payloads: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_le_bytes().to_vec()).collect();
        {
            let (mut log, recovered, report) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            assert!(recovered.is_empty());
            assert!(!report.torn);
            for (i, p) in payloads.iter().enumerate() {
                assert_eq!(log.append(p).unwrap(), i as u64);
            }
            assert_eq!(log.committed(), 100);
        }
        let (log, recovered, report) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(report.records, 100);
        assert!(!report.torn);
        assert_eq!(recovered.len(), 100);
        for (r, p) in recovered.iter().zip(&payloads) {
            assert_eq!(r.as_ref(), p.as_slice());
        }
        assert_eq!(log.records(), 100);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_headers_chain() {
        let dir = tmpdir("roll");
        {
            let (mut log, _, _) = SegmentedLog::open(&dir, cfg(128, FlushPolicy::Manual)).unwrap();
            for i in 0..50u8 {
                log.append(&[i; 40]).unwrap();
            }
            log.sync().unwrap();
            assert!(log.segments() > 1, "small segments must roll");
        }
        let paths = segment_paths(&dir).unwrap();
        assert!(paths.len() > 1);
        // headers: contiguous seqnos, first_record strictly increasing
        let mut prev_first = None;
        for (i, p) in paths.iter().enumerate() {
            let data = fs::read(p).unwrap();
            assert_eq!(&data[..7], MAGIC_PREFIX);
            assert_eq!(data[7], FORMAT_BINARY, "new segments carry the binary format byte");
            assert_eq!(u64::from_le_bytes(data[8..16].try_into().unwrap()), i as u64);
            let first = u64::from_le_bytes(data[16..24].try_into().unwrap());
            if let Some(pf) = prev_first {
                assert!(first > pf);
            }
            prev_first = Some(first);
        }
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(128, FlushPolicy::Manual)).unwrap();
        assert_eq!(recovered.len(), 50);
        assert_eq!(report.segments, paths.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_record_gets_its_own_segment() {
        let dir = tmpdir("oversize");
        let (mut log, _, _) = SegmentedLog::open(&dir, cfg(64, FlushPolicy::EveryRecord)).unwrap();
        log.append(&[7u8; 500]).unwrap(); // far over the 64-byte target
        log.append(b"after").unwrap();
        drop(log);
        let (_, recovered, _) =
            SegmentedLog::open(&dir, cfg(64, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].len(), 500);
        assert_eq!(recovered[1].as_ref(), b"after");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_policies_gate_commit() {
        let dir = tmpdir("policies");
        let (mut log, _, _) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryN(10))).unwrap();
        for _ in 0..9 {
            log.append(b"x").unwrap();
        }
        assert_eq!(log.committed(), 0, "below the group threshold nothing is committed");
        log.append(b"x").unwrap();
        assert_eq!(log.committed(), 10, "the 10th append flushes the group");
        log.append(b"x").unwrap();
        assert_eq!(log.committed(), 10);
        log.sync().unwrap();
        assert_eq!(log.committed(), 11);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abandoned_uncommitted_records_never_surface() {
        let dir = tmpdir("abandon");
        let (mut log, _, _) = SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::Manual)).unwrap();
        log.append(b"committed-1").unwrap();
        log.append(b"committed-2").unwrap();
        log.sync().unwrap();
        log.append(b"lost").unwrap();
        log.abandon(); // crash: the pending record must not be written
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::Manual)).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1].as_ref(), b"committed-2");
        assert!(!report.torn, "a clean crash leaves no torn tail");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_committed_prefix() {
        let dir = tmpdir("torn");
        {
            let (mut log, _, _) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            for i in 0..20u8 {
                log.append(&[i; 16]).unwrap();
            }
        }
        let path = segment_paths(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        // cut mid-frame: the 20th record's payload loses its last byte
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 1).unwrap();
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(recovered.len(), 19);
        assert!(report.torn);
        assert!(report.truncated_bytes > 0);
        // reopen again: the repair is idempotent
        let (_, again, report2) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(again.len(), 19);
        assert!(!report2.torn);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_truncates_at_the_damaged_record() {
        let dir = tmpdir("bitflip");
        {
            let (mut log, _, _) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            for i in 0..10u8 {
                log.append(&[i; 32]).unwrap();
            }
        }
        let path = segment_paths(&dir).unwrap().pop().unwrap();
        let mut data = fs::read(&path).unwrap();
        // flip one bit inside record 5's payload
        let target = HEADER_LEN + 5 * (FRAME_OVERHEAD + 32) + FRAME_OVERHEAD + 10;
        data[target] ^= 0x40;
        fs::write(&path, &data).unwrap();
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(recovered.len(), 5, "records before the flip survive, the rest drop");
        for (i, r) in recovered.iter().enumerate() {
            assert_eq!(r.as_ref(), &[i as u8; 32]);
        }
        assert!(report.torn);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_header_drops_segment_and_successors() {
        let dir = tmpdir("header");
        {
            let (mut log, _, _) =
                SegmentedLog::open(&dir, cfg(256, FlushPolicy::EveryRecord)).unwrap();
            for i in 0..40u8 {
                log.append(&[i; 50]).unwrap();
            }
            assert!(log.segments() >= 3);
        }
        let paths = segment_paths(&dir).unwrap();
        let victim = &paths[1];
        let mut data = fs::read(victim).unwrap();
        data[3] ^= 0xff; // corrupt the magic of the middle segment
        fs::write(victim, &data).unwrap();
        let (mut log, recovered, report) =
            SegmentedLog::open(&dir, cfg(256, FlushPolicy::EveryRecord)).unwrap();
        let seg0_records = recovered.len();
        assert!(seg0_records > 0 && seg0_records < 40);
        assert_eq!(report.dropped_segments, paths.len() - 1);
        // the log continues appending after the surviving prefix
        log.append(b"continues").unwrap();
        drop(log);
        let (_, again, _) = SegmentedLog::open(&dir, cfg(256, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(again.len(), seg0_records + 1);
        assert_eq!(again.last().unwrap().as_ref(), b"continues");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_continues_after_recovery_truncation() {
        let dir = tmpdir("continue");
        {
            let (mut log, _, _) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            for _ in 0..5 {
                log.append(b"old").unwrap();
            }
        }
        let path = segment_paths(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 2).unwrap();
        {
            let (mut log, recovered, _) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            assert_eq!(recovered.len(), 4);
            assert_eq!(
                log.append(b"new").unwrap(),
                4,
                "indices continue from the recovered prefix"
            );
        }
        let (_, recovered, _) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(recovered.len(), 5);
        assert_eq!(recovered[4].as_ref(), b"new");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_length_frame_is_a_tear_not_an_allocation() {
        let dir = tmpdir("hugelen");
        {
            let (mut log, _, _) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            for i in 0..8u8 {
                log.append(&[i; 16]).unwrap();
            }
        }
        let path = segment_paths(&dir).unwrap().pop().unwrap();
        let mut data = fs::read(&path).unwrap();
        // record 4's length field claims u32::MAX bytes — far beyond both
        // the segment and MAX_RECORD_BYTES
        let target = HEADER_LEN + 4 * (FRAME_OVERHEAD + 16);
        data[target..target + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &data).unwrap();
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(recovered.len(), 4, "the oversized frame tears, the prefix survives");
        assert!(report.torn);
        assert_eq!(report.truncated_bytes, 4 * (FRAME_OVERHEAD + 16) as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Rewrite a segment's header format byte, keeping the CRC valid —
    /// what a store written by an older (or newer) reader looks like.
    fn restamp_format(path: &Path, format: u8) {
        let mut data = fs::read(path).unwrap();
        data[7] = format;
        let crc = crc32(&data[..24]);
        data[24..28].copy_from_slice(&crc.to_le_bytes());
        fs::write(path, &data).unwrap();
    }

    #[test]
    fn json_era_headers_still_replay() {
        let dir = tmpdir("jsonera");
        {
            let (mut log, _, _) = SegmentedLog::open(&dir, cfg(160, FlushPolicy::Manual)).unwrap();
            for i in 0..12u8 {
                log.append(&[i; 40]).unwrap();
            }
            log.sync().unwrap();
            assert!(log.segments() > 1);
        }
        for p in segment_paths(&dir).unwrap() {
            restamp_format(&p, FORMAT_JSON);
        }
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(160, FlushPolicy::Manual)).unwrap();
        assert_eq!(recovered.len(), 12, "v0 segments replay unchanged");
        assert!(!report.torn);
        assert_eq!(report.format, FORMAT_JSON);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_format_store_reports_the_highest_version() {
        let dir = tmpdir("mixedfmt");
        {
            let (mut log, _, _) = SegmentedLog::open(&dir, cfg(160, FlushPolicy::Manual)).unwrap();
            for i in 0..12u8 {
                log.append(&[i; 40]).unwrap();
            }
            log.sync().unwrap();
            assert!(log.segments() > 1);
        }
        // only the first segment is JSON-era; later ones stay binary
        let first = &segment_paths(&dir).unwrap()[0];
        restamp_format(first, FORMAT_JSON);
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(160, FlushPolicy::Manual)).unwrap();
        assert_eq!(recovered.len(), 12);
        assert_eq!(report.format, FORMAT_BINARY);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_format_versions_are_dropped_not_misread() {
        let dir = tmpdir("futurefmt");
        {
            let (mut log, _, _) = SegmentedLog::open(&dir, cfg(160, FlushPolicy::Manual)).unwrap();
            for i in 0..12u8 {
                log.append(&[i; 40]).unwrap();
            }
            log.sync().unwrap();
            assert!(log.segments() >= 3);
        }
        let paths = segment_paths(&dir).unwrap();
        restamp_format(&paths[1], FORMAT_BINARY + 1);
        let (_, recovered, report) =
            SegmentedLog::open(&dir, cfg(160, FlushPolicy::Manual)).unwrap();
        assert!(recovered.len() < 12, "records past the unknown format are dropped");
        assert_eq!(report.dropped_segments, paths.len() - 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_tail_replays_only_past_the_watermark() {
        let dir = tmpdir("tail");
        {
            let (mut log, _, _) = SegmentedLog::open(&dir, cfg(128, FlushPolicy::Manual)).unwrap();
            for i in 0..50u8 {
                log.append(&[i; 40]).unwrap();
            }
            log.sync().unwrap();
            assert!(log.segments() > 5);
        }
        let (mut log, tail, report) =
            SegmentedLog::open_tail(&dir, cfg(128, FlushPolicy::Manual), 30).unwrap().unwrap();
        assert_eq!(report.records, 50, "total counts skipped and replayed records");
        assert!(report.skipped_segments > 0, "cold bodies were not read");
        assert_eq!(tail.len(), 20, "exactly the records past the watermark");
        for (i, r) in tail.iter().enumerate() {
            assert_eq!(r.as_ref(), &[30 + i as u8; 40]);
        }
        // appends continue from the full count, not the tail count
        assert_eq!(log.append(b"next").unwrap(), 50);
        log.sync().unwrap();
        let (_, full, _) = SegmentedLog::open(&dir, cfg(128, FlushPolicy::Manual)).unwrap();
        assert_eq!(full.len(), 51);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_tail_declines_on_a_damaged_header_chain() {
        let dir = tmpdir("tail-damaged");
        {
            let (mut log, _, _) = SegmentedLog::open(&dir, cfg(128, FlushPolicy::Manual)).unwrap();
            for i in 0..50u8 {
                log.append(&[i; 40]).unwrap();
            }
            log.sync().unwrap();
        }
        let victim = &segment_paths(&dir).unwrap()[1];
        let mut data = fs::read(victim).unwrap();
        data[3] ^= 0xff;
        fs::write(victim, &data).unwrap();
        assert!(
            SegmentedLog::open_tail(&dir, cfg(128, FlushPolicy::Manual), 40).unwrap().is_none(),
            "a broken chain defers to the full open, which repairs"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_tail_reports_a_tear_below_the_watermark() {
        let dir = tmpdir("tail-tear");
        {
            let (mut log, _, _) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            for i in 0..20u8 {
                log.append(&[i; 16]).unwrap();
            }
        }
        let path = segment_paths(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 30).unwrap();
        // watermark 19 is no longer reachable: the caller sees that in
        // report.records and must fall back to full replay
        let (_, tail, report) =
            SegmentedLog::open_tail(&dir, cfg(1 << 20, FlushPolicy::EveryRecord), 19)
                .unwrap()
                .unwrap();
        assert!(report.torn);
        assert!(report.records < 19);
        assert!(tail.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rolling_seals_segments_with_index_sidecars() {
        let dir = tmpdir("roll-sidecar");
        {
            let (mut log, _, _) = SegmentedLog::open(&dir, cfg(128, FlushPolicy::Manual)).unwrap();
            for i in 0..50u8 {
                log.append(&[i; 40]).unwrap();
            }
            log.sync().unwrap();
        }
        let paths = segment_paths(&dir).unwrap();
        let mut firsts: Vec<u64> = paths
            .iter()
            .map(|p| u64::from_le_bytes(fs::read(p).unwrap()[16..24].try_into().unwrap()))
            .collect();
        firsts.push(50);
        for (i, seg) in paths[..paths.len() - 1].iter().enumerate() {
            let expect = (firsts[i + 1] - firsts[i]) as u32;
            let idx = SegmentIndex::load_validated(seg, firsts[i], expect, false)
                .expect("sealed segment carries a valid sidecar");
            assert_eq!(idx.records, expect);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_payloads_are_valid_records() {
        let dir = tmpdir("empty");
        {
            let (mut log, _, _) =
                SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
            log.append(b"").unwrap();
            log.append(b"x").unwrap();
            log.append(b"").unwrap();
        }
        let (_, recovered, _) =
            SegmentedLog::open(&dir, cfg(1 << 20, FlushPolicy::EveryRecord)).unwrap();
        assert_eq!(recovered.len(), 3);
        assert!(recovered[0].is_empty() && recovered[2].is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
