//! Crash-point regression tests for the compaction swap.
//!
//! The rename-aside protocol (stage → copy tail → `dir`→`.old` →
//! `.new`→`dir` → remove `.old`) must leave a recoverable store when
//! interrupted at ANY step. [`CompactStep`] injection stops the swap dead
//! with the directories in exactly that state; reopening must then
//! repair and yield the exact map the writer held at the crash — every
//! mutation was WAL-logged before the swap began, so nothing is ever
//! lost, whichever side of a rename the crash landed on.
//!
//! Also pins the stale-staging repair: a `<dir>.new` left by a crash
//! *before* any rename was attempted (including one holding arbitrary
//! garbage, not a valid log) is swept on open and never leaks state.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::Bytes;
use dtf_store::kv::{CompactStep, KvWalConfig, WalKv};
use dtf_store::log::{FlushPolicy, LogConfig};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dtf-compcrash-{name}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(sibling(&dir, ".new"));
    let _ = fs::remove_dir_all(sibling(&dir, ".old"));
    dir
}

fn sibling(dir: &Path, suffix: &str) -> PathBuf {
    let mut name = dir.file_name().unwrap().to_os_string();
    name.push(suffix);
    dir.with_file_name(name)
}

fn cfg(background: bool) -> KvWalConfig {
    KvWalConfig {
        log: LogConfig { segment_bytes: 256, flush: FlushPolicy::EveryRecord, sync_data: false },
        compact_min_records: 48,
        compact_ratio: 2,
        snapshot_every: 0, // isolate compaction
        background,
    }
}

/// Drive overwrites until the injected crash fires; return the map the
/// writer held at that instant.
fn drive_until_crash(kv: &mut WalKv) -> BTreeMap<String, Bytes> {
    for i in 0..10_000u32 {
        match kv.put(format!("key-{}", i % 8), i.to_le_bytes().to_vec()) {
            Ok(()) => {}
            Err(e) => {
                assert!(
                    e.to_string().contains("injected compaction crash"),
                    "unexpected error: {e}"
                );
                return kv.map().clone();
            }
        }
    }
    panic!("compaction never reached the injected crash point");
}

#[test]
fn crash_at_every_swap_step_recovers_the_exact_map() {
    for step in
        [CompactStep::Staged, CompactStep::TailCopied, CompactStep::OldAside, CompactStep::Promoted]
    {
        let dir = scratch("step");
        let (mut kv, _) = WalKv::open(&dir, cfg(false)).unwrap();
        kv.wal().fail_compaction_at(Some(step));
        let expected = drive_until_crash(&mut kv);
        drop(kv); // process death with the swap frozen mid-protocol

        let (kv, _) = WalKv::open(&dir, cfg(false)).unwrap();
        assert_eq!(kv.map(), &expected, "crash at {step:?} lost or resurrected state");
        assert!(!sibling(&dir, ".new").exists(), "staging swept after {step:?}");
        assert!(!sibling(&dir, ".old").exists(), "aside swept after {step:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn background_staged_crash_recovers_too() {
    let dir = scratch("bg");
    let (mut kv, _) = WalKv::open(&dir, cfg(true)).unwrap();
    kv.wal().fail_compaction_at(Some(CompactStep::Staged));
    // drive writes until the worker's staged completion trips the
    // injected crash inside a later put's maintenance poll
    let mut expected = None;
    for i in 0..100_000u32 {
        match kv.put(format!("key-{}", i % 8), i.to_le_bytes().to_vec()) {
            Ok(()) => {}
            Err(e) => {
                assert!(e.to_string().contains("injected compaction crash"), "{e}");
                expected = Some(kv.map().clone());
                break;
            }
        }
    }
    let expected = expected.expect("background staging never completed");
    drop(kv);

    let (kv, _) = WalKv::open(&dir, cfg(true)).unwrap();
    assert_eq!(kv.map(), &expected);
    assert!(!sibling(&dir, ".new").exists());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_pre_rename_staging_is_swept_even_when_garbage() {
    let dir = scratch("garbage");
    {
        let (mut kv, _) = WalKv::open(&dir, cfg(false)).unwrap();
        for i in 0..10u32 {
            kv.put(format!("k-{i}"), vec![i as u8]).unwrap();
        }
    }
    // a crash before any rename can leave staging in ANY state — valid
    // log, partial segment, or plain garbage — and it must simply go
    let staging = sibling(&dir, ".new");
    fs::create_dir_all(staging.join("nested")).unwrap();
    fs::write(staging.join("seg-0000000000000000.dtl"), b"not a segment").unwrap();
    fs::write(staging.join("nested/junk"), b"junk").unwrap();

    let (kv, report) = WalKv::open(&dir, cfg(false)).unwrap();
    assert_eq!(report.records, 10);
    assert_eq!(kv.len(), 10);
    assert!(!staging.exists(), "pre-rename orphan staging must be removed");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repeated_crashes_across_generations_stay_consistent() {
    // crash → repair → keep writing → crash again, across all steps in
    // sequence; state must track the writer map the whole way
    let dir = scratch("gens");
    let mut expected = BTreeMap::new();
    for step in
        [CompactStep::Promoted, CompactStep::OldAside, CompactStep::TailCopied, CompactStep::Staged]
    {
        let (mut kv, _) = WalKv::open(&dir, cfg(false)).unwrap();
        assert_eq!(kv.map(), &expected, "reopen diverged before {step:?}");
        kv.wal().fail_compaction_at(Some(step));
        expected = drive_until_crash(&mut kv);
        drop(kv);
    }
    let (kv, _) = WalKv::open(&dir, cfg(false)).unwrap();
    assert_eq!(kv.map(), &expected);
    fs::remove_dir_all(&dir).unwrap();
}
