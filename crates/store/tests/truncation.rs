//! The central recovery property: for ANY truncation point of a log —
//! every byte offset, any segment — reopening yields exactly the
//! committed record prefix that fits entirely before the cut. Nothing
//! committed before the cut is lost; nothing behind it surfaces.

use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use dtf_store::log::{
    segment_paths, FlushPolicy, LogConfig, SegmentedLog, FRAME_OVERHEAD, HEADER_LEN,
};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dtf-trunc-{name}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Write `payloads` fully committed into a fresh log at `dir`.
fn build_log(dir: &Path, payloads: &[Vec<u8>], segment_bytes: u64) {
    let cfg = LogConfig { segment_bytes, flush: FlushPolicy::Manual, sync_data: false };
    let (mut log, _, _) = SegmentedLog::open(dir, cfg).unwrap();
    for p in payloads {
        log.append(p).unwrap();
    }
    log.sync().unwrap();
}

/// Records expected to survive a truncation of segment `cut_seg` at byte
/// `cut_off`, derived from the actual on-disk frames (not from the roll
/// heuristic): all records in earlier segments, plus the fully-framed
/// records before the cut — or none from `cut_seg` when the cut damages
/// its header.
fn expected_prefix(paths: &[PathBuf], cut_seg: usize, cut_off: u64) -> usize {
    // a cut at exactly the file length removes nothing: the segment ends
    // cleanly and its successors survive
    let clean = cut_off == fs::metadata(&paths[cut_seg]).unwrap().len();
    let mut survivors = 0usize;
    for (i, p) in paths.iter().enumerate() {
        let data = fs::read(p).unwrap();
        let limit = if i < cut_seg || clean {
            data.len()
        } else if i == cut_seg {
            if (cut_off as usize) < HEADER_LEN {
                return survivors; // header torn: segment and successors drop
            }
            cut_off as usize
        } else {
            return survivors; // segments past a real cut drop
        };
        let mut off = HEADER_LEN;
        loop {
            if off + FRAME_OVERHEAD > limit {
                break;
            }
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            if off + FRAME_OVERHEAD + len > limit {
                break;
            }
            survivors += 1;
            off += FRAME_OVERHEAD + len;
        }
    }
    survivors
}

fn check_cut(golden: &Path, payloads: &[Vec<u8>], cut_seg: usize, cut_off: u64, cfg: LogConfig) {
    let paths = segment_paths(golden).unwrap();
    let expect = expected_prefix(&paths, cut_seg, cut_off);
    let dir = scratch("cut");
    copy_dir(golden, &dir);
    let victim = segment_paths(&dir).unwrap()[cut_seg].clone();
    OpenOptions::new().write(true).open(&victim).unwrap().set_len(cut_off).unwrap();
    let (_, recovered, _) = SegmentedLog::open(&dir, cfg).unwrap();
    assert_eq!(
        recovered.len(),
        expect,
        "cut segment {cut_seg} at byte {cut_off}: wrong prefix length"
    );
    for (r, p) in recovered.iter().zip(payloads) {
        assert_eq!(r.as_ref(), p.as_slice(), "recovered record diverges from what was written");
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Exhaustive: a single-segment log cut at EVERY byte offset.
#[test]
fn every_truncation_point_single_segment() {
    let payloads: Vec<Vec<u8>> =
        (0..12u8).map(|i| (0..(i as usize * 3 + 1)).map(|j| i ^ j as u8).collect()).collect();
    let golden = scratch("exhaustive-golden");
    let cfg = LogConfig { segment_bytes: 1 << 20, flush: FlushPolicy::Manual, sync_data: false };
    build_log(&golden, &payloads, cfg.segment_bytes);
    let paths = segment_paths(&golden).unwrap();
    assert_eq!(paths.len(), 1);
    let file_len = fs::metadata(&paths[0]).unwrap().len();
    for cut in 0..=file_len {
        check_cut(&golden, &payloads, 0, cut, cfg);
    }
    fs::remove_dir_all(&golden).unwrap();
}

/// Exhaustive over a multi-segment log: every byte of every segment.
#[test]
fn every_truncation_point_multi_segment() {
    let payloads: Vec<Vec<u8>> = (0..30u8).map(|i| vec![i; 24]).collect();
    let golden = scratch("multi-golden");
    let cfg = LogConfig { segment_bytes: 160, flush: FlushPolicy::Manual, sync_data: false };
    build_log(&golden, &payloads, cfg.segment_bytes);
    let paths = segment_paths(&golden).unwrap();
    assert!(paths.len() >= 3, "layout must span several segments");
    for (seg, p) in paths.iter().enumerate() {
        let file_len = fs::metadata(p).unwrap().len();
        for cut in 0..=file_len {
            check_cut(&golden, &payloads, seg, cut, cfg);
        }
    }
    fs::remove_dir_all(&golden).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary payload sets, segment sizes, and cut points: reopen is
    /// always exactly the committed prefix before the cut.
    #[test]
    fn truncation_yields_committed_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48), 1..40),
        segment_bytes in 64u64..1024,
        seg_sel in any::<u64>(),
        off_sel in any::<u64>(),
    ) {
        let golden = scratch("prop-golden");
        let cfg = LogConfig { segment_bytes, flush: FlushPolicy::Manual, sync_data: false };
        build_log(&golden, &payloads, segment_bytes);
        let paths = segment_paths(&golden).unwrap();
        let cut_seg = (seg_sel % paths.len() as u64) as usize;
        let file_len = fs::metadata(&paths[cut_seg]).unwrap().len();
        let cut_off = off_sel % (file_len + 1);
        check_cut(&golden, &payloads, cut_seg, cut_off, cfg);
        fs::remove_dir_all(&golden).unwrap();
    }
}
