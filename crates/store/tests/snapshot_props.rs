//! Snapshot-equivalence properties.
//!
//! The store's cache invariant, as properties over arbitrary schedules of
//! put / delete / sync / snapshot operations (with segment rolls and
//! threshold compactions firing naturally along the way):
//!
//! 1. Tail-only recovery (snapshot + tail replay) yields a map identical
//!    to full-replay recovery of the same directory.
//! 2. Deleting every sidecar — `.dti` indexes and `.dtk` snapshots —
//!    reproduces the identical state from the log alone.
//! 3. Both hold after a crash fault (torn tail bytes), including tears
//!    that cut below the snapshot watermark and force the fallback.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::Bytes;
use proptest::prelude::*;

use dtf_store::kv::{KvWalConfig, WalKv};
use dtf_store::log::{segment_paths, FlushPolicy, LogConfig};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dtf-snapprop-{name}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Remove every cache artifact — index sidecars and snapshots — leaving
/// only the segment files (the truth).
fn strip_caches(dir: &Path) {
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !(name.starts_with("seg-") && name.ends_with(".dtl")) {
            fs::remove_file(&path).unwrap();
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Delete(u8),
    Sync,
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // the vendored proptest's prop_oneof! is uniform over its arms, so
    // puts are repeated to dominate the mix
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 24, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 24, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 24, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 24, v)),
        any::<u8>().prop_map(|k| Op::Delete(k % 24)),
        Just(Op::Sync),
        Just(Op::Snapshot),
    ]
}

fn small_cfg() -> KvWalConfig {
    KvWalConfig {
        // tiny segments force rolls; EveryRecord keeps committed == written
        log: LogConfig { segment_bytes: 128, flush: FlushPolicy::EveryRecord, sync_data: false },
        compact_min_records: 40,
        compact_ratio: 2,
        snapshot_every: 16,
        background: false,
    }
}

/// Execute a schedule into a fresh store; return the writer's final map.
fn run_schedule(dir: &Path, ops: &[Op]) -> BTreeMap<String, Bytes> {
    let (mut kv, _) = WalKv::open(dir, small_cfg()).unwrap();
    for op in ops {
        match op {
            Op::Put(k, v) => {
                kv.put(format!("key-{k:02}"), vec![*v; (*v % 17) as usize + 1]).unwrap()
            }
            Op::Delete(k) => {
                kv.delete(&format!("key-{k:02}")).unwrap();
            }
            Op::Sync => kv.sync().unwrap(),
            Op::Snapshot => {
                let map = kv.map().clone();
                kv.wal().snapshot_now(&map).unwrap();
            }
        }
    }
    let map = kv.map().clone();
    // clean drop: EveryRecord means everything is already on disk
    drop(kv);
    map
}

fn recover(dir: &Path) -> (BTreeMap<String, Bytes>, u64, u64) {
    let (kv, report) = WalKv::open(dir, small_cfg()).unwrap();
    (kv.map().clone(), report.records, report.snapshot_records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clean-shutdown equivalence: snapshot+tail recovery, cache-stripped
    /// full replay, and the writer's own map all agree.
    #[test]
    fn recovery_paths_agree_after_clean_shutdown(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let dir = scratch("clean");
        let written = run_schedule(&dir, &ops);

        let stripped = scratch("clean-stripped");
        copy_dir(&dir, &stripped);
        strip_caches(&stripped);

        let (tail_map, tail_records, _) = recover(&dir);
        let (full_map, full_records, full_snap) = recover(&stripped);
        prop_assert_eq!(full_snap, 0, "stripped store must have no snapshot to use");
        prop_assert_eq!(&tail_map, &written, "tail recovery diverged from the writer");
        prop_assert_eq!(&full_map, &written, "full replay diverged from the writer");
        prop_assert_eq!(tail_records, full_records);

        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&stripped).unwrap();
    }

    /// Crash equivalence: after tearing bytes off the committed tail —
    /// sometimes below the snapshot watermark — snapshot-aided recovery
    /// and cache-stripped full replay still agree exactly.
    #[test]
    fn recovery_paths_agree_after_a_torn_tail(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        cut in 1u64..300,
    ) {
        let dir = scratch("torn");
        run_schedule(&dir, &ops);

        // tear the last `cut` committed bytes off the log (clamped to the
        // final segment's frames; a big cut can gut it to its header)
        let victim = segment_paths(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&victim).unwrap().len();
        let new_len = len.saturating_sub(cut).max(28);
        OpenOptions::new().write(true).open(&victim).unwrap().set_len(new_len).unwrap();

        let stripped = scratch("torn-stripped");
        copy_dir(&dir, &stripped);
        strip_caches(&stripped);

        let (tail_map, tail_records, _) = recover(&dir);
        let (full_map, full_records, _) = recover(&stripped);
        prop_assert_eq!(&tail_map, &full_map, "damage broke recovery-path equivalence");
        prop_assert_eq!(tail_records, full_records);

        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&stripped).unwrap();
    }
}
