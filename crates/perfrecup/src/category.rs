//! Task-category analysis (paper §IV-D: "task category (type) analysis
//! within one or multiple runs — performance, variability, distribution,
//! I/O per task").
//!
//! Aggregates per task prefix: duration statistics, output sizes, thread
//! spread, and — through the pthread-id join — the I/O performed by tasks
//! of that category.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dtf_core::stats::{Summary, Welford};
use dtf_wms::RunData;

use crate::views::RunViews;

/// Statistics for one task category within one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryStats {
    pub category: String,
    pub tasks: usize,
    pub duration: Summary,
    pub output_nbytes: Summary,
    /// Distinct threads that executed this category.
    pub threads: usize,
    /// Distinct workers that executed this category.
    pub workers: usize,
    /// I/O operations attributed to this category (pthread-id join).
    pub io_ops: u64,
    pub io_bytes: u64,
}

/// Per-category statistics for one run, sorted by mean duration desc.
pub fn per_category(data: &RunData) -> Vec<CategoryStats> {
    struct Acc {
        duration: Welford,
        nbytes: Welford,
        threads: std::collections::HashSet<u64>,
        workers: std::collections::HashSet<String>,
        io_ops: u64,
        io_bytes: u64,
    }
    // keyed by the interned prefix: no per-task string allocation
    let mut acc: HashMap<dtf_core::ids::TaskPrefix, Acc> = HashMap::new();
    for d in &data.task_done {
        let a = acc.entry(d.key.prefix.clone()).or_insert_with(|| Acc {
            duration: Welford::new(),
            nbytes: Welford::new(),
            threads: Default::default(),
            workers: Default::default(),
            io_ops: 0,
            io_bytes: 0,
        });
        a.duration.push(d.duration().as_secs_f64());
        a.nbytes.push(d.nbytes as f64);
        a.threads.insert(d.thread.0);
        a.workers.insert(d.worker.address());
    }
    // attribute I/O through the fused view
    let fused = RunViews::new(data).task_io();
    if !fused.is_empty() {
        let prefixes = fused.col("prefix").expect("prefix col");
        let sizes = fused.col("size").expect("size col");
        let ops = fused.col("op").expect("op col");
        for i in 0..fused.n_rows() {
            let Some(prefix) = prefixes[i].as_str() else { continue };
            if let Some(a) = acc.get_mut(prefix) {
                if matches!(ops[i].as_str(), Some("read") | Some("write")) {
                    a.io_ops += 1;
                    a.io_bytes += sizes[i].as_u64().unwrap_or(0);
                }
            }
        }
    }
    let mut out: Vec<CategoryStats> = acc
        .into_iter()
        .map(|(category, a)| CategoryStats {
            category: category.as_str().to_string(),
            tasks: a.duration.count() as usize,
            duration: a.duration.summary(),
            output_nbytes: a.nbytes.summary(),
            threads: a.threads.len(),
            workers: a.workers.len(),
            io_ops: a.io_ops,
            io_bytes: a.io_bytes,
        })
        .collect();
    out.sort_by(|a, b| {
        b.duration
            .mean
            .partial_cmp(&a.duration.mean)
            .expect("finite means")
            .then(a.category.cmp(&b.category))
    });
    out
}

/// Cross-run variability of one category's mean duration (paper: which
/// task behaviours vary most across identical runs?).
pub fn category_variability(runs: &[&RunData], category: &str) -> Summary {
    let mut per_run_means = Vec::new();
    for data in runs {
        let mut w = Welford::new();
        for d in &data.task_done {
            if d.key.prefix == category {
                w.push(d.duration().as_secs_f64());
            }
        }
        if w.count() > 0 {
            per_run_means.push(w.mean());
        }
    }
    Summary::of(&per_run_means)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::ids::{GraphId, RunId};
    use dtf_core::time::Dur;
    use dtf_wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};
    use dtf_wms::{GraphBuilder, IoCall, SimAction};

    fn run(seed: u64) -> RunData {
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        for i in 0..6u32 {
            let load = b.add_sim(
                "load",
                tok,
                i,
                vec![],
                SimAction {
                    compute: Dur::from_millis_f64(10.0),
                    io: vec![IoCall::read(dtf_core::ids::FileId(0), 0, 8192)],
                    output_nbytes: 1 << 20,
                    stall_rate: 0.0,
                },
            );
            b.add_sim(
                "slow-train",
                tok,
                i,
                vec![load],
                SimAction::compute_only(Dur::from_millis_f64(500.0), 4 << 20),
            );
        }
        let wf = SimWorkflow {
            name: "cat".into(),
            graphs: vec![b.build(&Default::default()).unwrap()],
            submit: SubmitPolicy::AllAtOnce,
            startup: Dur::from_secs_f64(0.5),
            inter_graph: Dur::ZERO,
            shutdown: Dur::ZERO,
            dataset: vec![("/f".into(), 1 << 20, 1)],
        };
        SimCluster::new(SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() })
            .unwrap()
            .run(wf)
            .unwrap()
    }

    #[test]
    fn categories_ranked_by_duration_with_io_attribution() {
        let data = run(1);
        let stats = per_category(&data);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].category, "slow-train", "slowest first");
        assert_eq!(stats[0].tasks, 6);
        assert_eq!(stats[0].io_ops, 0, "train does no I/O");
        let load = &stats[1];
        assert_eq!(load.category, "load");
        assert_eq!(load.io_ops, 6, "each load read once");
        assert_eq!(load.io_bytes, 6 * 8192);
        assert!(load.duration.mean < stats[0].duration.mean);
        assert!(load.threads >= 1 && load.workers >= 1);
    }

    #[test]
    fn cross_run_variability_is_finite_and_positive() {
        let a = run(1);
        let b = run(2);
        let v = category_variability(&[&a, &b], "slow-train");
        assert_eq!(v.count, 2);
        assert!(v.mean > 0.4, "mean duration near the configured 0.5s");
        let none = category_variability(&[&a, &b], "nonexistent");
        assert_eq!(none.count, 0);
    }
}
