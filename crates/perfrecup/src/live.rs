//! Online incremental view maintenance: the live counterpart of the
//! post-hoc analyses, updated in O(Δ) per consumed batch.
//!
//! [`LiveViews`] attaches to a Mofka service as its own consumer group
//! (one [`dtf_mofka::GroupFeed`] over the standard WMS topics) and keeps
//! *delta state* for the equivalence-gated views — per-category statistics
//! ([`crate::category::per_category`]), per-worker utilization
//! ([`crate::utilization::per_worker`]), and the phase totals
//! ([`crate::phases::PhaseSample`]) — so a refresh after Δ new events
//! costs O(Δ), not O(everything seen).
//!
//! ## Exact equivalence with the post-hoc kernels
//!
//! The post-hoc kernels iterate event vectors in a pinned sort order
//! (task-done by `(stop, start)`, drain order breaking ties), and their
//! floating-point accumulations are order-sensitive. To be *value-identical*
//! — bit-for-bit, not merely within epsilon — the engine does not merge
//! float partials out of arrival order. Instead each group (task category,
//! worker) keeps its raw samples in a `BTreeMap` keyed by the post-hoc sort
//! key extended with the event's `(partition, offset)` id, and a snapshot
//! replays only the *dirty* groups' arithmetic in that canonical order.
//! Ingest stays O(Δ log n); snapshot cost is proportional to the groups
//! the delta actually touched. Integer accumulations (phase `Dur` sums,
//! I/O byte/op counters) are order-insensitive and update in place.
//!
//! The `(partition, offset)` tiebreak equals the drain order of
//! `RunData::drain_from_mofka` as long as no partition holds more than one
//! prefetch window (4096 events) — true for every test and chaos schedule
//! in this repo; ties across that boundary would still be value-equal for
//! any tie among *identical* events.
//!
//! Darshan log sets only exist once a run shuts down, so the I/O half of
//! the fused task↔I/O join ([`RunViews::task_io`]) arrives as one final
//! Δ-batch through [`LiveViews::finalize`]; equivalence is asserted on
//! finalized snapshots. Mid-run snapshots use a quantized time horizon for
//! utilization bins (so clean workers stay cached as the run grows) and
//! the latest event time as the provisional wall clock.
//!
//! ## Subscriptions
//!
//! [`LiveViews::subscribe`] hands out versioned snapshot handles: every
//! [`LiveViews::publish`] swaps one `Arc<ViewSnapshot>` under a mutex and
//! notifies a condvar, so any number of concurrent readers poll or block
//! ([`ViewSubscription::wait_newer`]) without ever touching ingest state.
//! On a real-time service the engine can also park on the shard plane's
//! append signal ([`LiveViews::wait_activity`]) between pumps.
//!
//! [`ViewQuery`] unifies hot and cold: the same query answers from live
//! delta state for an active run and from [`crate::archive::ArchivedRun`]
//! (or any drained [`RunData`]) for history.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use dtf_core::error::DtfError;
use dtf_core::events::{
    CommEvent, IoOp, IoRecord, LogEntry, ProvEvent, TaskDoneEvent, TaskMetaEvent, TransitionEvent,
    WarningEvent, WorkerTransitionEvent,
};
use dtf_core::ids::{TaskPrefix, ThreadId, WorkerId};
use dtf_core::stats::Welford;
use dtf_core::time::{Dur, Time};
use dtf_darshan::log::LogSet;
use dtf_mofka::{ConsumerConfig, Event, GroupFeed, Metadata, MofkaService, ProducerConfig};
use dtf_wms::plugins::{MofkaPlugin, WmsPlugin};
use dtf_wms::RunData;

use crate::category::CategoryStats;
use crate::phases::PhaseSample;
use crate::utilization::{per_worker, WorkerUtilization};

/// The topics a live engine subscribes to, in feed index order.
pub const LIVE_TOPICS: [&str; 8] = [
    "task-meta",
    "task-transitions",
    "worker-transitions",
    "task-done",
    "comm-events",
    "warnings",
    "logs",
    "io-records",
];

/// Post-hoc sort key + event-id tiebreak; BTreeMap order over these keys
/// is exactly the order the post-hoc kernels iterate in.
type OrdKey = (Time, Time, u32, u64);

/// How a live engine attaches to a service.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Consumer group (one group per live engine; a second engine under a
    /// different group sees the full stream independently).
    pub group: String,
    /// Utilization bins maintained incrementally.
    pub bins: usize,
    /// Thread cap per worker for the utilization view.
    pub threads_per_worker: u32,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self { group: "live".into(), bins: 20, threads_per_worker: 1 }
    }
}

/// Ingest counters, by topic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveProgress {
    pub meta: u64,
    pub transitions: u64,
    pub worker_transitions: u64,
    pub task_done: u64,
    pub comms: u64,
    pub warnings: u64,
    pub logs: u64,
    pub io_records: u64,
}

impl LiveProgress {
    pub fn total(&self) -> u64 {
        self.meta
            + self.transitions
            + self.worker_transitions
            + self.task_done
            + self.comms
            + self.warnings
            + self.logs
            + self.io_records
    }
}

/// One immutable published view state. Readers hold it by `Arc`; a new
/// publish never mutates an outstanding snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewSnapshot {
    /// Monotone publish counter (0 = nothing published yet).
    pub version: u64,
    /// Whether [`LiveViews::finalize`] has run; only finalized snapshots
    /// are equivalence-gated against the post-hoc kernels.
    pub finalized: bool,
    pub progress: LiveProgress,
    /// Per-category statistics, sorted like `per_category` (mean duration
    /// desc, then category).
    pub categories: Vec<CategoryStats>,
    /// Per-worker utilization, sorted by worker id. Mid-run bins span a
    /// quantized horizon; finalized bins span the exact wall time.
    pub utilization: Vec<WorkerUtilization>,
    /// Phase totals; `io_s` is 0 until finalize delivers the Darshan logs,
    /// `wall_s` is the latest event time until finalize pins it.
    pub phases: PhaseSample,
    /// Fraction of Darshan records attributed to a task (`None` before
    /// finalize; cf. `RunViews::io_attribution_rate`).
    pub attribution_rate: Option<f64>,
}

impl ViewSnapshot {
    fn empty() -> Self {
        Self {
            version: 0,
            finalized: false,
            progress: LiveProgress::default(),
            categories: Vec::new(),
            utilization: Vec::new(),
            phases: PhaseSample { wall_s: 0.0, io_s: 0.0, comm_s: 0.0, compute_s: 0.0 },
            attribution_rate: None,
        }
    }
}

/// Shared publish slot: latest snapshot + wakeup for blocked subscribers.
#[derive(Debug)]
struct Published {
    snap: Mutex<Arc<ViewSnapshot>>,
    cv: Condvar,
}

/// A subscriber handle. Cheap to clone and fully decoupled from ingest:
/// reading (or blocking on) snapshots never contends with `pump`.
#[derive(Debug, Clone)]
pub struct ViewSubscription {
    shared: Arc<Published>,
}

impl ViewSubscription {
    /// The latest published snapshot.
    pub fn latest(&self) -> Arc<ViewSnapshot> {
        self.shared.snap.lock().expect("publish slot poisoned").clone()
    }

    /// Block until a snapshot newer than `seen` is published or `timeout`
    /// elapses; returns the newest snapshot either way.
    pub fn wait_newer(&self, seen: u64, timeout: Duration) -> Arc<ViewSnapshot> {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.shared.snap.lock().expect("publish slot poisoned");
        while guard.version <= seen {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            let (g, t) =
                self.shared.cv.wait_timeout(guard, deadline - now).expect("publish slot poisoned");
            guard = g;
            if t.timed_out() {
                break;
            }
        }
        guard.clone()
    }
}

/// One query shape answered identically by live state and archives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ViewQuery {
    Categories,
    Utilization { bins: usize, threads_per_worker: u32 },
    Phases,
}

/// A query answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ViewResult {
    Categories(Vec<CategoryStats>),
    Utilization(Vec<WorkerUtilization>),
    Phases(PhaseSample),
}

/// Phase totals of a drained run — the cold-path `Phases` answer, and the
/// oracle the live engine's integer accumulators are checked against.
pub fn phase_sample(data: &RunData) -> PhaseSample {
    PhaseSample {
        wall_s: data.wall_time.as_secs_f64(),
        io_s: data.io_time().as_secs_f64(),
        comm_s: data.comm_time().as_secs_f64(),
        compute_s: data.compute_time().as_secs_f64(),
    }
}

/// Answer a [`ViewQuery`] from a drained run record (the cold path; see
/// [`crate::archive::ArchivedRun::query`]).
pub fn query_rundata(data: &RunData, q: &ViewQuery) -> ViewResult {
    match q {
        ViewQuery::Categories => ViewResult::Categories(crate::category::per_category(data)),
        ViewQuery::Utilization { bins, threads_per_worker } => {
            ViewResult::Utilization(per_worker(data, *bins, *threads_per_worker))
        }
        ViewQuery::Phases => ViewResult::Phases(phase_sample(data)),
    }
}

/// Everything the run hands over when it ends: the sources that only
/// exist at shutdown, ingested as the final Δ-batch.
#[derive(Debug, Clone)]
pub struct RunFinal {
    pub darshan: LogSet,
    pub wall_time: Dur,
}

#[derive(Default)]
struct CatState {
    /// Raw samples in post-hoc iteration order: `(stop, start, part, off)`
    /// → `(duration_s, nbytes)`.
    samples: BTreeMap<OrdKey, (f64, f64)>,
    threads: HashSet<u64>,
    workers: HashSet<String>,
    io_ops: u64,
    io_bytes: u64,
}

#[derive(Default)]
struct WorkerState {
    /// Execution intervals in post-hoc iteration order: `(stop, start,
    /// part, off)` → `(start_s, stop_s)`.
    intervals: BTreeMap<OrdKey, (f64, f64)>,
}

/// The incremental view-maintenance engine. See the module docs.
pub struct LiveViews {
    feed: GroupFeed,
    cfg: LiveConfig,

    // ---- delta state ----
    cats: HashMap<TaskPrefix, CatState>,
    cat_cache: HashMap<TaskPrefix, CategoryStats>,
    dirty_cats: HashSet<TaskPrefix>,
    workers: BTreeMap<WorkerId, WorkerState>,
    busy_cache: HashMap<WorkerId, Vec<f64>>,
    dirty_workers: HashSet<WorkerId>,
    /// Horizon the cached busy bins were computed over.
    horizon: f64,
    /// Per-thread task intervals for the I/O join, in the `task_io` scan
    /// order: `(start, stop, part, off)` → category.
    by_thread: HashMap<ThreadId, BTreeMap<OrdKey, TaskPrefix>>,
    compute: Dur,
    comm: Dur,
    io: Dur,
    /// Latest event timestamp seen (provisional wall clock).
    max_t: Time,
    progress: LiveProgress,
    wall: Option<Dur>,
    attribution: Option<(u64, u64)>, // (matched, total) darshan records
    finalized: bool,

    // ---- publication ----
    published: Arc<Published>,
    version: u64,
}

impl LiveViews {
    /// Attach to `svc` as consumer group `cfg.group` over [`LIVE_TOPICS`].
    pub fn attach(svc: &MofkaService, cfg: LiveConfig) -> dtf_core::Result<Self> {
        let feed = svc.group_feed(
            &LIVE_TOPICS,
            // prefetch matches the post-hoc drain so the (partition,
            // offset) tiebreak discussion in the module docs carries over
            ConsumerConfig { group: cfg.group.clone(), prefetch: 4096 },
        )?;
        Ok(Self {
            feed,
            cfg,
            cats: HashMap::new(),
            cat_cache: HashMap::new(),
            dirty_cats: HashSet::new(),
            workers: BTreeMap::new(),
            busy_cache: HashMap::new(),
            dirty_workers: HashSet::new(),
            horizon: 0.0,
            by_thread: HashMap::new(),
            compute: Dur::ZERO,
            comm: Dur::ZERO,
            io: Dur::ZERO,
            max_t: Time::ZERO,
            progress: LiveProgress::default(),
            wall: None,
            attribution: None,
            finalized: false,
            published: Arc::new(Published {
                snap: Mutex::new(Arc::new(ViewSnapshot::empty())),
                cv: Condvar::new(),
            }),
            version: 0,
        })
    }

    /// A new subscriber handle (any number may exist concurrently; handles
    /// stay valid for the engine's lifetime and beyond).
    pub fn subscribe(&self) -> ViewSubscription {
        ViewSubscription { shared: self.published.clone() }
    }

    /// Park on the shard plane's append signal (real-time services); see
    /// [`GroupFeed::wait_activity`].
    pub fn wait_activity(&mut self, timeout: Duration) -> bool {
        self.feed.wait_activity(timeout)
    }

    /// One poll pass over the feed: ingest whatever arrived, up to
    /// `max_per_topic` events per topic. Returns events ingested. O(Δ).
    pub fn pump(&mut self, max_per_topic: usize) -> dtf_core::Result<u64> {
        let batches = self.feed.poll(max_per_topic)?;
        let mut n = 0u64;
        for b in batches {
            for stored in b.events {
                self.apply(b.topic, stored)?;
                n += 1;
            }
        }
        Ok(n)
    }

    /// Pump until the feed runs dry. Returns events ingested.
    pub fn pump_all(&mut self) -> dtf_core::Result<u64> {
        let mut total = 0;
        loop {
            let n = self.pump(4096)?;
            if n == 0 {
                return Ok(total);
            }
            total += n;
        }
    }

    fn apply(&mut self, topic: usize, stored: dtf_mofka::StoredEvent) -> dtf_core::Result<()> {
        fn parse<T: ProvEvent + serde::Deserialize>(
            stored: dtf_mofka::StoredEvent,
        ) -> dtf_core::Result<(u32, u64, T)> {
            let (p, o) = (stored.id.partition, stored.id.offset);
            let ev = match stored.event.metadata {
                Metadata::Typed(rec) => {
                    let rec = Arc::try_unwrap(rec).unwrap_or_else(|a| (*a).clone());
                    T::from_record(rec).ok_or_else(|| {
                        DtfError::IllegalState("live topic carried a wrong-family record".into())
                    })?
                }
                Metadata::Json(v) => serde_json::from_value(v)?,
            };
            Ok((p, o, ev))
        }
        match topic {
            0 => {
                let (_, _, e): (_, _, TaskMetaEvent) = parse(stored)?;
                self.progress.meta += 1;
                self.max_t = self.max_t.max(e.submitted);
            }
            1 => {
                let (_, _, e): (_, _, TransitionEvent) = parse(stored)?;
                self.progress.transitions += 1;
                self.max_t = self.max_t.max(e.time);
            }
            2 => {
                let (_, _, e): (_, _, WorkerTransitionEvent) = parse(stored)?;
                self.progress.worker_transitions += 1;
                self.max_t = self.max_t.max(e.time);
            }
            3 => {
                let (p, o, e): (_, _, TaskDoneEvent) = parse(stored)?;
                self.ingest_task_done(p, o, e);
            }
            4 => {
                let (_, _, e): (_, _, CommEvent) = parse(stored)?;
                self.progress.comms += 1;
                self.comm += e.duration();
                self.max_t = self.max_t.max(e.stop);
            }
            5 => {
                let (_, _, e): (_, _, WarningEvent) = parse(stored)?;
                self.progress.warnings += 1;
                self.max_t = self.max_t.max(e.time);
            }
            6 => {
                let (_, _, e): (_, _, LogEntry) = parse(stored)?;
                self.progress.logs += 1;
                self.max_t = self.max_t.max(e.time);
            }
            7 => {
                let (_, _, e): (_, _, IoRecord) = parse(stored)?;
                self.progress.io_records += 1;
                self.max_t = self.max_t.max(e.stop);
            }
            other => {
                return Err(DtfError::IllegalState(format!("unknown live feed topic {other}")))
            }
        }
        Ok(())
    }

    fn ingest_task_done(&mut self, part: u32, off: u64, e: TaskDoneEvent) {
        self.progress.task_done += 1;
        self.max_t = self.max_t.max(e.stop);
        self.compute += e.duration();
        let key: OrdKey = (e.stop, e.start, part, off);
        let cat = self.cats.entry(e.key.prefix.clone()).or_default();
        cat.samples.insert(key, (e.duration().as_secs_f64(), e.nbytes as f64));
        cat.threads.insert(e.thread.0);
        cat.workers.insert(e.worker.address());
        self.dirty_cats.insert(e.key.prefix.clone());
        self.workers
            .entry(e.worker)
            .or_default()
            .intervals
            .insert(key, (e.start.as_secs_f64(), e.stop.as_secs_f64()));
        self.dirty_workers.insert(e.worker);
        self.by_thread
            .entry(e.thread)
            .or_default()
            .insert((e.start, e.stop, part, off), e.key.prefix);
    }

    /// Ingest the shutdown-only sources (Darshan logs, exact wall time) as
    /// the final Δ-batch, drain the feed, and publish the finalized
    /// snapshot — the one the equivalence oracle compares to the post-hoc
    /// kernels.
    pub fn finalize(&mut self, fin: RunFinal) -> dtf_core::Result<Arc<ViewSnapshot>> {
        self.pump_all()?;
        // the fused task↔I/O join, incremental edition: each Darshan
        // record resolves against the per-thread interval index in the
        // exact scan order task_io uses (last interval starting at or
        // before t, latest first)
        let (mut matched, mut total) = (0u64, 0u64);
        for rec in fin.darshan.all_records() {
            total += 1;
            let t = Time::from_secs_f64(rec.start.as_secs_f64());
            let found = self.by_thread.get(&rec.thread).and_then(|intervals| {
                intervals
                    .range(..=(t, Time(u64::MAX), u32::MAX, u64::MAX))
                    .rev()
                    .find(|((_, stop, _, _), _)| *stop >= t)
                    .map(|(_, prefix)| prefix.clone())
            });
            if let Some(prefix) = found {
                matched += 1;
                if matches!(rec.op, IoOp::Read | IoOp::Write) {
                    if let Some(cat) = self.cats.get_mut(&prefix) {
                        cat.io_ops += 1;
                        cat.io_bytes += rec.size;
                        self.dirty_cats.insert(prefix);
                    }
                }
            }
        }
        self.attribution = Some((matched, total));
        self.io = fin.darshan.total_io_time();
        self.wall = Some(fin.wall_time);
        // exact wall time moves every bin edge: recompute all workers once
        self.dirty_workers.extend(self.workers.keys().copied());
        self.finalized = true;
        Ok(self.publish())
    }

    /// Refresh the dirty groups and publish a new snapshot. Cost is
    /// proportional to the groups touched since the last publish (plus the
    /// O(C log C) output sort), not to the events seen.
    pub fn publish(&mut self) -> Arc<ViewSnapshot> {
        self.refresh_categories();
        self.refresh_utilization();
        self.version += 1;
        let snap =
            Arc::new(ViewSnapshot {
                version: self.version,
                finalized: self.finalized,
                progress: self.progress,
                categories: self.sorted_categories(),
                utilization: self.sorted_utilization(),
                phases: self.current_phases(),
                attribution_rate: self.attribution.map(|(m, t)| {
                    if t == 0 {
                        0.0
                    } else {
                        m as f64 / t as f64
                    }
                }),
            });
        let mut slot = self.published.snap.lock().expect("publish slot poisoned");
        *slot = snap.clone();
        self.published.cv.notify_all();
        snap
    }

    /// Answer a [`ViewQuery`] from live state (the hot path). Queries with
    /// non-configured utilization parameters recompute from the interval
    /// stores instead of the bin cache.
    pub fn query(&mut self, q: &ViewQuery) -> ViewResult {
        match q {
            ViewQuery::Categories => {
                self.refresh_categories();
                ViewResult::Categories(self.sorted_categories())
            }
            ViewQuery::Utilization { bins, threads_per_worker }
                if *bins == self.cfg.bins && *threads_per_worker == self.cfg.threads_per_worker =>
            {
                self.refresh_utilization();
                ViewResult::Utilization(self.sorted_utilization())
            }
            ViewQuery::Utilization { bins, threads_per_worker } => {
                let horizon = self.effective_horizon();
                let out = self
                    .workers
                    .iter()
                    .map(|(worker, st)| WorkerUtilization {
                        worker: *worker,
                        busy: Self::bins_for(&st.intervals, *bins, horizon, *threads_per_worker),
                    })
                    .collect();
                ViewResult::Utilization(out)
            }
            ViewQuery::Phases => ViewResult::Phases(self.current_phases()),
        }
    }

    fn current_phases(&self) -> PhaseSample {
        PhaseSample {
            wall_s: self.wall.map_or_else(|| self.max_t.as_secs_f64(), |w| w.as_secs_f64()),
            io_s: self.io.as_secs_f64(),
            comm_s: self.comm.as_secs_f64(),
            compute_s: self.compute.as_secs_f64(),
        }
    }

    fn refresh_categories(&mut self) {
        for prefix in std::mem::take(&mut self.dirty_cats) {
            let st = &self.cats[&prefix];
            // replay in canonical order: bit-identical to per_category's
            // pass over the (stop, start)-sorted task vector
            let mut duration = Welford::new();
            let mut nbytes = Welford::new();
            for (d, n) in st.samples.values() {
                duration.push(*d);
                nbytes.push(*n);
            }
            self.cat_cache.insert(
                prefix.clone(),
                CategoryStats {
                    category: prefix.as_str().to_string(),
                    tasks: st.samples.len(),
                    duration: duration.summary(),
                    output_nbytes: nbytes.summary(),
                    threads: st.threads.len(),
                    workers: st.workers.len(),
                    io_ops: st.io_ops,
                    io_bytes: st.io_bytes,
                },
            );
        }
    }

    fn sorted_categories(&self) -> Vec<CategoryStats> {
        let mut out: Vec<CategoryStats> = self.cat_cache.values().cloned().collect();
        out.sort_by(|a, b| {
            b.duration
                .mean
                .partial_cmp(&a.duration.mean)
                .expect("finite means")
                .then(a.category.cmp(&b.category))
        });
        out
    }

    /// Horizon the utilization bins currently span: the exact wall time
    /// once finalized, otherwise the latest event time rounded up to a
    /// power of two so bin edges (and the clean workers' cached bins) stay
    /// put as the run grows.
    fn effective_horizon(&self) -> f64 {
        match self.wall {
            Some(w) => w.as_secs_f64().max(1e-9),
            None => {
                let t = self.max_t.as_secs_f64().max(1.0);
                let mut h = 1.0f64;
                while h < t {
                    h *= 2.0;
                }
                h
            }
        }
    }

    fn bins_for(
        intervals: &BTreeMap<OrdKey, (f64, f64)>,
        bins: usize,
        horizon: f64,
        threads_per_worker: u32,
    ) -> Vec<f64> {
        // mirror per_worker's arithmetic exactly, including its add order
        let w = horizon / bins as f64;
        let mut busy = vec![0.0; bins];
        for (s, e) in intervals.values() {
            let first = ((s / w) as usize).min(bins - 1);
            let last = ((e / w) as usize).min(bins - 1);
            for (bin, slot) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
                let b0 = bin as f64 * w;
                let b1 = b0 + w;
                *slot += (e.min(b1) - s.max(b0)).max(0.0);
            }
        }
        let cap = w * threads_per_worker as f64;
        busy.into_iter().map(|b| (b / cap).min(1.0)).collect()
    }

    fn refresh_utilization(&mut self) {
        let horizon = self.effective_horizon();
        if horizon != self.horizon {
            // bin edges moved: every cached worker is stale
            self.dirty_workers.extend(self.workers.keys().copied());
            self.horizon = horizon;
        }
        for worker in std::mem::take(&mut self.dirty_workers) {
            let st = &self.workers[&worker];
            self.busy_cache.insert(
                worker,
                Self::bins_for(&st.intervals, self.cfg.bins, horizon, self.cfg.threads_per_worker),
            );
        }
    }

    fn sorted_utilization(&self) -> Vec<WorkerUtilization> {
        // self.workers is a BTreeMap: iteration is already worker order
        self.workers
            .keys()
            .map(|w| WorkerUtilization { worker: *w, busy: self.busy_cache[w].clone() })
            .collect()
    }

    /// Events claimed but never delivered by this engine's feed.
    pub fn discarded_claims(&self) -> u64 {
        self.feed.discarded_claims()
    }

    /// Latest published version (0 until the first publish).
    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn progress(&self) -> LiveProgress {
        self.progress
    }
}

/// Push every event of a drained run record back into `svc`'s topics with
/// the production partitioning (task-scoped topics by task key — the same
/// placement `MofkaPlugin` gave the original run). This is the replay
/// harness the equivalence tests and the view bench feed live engines
/// with: drain a simulated run once, republish it into a fresh service,
/// and pump it through [`LiveViews`] in whatever chunking the test wants.
pub fn republish(data: &RunData, svc: &MofkaService) -> dtf_core::Result<()> {
    let mut plugin = MofkaPlugin::new(svc, ProducerConfig::default())?;
    for e in &data.meta {
        plugin.on_task_meta(e);
    }
    for e in &data.transitions {
        plugin.on_transition(e);
    }
    for e in &data.worker_transitions {
        plugin.on_worker_transition(e);
    }
    for e in &data.task_done {
        plugin.on_task_done(e);
    }
    for e in &data.comms {
        plugin.on_comm(e);
    }
    for e in &data.warnings {
        plugin.on_warning(e);
    }
    for e in &data.logs {
        plugin.on_log(e);
    }
    plugin.flush();
    if !data.online_io.is_empty() {
        let mut producer = svc.producer("io-records", ProducerConfig::default())?;
        for r in &data.online_io {
            producer.push(Event::typed(r.clone()))?;
        }
        producer.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::per_category;
    use dtf_core::ids::{GraphId, RunId};
    use dtf_mofka::bedrock::BedrockConfig;
    use dtf_wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};
    use dtf_wms::{GraphBuilder, IoCall, SimAction};

    fn sim_run(seed: u64) -> RunData {
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        for i in 0..8u32 {
            let load = b.add_sim(
                "load",
                tok,
                i,
                vec![],
                SimAction {
                    compute: Dur::from_millis_f64(20.0),
                    io: vec![IoCall::read(dtf_core::ids::FileId(0), i as u64 * 4096, 4096)],
                    output_nbytes: 1 << 16,
                    stall_rate: 0.0,
                },
            );
            b.add_sim(
                "train",
                tok,
                i,
                vec![load],
                SimAction::compute_only(Dur::from_millis_f64(120.0), 1 << 20),
            );
        }
        let wf = SimWorkflow {
            name: "live-test".into(),
            graphs: vec![b.build(&Default::default()).unwrap()],
            submit: SubmitPolicy::AllAtOnce,
            startup: Dur::from_secs_f64(0.5),
            inter_graph: Dur::ZERO,
            shutdown: Dur::ZERO,
            dataset: vec![("/f".into(), 1 << 20, 1)],
        };
        SimCluster::new(SimConfig { campaign_seed: seed, run: RunId(0), ..Default::default() })
            .unwrap()
            .run(wf)
            .unwrap()
    }

    /// Drain `svc` (fresh group) exactly as the post-hoc analysis would,
    /// reusing the non-Mofka half of `orig`.
    fn drain_again(svc: &MofkaService, orig: &RunData, group_tag: u64) -> RunData {
        RunData::drain_from_mofka(
            svc,
            RunId(group_tag as u32 + 100),
            orig.workflow.clone(),
            orig.chart.clone(),
            orig.darshan.clone(),
            orig.wall_time,
            orig.start_order.clone(),
            orig.steals,
        )
        .unwrap()
    }

    /// The equivalence oracle: a live engine pumped in small chunks ends
    /// bit-identical to the post-hoc kernels over the same drained events.
    #[test]
    fn live_views_equal_post_hoc_kernels() {
        let data = sim_run(7);
        let svc = BedrockConfig::wms_default().bootstrap().unwrap();
        republish(&data, &svc).unwrap();
        let cfg = LiveConfig { group: "live-eq".into(), bins: 16, threads_per_worker: 1 };
        let mut live = LiveViews::attach(&svc, cfg).unwrap();
        // pump in deliberately small chunks to exercise incremental paths
        while live.pump(3).unwrap() > 0 {
            live.publish();
        }
        let snap = live
            .finalize(RunFinal { darshan: data.darshan.clone(), wall_time: data.wall_time })
            .unwrap();
        let oracle = drain_again(&svc, &data, 1);
        assert_eq!(snap.categories, per_category(&oracle), "categories bit-identical");
        assert_eq!(snap.utilization, per_worker(&oracle, 16, 1), "utilization bit-identical");
        assert_eq!(snap.phases, phase_sample(&oracle), "phases bit-identical");
        assert_eq!(snap.attribution_rate, Some(1.0), "thread ids present: full attribution");
        assert!(snap.finalized);
        assert_eq!(snap.progress.task_done, oracle.task_done.len() as u64);
    }

    #[test]
    fn view_query_unifies_hot_and_cold() {
        let data = sim_run(9);
        let svc = BedrockConfig::wms_default().bootstrap().unwrap();
        republish(&data, &svc).unwrap();
        let mut live = LiveViews::attach(&svc, LiveConfig::default()).unwrap();
        live.pump_all().unwrap();
        live.finalize(RunFinal { darshan: data.darshan.clone(), wall_time: data.wall_time })
            .unwrap();
        let oracle = drain_again(&svc, &data, 2);
        for q in [
            ViewQuery::Categories,
            ViewQuery::Utilization { bins: 20, threads_per_worker: 1 },
            // non-configured bins: answered from the interval stores
            ViewQuery::Utilization { bins: 7, threads_per_worker: 2 },
            ViewQuery::Phases,
        ] {
            assert_eq!(live.query(&q), query_rundata(&oracle, &q), "{q:?}");
        }
    }

    #[test]
    fn subscribers_see_versioned_snapshots() {
        let data = sim_run(11);
        let svc = BedrockConfig::wms_default().bootstrap().unwrap();
        republish(&data, &svc).unwrap();
        let mut live = LiveViews::attach(&svc, LiveConfig::default()).unwrap();
        let sub = live.subscribe();
        assert_eq!(sub.latest().version, 0, "nothing published yet");
        live.pump(5).unwrap();
        let s1 = live.publish();
        assert_eq!(sub.latest().version, s1.version);
        live.pump_all().unwrap();
        let s2 = live.publish();
        assert!(s2.version > s1.version);
        // wait_newer returns immediately when a newer snapshot exists
        let got = sub.wait_newer(s1.version, Duration::from_secs(5));
        assert_eq!(got.version, s2.version);
        // and times out (returning the latest) when nothing newer comes
        let got = sub.wait_newer(s2.version, Duration::from_millis(20));
        assert_eq!(got.version, s2.version);
    }

    /// Concurrent subscriptions off the real-time shard plane: a producer
    /// thread streams events while the engine pumps on plane activity and
    /// several subscriber threads block for fresh versions.
    #[test]
    fn concurrent_subscriptions_on_realtime_plane() {
        use dtf_core::ids::{NodeId, TaskKey, WorkerId};
        let svc_cfg = dtf_mofka::ServiceConfig {
            mode: dtf_mofka::ServiceMode::RealTime { shards: 2 },
            ..Default::default()
        };
        let svc = BedrockConfig::wms_default().bootstrap_with(&svc_cfg).unwrap();
        let mut live =
            LiveViews::attach(&svc, LiveConfig { group: "rt-subs".into(), ..Default::default() })
                .unwrap();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let sub = live.subscribe();
                std::thread::spawn(move || {
                    let snap = sub.wait_newer(0, Duration::from_secs(30));
                    (snap.version, snap.progress.task_done)
                })
            })
            .collect();
        let mut producer = svc.producer("task-done", ProducerConfig::default()).unwrap();
        let n_events = 64u64;
        for i in 0..n_events {
            producer
                .push(Event::typed(TaskDoneEvent {
                    key: TaskKey::new("t", 0, i as u32),
                    graph: GraphId(0),
                    worker: WorkerId::new(NodeId(0), (i % 4) as u32),
                    thread: ThreadId(i % 4),
                    start: Time(i * 1_000_000),
                    stop: Time((i + 1) * 1_000_000),
                    nbytes: 64,
                }))
                .unwrap();
        }
        producer.flush().unwrap();
        svc.sync().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while live.progress().task_done < n_events {
            if live.pump(4096).unwrap() == 0 {
                live.wait_activity(Duration::from_millis(50));
            }
            assert!(std::time::Instant::now() < deadline, "ingest stalled");
        }
        live.publish();
        for r in readers {
            let (version, seen) = r.join().unwrap();
            assert!(version >= 1);
            assert!(seen > 0, "subscribers observed live progress");
        }
        assert_eq!(live.progress().task_done, n_events);
        svc.shutdown().unwrap();
    }
}
