//! Cross-run variability metrics: which quantities vary, and by how much,
//! when the same workflow runs repeatedly in the same configuration —
//! the paper's central reproducibility question.

use serde::{Deserialize, Serialize};

use dtf_core::stats::{percentile, Summary, Welford};

/// Variability of one metric across runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variability {
    pub metric: String,
    pub summary: Summary,
    /// Coefficient of variation: std / mean.
    pub cv: f64,
    /// Relative range: (max - min) / mean.
    pub rel_range: f64,
    pub p05: f64,
    pub p95: f64,
}

impl Variability {
    pub fn of(metric: impl Into<String>, values: &[f64]) -> Self {
        let mut w = Welford::new();
        for &v in values {
            w.push(v);
        }
        let summary = w.summary();
        let mean = summary.mean;
        Self {
            metric: metric.into(),
            summary,
            cv: w.cv(),
            rel_range: if mean != 0.0 { (summary.max - summary.min) / mean } else { 0.0 },
            p05: percentile(values, 0.05),
            p95: percentile(values, 0.95),
        }
    }
}

/// Rank a set of metrics by how variable they are (largest CV first) —
/// "which tasks, task behaviors, and system characteristics are
/// responsible for the largest variations".
pub fn rank_by_cv(metrics: Vec<Variability>) -> Vec<Variability> {
    let mut m = metrics;
    m.sort_by(|a, b| b.cv.partial_cmp(&a.cv).expect("finite CVs"));
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variability_of_constant_is_zero() {
        let v = Variability::of("wall", &[5.0, 5.0, 5.0]);
        assert_eq!(v.cv, 0.0);
        assert_eq!(v.rel_range, 0.0);
        assert_eq!(v.summary.mean, 5.0);
    }

    #[test]
    fn variability_detects_spread() {
        let v = Variability::of("wall", &[90.0, 100.0, 110.0]);
        assert!(v.cv > 0.05);
        assert!((v.rel_range - 0.2).abs() < 1e-9);
        assert!(v.p05 < v.p95);
    }

    #[test]
    fn ranking_orders_by_cv_desc() {
        let stable = Variability::of("stable", &[10.0, 10.1, 9.9]);
        let noisy = Variability::of("noisy", &[1.0, 5.0, 9.0]);
        let ranked = rank_by_cv(vec![stable, noisy]);
        assert_eq!(ranked[0].metric, "noisy");
    }

    #[test]
    fn empty_values() {
        let v = Variability::of("x", &[]);
        assert_eq!(v.cv, 0.0);
        assert_eq!(v.summary.count, 0);
    }
}
