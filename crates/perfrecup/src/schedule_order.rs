//! §IV-D "comparison of scheduling strategies over runs": were tasks
//! scheduled in the same order from run to run?
//!
//! Each run records the order in which tasks started executing. Two runs
//! are compared by Kendall's tau over the start ranks of their common
//! tasks — 1.0 means identical order, 0 means unrelated. Dynamic
//! scheduling makes this similarity imperfect even under identical
//! configurations, which is one of the paper's irreproducibility sources.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dtf_core::ids::TaskKey;
use dtf_core::stats::{kendall_tau, Summary};
use dtf_core::time::Time;

/// Order similarity between two runs.
///
/// For workflows with tens of thousands of tasks the exact O(n²) tau is
/// costly; `max_tasks` caps the comparison by striding uniformly over the
/// common keys (deterministic, no RNG).
pub fn order_similarity(a: &[(TaskKey, Time)], b: &[(TaskKey, Time)], max_tasks: usize) -> f64 {
    let rank_b: HashMap<&TaskKey, usize> = b.iter().enumerate().map(|(i, (k, _))| (k, i)).collect();
    let mut pairs: Vec<(f64, f64)> = a
        .iter()
        .enumerate()
        .filter_map(|(i, (k, _))| rank_b.get(k).map(|&j| (i as f64, j as f64)))
        .collect();
    if pairs.len() < 2 {
        return 1.0;
    }
    if pairs.len() > max_tasks.max(2) {
        let stride = pairs.len() as f64 / max_tasks as f64;
        pairs = (0..max_tasks).map(|i| pairs[(i as f64 * stride) as usize]).collect();
    }
    let (xs, ys): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
    kendall_tau(&xs, &ys)
}

/// Pairwise order similarity across a campaign's runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderSimilarityMatrix {
    pub runs: usize,
    /// Upper-triangle pairwise taus, row-major (i < j).
    pub pairs: Vec<(usize, usize, f64)>,
    pub summary: Summary,
}

pub fn pairwise(orders: &[Vec<(TaskKey, Time)>], max_tasks: usize) -> OrderSimilarityMatrix {
    let mut pairs = Vec::new();
    let mut taus = Vec::new();
    for i in 0..orders.len() {
        for j in (i + 1)..orders.len() {
            let tau = order_similarity(&orders[i], &orders[j], max_tasks);
            pairs.push((i, j, tau));
            taus.push(tau);
        }
    }
    OrderSimilarityMatrix { runs: orders.len(), pairs, summary: Summary::of(&taus) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(keys: &[u32]) -> Vec<(TaskKey, Time)> {
        keys.iter().enumerate().map(|(i, &k)| (TaskKey::new("t", 0, k), Time(i as u64))).collect()
    }

    #[test]
    fn identical_orders_have_tau_one() {
        let a = order(&[0, 1, 2, 3, 4]);
        assert_eq!(order_similarity(&a, &a, 1000), 1.0);
    }

    #[test]
    fn reversed_orders_have_tau_minus_one() {
        let a = order(&[0, 1, 2, 3, 4]);
        let b = order(&[4, 3, 2, 1, 0]);
        assert_eq!(order_similarity(&a, &b, 1000), -1.0);
    }

    #[test]
    fn partial_shuffle_between() {
        let a = order(&[0, 1, 2, 3, 4, 5]);
        let b = order(&[1, 0, 2, 3, 5, 4]);
        let tau = order_similarity(&a, &b, 1000);
        assert!(tau > 0.5 && tau < 1.0, "tau {tau}");
    }

    #[test]
    fn disjoint_key_sets_are_trivially_similar() {
        let a = order(&[0, 1, 2]);
        let b: Vec<(TaskKey, Time)> = vec![(TaskKey::new("other", 9, 0), Time(0))];
        assert_eq!(order_similarity(&a, &b, 1000), 1.0);
    }

    #[test]
    fn sampling_cap_still_detects_similarity() {
        let n = 5000u32;
        let keys: Vec<u32> = (0..n).collect();
        let a = order(&keys);
        // a locally-jittered copy: swap adjacent pairs
        let mut jit = keys.clone();
        for i in (0..n as usize - 1).step_by(2) {
            jit.swap(i, i + 1);
        }
        let b = order(&jit);
        let tau = order_similarity(&a, &b, 300);
        assert!(tau > 0.9, "sampled tau {tau} should stay high");
    }

    #[test]
    fn pairwise_matrix_shape() {
        let orders = vec![order(&[0, 1, 2]), order(&[0, 2, 1]), order(&[2, 1, 0])];
        let m = pairwise(&orders, 1000);
        assert_eq!(m.runs, 3);
        assert_eq!(m.pairs.len(), 3);
        assert_eq!(m.summary.count, 3);
        assert!(m.summary.mean < 1.0);
    }
}
