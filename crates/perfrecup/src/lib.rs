//! # dtf-perfrecup
//!
//! The PERFRECUP-analog analysis engine (paper §III-D): a typed columnar
//! [`frame::DataFrame`] (the pandas substitute), [`views`] that ingest and
//! *fuse* multi-source run data on shared identifiers — task keys, worker
//! addresses, pthread ids, timestamps — and one module per analysis in the
//! paper's evaluation:
//!
//! * [`phases`] — relative time in I/O / communication / computation and
//!   total wall time, with across-run variability (Fig. 3).
//! * [`io_timeline`] — per-thread I/O segments over time and read/write
//!   phase detection (Fig. 4).
//! * [`comm_scatter`] — communication duration vs. message size, intra- vs
//!   inter-node (Fig. 5).
//! * [`data_movement`] — in-band (scheduler-mediated) vs. out-of-band
//!   (proxy blob plane) byte attribution per transfer.
//! * [`parallel_coords`] — elapsed / category / thread / output size /
//!   duration coordinates per task (Fig. 6).
//! * [`warnings_dist`] — warning distribution over time and its
//!   correlation with long tasks (Fig. 7).
//! * [`lineage`] — full per-task provenance summaries (Fig. 8).
//! * [`schedule_order`] — scheduling-order similarity across runs (§IV-D).
//! * [`variability`] — cross-run variability metrics.
//! * [`category`] — per-task-category statistics and cross-run variability.
//! * [`utilization`] — per-worker busy-fraction timelines and imbalance.
//! * [`zoom`] — time-window event extraction and utilization timelines.
//! * [`export`] — FAIR archival export of a run (CSV views + JSON manifests).
//! * [`archive`] — post-hoc entry point: reopen a persisted store
//!   directory (dtf-store backed) and analyze it like a live run.
//! * [`live`] — online incremental view maintenance: a Mofka consumer
//!   group keeping the category / utilization / phase views fresh in O(Δ)
//!   per batch, with versioned snapshot subscriptions for concurrent
//!   readers and a [`live::ViewQuery`] answered identically by live state
//!   and archives.

pub mod archive;
pub mod category;
pub mod comm_scatter;
pub mod data_movement;
pub mod export;
pub mod frame;
pub mod io_timeline;
pub mod lineage;
pub mod live;
pub mod parallel_coords;
pub mod phases;
pub mod schedule_order;
pub mod utilization;
pub mod variability;
pub mod views;
pub mod warnings_dist;
pub mod zoom;

pub use frame::DataFrame;
pub use live::{LiveConfig, LiveViews, ViewQuery, ViewResult, ViewSnapshot, ViewSubscription};
pub use views::RunViews;
