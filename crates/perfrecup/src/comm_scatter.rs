//! Fig. 5: time spent in inter-worker communication vs. message size,
//! split intra-node / inter-node.
//!
//! The paper's observation on ResNet152: several communications near the
//! beginning of the workflow take disproportionately long despite being
//! small, split roughly evenly between intra- and inter-node. (In our
//! substrate the cause is explicit: lazy connection establishment on
//! first contact between worker pairs.)

use serde::{Deserialize, Serialize};

use dtf_core::stats::percentile;
use dtf_wms::RunData;

use crate::frame::DataFrame;

/// The scatter points: columns `nbytes, duration_s, same_node, start_s`.
pub fn points(data: &RunData) -> DataFrame {
    let df = DataFrame::from_tabular(&data.comms);
    df.select(&["nbytes", "duration_s", "same_node", "start_s"])
        .expect("comm schema has these columns")
}

/// Summary of the slow-small-early anomaly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommSummary {
    pub total: usize,
    pub intra_node: usize,
    pub inter_node: usize,
    /// Median message size (bytes).
    pub median_bytes: f64,
    /// Median transfer duration (seconds).
    pub median_duration_s: f64,
    /// Communications that are small (<= median size) yet slow (> 10x the
    /// median duration) — the robust outlier criterion.
    pub slow_small: usize,
    /// ... of which within the first `early_window_s` of communication
    /// activity.
    pub slow_small_early: usize,
    /// Intra-node share among the slow-small-early set.
    pub slow_small_early_intra_share: f64,
    pub early_window_s: f64,
}

/// Multiplier over the median duration beyond which a transfer counts as
/// anomalously slow.
pub const SLOW_FACTOR: f64 = 10.0;

/// Analyze the anomaly with an early window of `early_window_s` seconds
/// after the first communication.
pub fn summary(data: &RunData, early_window_s: f64) -> CommSummary {
    let comms = &data.comms;
    let sizes: Vec<f64> = comms.iter().map(|c| c.nbytes as f64).collect();
    let durs: Vec<f64> = comms.iter().map(|c| c.duration().as_secs_f64()).collect();
    let median_bytes = percentile(&sizes, 0.5);
    let median_dur = percentile(&durs, 0.5);
    let t0 = comms.iter().map(|c| c.start.as_secs_f64()).fold(f64::INFINITY, f64::min);
    let mut slow_small = 0;
    let mut slow_small_early = 0;
    let mut early_intra = 0;
    let mut intra = 0;
    for c in comms {
        if c.same_node() {
            intra += 1;
        }
        let small = (c.nbytes as f64) <= median_bytes;
        let slow = c.duration().as_secs_f64() > SLOW_FACTOR * median_dur;
        if small && slow {
            slow_small += 1;
            if c.start.as_secs_f64() - t0 <= early_window_s {
                slow_small_early += 1;
                if c.same_node() {
                    early_intra += 1;
                }
            }
        }
    }
    CommSummary {
        total: comms.len(),
        intra_node: intra,
        inter_node: comms.len() - intra,
        median_bytes,
        median_duration_s: median_dur,
        slow_small,
        slow_small_early,
        slow_small_early_intra_share: if slow_small_early == 0 {
            0.0
        } else {
            early_intra as f64 / slow_small_early as f64
        },
        early_window_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::events::CommEvent;
    use dtf_core::ids::{NodeId, TaskKey, WorkerId};
    use dtf_core::time::Time;

    fn comm(from_node: u32, to_node: u32, nbytes: u64, start: f64, dur: f64) -> CommEvent {
        CommEvent {
            key: TaskKey::new("x", 0, 0),
            from: WorkerId::new(NodeId(from_node), 0),
            to: WorkerId::new(NodeId(to_node), 1),
            nbytes,
            start: Time::from_secs_f64(start),
            stop: Time::from_secs_f64(start + dur),
        }
    }

    fn run_with(comms: Vec<CommEvent>) -> RunData {
        // reuse the io_timeline test constructor shape via a minimal run
        let mut data = crate::io_timeline::tests_support::empty_run();
        data.comms = comms;
        data
    }

    #[test]
    fn summary_counts_slow_small_early() {
        let mut comms = Vec::new();
        // 50 normal comms: large-ish, fast, spread over time
        for i in 0..50 {
            comms.push(comm(0, 1, 1 << 20, 10.0 + i as f64, 0.01));
        }
        // 4 early anomalies: tiny but very slow, half intra-node
        comms.push(comm(0, 0, 100, 0.1, 0.9));
        comms.push(comm(0, 0, 100, 0.2, 0.8));
        comms.push(comm(0, 1, 100, 0.3, 0.7));
        comms.push(comm(0, 1, 100, 0.4, 0.95));
        let data = run_with(comms);
        let s = summary(&data, 5.0);
        assert_eq!(s.total, 54);
        assert_eq!(s.slow_small, 4, "all four anomalies exceed 10x median duration");
        assert_eq!(s.slow_small_early, 4);
        assert!((s.slow_small_early_intra_share - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_run_summary_is_zero() {
        let data = run_with(vec![]);
        let s = summary(&data, 5.0);
        assert_eq!(s.total, 0);
        assert_eq!(s.slow_small, 0);
        assert_eq!(s.slow_small_early_intra_share, 0.0);
    }

    #[test]
    fn points_have_expected_columns() {
        let data = run_with(vec![comm(0, 1, 512, 1.0, 0.1)]);
        let df = points(&data);
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.names(), &["nbytes", "duration_s", "same_node", "start_s"]);
        assert_eq!(df.col("same_node").unwrap()[0].as_bool(), Some(false));
    }
}
