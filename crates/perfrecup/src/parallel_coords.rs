//! Fig. 6: parallel-coordinates view of tasks — elapsed time, task
//! category, executing thread, output size (MB), and duration (s).
//!
//! The paper's XGBoost reading: the longest tasks belong to the
//! `read_parquet-fused-assign` category (Dask's graph optimization fuses
//! I/O into consuming tasks for locality), and their outputs far exceed
//! the 128 MB the Dask developers recommend — a likely cause of
//! suboptimal, variable performance.

use serde::{Deserialize, Serialize};

use dtf_core::table::Value;
use dtf_wms::RunData;

use crate::frame::{Agg, DataFrame};

/// Dask's recommended maximum chunk/output size: 128 MB.
pub const RECOMMENDED_NBYTES: u64 = 128 << 20;

/// The coordinates table: `elapsed_s, category, thread, output_mb,
/// duration_s`, one row per completed task.
pub fn coordinates(data: &RunData) -> DataFrame {
    let mut df = DataFrame::new(
        ["elapsed_s", "category", "thread", "output_mb", "duration_s"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for d in &data.task_done {
        df.push_row(vec![
            Value::F64(d.stop.as_secs_f64()),
            Value::Str(d.key.prefix.as_str().to_string()),
            Value::U64(d.thread.0),
            Value::F64(d.nbytes as f64 / (1 << 20) as f64),
            Value::F64(d.duration().as_secs_f64()),
        ])
        .expect("schema-conforming row");
    }
    df
}

/// Category-level reading of the figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordsSummary {
    /// Category with the largest mean duration.
    pub longest_category: String,
    pub longest_mean_duration_s: f64,
    /// Tasks whose output exceeds the 128 MB recommendation.
    pub oversized_tasks: usize,
    /// ... and the categories they belong to, sorted by count desc.
    pub oversized_categories: Vec<(String, usize)>,
    pub total_tasks: usize,
}

pub fn summary(data: &RunData) -> CoordsSummary {
    let df = coordinates(data);
    let longest = df.group_by("category", "duration_s", Agg::Mean).expect("group by category");
    let mut best = (String::new(), f64::NEG_INFINITY);
    let cats = longest.col("category").expect("category col");
    let means = longest.col_f64("duration_s_mean").expect("mean col");
    for (c, m) in cats.iter().zip(means) {
        if m > best.1 {
            best = (c.to_string(), m);
        }
    }
    let mut oversized_by_cat: std::collections::HashMap<String, usize> = Default::default();
    let mut oversized = 0;
    for d in &data.task_done {
        if d.nbytes > RECOMMENDED_NBYTES {
            oversized += 1;
            *oversized_by_cat.entry(d.key.prefix.as_str().to_string()).or_default() += 1;
        }
    }
    let mut oversized_categories: Vec<(String, usize)> = oversized_by_cat.into_iter().collect();
    oversized_categories.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    CoordsSummary {
        longest_category: best.0,
        longest_mean_duration_s: if best.1.is_finite() { best.1 } else { 0.0 },
        oversized_tasks: oversized,
        oversized_categories,
        total_tasks: data.task_done.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io_timeline::tests_support::empty_run;
    use dtf_core::events::TaskDoneEvent;
    use dtf_core::ids::{GraphId, NodeId, TaskKey, ThreadId, WorkerId};
    use dtf_core::time::Time;

    fn done(prefix: &str, start: f64, dur: f64, nbytes: u64) -> TaskDoneEvent {
        TaskDoneEvent {
            key: TaskKey::new(prefix, 0, 0),
            graph: GraphId(0),
            worker: WorkerId::new(NodeId(0), 0),
            thread: ThreadId(1),
            start: Time::from_secs_f64(start),
            stop: Time::from_secs_f64(start + dur),
            nbytes,
        }
    }

    #[test]
    fn summary_identifies_longest_and_oversized() {
        let mut data = empty_run();
        data.task_done = vec![
            done("read_parquet-fused-assign", 0.0, 120.0, 340 << 20),
            done("read_parquet-fused-assign", 5.0, 90.0, 300 << 20),
            done("getitem", 130.0, 2.0, 50 << 20),
            done("getitem", 133.0, 3.0, 60 << 20),
        ];
        let s = summary(&data);
        assert_eq!(s.longest_category, "read_parquet-fused-assign");
        assert!(s.longest_mean_duration_s > 100.0);
        assert_eq!(s.oversized_tasks, 2);
        assert_eq!(s.oversized_categories[0].0, "read_parquet-fused-assign");
        assert_eq!(s.total_tasks, 4);
    }

    #[test]
    fn coordinates_shape() {
        let mut data = empty_run();
        data.task_done = vec![done("x", 0.0, 1.0, 1 << 20)];
        let df = coordinates(&data);
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.col_f64("output_mb").unwrap(), vec![1.0]);
    }

    #[test]
    fn empty_run_summary() {
        let s = summary(&empty_run());
        assert_eq!(s.total_tasks, 0);
        assert_eq!(s.oversized_tasks, 0);
        assert_eq!(s.longest_mean_duration_s, 0.0);
    }
}
