//! Fig. 8: the full provenance lineage of one task, reconstructed from the
//! fused multi-source data.
//!
//! Everything in the record comes from joins on shared identifiers:
//! dependencies and submission from the task-meta stream, state
//! transitions from the transition stream, compute location from the
//! completion record, replicas from communication events naming the
//! task's key, and I/O from Darshan records joined on
//! `(pthread id, execution interval)`.

use std::collections::HashMap;

use dtf_core::error::{DtfError, Result};
use dtf_core::ids::TaskKey;
use dtf_core::provenance::{LineageLocation, LineageTransition, TaskLineage};
use dtf_wms::RunData;

/// Build the lineage of `key` from one run's data.
pub fn build(data: &RunData, key: &TaskKey) -> Result<TaskLineage> {
    let meta = data
        .meta
        .iter()
        .find(|m| &m.key == key)
        .ok_or_else(|| DtfError::NotFound(format!("task {key} in meta stream")))?;

    // dependents: inverted dependency index
    let mut dependents = Vec::new();
    for m in &data.meta {
        if m.deps.contains(key) {
            dependents.push(m.key.clone());
        }
    }

    let states: Vec<LineageTransition> = data
        .transitions
        .iter()
        .filter(|t| &t.key == key && !(t.from == t.to))
        .map(|t| LineageTransition {
            from: t.from,
            to: t.to,
            stimulus: t.stimulus,
            location: t.location,
            time: t.time,
        })
        .collect();

    let done = data.task_done.iter().rfind(|d| &d.key == key);

    let mut locations = Vec::new();
    if let Some(d) = done {
        locations.push(LineageLocation { worker: d.worker, thread: Some(d.thread), since: d.stop });
    }
    // replicas created by data movements of this key
    let movements: Vec<_> = data.comms.iter().filter(|c| &c.key == key).cloned().collect();
    for m in &movements {
        locations.push(LineageLocation { worker: m.to, thread: None, since: m.stop });
    }

    // I/O performed during this task's execution, joined on thread id +
    // interval
    let mut io = Vec::new();
    if let Some(d) = done {
        for r in data.darshan.all_records() {
            if r.thread == d.thread && r.start >= d.start && r.start <= d.stop {
                io.push(r.clone());
            }
        }
    }

    Ok(TaskLineage {
        key: Some(key.clone()),
        graph: Some(meta.graph),
        client: Some(meta.client),
        submitted: Some(meta.submitted),
        dependencies: meta.deps.clone(),
        dependents,
        states,
        locations,
        movements,
        io,
        output_nbytes: done.map(|d| d.nbytes),
        start: done.map(|d| d.start),
        stop: done.map(|d| d.stop),
    })
}

/// Build lineages for every completed task (bulk provenance export).
pub fn build_all(data: &RunData) -> HashMap<TaskKey, TaskLineage> {
    let mut out = HashMap::new();
    for m in &data.meta {
        if let Ok(l) = build(data, &m.key) {
            out.insert(m.key.clone(), l);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::ids::{FileId, GraphId, RunId};
    use dtf_core::time::Dur;
    use dtf_wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};
    use dtf_wms::{GraphBuilder, IoCall, SimAction};
    use std::collections::HashSet;

    fn run() -> (RunData, TaskKey, TaskKey) {
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        let root = b.add_sim(
            "load",
            tok,
            0,
            vec![],
            SimAction {
                compute: Dur::from_millis_f64(40.0),
                io: vec![IoCall::read(FileId(0), 0, 4096)],
                output_nbytes: 1 << 20,
                stall_rate: 0.0,
            },
        );
        let child = b.add_sim(
            "consume",
            tok,
            0,
            vec![root.clone()],
            SimAction::compute_only(Dur::from_millis_f64(20.0), 64),
        );
        let wf = SimWorkflow {
            name: "lineage-test".into(),
            graphs: vec![b.build(&HashSet::new()).unwrap()],
            submit: SubmitPolicy::AllAtOnce,
            startup: Dur::from_secs_f64(1.0),
            inter_graph: Dur::ZERO,
            shutdown: Dur::ZERO,
            dataset: vec![("/f".into(), 1 << 20, 1)],
        };
        let data = SimCluster::new(SimConfig { run: RunId(0), ..Default::default() })
            .unwrap()
            .run(wf)
            .unwrap();
        (data, root, child)
    }

    #[test]
    fn lineage_is_complete_and_consistent() {
        let (data, root, child) = run();
        let l = build(&data, &root).unwrap();
        assert_eq!(l.key.as_ref(), Some(&root));
        assert_eq!(l.graph, Some(GraphId(0)));
        assert!(l.dependencies.is_empty());
        assert_eq!(l.dependents, vec![child.clone()]);
        assert!(l.is_consistent(), "state chain must be ordered and linked");
        // Released -> Waiting -> Processing -> Memory at minimum
        assert!(l.states.len() >= 3);
        assert_eq!(l.output_nbytes, Some(1 << 20));
        // the read it performed is attributed (plus open/close)
        assert_eq!(l.io.iter().filter(|r| r.op == dtf_core::events::IoOp::Read).count(), 1);
        assert!(!l.locations.is_empty());
        assert!(l.start.is_some() && l.stop.is_some());

        // child lineage sees its dependency
        let lc = build(&data, &child).unwrap();
        assert_eq!(lc.dependencies, vec![root]);
        assert!(lc.io.is_empty(), "compute-only task performed no I/O");
    }

    #[test]
    fn unknown_key_errors() {
        let (data, _, _) = run();
        assert!(build(&data, &TaskKey::new("ghost", 0, 0)).is_err());
    }

    #[test]
    fn build_all_covers_every_task() {
        let (data, _, _) = run();
        let all = build_all(&data);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn lineage_renders_as_json() {
        let (data, root, _) = run();
        let l = build(&data, &root).unwrap();
        let js = l.to_pretty_json();
        assert!(js.contains("\"states\""));
        assert!(js.contains("load"));
    }
}
