//! Fig. 3: relative time spent per workflow in I/O, communication, and
//! computation, plus total wall time, with error bars across runs.
//!
//! The I/O bar sums the operations in the Darshan reports, the
//! communication bar sums incoming transfers, the computation bar sums
//! in-task time, and the total bar is end-to-end wall time including
//! coordination. The phases are non-exclusive and may overlap (paper
//! §IV-C), so bars need not add to the total. Values are normalized by the
//! workflow's mean wall time for cross-workflow readability.

use serde::{Deserialize, Serialize};

use dtf_core::stats::Welford;

/// One run's phase totals, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSample {
    pub wall_s: f64,
    pub io_s: f64,
    pub comm_s: f64,
    pub compute_s: f64,
}

/// One bar of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBar {
    /// Mean over runs, seconds.
    pub mean_s: f64,
    /// Std over runs, seconds.
    pub std_s: f64,
    /// Mean normalized by the workflow's mean wall time.
    pub mean_norm: f64,
    /// Std normalized likewise (the error bar).
    pub std_norm: f64,
}

/// The four bars of one workflow in Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    pub io: PhaseBar,
    pub comm: PhaseBar,
    pub compute: PhaseBar,
    pub total: PhaseBar,
    pub runs: usize,
}

impl PhaseBreakdown {
    /// Aggregate the per-run samples of one workflow. Phase sums are
    /// accumulated across all worker threads, so their normalized bars
    /// divide by `mean wall x parallelism` (fraction of available
    /// thread-time) while the total bar divides by the mean wall itself.
    pub fn from_samples(samples: &[PhaseSample], parallelism: f64) -> Self {
        assert!(parallelism >= 1.0);
        let mut wall = Welford::new();
        let mut io = Welford::new();
        let mut comm = Welford::new();
        let mut compute = Welford::new();
        for s in samples {
            wall.push(s.wall_s);
            io.push(s.io_s);
            comm.push(s.comm_s);
            compute.push(s.compute_s);
        }
        let wall_denom = if wall.mean() > 0.0 { wall.mean() } else { 1.0 };
        let phase_denom = wall_denom * parallelism;
        let bar = |w: &Welford, denom: f64| PhaseBar {
            mean_s: w.mean(),
            std_s: w.std(),
            mean_norm: w.mean() / denom,
            std_norm: w.std() / denom,
        };
        Self {
            io: bar(&io, phase_denom),
            comm: bar(&comm, phase_denom),
            compute: bar(&compute, phase_denom),
            total: bar(&wall, wall_denom),
            runs: samples.len(),
        }
    }

    /// Coordination share: the fraction of total wall time not covered by
    /// the (overlapping) per-thread phase time, floored at 0. Short
    /// workflows have a disproportionately large share (paper §IV-C).
    /// Uses the normalized bars, which already account for parallelism.
    pub fn coordination_share(&self) -> f64 {
        if self.total.mean_s == 0.0 {
            return 0.0;
        }
        (1.0 - (self.io.mean_norm + self.comm.mean_norm + self.compute.mean_norm)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<PhaseSample> {
        vec![
            PhaseSample { wall_s: 100.0, io_s: 20.0, comm_s: 10.0, compute_s: 60.0 },
            PhaseSample { wall_s: 110.0, io_s: 24.0, comm_s: 12.0, compute_s: 66.0 },
            PhaseSample { wall_s: 90.0, io_s: 16.0, comm_s: 8.0, compute_s: 54.0 },
        ]
    }

    #[test]
    fn normalization_uses_mean_wall_and_parallelism() {
        let b = PhaseBreakdown::from_samples(&samples(), 2.0);
        assert_eq!(b.runs, 3);
        assert!((b.total.mean_s - 100.0).abs() < 1e-9);
        assert!((b.total.mean_norm - 1.0).abs() < 1e-9);
        // io mean 20s over 2 threads of 100s wall -> 0.1
        assert!((b.io.mean_norm - 0.1).abs() < 1e-9);
        assert!(b.io.std_norm > 0.0);
    }

    #[test]
    fn single_run_has_zero_error_bars() {
        let b = PhaseBreakdown::from_samples(&samples()[..1], 2.0);
        assert_eq!(b.io.std_s, 0.0);
        assert_eq!(b.total.std_norm, 0.0);
    }

    #[test]
    fn coordination_share_larger_for_short_workflows() {
        // same busy time, longer wall -> larger coordination share
        let short = PhaseBreakdown::from_samples(
            &[PhaseSample { wall_s: 50.0, io_s: 64.0, comm_s: 64.0, compute_s: 512.0 }],
            64.0,
        );
        let long = PhaseBreakdown::from_samples(
            &[PhaseSample { wall_s: 500.0, io_s: 64.0, comm_s: 64.0, compute_s: 512.0 }],
            64.0,
        );
        // with 64-way parallelism the busy time is 10 s
        assert!(short.coordination_share() < long.coordination_share());
        assert!(long.coordination_share() > 0.9);
    }

    #[test]
    fn empty_samples_do_not_divide_by_zero() {
        let b = PhaseBreakdown::from_samples(&[], 4.0);
        assert_eq!(b.total.mean_norm, 0.0);
        assert_eq!(b.coordination_share(), 0.0);
    }
}
