//! Time-window zoom (paper §IV-D: "zooming through a specific time period
//! — get all events, compute/communication/I/O statistics").
//!
//! Everything the framework knows about a `[t0, t1]` window of one run:
//! the tasks executing (fully or partially) inside it, the transfers and
//! I/O overlapping it, the warnings raised in it, and aggregate busy-time
//! statistics clipped to the window.

use serde::{Deserialize, Serialize};

use dtf_core::events::{CommEvent, IoRecord, TaskDoneEvent, WarningEvent};
use dtf_core::time::{Dur, Time};
use dtf_wms::RunData;

/// Aggregate statistics of one time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    pub t0: Time,
    pub t1: Time,
    pub tasks_active: usize,
    pub tasks_started: usize,
    pub tasks_finished: usize,
    /// Task execution time clipped to the window, summed over threads.
    pub compute_time: Dur,
    pub comms_active: usize,
    pub comm_time: Dur,
    pub comm_bytes: u64,
    pub io_ops: usize,
    pub io_time: Dur,
    pub io_bytes: u64,
    pub warnings: usize,
}

/// All raw events overlapping the window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowEvents<'a> {
    pub tasks: Vec<&'a TaskDoneEvent>,
    pub comms: Vec<&'a CommEvent>,
    pub io: Vec<&'a IoRecord>,
    pub warnings: Vec<&'a WarningEvent>,
}

fn clip(start: Time, stop: Time, t0: Time, t1: Time) -> Dur {
    let s = start.max(t0);
    let e = stop.min(t1);
    e - s // saturating
}

/// Collect every event overlapping `[t0, t1]`.
pub fn events(data: &RunData, t0: Time, t1: Time) -> WindowEvents<'_> {
    assert!(t1 >= t0, "empty window");
    WindowEvents {
        tasks: data.task_done.iter().filter(|d| d.start <= t1 && d.stop >= t0).collect(),
        comms: data.comms.iter().filter(|c| c.start <= t1 && c.stop >= t0).collect(),
        io: data.darshan.all_records().filter(|r| r.start <= t1 && r.stop >= t0).collect(),
        warnings: data.warnings.iter().filter(|w| w.time >= t0 && w.time <= t1).collect(),
    }
}

/// Aggregate the window.
pub fn stats(data: &RunData, t0: Time, t1: Time) -> WindowStats {
    let ev = events(data, t0, t1);
    let mut compute_time = Dur::ZERO;
    let mut started = 0;
    let mut finished = 0;
    for d in &ev.tasks {
        compute_time += clip(d.start, d.stop, t0, t1);
        if d.start >= t0 && d.start <= t1 {
            started += 1;
        }
        if d.stop >= t0 && d.stop <= t1 {
            finished += 1;
        }
    }
    let mut comm_time = Dur::ZERO;
    let mut comm_bytes = 0;
    for c in &ev.comms {
        comm_time += clip(c.start, c.stop, t0, t1);
        comm_bytes += c.nbytes;
    }
    let mut io_time = Dur::ZERO;
    let mut io_bytes = 0;
    for r in &ev.io {
        io_time += clip(r.start, r.stop, t0, t1);
        io_bytes += r.size;
    }
    WindowStats {
        t0,
        t1,
        tasks_active: ev.tasks.len(),
        tasks_started: started,
        tasks_finished: finished,
        compute_time,
        comms_active: ev.comms.len(),
        comm_time,
        comm_bytes,
        io_ops: ev.io.len(),
        io_time,
        io_bytes,
        warnings: ev.warnings.len(),
    }
}

/// Slice the whole run into `n` equal windows (a utilization timeline).
pub fn timeline(data: &RunData, n: usize) -> Vec<WindowStats> {
    assert!(n > 0);
    let total = data.wall_time;
    let step = Dur(total.0 / n as u64);
    (0..n)
        .map(|i| {
            let t0 = Time(step.0 * i as u64);
            let t1 = if i == n - 1 { Time(total.0) } else { Time(step.0 * (i + 1) as u64) };
            stats(data, t0, t1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io_timeline::tests_support::empty_run;
    use dtf_core::events::IoOp;
    use dtf_core::ids::{GraphId, NodeId, TaskKey, ThreadId, WorkerId};

    fn data() -> RunData {
        let mut data = empty_run();
        data.wall_time = Dur::from_secs_f64(100.0);
        let w = WorkerId::new(NodeId(0), 0);
        data.task_done = vec![
            TaskDoneEvent {
                key: TaskKey::new("a", 0, 0),
                graph: GraphId(0),
                worker: w,
                thread: ThreadId(1),
                start: Time::from_secs_f64(10.0),
                stop: Time::from_secs_f64(30.0),
                nbytes: 1,
            },
            TaskDoneEvent {
                key: TaskKey::new("b", 0, 0),
                graph: GraphId(0),
                worker: w,
                thread: ThreadId(2),
                start: Time::from_secs_f64(50.0),
                stop: Time::from_secs_f64(70.0),
                nbytes: 1,
            },
        ];
        data.comms = vec![CommEvent {
            key: TaskKey::new("a", 0, 0),
            from: w,
            to: WorkerId::new(NodeId(1), 0),
            nbytes: 1000,
            start: Time::from_secs_f64(25.0),
            stop: Time::from_secs_f64(35.0),
        }];
        data
    }

    #[test]
    fn window_clips_and_counts() {
        let d = data();
        // window [20, 60]: task a partially (10s), task b partially (10s),
        // the comm fully inside-ish (clipped 25..35 = 10s)
        let s = stats(&d, Time::from_secs_f64(20.0), Time::from_secs_f64(60.0));
        assert_eq!(s.tasks_active, 2);
        assert_eq!(s.tasks_started, 1, "only b started inside");
        assert_eq!(s.tasks_finished, 1, "only a finished inside");
        assert!((s.compute_time.as_secs_f64() - 20.0).abs() < 1e-9);
        assert_eq!(s.comms_active, 1);
        assert!((s.comm_time.as_secs_f64() - 10.0).abs() < 1e-9);
        assert_eq!(s.comm_bytes, 1000);
    }

    #[test]
    fn disjoint_window_is_empty() {
        let d = data();
        let s = stats(&d, Time::from_secs_f64(80.0), Time::from_secs_f64(90.0));
        assert_eq!(s.tasks_active, 0);
        assert_eq!(s.comms_active, 0);
        assert_eq!(s.compute_time, Dur::ZERO);
    }

    #[test]
    fn timeline_covers_whole_run() {
        let d = data();
        let tl = timeline(&d, 10);
        assert_eq!(tl.len(), 10);
        assert_eq!(tl[0].t0, Time::ZERO);
        assert_eq!(tl[9].t1, Time::from_secs_f64(100.0));
        // total clipped compute across windows equals total task time
        let total: f64 = tl.iter().map(|w| w.compute_time.as_secs_f64()).sum();
        assert!((total - 40.0).abs() < 1e-6);
    }

    #[test]
    fn io_window_from_records() {
        let mut d = data();
        d = {
            let mut base = crate::io_timeline::tests_support::run_with(vec![
                crate::io_timeline::tests_support::rec(IoOp::Read, 5.0, 2.0, 4096),
                crate::io_timeline::tests_support::rec(IoOp::Write, 90.0, 1.0, 100),
            ]);
            base.wall_time = d.wall_time;
            base.task_done = d.task_done;
            base.comms = d.comms;
            base
        };
        let s = stats(&d, Time::from_secs_f64(0.0), Time::from_secs_f64(10.0));
        assert_eq!(s.io_ops, 1);
        assert_eq!(s.io_bytes, 4096);
        assert!((s.io_time.as_secs_f64() - 2.0).abs() < 1e-9);
    }
}
