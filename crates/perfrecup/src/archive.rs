//! Post-hoc analysis from a persisted store directory.
//!
//! The paper's pipeline keeps provenance queryable after the run because
//! Mofka's topics persist through Yokan/Warabi; PERFRECUP then consumes
//! them like any other source. This module is that entry point for the
//! analog: point [`open_run`] at the `persist_dir` of a finished (or
//! crashed) run and get back the same [`RunData`] the in-situ drain
//! produced — recovery trims to the committed prefix first — ready for
//! every analysis view in this crate.

use std::path::Path;

use dtf_mofka::ServiceRecovery;
use dtf_wms::rundata::RunData;

use crate::live::{query_rundata, ViewQuery, ViewResult};
use crate::views::RunViews;

/// Reconstruct a run record from a store directory (read-only; see
/// `RunData::open_archive`). Returns the run plus what recovery found.
pub fn open_run(dir: &Path) -> dtf_core::Result<(RunData, ServiceRecovery)> {
    RunData::open_archive(dir)
}

/// An archived run bundled with its reconstructed record, so views can
/// borrow from data owned alongside them.
#[derive(Debug)]
pub struct ArchivedRun {
    pub data: RunData,
    pub recovery: ServiceRecovery,
}

impl ArchivedRun {
    pub fn open(dir: &Path) -> dtf_core::Result<Self> {
        let (data, recovery) = RunData::open_archive(dir)?;
        Ok(Self { data, recovery })
    }

    /// Build the fused analysis views over the archived record.
    pub fn views(&self) -> RunViews<'_> {
        RunViews::new(&self.data)
    }

    /// Answer a [`ViewQuery`] from the archive — the cold half of the
    /// hot/cold split: the same query against [`crate::live::LiveViews`]
    /// serves the active run, this serves history, and finalized live
    /// answers are value-identical to the archived ones.
    pub fn query(&self, q: &ViewQuery) -> ViewResult {
        query_rundata(&self.data, q)
    }

    /// Whether recovery had to repair anything on the way in (torn tails
    /// or dropped segments in either store).
    pub fn was_repaired(&self) -> bool {
        let y = &self.recovery.yokan;
        let w = &self.recovery.warabi;
        y.torn || w.torn || y.dropped_segments > 0 || w.dropped_segments > 0
    }
}
