//! Scheduler-traffic attribution: in-band vs. out-of-band data movement.
//!
//! With the proxy plane off every dependency payload travels in-band —
//! scheduler-mediated, through the same channel as control traffic. With
//! the plane on, transfers whose source task published a [`ProxyRef`]
//! carry only the small typed reference in-band while the payload moves
//! peer-to-peer out-of-band. This view attributes each [`CommEvent`]'s
//! bytes to the two planes and quantifies the scheduler-traffic reduction
//! the ablation in `dtf-bench` gates on.
//!
//! The attribution is computed from the drained run data alone (comms
//! joined against proxy lifecycle events on the task key), so archived
//! pre-proxy runs analyze cleanly as 100% in-band. The view is *not* part
//! of [`crate::export::export_run`]'s archival set: exports stay
//! byte-identical whether or not the plane ran.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use dtf_core::events::ProxyAction;
use dtf_core::ids::TaskKey;
use dtf_proxystore::ProxyRef;
use dtf_wms::RunData;

use crate::frame::DataFrame;

/// Per-transfer attribution row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovementRow {
    pub key: TaskKey,
    /// Payload size of the transfer.
    pub nbytes: u64,
    /// Bytes that crossed the scheduler-mediated channel.
    pub in_band: u64,
    /// Bytes that moved peer-to-peer through the blob plane.
    pub out_of_band: u64,
    pub proxied: bool,
    pub start_s: f64,
}

/// Aggregate attribution over a whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovementSummary {
    /// Total payload bytes moved between workers.
    pub total_bytes: u64,
    /// Bytes that travelled through the scheduler-mediated channel
    /// (full payloads for unproxied transfers, wire-size of the
    /// [`ProxyRef`] for proxied ones).
    pub in_band_bytes: u64,
    /// Payload bytes that moved out-of-band through the blob plane.
    pub out_of_band_bytes: u64,
    pub proxied_transfers: usize,
    pub unproxied_transfers: usize,
    /// `total_bytes / in_band_bytes` — how much lighter the scheduler
    /// channel is than an all-in-band baseline. 1.0 when nothing is
    /// proxied (or the run moved no data at all).
    pub reduction: f64,
}

/// Latest published/republished/re-sourced manifest per task key — the
/// reference a dependent would actually deserialize at resolve time.
fn manifests(data: &RunData) -> BTreeMap<&TaskKey, ProxyRef> {
    let mut out = BTreeMap::new();
    for ev in &data.proxies {
        match ev.action {
            ProxyAction::Published | ProxyAction::Republished | ProxyAction::Resourced => {
                // Events are sorted by (time, key, generation); later
                // manifests overwrite earlier ones.
                out.insert(
                    &ev.key,
                    ProxyRef {
                        key: ev.key.clone(),
                        graph: ev.graph,
                        size: ev.size,
                        owner: ev.owner,
                        checksum: ev.checksum,
                        generation: ev.generation,
                    },
                );
            }
            ProxyAction::Orphaned => {
                // No manifest survives; dependents fall back to the
                // recompute path and any later transfer is in-band again
                // until a republish.
                out.remove(&ev.key);
            }
            _ => {}
        }
    }
    out
}

/// Attribute every communication event to the two planes.
pub fn rows(data: &RunData) -> Vec<MovementRow> {
    let refs = manifests(data);
    data.comms
        .iter()
        .map(|c| {
            let proxied = refs.get(&c.key);
            let (in_band, out_of_band) = match proxied {
                Some(r) => (r.wire_size(), c.nbytes),
                None => (c.nbytes, 0),
            };
            MovementRow {
                key: c.key.clone(),
                nbytes: c.nbytes,
                in_band,
                out_of_band,
                proxied: proxied.is_some(),
                start_s: c.start.as_secs_f64(),
            }
        })
        .collect()
}

/// The view as a typed frame: columns `nbytes, in_band, out_of_band,
/// proxied, start_s`.
pub fn frame(data: &RunData) -> DataFrame {
    let names = ["nbytes", "in_band", "out_of_band", "proxied", "start_s"];
    let mut df = DataFrame::new(names.iter().map(|s| s.to_string()).collect());
    for r in rows(data) {
        df.push_row(vec![
            r.nbytes.into(),
            r.in_band.into(),
            r.out_of_band.into(),
            r.proxied.into(),
            r.start_s.into(),
        ])
        .expect("fixed-arity row");
    }
    df
}

/// Aggregate the attribution for the whole run.
pub fn summary(data: &RunData) -> MovementSummary {
    let rows = rows(data);
    let total_bytes: u64 = rows.iter().map(|r| r.nbytes).sum();
    let in_band_bytes: u64 = rows.iter().map(|r| r.in_band).sum();
    let out_of_band_bytes: u64 = rows.iter().map(|r| r.out_of_band).sum();
    let proxied_transfers = rows.iter().filter(|r| r.proxied).count();
    MovementSummary {
        total_bytes,
        in_band_bytes,
        out_of_band_bytes,
        proxied_transfers,
        unproxied_transfers: rows.len() - proxied_transfers,
        reduction: if in_band_bytes == 0 { 1.0 } else { total_bytes as f64 / in_band_bytes as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::events::{CommEvent, ProxyEvent};
    use dtf_core::ids::{GraphId, NodeId, WorkerId};
    use dtf_core::time::Time;

    fn comm(key: TaskKey, nbytes: u64, start: f64) -> CommEvent {
        CommEvent {
            key,
            from: WorkerId::new(NodeId(0), 0),
            to: WorkerId::new(NodeId(1), 1),
            nbytes,
            start: Time::from_secs_f64(start),
            stop: Time::from_secs_f64(start + 0.1),
        }
    }

    fn published(key: TaskKey, size: u64, generation: u32, time: f64) -> ProxyEvent {
        ProxyEvent {
            action: if generation == 0 { ProxyAction::Published } else { ProxyAction::Republished },
            key,
            graph: GraphId(1),
            size,
            owner: WorkerId::new(NodeId(0), 0),
            checksum: 7,
            generation,
            worker: None,
            time: Time::from_secs_f64(time),
        }
    }

    #[test]
    fn unproxied_run_is_all_in_band() {
        let mut data = crate::io_timeline::tests_support::empty_run();
        let k = TaskKey::new("t", 0, 0);
        data.comms = vec![comm(k.clone(), 4096, 1.0), comm(k, 8192, 2.0)];
        let s = summary(&data);
        assert_eq!(s.total_bytes, 12_288);
        assert_eq!(s.in_band_bytes, 12_288);
        assert_eq!(s.out_of_band_bytes, 0);
        assert_eq!(s.proxied_transfers, 0);
        assert_eq!(s.unproxied_transfers, 2);
        assert_eq!(s.reduction, 1.0);
    }

    #[test]
    fn proxied_transfers_charge_only_the_wire_size_in_band() {
        let mut data = crate::io_timeline::tests_support::empty_run();
        let big = TaskKey::new("t", 0, 0);
        let small = TaskKey::new("t", 0, 1);
        data.comms = vec![comm(big.clone(), 64 << 20, 1.0), comm(small.clone(), 1024, 2.0)];
        data.proxies = vec![published(big.clone(), 64 << 20, 0, 0.5)];
        let rows = rows(&data);
        assert!(rows[0].proxied);
        assert_eq!(rows[0].out_of_band, 64 << 20);
        assert!(rows[0].in_band < 512, "a ProxyRef is a couple hundred bytes");
        assert!(!rows[1].proxied);
        assert_eq!(rows[1].in_band, 1024);

        let s = summary(&data);
        assert_eq!(s.total_bytes, (64 << 20) + 1024);
        assert_eq!(s.out_of_band_bytes, 64 << 20);
        assert!(s.reduction > 5.0, "data-heavy run shows >5x scheduler relief");
    }

    #[test]
    fn orphaned_manifest_reverts_to_in_band() {
        let mut data = crate::io_timeline::tests_support::empty_run();
        let k = TaskKey::new("t", 0, 0);
        data.comms = vec![comm(k.clone(), 1 << 20, 5.0)];
        let mut orphan = published(k.clone(), 1 << 20, 0, 0.5);
        data.proxies = vec![published(k.clone(), 1 << 20, 0, 0.1), {
            orphan.action = ProxyAction::Orphaned;
            orphan.time = Time::from_secs_f64(1.0);
            orphan
        }];
        let s = summary(&data);
        assert_eq!(s.proxied_transfers, 0);
        assert_eq!(s.in_band_bytes, 1 << 20);
    }

    #[test]
    fn frame_has_expected_columns() {
        let mut data = crate::io_timeline::tests_support::empty_run();
        let k = TaskKey::new("t", 0, 0);
        data.comms = vec![comm(k.clone(), 2048, 1.0)];
        data.proxies = vec![published(k, 2048, 0, 0.5)];
        let df = frame(&data);
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.names(), &["nbytes", "in_band", "out_of_band", "proxied", "start_s"]);
        assert_eq!(df.col("proxied").unwrap()[0].as_bool(), Some(true));
    }
}
