//! Fig. 4: per-thread I/O over time, and burst-phase detection.
//!
//! The figure plots one horizontal segment per traced I/O operation
//! (x = elapsed time, y = thread, red = read, blue = write, opacity =
//! size). The analysis also clusters operations into activity *phases* by
//! time gaps; for ImageProcessing the expectation is three read phases —
//! one per sequentially submitted task graph — each ending in a burst of
//! small writes.

use serde::{Deserialize, Serialize};

use dtf_core::events::IoOp;
use dtf_wms::RunData;

use crate::frame::DataFrame;

/// One detected activity phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoPhase {
    pub start_s: f64,
    pub end_s: f64,
    pub read_ops: u64,
    pub write_ops: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
}

impl IoPhase {
    /// A phase "ends in writes" if its last operations are writes.
    pub fn read_dominant(&self) -> bool {
        self.read_ops > self.write_ops
    }
}

/// The per-thread segment view (the figure's raw marks): columns
/// `thread, op, start_s, stop_s, size`.
pub fn segments(data: &RunData) -> DataFrame {
    let records: Vec<_> = data.darshan.all_records().cloned().collect();
    let df = DataFrame::from_tabular(&records);
    df.select(&["thread", "op", "start_s", "stop_s", "size", "host"])
        .expect("io schema has these columns")
}

/// Cluster data operations (reads/writes) into phases separated by idle
/// gaps of at least `gap_s` seconds.
pub fn detect_phases(data: &RunData, gap_s: f64) -> Vec<IoPhase> {
    let mut ops: Vec<(f64, f64, IoOp, u64)> = data
        .darshan
        .all_records()
        .filter(|r| matches!(r.op, IoOp::Read | IoOp::Write))
        .map(|r| (r.start.as_secs_f64(), r.stop.as_secs_f64(), r.op, r.size))
        .collect();
    ops.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let mut phases: Vec<IoPhase> = Vec::new();
    let mut current: Option<(IoPhase, f64)> = None; // (phase, last stop)
    for (start, stop, op, size) in ops {
        let start_new = match &current {
            Some((_, last_stop)) => start - *last_stop > gap_s,
            None => true,
        };
        if start_new {
            if let Some((p, _)) = current.take() {
                phases.push(p);
            }
            current = Some((
                IoPhase {
                    start_s: start,
                    end_s: stop,
                    read_ops: 0,
                    write_ops: 0,
                    read_bytes: 0,
                    write_bytes: 0,
                },
                stop,
            ));
        }
        let (p, last) = current.as_mut().expect("current phase exists");
        p.end_s = p.end_s.max(stop);
        *last = last.max(stop);
        match op {
            IoOp::Read => {
                p.read_ops += 1;
                p.read_bytes += size;
            }
            IoOp::Write => {
                p.write_ops += 1;
                p.write_bytes += size;
            }
            _ => unreachable!("filtered to data ops"),
        }
    }
    if let Some((p, _)) = current {
        phases.push(p);
    }
    phases
}

/// Whether each detected phase is read-dominant and also contains a
/// trailing write burst — the Fig. 4 ImageProcessing signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSignature {
    pub phases: Vec<IoPhase>,
    pub read_phases: usize,
    pub phases_with_writes: usize,
}

pub fn signature(data: &RunData, gap_s: f64) -> PhaseSignature {
    let phases = detect_phases(data, gap_s);
    let read_phases = phases.iter().filter(|p| p.read_dominant()).count();
    let phases_with_writes = phases.iter().filter(|p| p.write_ops > 0).count();
    PhaseSignature { phases, read_phases, phases_with_writes }
}

/// Test-only constructors shared by the analysis modules' unit tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use dtf_core::events::{IoOp, IoRecord};
    use dtf_core::ids::{FileId, NodeId, RunId, ThreadId, WorkerId};
    use dtf_core::provenance::{HardwareInfo, JobInfo, ProvenanceChart, SystemInfo, WmsConfig};
    use dtf_core::time::{Dur, Time};
    use dtf_darshan::counters::PosixCounters;
    use dtf_darshan::log::{DarshanLog, LogHeader, LogSet};
    use dtf_wms::RunData;

    pub fn rec(op: IoOp, start: f64, dur: f64, size: u64) -> IoRecord {
        IoRecord {
            host: NodeId(0),
            worker: WorkerId::new(NodeId(0), 0),
            thread: ThreadId(1),
            file: FileId(0),
            op,
            offset: 0,
            size,
            start: Time::from_secs_f64(start),
            stop: Time::from_secs_f64(start + dur),
        }
    }

    pub fn empty_run() -> RunData {
        run_with(vec![])
    }

    pub fn run_with(records: Vec<IoRecord>) -> RunData {
        let mut counters = PosixCounters::new();
        for r in &records {
            counters.record(r);
        }
        let worker = WorkerId::new(NodeId(0), 0);
        RunData {
            run: RunId(0),
            workflow: "t".into(),
            chart: ProvenanceChart {
                hardware: HardwareInfo::polaris_like(1),
                system: SystemInfo::synthetic(),
                job: JobInfo {
                    job_id: 0,
                    script: String::new(),
                    queue: "q".into(),
                    nodes_requested: 1,
                    allocated_nodes: vec![NodeId(0)],
                    submit_time: Time::ZERO,
                    start_time: Time::ZERO,
                    walltime_limit_s: 60,
                },
                wms_config: WmsConfig::default(),
                client_code_hash: 0,
                workflow_name: "t".into(),
            },
            meta: vec![],
            transitions: vec![],
            worker_transitions: vec![],
            task_done: vec![],
            comms: vec![],
            warnings: vec![],
            logs: vec![],
            proxies: vec![],
            online_io: vec![],
            darshan: LogSet::new(vec![DarshanLog {
                header: LogHeader {
                    run: RunId(0),
                    job_id: 0,
                    worker,
                    hostname: "nid0000".into(),
                    start: Time::ZERO,
                    end: Time::from_secs_f64(100.0),
                    dxt_truncated: false,
                    dxt_dropped: 0,
                },
                counters,
                dxt: records,
            }]),
            wall_time: Dur::from_secs_f64(100.0),
            start_order: vec![],
            steals: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::{rec, run_with};
    use super::*;
    use dtf_core::events::IoRecord;

    #[test]
    fn three_bursts_detected() {
        let mut records = Vec::new();
        for phase in 0..3 {
            let t0 = phase as f64 * 30.0;
            for i in 0..10 {
                records.push(rec(IoOp::Read, t0 + i as f64 * 0.5, 0.3, 4 << 20));
            }
            records.push(rec(IoOp::Write, t0 + 6.0, 0.1, 8 << 10));
        }
        let data = run_with(records);
        let sig = signature(&data, 5.0);
        assert_eq!(sig.phases.len(), 3);
        assert_eq!(sig.read_phases, 3);
        assert_eq!(sig.phases_with_writes, 3);
        for p in &sig.phases {
            assert_eq!(p.read_ops, 10);
            assert_eq!(p.write_ops, 1);
            assert!(p.read_bytes > p.write_bytes);
        }
    }

    #[test]
    fn continuous_io_is_one_phase() {
        let records: Vec<IoRecord> =
            (0..50).map(|i| rec(IoOp::Read, i as f64 * 0.1, 0.09, 1024)).collect();
        let data = run_with(records);
        assert_eq!(detect_phases(&data, 2.0).len(), 1);
    }

    #[test]
    fn empty_run_has_no_phases() {
        let data = run_with(vec![]);
        assert!(detect_phases(&data, 2.0).is_empty());
    }

    #[test]
    fn opens_and_closes_do_not_form_phases() {
        let records = vec![rec(IoOp::Open, 0.0, 0.001, 0), rec(IoOp::Close, 10.0, 0.001, 0)];
        let data = run_with(records);
        assert!(detect_phases(&data, 2.0).is_empty());
    }

    #[test]
    fn segments_view_has_expected_columns() {
        let data = run_with(vec![rec(IoOp::Read, 1.0, 0.5, 4096)]);
        let df = segments(&data);
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.names(), &["thread", "op", "start_s", "stop_s", "size", "host"]);
    }
}
